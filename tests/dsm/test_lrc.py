"""Protocol-level scenarios through the public runtime.

These tests script tiny multi-processor programs and check the LRC
invalidate/fetch behaviour, including the paper's Section-3 law:

    messages at a fault = access(U) x card(CW(U))  (exchanges)
"""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.network import MessageClass


def run(nprocs, body, heap=1 << 16, **cfg):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg), heap_bytes=heap)
    arr = tmk.array("a", (nprocs * 1024,), "uint32")  # one page per proc
    res = tmk.run(lambda proc: body(proc, arr))
    return tmk, res


def test_write_then_remote_read_moves_data():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.arange(1024, dtype=np.uint32))
        proc.barrier()
        if proc.id == 1:
            got = arr.read(proc, 0, 1024)
            assert np.array_equal(got, np.arange(1024, dtype=np.uint32))
        proc.barrier()

    run(2, body)


def test_no_sync_no_visibility():
    """Without synchronization, remote writes must stay invisible (LRC)."""

    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.full(4, 7, np.uint32))
        # No barrier: proc 1 reads its own (zero) copy.
        if proc.id == 1:
            assert not arr.read(proc, 0, 4).any()

    run(2, body)


def test_fault_exchanges_equal_concurrent_writers():
    """Write-write false sharing: N-1 writers to one page -> the reader's
    fault exchanges with exactly N-1 processors (Section 3 formula)."""
    nprocs = 4

    def body(proc, arr):
        # Procs 1..3 write disjoint words of page 0.
        if proc.id > 0:
            arr.write(proc, proc.id * 8, np.full(4, proc.id, np.uint32))
        proc.barrier()
        if proc.id == 0:
            arr.read(proc, 8, 24)  # touches all three writers' words
        proc.barrier()

    tmk, res = run(nprocs, body)
    fault = next(r for r in res.stats.fault_records if r.proc == 0)
    assert fault.writers == 3
    assert len(fault.exchange_ids) == 3
    # An exchange is a request + a reply.
    assert res.comm.data_messages == 6


def test_single_writer_single_exchange():
    def body(proc, arr):
        if proc.id == 1:
            arr.write(proc, 0, np.full(1024, 3, np.uint32))
        proc.barrier()
        if proc.id == 0:
            arr.read(proc, 0, 1024)
        proc.barrier()

    tmk, res = run(2, body)
    fault = next(r for r in res.stats.fault_records if r.proc == 0)
    assert fault.writers == 1


def test_twin_created_once_per_dirty_interval():
    def body(proc, arr):
        if proc.id == 0:
            for _ in range(10):
                arr.write(proc, 0, np.full(4, 1, np.uint32))  # same page
        proc.barrier()

    tmk, res = run(2, body)
    assert res.stats.twins == 1


def test_invalidation_happens_at_acquire_not_at_write():
    """Processor 1's copy stays valid until it synchronizes."""

    def body(proc, arr):
        if proc.id == 1:
            arr.read(proc, 0, 4)  # page valid, zeros
        proc.barrier()
        if proc.id == 0:
            arr.write(proc, 0, np.full(4, 9, np.uint32))
        if proc.id == 1:
            # Still before the next synchronization: no fault, old data.
            assert not arr.read(proc, 0, 4).any()
        proc.barrier()
        if proc.id == 1:
            assert list(arr.read(proc, 0, 4)) == [9, 9, 9, 9]
        proc.barrier()

    tmk, res = run(2, body)


def test_lock_transfers_modifications():
    def body(proc, arr):
        if proc.id == 0:
            proc.acquire(1)
            arr.write(proc, 0, np.array([proc.id + 10], np.uint32))
            proc.release(1)
        proc.barrier()
        if proc.id == 1:
            proc.acquire(1)
            v = int(arr.read(proc, 0, 1)[0])
            arr.write(proc, 0, np.array([v + 1], np.uint32))
            proc.release(1)
        proc.barrier()
        if proc.id == 0:
            assert int(arr.read(proc, 0, 1)[0]) == 11
        proc.barrier()

    run(2, body)


def test_concurrent_disjoint_writers_merge():
    """The multiple-writer protocol merges disjoint concurrent writes."""
    nprocs = 4

    def body(proc, arr):
        arr.write(proc, proc.id * 4, np.full(4, proc.id + 1, np.uint32))
        proc.barrier()
        got = arr.read(proc, 0, 16)
        expect = np.repeat(np.arange(1, 5, dtype=np.uint32), 4)
        assert np.array_equal(got, expect)
        proc.barrier()

    run(nprocs, body)


def test_static_unit_fetches_whole_unit():
    """With an 8 KB unit, one fault validates both pages."""

    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.full(2048, 5, np.uint32))  # 2 pages
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 4)       # fault: fetches the whole unit
            arr.read(proc, 1500, 4)    # second page: already valid
        proc.barrier()

    tmk, res = run(2, body, unit_pages=2)
    p1_faults = [r for r in res.stats.fault_records if r.proc == 1]
    assert len(p1_faults) == 1


def test_page_units_fetch_separately():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.full(2048, 5, np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 4)
            arr.read(proc, 1500, 4)
        proc.barrier()

    tmk, res = run(2, body, unit_pages=1)
    p1_faults = [r for r in res.stats.fault_records if r.proc == 1]
    assert len(p1_faults) == 2


def test_out_of_bounds_access_rejected():
    def body(proc, arr):
        proc.read(10**9, 4)

    with pytest.raises(IndexError):
        run(1, body)


def test_write_fault_fetches_before_twinning():
    """A write to an invalidated page first fetches pending diffs, so
    concurrent disjoint writes are never lost (MGS's write faults)."""

    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.array([1], np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.write(proc, 1, np.array([2], np.uint32))  # same page
        proc.barrier()
        assert list(arr.read(proc, 0, 2)) == [1, 2]
        proc.barrier()

    run(2, body)


def test_diff_reply_payload_accounts_wire_size():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.full(100, 1, np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 100)
        proc.barrier()

    tmk, res = run(2, body)
    replies = [m for m in tmk.network.messages if m.klass is MessageClass.DIFF_REPLY]
    assert len(replies) == 1
    assert replies[0].words_carried == 100
    assert replies[0].payload_bytes >= 400  # data + headers

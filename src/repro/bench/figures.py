"""Figures 1-3: the unit-size sweeps and false-sharing signatures.

* Figure 1: Barnes, Ilink, TSP, Water -- execution time, messages, and
  data at 4/8/16 KB and dynamic, normalized to 4 KB, with the
  useful/useless/piggybacked breakdown.
* Figure 2: Jacobi, 3D-FFT, MGS, Shallow -- the same panels for every
  problem size (these are the size-sensitive applications).
* Figure 3: the false-sharing signature (histogram of concurrent writers
  per fault, split useful/useless) at 4 KB vs 16 KB for Barnes, Ilink,
  Water, and MGS.

Each ``figure*`` function returns ``{(app, dataset): {label: CaseResult}}``
and a rendered text block; ``expected_shape_*`` returns the pass/fail of
the paper's qualitative claims for that figure (used by the benchmark
suite as assertions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool imports us
    # indirectly through the harness)
    from repro.bench.pool import SweepCell

from repro.bench.harness import (
    UNIT_LABELS,
    CaseResult,
    ResultCache,
    render_breakdown_table,
    render_signature,
)

FIGURE1_CASES = [
    ("Barnes", "16K"),
    ("ILINK", "CLP"),
    ("TSP", "19-city"),
    ("Water", "512"),
]

FIGURE2_CASES = [
    ("Jacobi", "1Kx1K"),
    ("Jacobi", "2Kx2K"),
    ("3D-FFT", "64x64x32"),
    ("3D-FFT", "64x64x64"),
    ("3D-FFT", "128x128x128"),
    ("MGS", "1Kx1K"),
    ("MGS", "2Kx2K"),
    ("MGS", "1Kx4K"),
    ("Shallow", "1Kx0.5K"),
    ("Shallow", "2Kx0.5K"),
    ("Shallow", "4Kx0.5K"),
]

FIGURE3_CASES = [
    ("Barnes", "16K"),
    ("ILINK", "CLP"),
    ("Water", "512"),
    ("MGS", "1Kx1K"),
]

Matrix = Dict[Tuple[str, str], Dict[str, CaseResult]]


def _sweep(cases: Sequence[Tuple[str, str]]) -> Matrix:
    out: Matrix = {}
    for app, ds in cases:
        out[(app, ds)] = {
            label: ResultCache.get(app, ds, label) for label in UNIT_LABELS
        }
    return out


def cells(which: str) -> List[SweepCell]:
    """The sweep cells one figure consumes (for parallel prewarming)."""
    from repro.bench.pool import SweepCell

    cases = {
        "figure1": FIGURE1_CASES,
        "figure2": FIGURE2_CASES,
        "figure3": FIGURE3_CASES,
    }[which]
    return [
        SweepCell.make(app, ds, label)
        for app, ds in cases
        for label in UNIT_LABELS
    ]


def figure1() -> Tuple[Matrix, str]:
    matrix = _sweep(FIGURE1_CASES)
    text = "\n\n".join(
        render_breakdown_table(app, ds, cells)
        for (app, ds), cells in matrix.items()
    )
    return matrix, "Figure 1 -- coarse-grained applications\n" + text


def figure2() -> Tuple[Matrix, str]:
    matrix = _sweep(FIGURE2_CASES)
    text = "\n\n".join(
        render_breakdown_table(app, ds, cells)
        for (app, ds), cells in matrix.items()
    )
    return matrix, "Figure 2 -- size-sensitive applications\n" + text


def figure3() -> Tuple[Matrix, str]:
    matrix = _sweep(FIGURE3_CASES)
    blocks: List[str] = []
    for (app, ds), cells in matrix.items():
        blocks.append(f"--- {app} {ds} ---\n" + render_signature(cells))
    return matrix, "Figure 3 -- false sharing signatures (4K vs 16K)\n" + \
        "\n\n".join(blocks)


# ----------------------------------------------------------------------
# The paper's qualitative claims, as checkable predicates.
# ----------------------------------------------------------------------
def expected_shape_figure1(matrix: Matrix) -> List[str]:
    """Figure 1 claims; returns a list of violated claims (empty = pass).

    'The results for Barnes, Ilink, TSP and Water are similar.
    Performance improves with increasing consistency unit size...'
    (Our scaled TSP is queue-bound and near-flat in time; see
    EXPERIMENTS.md -- for TSP we assert messages do not grow and the
    dynamic scheme wins.)
    """
    bad: List[str] = []
    for app, ds in (("Barnes", "16K"), ("ILINK", "CLP"), ("Water", "512")):
        c = matrix[(app, ds)]
        if not c["16K"].time_us < c["4K"].time_us * 1.02:
            bad.append(f"{app}: time should improve (or hold) at 16K")
        if not c["16K"].total_messages <= c["4K"].total_messages:
            bad.append(f"{app}: messages should fall by 16K")
    tsp = matrix[("TSP", "19-city")]
    if not tsp["Dyn"].time_us < tsp["4K"].time_us:
        bad.append("TSP: dynamic aggregation should beat 4K")
    for (app, ds), cells in matrix.items():
        base, dyn = cells["4K"], cells["Dyn"]
        best = min(cells[label].time_us for label in ("4K", "8K", "16K"))
        if dyn.time_us > max(base.time_us, best) * 1.10:
            bad.append(f"{app}: dynamic should be within ~10% of 4K/best")
    return bad


def expected_shape_figure2(matrix: Matrix) -> List[str]:
    """Figure 2 claims (Section 5.4's three size regimes)."""
    bad: List[str] = []

    def t(app: str, ds: str, label: str) -> float:
        return matrix[(app, ds)][label].time_us

    # Smallest inputs degrade beyond 4 KB.
    for app, ds in (("Jacobi", "1Kx1K"), ("3D-FFT", "64x64x32"),
                    ("MGS", "1Kx1K"), ("Shallow", "1Kx0.5K")):
        if not t(app, ds, "16K") > t(app, ds, "4K"):
            bad.append(f"{app} {ds}: smallest input should degrade at 16K")
    # Medium inputs peak at 8 KB.
    for app, ds in (("3D-FFT", "64x64x64"), ("MGS", "2Kx2K"),
                    ("Shallow", "2Kx0.5K")):
        if not t(app, ds, "8K") < t(app, ds, "4K"):
            bad.append(f"{app} {ds}: medium input should improve at 8K")
        if not t(app, ds, "16K") > t(app, ds, "8K"):
            bad.append(f"{app} {ds}: medium input should fall off at 16K")
    # Large inputs improve through 16 KB.
    for app, ds in (("Jacobi", "2Kx2K"), ("3D-FFT", "128x128x128"),
                    ("MGS", "1Kx4K"), ("Shallow", "4Kx0.5K")):
        if not t(app, ds, "8K") < t(app, ds, "4K"):
            bad.append(f"{app} {ds}: large input should improve at 8K")
    # The dramatic case: MGS useless messages explode.
    mgs = matrix[("MGS", "1Kx1K")]
    if not mgs["8K"].useless_messages > 10 * max(mgs["4K"].useless_messages, 1):
        bad.append("MGS 1Kx1K: useless messages should explode at 8K")
    return bad


def expected_shape_figure3(matrix: Matrix) -> List[str]:
    """Figure 3 claims: signatures invariant for Barnes/Ilink/Water,
    sharp rightward shift for MGS."""
    bad: List[str] = []

    def mean(app: str, ds: str, label: str) -> float:
        sig = matrix[(app, ds)][label].signature
        return sum(k * sum(v) for k, v in sig.items())

    for app, ds in (("Barnes", "16K"), ("ILINK", "CLP")):
        if abs(mean(app, ds, "16K") - mean(app, ds, "4K")) > 1.0:
            bad.append(f"{app}: signature should be nearly invariant")
    if not mean("Water", "512", "16K") <= mean("Water", "512", "4K") + 2.0:
        bad.append("Water: signature should shift only slightly")
    if not mean("MGS", "1Kx1K", "16K") > mean("MGS", "1Kx1K", "4K") + 1.0:
        bad.append("MGS: signature should shift sharply right")
    return bad

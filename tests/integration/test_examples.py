"""The example scripts must run end-to-end (documentation that cannot
rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "checksum" in out
    assert "false-sharing signature" in out


def test_dynamic_aggregation():
    out = run_example("dynamic_aggregation.py")
    assert "dynamic" in out
    # The grouped fetch must appear: an 8-page fault size.
    assert "8, 8" in out


def test_custom_app():
    out = run_example("custom_app.py")
    assert out.count("checksum ok") == 3

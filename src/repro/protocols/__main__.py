"""``python -m repro.protocols`` -- see :mod:`repro.protocols.cli`."""

import sys

from repro.protocols.cli import main

sys.exit(main())

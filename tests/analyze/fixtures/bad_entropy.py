"""detlint fixture: wall-clock and global-random positives (2 + 4
findings; exact lines pinned by tests/analyze/test_detlint.py)."""

import os
import random
import time

import numpy as np


def stamp_and_shuffle(items):
    t0 = time.time()  # finding: wall-clock
    t1 = time.perf_counter()  # finding: wall-clock
    random.shuffle(items)  # finding: global random
    jitter = np.random.rand()  # finding: numpy global RNG
    rng = np.random.default_rng()  # finding: unseeded default_rng
    token = os.urandom(8)  # finding: OS entropy
    return t0, t1, jitter, rng, token

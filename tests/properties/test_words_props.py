"""Property-based tests for WordTracker read-credits/write-clears
semantics (the Section-5.3 usefulness methodology), checked against an
independent dict-based model."""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.words import WordTracker

NWORDS = 64


class ModelTracker:
    """Reference semantics: one pending-owner map, credits on first read."""

    def __init__(self):
        self.owner = {}  # word -> msg_id
        self.credits = defaultdict(int)

    def mark(self, idx, msg_id):
        for w in idx:
            self.owner[w] = msg_id

    def on_read(self, word0, n):
        for w in range(word0, word0 + n):
            if w in self.owner:
                self.credits[self.owner.pop(w)] += 1

    def on_write(self, word0, n):
        for w in range(word0, word0 + n):
            self.owner.pop(w, None)

    def pending_count(self):
        return len(self.owner)


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("mark"),
            st.lists(st.integers(0, NWORDS - 1), min_size=1, max_size=16,
                     unique=True),
            st.integers(0, 9),
        ),
        st.tuples(st.just("read"), st.integers(0, NWORDS - 1),
                  st.integers(0, NWORDS)),
        st.tuples(st.just("write"), st.integers(0, NWORDS - 1),
                  st.integers(0, NWORDS)),
    ),
    max_size=40,
)


def run_both(sequence):
    credits = defaultdict(int)
    tracker = WordTracker(NWORDS, lambda m, c: credits.__setitem__(
        m, credits[m] + c))
    model = ModelTracker()
    for op in sequence:
        if op[0] == "mark":
            _, idx, msg = op
            tracker.mark(np.array(idx, dtype=np.int64), msg)
            model.mark(idx, msg)
        elif op[0] == "read":
            _, w0, n = op
            n = min(n, NWORDS - w0)
            tracker.on_read(w0, n)
            model.on_read(w0, n)
        else:
            _, w0, n = op
            n = min(n, NWORDS - w0)
            tracker.on_write(w0, n)
            model.on_write(w0, n)
    return tracker, model, credits


@given(ops)
@settings(max_examples=150, deadline=None)
def test_tracker_matches_reference_model(sequence):
    tracker, model, credits = run_both(sequence)
    assert dict(credits) == dict(model.credits)
    assert tracker.pending_count() == model.pending_count()


@given(st.lists(st.integers(0, NWORDS - 1), min_size=1, unique=True))
@settings(max_examples=60, deadline=None)
def test_read_credits_each_pending_word_exactly_once(idx):
    """First read credits the carrying message per word; a second read of
    the same range credits nothing (words left the pending state)."""
    tracker, _, credits = run_both([("mark", idx, 5)])
    tracker.on_read(0, NWORDS)
    assert credits == {5: len(idx)}
    tracker.on_read(0, NWORDS)
    assert credits == {5: len(idx)}
    assert tracker.pending_count() == 0


@given(st.lists(st.integers(0, NWORDS - 1), min_size=1, unique=True))
@settings(max_examples=60, deadline=None)
def test_write_clears_without_credit(idx):
    """Overwrite-before-read finalizes the words as useless: no credit,
    and a later read of the range credits nothing either."""
    tracker, _, credits = run_both([("mark", idx, 3)])
    tracker.on_write(0, NWORDS)
    assert credits == {}
    assert tracker.pending_count() == 0
    tracker.on_read(0, NWORDS)
    assert credits == {}


@given(st.lists(st.integers(0, NWORDS - 1), min_size=1, unique=True))
@settings(max_examples=60, deadline=None)
def test_reinstall_retags_to_latest_message(idx):
    """A word re-installed by a later diff before being read belongs to
    the later message; the earlier message gets no credit for it."""
    tracker, _, credits = run_both([("mark", idx, 1), ("mark", idx, 2)])
    tracker.on_read(0, NWORDS)
    assert credits == {2: len(idx)}


@given(ops)
@settings(max_examples=60, deadline=None)
def test_pending_words_never_negative_and_bounded(sequence):
    tracker, _, _ = run_both(sequence)
    assert 0 <= tracker.pending_count() <= NWORDS

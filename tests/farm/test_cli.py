"""Farm CLI: submit / worker / status round trip, filters, dispatch."""

import pytest

from repro.__main__ import main as repro_main
from repro.bench.golden import golden_cells
from repro.farm import worker as worker_mod
from repro.farm.cli import main
from repro.farm.submit import sweep_cells, sweep_names
from repro.faults.channel import DroppedMessageError
from repro.sim.config import DEFAULT_PROTOCOL


class TestSweepCells:
    def test_sweep_names_cover_every_experiment(self):
        assert sweep_names() == sorted([
            "table1", "figure1", "figure2", "figure3", "ablation",
            "protocols", "golden", "chaos",
        ])

    def test_golden_app_filter(self):
        cells = sweep_cells(["golden"], apps=["Jacobi"])
        assert cells == [
            c for c in golden_cells() if c.app == "Jacobi"
        ]
        assert len(cells) == 4

    def test_protocol_filter(self):
        cells = sweep_cells(["protocols"], protocols=[DEFAULT_PROTOCOL])
        assert cells
        assert all(
            c.kwargs.get("protocol", DEFAULT_PROTOCOL) == DEFAULT_PROTOCOL
            for c in cells
        )

    def test_every_sweep_enumerates(self):
        for name in sweep_names():
            assert sweep_cells([name]), name

    def test_unknown_sweep_raises(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            sweep_cells(["figure9"])


class TestCli:
    def test_submit_worker_status_roundtrip(
        self, tmp_path, monkeypatch, capsys, jacobi_results
    ):
        def fake(app, dataset, label, **kwargs):
            return jacobi_results[label]

        monkeypatch.setattr(worker_mod, "run_case", fake)
        store = str(tmp_path / "store")

        assert main(["submit", "golden", "--apps", "Jacobi",
                     "--store", store]) == 0
        assert "4 enqueued" in capsys.readouterr().out

        assert main(["status", "--store", store]) == 0
        assert "4 queued" in capsys.readouterr().out

        assert main(["worker", "--id", "w0", "--store", store]) == 0
        captured = capsys.readouterr()
        assert "4 cells claimed, 4 completed" in captured.out

        assert main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 results" in out
        assert "4 done" in out

        # Resubmitting finds everything already computed.
        assert main(["submit", "golden", "--apps", "Jacobi",
                     "--store", store]) == 0
        assert "4 already done" in capsys.readouterr().out

    def test_worker_exit_code_reflects_failures(
        self, tmp_path, monkeypatch, capsys
    ):
        def explode(app, dataset, label, **kwargs):
            raise DroppedMessageError(3, "diff_request", 2)

        monkeypatch.setattr(worker_mod, "run_case", explode)
        store = str(tmp_path / "store")
        assert main(["submit", "golden", "--apps", "Jacobi",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["worker", "--store", store]) == 1
        assert main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 failed" in out
        assert "failed: Jacobi/1Kx1K" in out

    def test_submit_rejects_unknown_sweep(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["submit", "figure9", "--store", str(tmp_path / "s")])

    def test_command_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_repro_main_dispatches_farm(self, tmp_path, capsys):
        assert repro_main(["farm", "status",
                           "--store", str(tmp_path / "store")]) == 0
        assert "0 results" in capsys.readouterr().out

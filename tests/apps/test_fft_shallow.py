"""FFT and Shallow numerical checks beyond the checksum."""

import numpy as np
import pytest

from repro.apps.fft3d import FFT3D, _fft_flops, _initial_field
from repro.apps.shallow import (
    _flux_cols,
    _h_col,
    _initial_state,
    _update_cols,
)


class TestFFT:
    def test_initial_field_deterministic(self):
        assert np.array_equal(_initial_field(4, 8, 8), _initial_field(4, 8, 8))

    def test_flop_count_formula(self):
        assert _fft_flops(1024) == pytest.approx(5 * 1024 * 10)
        assert _fft_flops(1) > 0  # guard against log2(1) = 0 pathologies

    def test_reference_matches_direct_numpy_transform(self):
        """The reference's staged FFTs equal one full 3-D FFT."""
        app = FFT3D()
        app.datasets = {**app.datasets, "t": {"n1": 8, "n2": 16, "n3": 16, "iters": 1}}
        ref = app.reference("t")
        a = _initial_field(8, 16, 16)
        b = np.fft.fftn(a, axes=(2, 1, 0)).astype(np.complex64)
        direct = float(np.abs(np.transpose(b, (1, 0, 2))).astype(np.float64).sum())
        assert ref == pytest.approx(direct, rel=1e-4)

    def test_transpose_block_granularity_documented(self):
        """The dataset dims must preserve the paper's block-to-page
        ratios: (n2/8) * n3 * 8 bytes = 4/8/16 KB."""
        app = FFT3D()
        expect = {"64x64x32": 4096, "64x64x64": 8192, "128x128x128": 16384}
        for ds, nbytes in expect.items():
            p = app.params(ds)
            assert (p["n2"] // 8) * p["n3"] * 8 == nbytes


class TestShallow:
    def test_initial_state_deterministic(self):
        a = _initial_state(8, 64)
        b = _initial_state(8, 64)
        for k in a:
            assert np.array_equal(a[k], b[k])

    def test_flux_formulas_float32_closed(self):
        s = _initial_state(4, 32)
        cu, cv, z = _flux_cols(s["p"], s["p"], s["u"], s["v"])
        h = _h_col(s["p"], s["u"], s["v"])
        for arr in (cu, cv, z, h):
            assert arr.dtype == np.float32
            assert np.isfinite(arr).all()

    def test_update_is_stable_over_many_steps(self):
        """The explicit scheme with the chosen DT must not blow up over
        the benchmark's horizon."""
        s = _initial_state(16, 128)
        p, u, v = s["p"], s["u"], s["v"]
        for _ in range(50):
            p_sh = np.roll(p, -1, axis=0)
            u_sh = np.roll(u, -1, axis=0)
            v_sh = np.roll(v, -1, axis=0)
            cu, cv, z = _flux_cols(p, p_sh, u_sh, v_sh)
            h = _h_col(p, u, v)
            p, u, v = _update_cols(p, u, v, cu, cv, z, h)
        assert np.isfinite(p).all() and np.abs(p).max() < 1e4

    def test_column_bytes_match_paper_ratios(self):
        from repro.apps.shallow import Shallow

        app = Shallow()
        expect = {"1Kx0.5K": 4096, "2Kx0.5K": 8192, "4Kx0.5K": 16384}
        for ds, nbytes in expect.items():
            assert app.params(ds)["nrows"] * 4 == nbytes

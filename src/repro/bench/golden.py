"""Golden-baseline regression gate.

``python -m repro.bench --check`` re-runs a fixed matrix -- every
application on its smallest paper dataset at each consistency unit
(4K/8K/16K/Dyn), plus the Section-5.1 microbenchmarks -- and compares
the communication counters against baselines committed under
``benchmarks/golden/``.  The simulator is deterministic, so comparison
is **exact**: any drift in messages, bytes, useless data, faults,
simulated time, or checksums means a behavior change that either is a
bug or must be acknowledged by regenerating the baselines
(``--refresh-golden``) and reviewing the diff in the commit.

File layout: one ``<app>.json`` per application holding
``{dataset: {label: {counter: value}}}``, plus ``micro.json``.  Baselines
for non-default consistency protocols (``--protocols``) use the same
layout under a ``<protocol>/`` subdirectory; the default protocol's
files stay at the top level, byte-identical to the pre-zoo layout.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench import micro
from repro.bench.harness import CaseResult, ResultCache
from repro.bench.pool import SweepCell, run_cells
from repro.sim.config import DEFAULT_PROTOCOL

#: Counters compared exactly against the baselines, in report order.
#: The fault-lab counters are all zero on the gate's reliable network;
#: keeping them in the baselines means any leak of fault machinery into
#: fault-free runs trips the exact-match gate.
GOLDEN_FIELDS = (
    "time_us",
    "useful_messages",
    "useless_messages",
    "sync_messages",
    "useful_bytes",
    "useless_bytes",
    "piggybacked_useless_bytes",
    "sync_bytes",
    "faults",
    "monitoring_faults",
    "checksum",
    "fault_messages",
    "fault_bytes",
    "retransmissions",
    "duplicate_deliveries",
    "timeout_stalls",
)

#: Every application's smallest paper dataset (the gate's fixed matrix).
SMALL_DATASETS = {
    "3D-FFT": "64x64x32",
    "Barnes": "16K",
    "ILINK": "CLP",
    "Jacobi": "1Kx1K",
    "MGS": "1Kx1K",
    "Shallow": "1Kx0.5K",
    "TSP": "19-city",
    "Water": "512",
}

GOLDEN_LABELS = ("4K", "8K", "16K", "Dyn")

#: Paper full-size datasets (unscaled problem sizes), only reachable at
#: simulator speed through the bulk-access fast path and the vectorized
#: protocol kernels.  The **default tier** of the bulk ``--check`` gate
#: (opt out with ``--small-only``; scalar-mode checks stay small-only
#: unless ``--full`` is forced): they ride in the same per-app baseline
#: files under their own dataset key, default protocol only, at a
#: reduced label set.
FULL_DATASETS = {"Barnes": "32K", "Jacobi": "512x512", "Shallow": "512x512"}

FULL_LABELS = ("4K", "Dyn")

#: Protocols with committed baselines.  The default protocol's files
#: live at the top of the golden directory exactly as before the
#: protocol zoo existed (byte-identical paths and content); each other
#: protocol gets a ``<protocol>/`` subdirectory with the same layout.
GOLDEN_PROTOCOLS = (DEFAULT_PROTOCOL, "erc", "hlrc", "swi")

#: Default baseline directory (checked into the repository).
GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "golden"


def _protocol_extra(protocol: str) -> Dict[str, Any]:
    """The config override for one protocol -- empty for the default, so
    default-protocol cells keep their pre-zoo cache keys and seeds."""
    return {} if protocol == DEFAULT_PROTOCOL else {"protocol": protocol}


def _cell_extra(protocol: str, access_mode: str = "bulk") -> Dict[str, Any]:
    """Config overrides for one gate cell.  Like the protocol override,
    the default access mode stays out of the dict so default cells keep
    their existing cache keys and per-cell seeds.  Scalar cells resolve
    to distinct cache keys (no aliasing with the bulk results they are
    compared against); the belt-and-braces global-RNG seed differs too,
    which is immaterial because every application constructs its own
    fixed-seed generators."""
    extra = _protocol_extra(protocol)
    if access_mode != "bulk":
        extra["access_mode"] = access_mode
    return extra


def golden_cells(
    apps: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = (DEFAULT_PROTOCOL,),
    access_mode: str = "bulk",
    full: bool = False,
) -> List[SweepCell]:
    """The gate's sweep cells, optionally restricted to some apps,
    widened to extra protocols, and/or widened to the paper full-size
    datasets (``full``)."""
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    for name in names:
        if name not in SMALL_DATASETS:
            raise KeyError(
                f"unknown application {name!r}; have {sorted(SMALL_DATASETS)}"
            )
    cells = [
        SweepCell.make(app, SMALL_DATASETS[app], label,
                       **_cell_extra(p, access_mode))
        for p in protocols
        for app in names
        for label in GOLDEN_LABELS
    ]
    if full:
        cells.extend(
            SweepCell.make(app, FULL_DATASETS[app], label,
                           **_cell_extra(DEFAULT_PROTOCOL, access_mode))
            for app in names
            if app in FULL_DATASETS
            for label in FULL_LABELS
        )
    return cells


def case_snapshot(case: CaseResult) -> Dict[str, object]:
    """The exact-matched counter subset of one cell's result."""
    return {f: getattr(case, f) for f in GOLDEN_FIELDS}


@dataclass(frozen=True)
class Mismatch:
    """One counter that diverged from its baseline."""

    where: str   # "App/dataset@label" or "micro"
    field: str
    expected: object
    actual: object

    def render(self) -> str:
        delta = ""
        if isinstance(self.expected, (int, float)) and isinstance(
            self.actual, (int, float)
        ):
            d = self.actual - self.expected
            delta = f"  ({'+' if d >= 0 else ''}{d:g}, {_pct(d, self.expected)})"
        return (
            f"  {self.where}: {self.field}: expected {self.expected!r}, "
            f"got {self.actual!r}{delta}"
        )


def _pct(delta: float, base: float) -> str:
    if not base:
        return "n/a"
    return f"{100.0 * delta / base:+.2f}%"


def compare_case(
    where: str, case: CaseResult, golden: Dict[str, Any]
) -> List[Mismatch]:
    """Exact comparison of one cell against its baseline entry."""
    out: List[Mismatch] = []
    for f in GOLDEN_FIELDS:
        expected = golden.get(f)
        actual = getattr(case, f)
        if expected != actual:
            out.append(Mismatch(where, f, expected, actual))
    return out


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def _app_path(
    golden_dir: pathlib.Path, app: str, protocol: str = DEFAULT_PROTOCOL
) -> pathlib.Path:
    name = f"{app.replace('/', '_')}.json"
    if protocol == DEFAULT_PROTOCOL:
        return golden_dir / name
    return golden_dir / protocol / name


def load_app_golden(
    golden_dir: pathlib.Path, app: str, protocol: str = DEFAULT_PROTOCOL
) -> Optional[Dict[str, Any]]:
    path = _app_path(golden_dir, app, protocol)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def write_golden(
    golden_dir: pathlib.Path,
    apps: Optional[Sequence[str]] = None,
    jobs: int = 1,
    with_micro: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    protocols: Sequence[str] = (DEFAULT_PROTOCOL,),
    full: bool = False,
) -> List[pathlib.Path]:
    """(Re)generate baseline files from the current code; returns the
    paths written.

    Baseline files are merged per dataset: a refresh that does not run
    the full-size cells (``full=False``) rewrites the small-dataset
    entries and leaves a previously committed full-size entry in place
    (and vice versa), so the two matrices can be refreshed
    independently.
    """
    cells = golden_cells(apps, protocols, full=full)
    run_cells(cells, jobs=jobs, progress=progress)
    golden_dir = pathlib.Path(golden_dir)
    written: List[pathlib.Path] = []
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    for protocol in protocols:
        extra = _protocol_extra(protocol)
        for app in names:
            ds = SMALL_DATASETS[app]
            entry = load_app_golden(golden_dir, app, protocol) or {}
            entry[ds] = {
                label: case_snapshot(
                    ResultCache.get(app, ds, label, **extra)
                )
                for label in GOLDEN_LABELS
            }
            if full and protocol == DEFAULT_PROTOCOL and app in FULL_DATASETS:
                fds = FULL_DATASETS[app]
                entry[fds] = {
                    label: case_snapshot(ResultCache.get(app, fds, label))
                    for label in FULL_LABELS
                }
            path = _app_path(golden_dir, app, protocol)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
            written.append(path)
    if with_micro and apps is None and DEFAULT_PROTOCOL in protocols:
        golden_dir.mkdir(parents=True, exist_ok=True)
        path = golden_dir / "micro.json"
        path.write_text(
            json.dumps(micro.snapshot(micro.run_all()), indent=1, sort_keys=True)
            + "\n"
        )
        written.append(path)
    return written


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
@dataclass
class CheckReport:
    """Outcome of one ``--check`` invocation."""

    cells_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.missing

    def render(self) -> str:
        if self.ok:
            return (
                f"golden check OK: {self.cells_checked} cells match the "
                f"baselines exactly"
            )
        lines = [
            f"golden check FAILED: {len(self.mismatches)} counter mismatch(es), "
            f"{len(self.missing)} missing baseline(s) "
            f"over {self.cells_checked} cells"
        ]
        for m in self.missing:
            lines.append(f"  {m}: no committed baseline "
                         f"(run --refresh-golden and commit the result)")
        lines.extend(m.render() for m in self.mismatches)
        if self.mismatches:
            lines.append(
                "  (exact-match semantics: if the change is intended, "
                "regenerate with --refresh-golden and review the diff)"
            )
        return "\n".join(lines)


def check(
    golden_dir: pathlib.Path = GOLDEN_DIR,
    apps: Optional[Sequence[str]] = None,
    jobs: int = 1,
    with_micro: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    protocols: Sequence[str] = (DEFAULT_PROTOCOL,),
    access_mode: str = "bulk",
    full: bool = False,
) -> CheckReport:
    """Run the gate matrix and compare every cell against the baselines.

    ``access_mode="scalar"`` re-runs the matrix with every bulk region
    access decomposed into word accesses and exact-matches it against
    the *same* committed baselines (which are generated under the bulk
    fast path) -- the scalar-vs-bulk equivalence gate.  The micro
    baselines measure sync primitives directly and are skipped there.
    ``full`` widens the matrix with the paper full-size datasets.
    """
    report = CheckReport()
    golden_dir = pathlib.Path(golden_dir)
    cells = golden_cells(apps, protocols, access_mode, full=full)
    run_cells(cells, jobs=jobs, progress=progress)
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)

    def compare_cell(
        app: str, ds: str, label: str, protocol: str,
        golden_entry: Optional[Dict[str, Any]],
    ) -> None:
        extra = _cell_extra(protocol, access_mode)
        tag = "" if protocol == DEFAULT_PROTOCOL else f" [{protocol}]"
        where = f"{app}/{ds}@{label}{tag}"
        case = ResultCache.get(app, ds, label, **extra)
        report.cells_checked += 1
        entry = (golden_entry or {}).get(ds, {}).get(label)
        if entry is None:
            report.missing.append(where)
            return
        report.mismatches.extend(compare_case(where, case, entry))

    for protocol in protocols:
        for app in names:
            golden = load_app_golden(golden_dir, app, protocol)
            for label in GOLDEN_LABELS:
                compare_cell(app, SMALL_DATASETS[app], label, protocol, golden)
            if full and protocol == DEFAULT_PROTOCOL and app in FULL_DATASETS:
                for label in FULL_LABELS:
                    compare_cell(
                        app, FULL_DATASETS[app], label, protocol, golden
                    )
    if (
        with_micro
        and apps is None
        and DEFAULT_PROTOCOL in protocols
        and access_mode == "bulk"
    ):
        path = golden_dir / "micro.json"
        measured = micro.snapshot(micro.run_all())
        report.cells_checked += len(measured)
        if not path.is_file():
            report.missing.append("micro")
        else:
            golden_micro = json.loads(path.read_text())
            for name, value in measured.items():
                expected = golden_micro.get(name)
                if expected != value:
                    report.mismatches.append(
                        Mismatch("micro", name, expected, value)
                    )
    return report

"""Command-line driver for the static-analysis subsystem.

Five modes -- three legacy flags and two subcommands -- covering the
analyzer's pillars:

``--lint``
    Determinism lint over the simulator sources (default roots:
    ``src/repro``) plus the test/benchmark helper trees (reported in a
    separate section).  Exit 0 iff no active findings and no stale
    suppressions.  ``--json PATH`` additionally writes the machine
    report consumed by CI artifacts.

``--predict APP``
    Static access-pattern analysis for one application: predicted
    write-write conflict pages at 4 KB plus the useless-data lower
    bound at each paper unit size.  ``--json PATH`` writes the
    round-trippable machine report.

``--crosscheck``
    The static-vs-dynamic gate over every application's smallest
    dataset (or ``--apps A,B``): traced 4 KB runs must observe every
    predicted page, and dynamic-only pages must stay within the
    committed ratchet (``--update-ratchet`` re-records it).

``modelcheck``
    Small-scope exhaustive model checking: every litmus program x
    consistency protocol, state/terminal/outcome counts pinned against
    ``benchmarks/modelcheck/state_counts.json``, plus the seeded-bug
    mutation gate.  See ``python -m repro analyze modelcheck --help``.

``layout``
    Static false-sharing layout advisor: per-allocation padding
    proposals with predicted conflict deltas, optionally crosschecked
    against real padded runs (``--crosscheck``) and the committed
    ``benchmarks/analyze/layout_crosscheck.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analyze.crosscheck import run_crosscheck
from repro.analyze.detlint import (
    HELPER_EXCLUDE_PARTS,
    helper_roots,
    lint_paths,
    repo_roots,
)
from repro.analyze.predict import predict
from repro.analyze.report import merge_sections
from repro.bench.golden import SMALL_DATASETS


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.paths:
        sections = {"src": lint_paths([pathlib.Path(p) for p in args.paths])}
    else:
        sections = {
            "src": lint_paths(repo_roots()),
            "helpers": lint_paths(
                helper_roots(), exclude_parts=HELPER_EXCLUDE_PARTS
            ),
        }
    ok = True
    for name, report in sections.items():
        print(f"== {name} ==")
        print(report.render())
        ok = ok and report.ok
    if args.json:
        path = pathlib.Path(args.json)
        with open(path, "w") as fh:
            json.dump(merge_sections(sections), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"json report: {args.json}")
    return 0 if ok else 1


def _cmd_predict(args: argparse.Namespace) -> int:
    dataset = args.dataset or SMALL_DATASETS[args.predict]
    prediction = predict(args.predict, dataset, nprocs=args.nprocs)
    print(prediction.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(prediction.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"json report: {args.json}")
    return 0


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    apps = args.apps.split(",") if args.apps else None
    return run_crosscheck(
        apps=apps, nprocs=args.nprocs, update_ratchet=args.update_ratchet
    )


def _modelcheck_main(argv: List[str]) -> int:
    from repro.analyze.modelcheck import (
        CHECKED_PROTOCOLS,
        LITMUS_TESTS,
        run_modelcheck,
    )

    parser = argparse.ArgumentParser(
        prog="repro.analyze modelcheck",
        description="exhaustive small-scope model checking of the "
        "consistency protocols against the release-consistency oracle",
    )
    parser.add_argument(
        "--litmus", default=None,
        help=f"comma-separated litmus subset (default: all of "
        f"{','.join(sorted(LITMUS_TESTS))})",
    )
    parser.add_argument(
        "--protocols", default=None,
        help=f"comma-separated protocol subset (default: "
        f"{','.join(CHECKED_PROTOCOLS)})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed state-count baseline",
    )
    parser.add_argument(
        "--no-mutation-gate", action="store_true",
        help="skip the seeded-bug mutation gate",
    )
    parser.add_argument(
        "--witness", metavar="PATH", default=None,
        help="where to write a violation witness "
        "(default modelcheck_witness.json)",
    )
    args = parser.parse_args(argv)
    return run_modelcheck(
        litmus_names=args.litmus.split(",") if args.litmus else None,
        protocols=args.protocols.split(",") if args.protocols else None,
        update_baseline=args.update_baseline,
        with_mutation_gate=not args.no_mutation_gate,
        witness_path=args.witness,
    )


def _layout_main(argv: List[str]) -> int:
    from repro.analyze.layout import run_layout

    parser = argparse.ArgumentParser(
        prog="repro.analyze layout",
        description="static false-sharing layout advisor: padding "
        "proposals with predicted conflict deltas",
    )
    parser.add_argument(
        "--apps", default=None,
        help="comma-separated subset of app names (default: all declared)",
    )
    parser.add_argument(
        "--nprocs", type=int, default=8,
        help="processor count (default 8)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the advisor reports as JSON here",
    )
    parser.add_argument(
        "--crosscheck", action="store_true",
        help="apply the pinned cells' plans to real runs and gate "
        "against the committed baseline",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="with --crosscheck: rewrite the committed baseline",
    )
    args = parser.parse_args(argv)
    return run_layout(
        apps=args.apps.split(",") if args.apps else None,
        nprocs=args.nprocs,
        json_path=args.json,
        crosscheck=args.crosscheck,
        update_baseline=args.update,
    )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "modelcheck":
        return _modelcheck_main(argv[1:])
    if argv and argv[0] == "layout":
        return _layout_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.analyze",
        description="determinism lint, static access-pattern analysis, "
        "layout advisor, and protocol model checker (see the "
        "'layout' and 'modelcheck' subcommands)",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--lint", action="store_true",
        help="run the determinism lint (exit 1 on findings)",
    )
    mode.add_argument(
        "--predict", metavar="APP",
        help="predict false-sharing pages / useless-data bound for APP",
    )
    mode.add_argument(
        "--crosscheck", action="store_true",
        help="validate predictions against traced runs (all 8 apps)",
    )
    parser.add_argument(
        "--paths", nargs="*", default=[],
        help="lint these files/dirs instead of the default "
        "src/repro + tests + benchmarks",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="with --lint/--predict: also write the JSON report here",
    )
    parser.add_argument(
        "--dataset", default=None,
        help="with --predict: dataset name (default: smallest paper set)",
    )
    parser.add_argument(
        "--nprocs", type=int, default=8,
        help="processor count for --predict/--crosscheck (default 8)",
    )
    parser.add_argument(
        "--apps", default=None,
        help="with --crosscheck: comma-separated subset of app names",
    )
    parser.add_argument(
        "--update-ratchet", action="store_true",
        help="with --crosscheck: rewrite the analyzer-gap ratchet file",
    )
    args = parser.parse_args(argv)

    if args.lint:
        return _cmd_lint(args)
    if args.predict:
        return _cmd_predict(args)
    return _cmd_crosscheck(args)


if __name__ == "__main__":
    sys.exit(main())

"""Table 1: applications, datasets, sequential times, 8-processor
speedups (4 KB consistency unit).

The paper's absolute seconds belong to 166 MHz Pentiums and the authors'
full-size inputs; our column reports *simulated* seconds on the modelled
platform with the scaled datasets, so the comparable quantity is the
speedup column (the paper's range is 4.07 - 6.51 over the rows it
reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.apps.base import AppRegistry
from repro.bench.harness import ResultCache

if TYPE_CHECKING:  # pragma: no cover - only for the cells() annotation
    from repro.bench.pool import SweepCell

#: Paper Table 1 values where the OCR of the text is unambiguous:
#: (application, dataset) -> (sequential seconds, speedup).
PAPER_TABLE1 = {
    ("Barnes", "16K"): (69.8, 4.25),
    ("ILINK", "CLP"): (1127.9, 5.54),
    ("3D-FFT", "64x64x32"): (18.7, 4.07),
    ("3D-FFT", "64x64x64"): (38.2, 4.31),
    ("MGS", "1Kx1K"): (120.9, 5.64),
    ("MGS", "2Kx2K"): (1112.4, 6.51),
    ("MGS", "1Kx4K"): (560.3, 6.11),
    ("Shallow", "1Kx0.5K"): (179.1, 5.01),
}


@dataclass
class Table1Row:
    app: str
    dataset: str
    seq_seconds: float
    par_seconds: float
    speedup: float
    paper_speedup: float | None


def cells() -> List[SweepCell]:
    """The sweep cells Table 1 consumes (for parallel prewarming)."""
    from repro.bench.pool import SweepCell

    out: List[SweepCell] = []
    for name in AppRegistry.names():
        for ds in sorted(AppRegistry.get(name).datasets):
            out.append(SweepCell.make(name, ds, "seq"))
            out.append(SweepCell.make(name, ds, "4K"))
    return out


def build_table1() -> List[Table1Row]:
    """Run every (application, dataset) sequentially and on 8 processors
    at the 4 KB unit."""
    rows: List[Table1Row] = []
    for name in AppRegistry.names():
        app_datasets = AppRegistry.get(name).datasets
        for ds in sorted(app_datasets):
            seq = ResultCache.get(name, ds, "seq")
            par = ResultCache.get(name, ds, "4K")
            paper = PAPER_TABLE1.get((name, ds))
            rows.append(
                Table1Row(
                    app=name,
                    dataset=ds,
                    seq_seconds=seq.time_us / 1e6,
                    par_seconds=par.time_us / 1e6,
                    speedup=seq.time_us / par.time_us,
                    paper_speedup=paper[1] if paper else None,
                )
            )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    lines = [
        "Table 1: datasets, simulated sequential times, and 8-processor "
        "speedups (4 KB unit)",
        f"{'Program':<9} {'Input':<13} {'Seq. time':>10} {'8-proc':>8} "
        f"{'Speedup':>8} {'Paper':>6}",
    ]
    for r in rows:
        paper = f"{r.paper_speedup:.2f}" if r.paper_speedup else "--"
        lines.append(
            f"{r.app:<9} {r.dataset:<13} {r.seq_seconds:>9.2f}s "
            f"{r.par_seconds:>7.3f}s {r.speedup:>8.2f} {paper:>6}"
        )
    return "\n".join(lines)

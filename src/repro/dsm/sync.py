"""Lock and barrier semantics, plugged into the scheduling engine.

The :class:`SyncManager` is the engine's op handler.  It implements
TreadMarks-style synchronization:

* **Locks** have a static manager; an acquire by the last owner is free
  (locally cached), otherwise the request travels requester -> manager ->
  last owner -> requester (3 messages), and the grant carries the write
  notices the acquirer has not seen.  Contended requests queue and are
  granted in request order.

* **Barriers** are centralized at a manager processor: arrivals carry
  each client's new write notices, the departure broadcast carries
  everyone's merged notices; every processor leaves with the join of all
  vector clocks.

Write-notice application (invalidation) happens through
:meth:`repro.dsm.lrc.LrcProc.apply_notices_upto` while the target
processor is parked, and its cost is folded into the wake-up time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.dsm.lrc import LrcProc
from repro.dsm.vc import VectorClock
from repro.sim.config import SimConfig
from repro.sim.engine import Op, OpKind, Resume
from repro.sim.network import MessageClass, Network
from repro.stats.counters import ProtocolStats

#: Local cost of a release / a cached re-acquire (bookkeeping only).
LOCAL_SYNC_US = 5.0

#: Payload bytes of a bare lock request / forward message.
LOCK_REQUEST_BYTES = 16


@dataclass
class LockState:
    """Protocol state of one lock."""

    lock_id: int
    holder: Optional[int] = None
    last_owner: Optional[int] = None
    last_vc: Optional[VectorClock] = None
    waiters: Deque[Tuple[int, float]] = field(default_factory=deque)


class SyncManager:
    """Engine op handler implementing locks and barriers."""

    def __init__(
        self,
        config: SimConfig,
        network: Network,
        procs: Sequence[LrcProc],
        stats: ProtocolStats,
    ) -> None:
        self.config = config
        self.network = network
        self.procs = list(procs)
        self.stats = stats
        self.locks: Dict[int, LockState] = {}
        self.barrier_arrivals: Dict[int, List[Tuple[int, float]]] = {}
        self._store = procs[0].store if procs else None
        self.trace = None
        """Optional :class:`repro.trace.recorder.TraceRecorder` attached
        by the runtime.  Lock-acquire events are emitted at grant time,
        so their trace order is the grant order -- the property the
        happens-before replay relies on.  Observer-only."""
        self.manager_pid = 0
        """Barrier manager and lock manager processor (proc 0, as is
        conventional for the paper's applications)."""

    # ------------------------------------------------------------------
    # Engine handler entry point
    # ------------------------------------------------------------------
    def service(self, op: Op) -> Sequence[Resume]:
        if op.kind is OpKind.ACQUIRE:
            return self._service_acquire(op)
        if op.kind is OpKind.RELEASE:
            return self._service_release(op)
        if op.kind is OpKind.BARRIER:
            return self._service_barrier(op)
        if op.kind is OpKind.FINISH:
            return ()
        raise AssertionError(f"unhandled op kind {op.kind}")

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def _lock(self, lock_id: int) -> LockState:
        if lock_id not in self.locks:
            self.locks[lock_id] = LockState(lock_id=lock_id)
        return self.locks[lock_id]

    def _service_acquire(self, op: Op) -> Sequence[Resume]:
        lock = self._lock(op.arg)
        self.stats.lock_acquires += 1
        if lock.holder is None:
            return [self._grant(lock, op.proc, op.ts, op.ts)]
        lock.waiters.append((op.proc, op.ts))
        return []

    def _service_release(self, op: Op) -> Sequence[Resume]:
        lock = self._lock(op.arg)
        if lock.holder != op.proc:
            raise RuntimeError(
                f"proc {op.proc} released lock {op.arg} held by {lock.holder}"
            )
        lock.holder = None
        lock.last_vc = self.procs[op.proc].vc.copy()
        if self.trace is not None:
            self.trace.on_lock_release(op.proc, op.ts, op.arg)
        resumes = [Resume(op.proc, op.ts + LOCAL_SYNC_US)]
        if lock.waiters:
            waiter, req_ts = lock.waiters.popleft()
            resumes.append(self._grant(lock, waiter, req_ts, op.ts))
        return resumes

    def _grant(
        self, lock: LockState, proc: int, req_ts: float, avail_ts: float
    ) -> Resume:
        """Grant ``lock`` to ``proc``; returns its resumption.

        ``req_ts`` is when the requester asked, ``avail_ts`` when the
        lock actually became available (== req_ts for an uncontended
        acquire)."""
        lp = self.procs[proc]
        cost, notice_bytes = 0.0, 0
        if lock.last_vc is not None:
            n_cost, notice_bytes, _ = lp.apply_notices_upto(lock.last_vc)
            cost += n_cost

        cached = lock.last_owner == proc or (
            lock.last_owner is None and self.config.nprocs == 1
        )
        now = max(req_ts, avail_ts)
        # Every hop of the acquire path stalls the requester, so injected
        # delivery faults (repro.faults) charge their delays to it.
        if cached:
            cost += LOCAL_SYNC_US
        elif lock.last_owner is None:
            # First acquire: manager grants directly (2 messages).
            cost += self.config.lock_acquire_overhead_us(remote=False)
            self._record_lock_msg(
                proc, self.manager_pid, LOCK_REQUEST_BYTES, now, waiter=proc
            )
            self._record_lock_msg(
                self.manager_pid, proc, LOCK_REQUEST_BYTES + notice_bytes, now,
                waiter=proc,
            )
            self.stats.lock_remote_acquires += 1
        else:
            # Remote: requester -> manager -> last owner -> requester.
            cost += self.config.lock_acquire_overhead_us(remote=True)
            owner = lock.last_owner
            self._record_lock_msg(
                proc, self.manager_pid, LOCK_REQUEST_BYTES, now, waiter=proc
            )
            self._record_lock_msg(
                self.manager_pid, owner, LOCK_REQUEST_BYTES, now, waiter=proc
            )
            self._record_lock_msg(
                owner, proc, LOCK_REQUEST_BYTES + notice_bytes, now, waiter=proc
            )
            self.stats.lock_remote_acquires += 1

        lock.holder = proc
        lock.last_owner = proc
        wake_ts = max(req_ts, avail_ts) + cost
        if self.trace is not None:
            self.trace.on_lock_acquire(
                proc, lock.lock_id, req_ts, now, wake_ts, cached
            )
        return Resume(proc, wake_ts)

    def _record_lock_msg(
        self, src: int, dst: int, payload: int, now: float,
        waiter: Optional[int] = None,
    ) -> None:
        """Record one lock-protocol message, skipping the hops that are
        local because two roles coincide on one processor."""
        if src != dst:
            self.network.record(
                src, dst, MessageClass.LOCK, payload, now, waiter=waiter
            )

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def _service_barrier(self, op: Op) -> Sequence[Resume]:
        arrivals = self.barrier_arrivals.setdefault(op.arg, [])
        for p, _ in arrivals:
            if p == op.proc:
                raise RuntimeError(
                    f"proc {op.proc} arrived twice at barrier {op.arg}"
                )
        arrivals.append((op.proc, op.ts))
        if self.trace is not None:
            self.trace.on_barrier_arrive(op.proc, op.ts, op.arg)
        if len(arrivals) < self.config.nprocs:
            return []

        # Last arrival: merge knowledge and release everyone.
        del self.barrier_arrivals[op.arg]
        self.stats.barriers += 1
        last_ts = max(ts for _, ts in arrivals)
        merged = VectorClock(self.config.nprocs)
        for lp in self.procs:
            merged.join(lp.vc)

        overhead = (
            self.config.barrier_overhead_us(self.config.nprocs)
            if self.config.nprocs > 1
            else 0.0
        )
        resumes = []
        for proc, arrive_ts in arrivals:
            lp = self.procs[proc]
            if proc != self.manager_pid:
                # Arrival message carries the client's new write notices;
                # the manager waits on it before releasing the barrier.
                self.network.record(
                    proc, self.manager_pid, MessageClass.BARRIER,
                    LOCK_REQUEST_BYTES
                    + lp.unsent_notices * self.config.write_notice_bytes,
                    arrive_ts,
                    waiter=self.manager_pid,
                )
            lp.unsent_notices = 0
            cost, notice_bytes, _ = lp.apply_notices_upto(merged)
            if proc != self.manager_pid:
                # Departure message carries everyone else's notices; the
                # departing client waits on it.
                self.network.record(
                    self.manager_pid, proc, MessageClass.BARRIER,
                    LOCK_REQUEST_BYTES + notice_bytes, last_ts,
                    waiter=proc,
                )
            wake_ts = last_ts + overhead + cost
            if self.trace is not None:
                self.trace.on_barrier_depart(proc, last_ts, op.arg, wake_ts)
            resumes.append(Resume(proc, wake_ts))
        if self.trace is not None:
            self.trace.on_barrier_complete(op.arg)

        # After a barrier everyone's vector clock equals `merged`, so any
        # interval it covers that no pending notice references can never
        # be needed again: reclaim, as TreadMarks' periodic GC does.
        if (
            self.config.gc_threshold
            and self._store is not None
            and self._store.count() > self.config.gc_threshold
        ):
            referenced = set()
            for lp in self.procs:
                for notices in lp.pending.values():
                    for nt in notices:
                        referenced.add((nt.proc, nt.index))
            self._store.collect(merged, referenced)
        return resumes

"""Property-based tests for the twin/diff machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsm.diff import apply_diff, create_diff, merge_diffs

words = hnp.arrays(np.uint32, st.integers(4, 256), elements=st.integers(0, 2**32 - 1))


@given(words)
@settings(max_examples=60, deadline=None)
def test_roundtrip_reconstructs_modified(base):
    rng = np.random.default_rng(int(base.sum()) % 2**31)
    cur = base.copy()
    k = rng.integers(0, base.size + 1)
    if k:
        cur[rng.choice(base.size, k, replace=False)] ^= 0xDEADBEEF
    d = create_diff(0, base, cur)
    target = base.copy()
    apply_diff(d, target)
    assert np.array_equal(target, cur)


@given(words)
@settings(max_examples=60, deadline=None)
def test_diff_indices_sorted_and_minimal(base):
    cur = base.copy()
    cur[0] ^= 1
    d = create_diff(0, base, cur)
    assert list(d.idx) == sorted(set(d.idx.tolist()))
    assert d.nwords == int(np.count_nonzero(base != cur))


@given(words, st.integers(1, 6), st.data())
@settings(max_examples=40, deadline=None)
def test_merge_equals_sequential_application(base, nsteps, data):
    """Coalescing a chain of same-writer diffs must be equivalent to
    applying them one by one (lazy-diffing equivalence)."""
    cur = base.copy()
    diffs = []
    for step in range(nsteps):
        prev = cur.copy()
        n = data.draw(st.integers(0, base.size))
        if n:
            idx = data.draw(
                st.lists(
                    st.integers(0, base.size - 1),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
            cur[np.array(idx)] = step + 1
        diffs.append(create_diff(0, prev, cur))
    merged = merge_diffs(diffs)

    via_merged = base.copy()
    apply_diff(merged, via_merged)
    via_seq = base.copy()
    for d in diffs:
        apply_diff(d, via_seq)
    assert np.array_equal(via_merged, via_seq)
    assert np.array_equal(via_merged, cur)


@given(words)
@settings(max_examples=40, deadline=None)
def test_wire_bytes_bounded(base):
    cur = base.copy()
    cur[::2] ^= 5
    d = create_diff(0, base, cur)
    # Wire size is at least the data words and at most data + one run
    # header per word + framing.
    assert d.wire_bytes >= d.nwords * 4
    assert d.wire_bytes <= d.nwords * 12 + 16

"""Differential property suite for the vectorized kernels (PR 9).

Every vectorized hot path keeps its scalar predecessor in-tree as the
oracle; this suite drives randomized inputs through both and asserts
*bit-identity* (``np.array_equal``, never ``allclose``):

* ``barnes.build_tree``            vs ``barnes.build_tree_ref``
* ``barnes.batched_forces_soa``    vs ``barnes.batched_forces`` (AoS)
* ``LrcProc._interval_diffs``      vs ``LrcProc._interval_diffs_ref``
  (in situ, on real twin/pool state, covering the small / dense /
  sparse-flat kernel branches), plus the RLE wire-size and round-trip
  invariants of each produced diff
* the batched write-notice application's ``pending_n`` counter array
  vs the per-unit ``pending`` lists it summarizes
* a random gather/scatter program under ``access_mode='bulk'`` vs the
  word-decomposed ``'scalar'`` mode (the differential gate extended to
  row kernels).
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barnes import (
    _soa_noop,
    batched_forces,
    batched_forces_soa,
    build_tree,
    build_tree_ref,
)
from repro.core import SimConfig, TreadMarks
from repro.dsm.diff import _wire_bytes, apply_diff
from repro.dsm.lrc import LrcProc

# ----------------------------------------------------------------------
# Barnes tree construction and force kernels
# ----------------------------------------------------------------------


@st.composite
def clouds(draw):
    """Random body clouds: uniform, clustered, and degenerate (exact
    duplicate positions, capped at BUCKET per point so the octree
    terminates, as any physical input does)."""
    n = draw(st.integers(1, 400))
    seed = draw(st.integers(0, 2**31 - 1))
    mode = draw(st.sampled_from(["uniform", "clustered", "degenerate"]))
    rng = np.random.default_rng(seed)
    if mode == "uniform":
        pos = rng.uniform(-100.0, 100.0, (n, 3)).astype(np.float32)
    elif mode == "clustered":
        centers = rng.uniform(-50.0, 50.0, (max(1, n // 16), 3))
        pick = rng.integers(0, centers.shape[0], n)
        pos = (centers[pick] + rng.normal(0.0, 0.5, (n, 3))).astype(
            np.float32
        )
    else:
        npoints = (n + 7) // 8
        base = rng.uniform(-10.0, 10.0, (npoints, 3)).astype(np.float32)
        pick = np.repeat(np.arange(npoints), 8)[:n]
        pos = base[pick]
    mass = rng.uniform(0.5, 2.0, n).astype(np.float32)
    return pos, mass


@given(clouds())
@settings(max_examples=40, deadline=None)
def test_build_tree_matches_reference(cloud):
    pos, mass = cloud
    vec = build_tree(pos.copy(), mass.copy())
    ref = build_tree_ref(pos.copy(), mass.copy())
    assert vec.shape == ref.shape
    assert np.array_equal(vec, ref)


@given(clouds(), st.integers(1, 7))
@settings(max_examples=25, deadline=None)
def test_batched_forces_soa_matches_aos(cloud, stride):
    """The SoA kernel must reproduce the AoS kernel bit-for-bit on a
    worker-shaped batch (a strided subset of the bodies)."""
    pos, mass = cloud
    n = pos.shape[0]
    tree = build_tree(pos.copy(), mass.copy())
    bodies = np.zeros((n, 16), dtype=np.float32)
    bodies[:, 0:3] = pos
    bodies[:, 9] = mass
    rows = np.arange(0, n, stride, dtype=np.int64)
    pos_i = np.ascontiguousarray(pos[rows])

    acc_aos, inter_aos = batched_forces(
        pos_i, rows, lambda cids: tree[cids], lambda js: bodies[js]
    )
    acc_soa, inter_soa = batched_forces_soa(
        pos_i,
        rows,
        (
            np.ascontiguousarray(tree[:, 0]),
            np.ascontiguousarray(tree[:, 1]),
            np.ascontiguousarray(tree[:, 2]),
            np.ascontiguousarray(tree[:, 3]),
            tree[:, 4] * tree[:, 4],
            tree[:, 8:16].astype(np.int32),
        ),
        (
            np.ascontiguousarray(bodies[:, 0]),
            np.ascontiguousarray(bodies[:, 1]),
            np.ascontiguousarray(bodies[:, 2]),
            np.ascontiguousarray(bodies[:, 9]),
        ),
        _soa_noop,
        _soa_noop,
    )
    assert np.array_equal(acc_soa, acc_aos)
    assert np.array_equal(inter_soa, inter_aos)


# ----------------------------------------------------------------------
# Interval diff kernel, in situ on real protocol state
# ----------------------------------------------------------------------

WPU = 1024  # words per 4 KB page
NPAGES = 210  # every proc owns > 64 pages: intervals can exceed the
# small-path cutoff of the batched diff kernel


@st.composite
def write_programs(draw):
    """Barrier-phased programs where each processor writes only pages it
    owns (page p belongs to proc p % nprocs -- no races), with rounds
    drawn to exercise all three ``_interval_diffs`` branches: few pages
    (reference path), many nearly-full pages (dense batched path), and
    many single-word touches (sparse flat-kernel path)."""
    nprocs = draw(st.integers(2, 3))
    nrounds = draw(st.integers(1, 3))
    rounds = []
    for _ in range(nrounds):
        per_proc = {}
        for p in range(nprocs):
            mode = draw(st.sampled_from(["few", "dense", "sparse"]))
            own = list(range(p, NPAGES, nprocs))
            if mode == "few":
                k = draw(st.integers(1, 4))
            else:
                k = draw(st.integers(65, min(100, len(own))))
                assert k <= len(own)
            pages = own[:k]
            ops = []
            for page in pages:
                if mode == "dense":
                    start, length = 0, draw(st.integers(WPU // 2, WPU))
                else:
                    start = draw(st.integers(0, WPU - 4))
                    length = draw(st.integers(1, 4))
                value = draw(st.integers(1, 2**31))
                ops.append((page * WPU + start, length, value))
            per_proc[p] = ops
        rounds.append(per_proc)
    return nprocs, rounds


def _run_program(nprocs, rounds, **cfg_kwargs):
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, **cfg_kwargs),
        heap_bytes=NPAGES * WPU * 4,
    )
    arr = tmk.array("a", (NPAGES * WPU,), "uint32")

    def body(proc):
        for r, per_proc in enumerate(rounds):
            for start, length, value in per_proc[proc.id]:
                arr.write(proc, start, np.full(length, value, np.uint32))
            proc.barrier(r)
        got = arr.read(proc, 0, NPAGES * WPU)
        proc.barrier(999)
        return float(got.astype(np.float64).sum())

    return tmk.run(body), arr


@given(write_programs())
@settings(max_examples=8, deadline=None)
def test_interval_diffs_match_reference_in_situ(program):
    """Patch ``_interval_diffs`` to diff itself against the reference on
    every real interval close, including the RLE invariants: the wire
    size matches ``diff._wire_bytes`` and applying the diff to the twin
    reconstructs current memory."""
    nprocs, rounds = program
    orig = LrcProc._interval_diffs
    closes = []

    def checked(self):
        vec = orig(self)
        ref = self._interval_diffs_ref()
        assert sorted(vec) == sorted(ref)
        for unit, d in vec.items():
            r = ref[unit]
            assert np.array_equal(d.idx, r.idx)
            assert d.idx.dtype == r.idx.dtype
            assert np.array_equal(d.values, r.values)
            assert d.nwords == r.nwords == d.idx.shape[0]
            assert d.wire_bytes == r.wire_bytes == _wire_bytes(d.idx)
            twin = self.twins[unit].copy()
            apply_diff(d, twin)
            assert np.array_equal(twin, self.space.unit_view(unit))
        closes.append(len(vec))
        return vec

    LrcProc._interval_diffs = checked
    try:
        _run_program(nprocs, rounds)
    finally:
        LrcProc._interval_diffs = orig
    assert closes  # the patch actually ran


@given(write_programs())
@settings(max_examples=8, deadline=None)
def test_pending_n_matches_pending_lists(program):
    """After every batched notice application the ``pending_n`` counter
    array must equal the lengths of the per-unit notice lists it
    summarizes (the fetch path trusts the array to find cold units)."""
    nprocs, rounds = program
    orig = LrcProc.apply_notices_upto
    calls = []

    def checked(self, new_vc):
        out = orig(self, new_vc)
        for unit, lst in self.pending.items():
            assert self.pending_n[unit] == len(lst), unit
        calls.append(1)
        return out

    LrcProc.apply_notices_upto = checked
    try:
        _run_program(nprocs, rounds)
    finally:
        LrcProc.apply_notices_upto = orig
    assert calls


# ----------------------------------------------------------------------
# Random gather/scatter programs: bulk vs scalar decomposition
# ----------------------------------------------------------------------

ROWS, COLS = 96, 64  # 24 KB array: several pages, rows share pages


@st.composite
def row_programs(draw):
    nprocs = draw(st.integers(2, 3))
    nrounds = draw(st.integers(1, 2))
    rounds = []
    for _ in range(nrounds):
        per_proc = {}
        for p in range(nprocs):
            own = list(range(p, ROWS, nprocs))
            k = draw(st.integers(0, min(8, len(own))))
            wrows = sorted(
                draw(
                    st.lists(
                        st.sampled_from(own),
                        min_size=k,
                        max_size=k,
                        unique=True,
                    )
                )
            )
            value = draw(st.integers(1, 2**20))
            r0 = draw(st.integers(0, ROWS - 4))
            per_proc[p] = (wrows, value, (r0, r0 + 4))
        rounds.append(per_proc)
    return nprocs, rounds


def _run_rows(nprocs, rounds, access_mode):
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, access_mode=access_mode),
        heap_bytes=ROWS * COLS * 4 + 65536,
    )
    arr = tmk.array("m", (ROWS, COLS), "uint32")
    final = {}

    def body(proc):
        for r, per_proc in enumerate(rounds):
            wrows, value, (g0, g1) = per_proc[proc.id]
            if wrows:
                ridx = np.asarray(wrows, dtype=np.int64)
                block = np.full((len(wrows), COLS), value, np.uint32)
                block += ridx[:, None].astype(np.uint32)
                arr.scatter_rows(proc, ridx, block)
            proc.barrier(r)
            arr.read_rows(proc, g0, g1)
            garow = np.arange(g0, g1, dtype=np.int64)
            arr.gather_rows(proc, garow, 0, min(8, COLS))
        got = arr.read_rows(proc, 0, ROWS)
        if proc.id == 0:
            final["mem"] = got.copy()
        proc.barrier(999)
        return float(got.astype(np.float64).sum())

    res = tmk.run(body)
    return res, final["mem"]


@given(row_programs())
@settings(max_examples=8, deadline=None)
def test_random_gather_scatter_bulk_matches_scalar(program):
    """The row-kernel differential gate on random programs: a bulk-mode
    run must match the scalar word-decomposed run in final memory,
    checksum, simulated time, and every protocol counter."""
    nprocs, rounds = program
    bulk, mem_bulk = _run_rows(nprocs, rounds, "bulk")
    scalar, mem_scalar = _run_rows(nprocs, rounds, "scalar")
    assert np.array_equal(mem_bulk, mem_scalar)
    assert bulk.checksum == scalar.checksum
    assert bulk.time_us == scalar.time_us
    assert dataclasses.asdict(bulk.stats) == dataclasses.asdict(
        scalar.stats
    )

"""Conservative discrete-event scheduler for simulated processors.

Execution model
---------------

Each simulated processor runs its application function on a dedicated
Python thread, but **exactly one thread is ever runnable**: control is
handed from thread to thread so that a processor runs uninterrupted from
one *synchronization operation* (lock acquire/release, barrier, start,
finish) to the next.  At each such operation it parks, posting an
:class:`Op` stamped with its simulated clock, and then *services the
event heap itself* -- running the handler over pending operations and
resumptions in global simulated-time order (ties broken by a
deterministic sequence number) until either its own resumption surfaces
(it simply keeps running, no thread switch) or another processor's does
(one event signal hands control over).  There is no scheduler thread in
the loop: an uncontended lock acquire costs zero context switches, and
a genuine handoff costs one, not two.  The service order -- and hence
every simulated outcome -- is identical to a dedicated-scheduler
formulation; only which OS thread happens to run the handler differs.

This is a conservative discrete-event simulation: the entity with the
globally minimal timestamp always advances first, so lock-grant order,
barrier composition, and therefore the entire DSM protocol history are
deterministic functions of the program and the cost model.

Access misses (page faults) do **not** park the processor: under lazy
release consistency a fault only consults protocol state committed at
synchronization operations that happened-before the faulting access, and
the scheduler's service order guarantees that state already exists.  The
fault handler charges stall time to the faulting processor's clock
directly.

The engine is policy-free: lock/barrier semantics and the consistency
protocol live in :mod:`repro.dsm` and are invoked through the *handler*
callback given to :meth:`Engine.run`.
"""

from __future__ import annotations

import enum
import heapq
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.sim.clock import Clock
from repro.sim.config import SimConfig


class DeadlockError(RuntimeError):
    """No processor can make progress (e.g. a barrier that can never
    fill because a peer already finished)."""


class EngineAborted(RuntimeError):
    """Raised inside parked processor threads when the run is torn down
    after another processor raised."""


class OpKind(enum.Enum):
    """Kinds of scheduling points a processor can park at."""

    ACQUIRE = "acquire"
    RELEASE = "release"
    BARRIER = "barrier"
    FINISH = "finish"


@dataclass(frozen=True)
class Op:
    """A synchronization operation posted by a parked processor."""

    kind: OpKind
    proc: int
    ts: float
    """The processor's simulated clock when it reached the operation."""
    arg: int = 0
    """Lock id for ACQUIRE/RELEASE, barrier id for BARRIER."""
    seq: int = 0
    """Deterministic tie-breaker assigned by the engine."""


@dataclass(frozen=True)
class Resume:
    """Instruction from the handler to wake a processor at ``wake_ts``."""

    proc: int
    wake_ts: float


class ProcContext:
    """Per-processor execution context handed to application functions.

    Protocol and application layers wrap this (see
    :class:`repro.core.proc.Proc`); the engine-level context only knows
    about clocks and parking.
    """

    def __init__(self, pid: int, engine: "Engine") -> None:
        self.pid = pid
        self.engine = engine
        self.clock = Clock()
        self.finished = False
        self._event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __repr__(self) -> str:
        return f"ProcContext(pid={self.pid}, t={self.clock.now:.1f}us)"


#: The handler maps a serviced operation to the processors it resumes.
#: It runs on the scheduler thread and must not block.
Handler = Callable[[Op], Sequence[Resume]]


class Engine:
    """Deterministic one-runnable-at-a-time scheduler."""

    def __init__(self, config: SimConfig) -> None:
        config.validate()
        self.config = config
        self.procs: List[ProcContext] = [
            ProcContext(pid, self) for pid in range(config.nprocs)
        ]
        self._heap: List[tuple] = []  # (ts, seq, entry) where entry is Op|Resume
        self.trace = None
        """Optional :class:`repro.trace.recorder.TraceRecorder` attached
        by the runtime; park/resume hooks feed the per-processor
        timeline.  Observer-only: never affects scheduling."""
        self._seq = 0
        self._main_event = threading.Event()
        self._aborting = False
        self._exc: Optional[BaseException] = None
        self._running = False
        self._handler: Optional[Handler] = None
        self._finished = 0

    # ------------------------------------------------------------------
    # Processor-thread side
    # ------------------------------------------------------------------
    def park(self, ctx: ProcContext, kind: OpKind, arg: int = 0) -> None:
        """Park the calling processor at a synchronization operation and
        block until the handler resumes it.

        Called from the processor's own thread.  The parking thread
        itself drains the event heap (see :meth:`_drain`); if its own
        resumption is the next serviceable entry it returns without ever
        blocking.  On return the processor's clock has been advanced to
        its wake time.
        """
        if self.trace is not None:
            self.trace.on_park(ctx.pid, ctx.clock.now, kind.value, arg)
        self._seq += 1
        op = Op(kind=kind, proc=ctx.pid, ts=ctx.clock.now, arg=arg, seq=self._seq)
        self._seq += 1
        heapq.heappush(self._heap, (op.ts, self._seq, op))
        if kind is OpKind.FINISH:
            self._drain(None)
            return  # finishing processors never resume
        ctx._event.clear()
        if self._drain(ctx):
            return  # own resumption serviced inline: no thread switch
        ctx._event.wait()
        if self._aborting:
            raise EngineAborted()

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def run(self, fns: Sequence[Callable[[ProcContext], None]], handler: Handler) -> None:
        """Run one application function per processor to completion.

        ``handler`` services every :class:`Op` in simulated-time order and
        returns the processors to resume.  Raises the first exception any
        processor raised, or :class:`DeadlockError` if the system stalls.
        """
        if len(fns) != len(self.procs):
            raise ValueError(
                f"need {len(self.procs)} functions, got {len(fns)}"
            )
        if self._running:
            raise RuntimeError(
                "engine is single-use: construct a fresh Engine per run"
            )
        self._running = True  # never reset: thread and heap state is spent
        self._handler = handler

        for ctx, fn in zip(self.procs, fns, strict=True):
            ctx._thread = threading.Thread(
                target=self._thread_body, args=(ctx, fn), daemon=True
            )
            ctx._thread.start()

        # Seed one resumption per processor in pid order: threads block on
        # their private event immediately, so setting an event before the
        # thread reaches wait() is harmless, and the seeding order makes
        # the first scheduling round deterministic.
        for ctx in self.procs:
            self._push(0.0, Resume(proc=ctx.pid, wake_ts=0.0))

        try:
            self._main_event.clear()
            # Hand control to the first processor; from here the
            # processor threads pass it among themselves, and the last
            # one to finish (or the first to fail) signals completion.
            self._drain(None)
            self._main_event.wait()
        finally:
            self._teardown()
        if self._exc is not None:
            raise self._exc

    def _drain(self, self_ctx: Optional[ProcContext]) -> bool:
        """Service heap entries in global simulated-time order on the
        calling thread.

        Returns True when a :class:`Resume` for ``self_ctx`` was popped
        (the caller is the next runnable processor and simply keeps
        executing); returns False after control was handed to another
        thread, the run completed, or the run aborted.
        """
        handler = self._handler
        nprocs = len(self.procs)
        heap = self._heap
        while True:
            if self._aborting:
                return False
            if not heap:
                if self._finished >= nprocs:
                    self._main_event.set()  # run complete
                    return False
                if self._exc is None:
                    self._exc = DeadlockError(
                        f"{nprocs - self._finished} processors blocked "
                        f"with no serviceable operation (barrier "
                        f"mismatch or lock leak?)"
                    )
                self._abort()
                return False
            _, _, entry = heapq.heappop(heap)
            if isinstance(entry, Resume):
                tgt = self.procs[entry.proc]
                if self.trace is not None:
                    self.trace.on_resume(tgt.pid, entry.wake_ts)
                tgt.clock.advance_to(entry.wake_ts)
                if tgt is self_ctx:
                    return True
                tgt._event.set()
                return False
            op: Op = entry
            try:
                if op.kind is OpKind.FINISH:
                    self.procs[op.proc].finished = True
                    self._finished += 1
                    handler(op)
                    continue
                for resume in handler(op):
                    self._push(resume.wake_ts, resume)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                if self._exc is None:
                    self._exc = exc
                self._abort()
                return False

    def _abort(self) -> None:
        """Unblock every thread so the failure can unwind to ``run``."""
        self._aborting = True
        for ctx in self.procs:
            ctx._event.set()
        self._main_event.set()

    def _thread_body(self, ctx: ProcContext, fn: Callable[[ProcContext], None]) -> None:
        try:
            ctx._event.wait()  # first wake comes from the seeded Resume
            if self._aborting:
                raise EngineAborted()
            fn(ctx)
        except EngineAborted:
            self._main_event.set()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            if self._exc is None:
                self._exc = exc
            self._aborting = True
            self._main_event.set()
            return
        self.park(ctx, OpKind.FINISH)

    def _teardown(self) -> None:
        """Unblock any still-parked threads so they can unwind."""
        self._aborting = True
        for ctx in self.procs:
            ctx._event.set()
        for ctx in self.procs:
            if ctx._thread is not None:
                ctx._thread.join(timeout=5.0)
        self._aborting = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push(self, ts: float, entry: object) -> None:
        # No lock: the heap is only ever touched by the single runnable
        # thread (or by ``run`` while every processor is still blocked).
        self._seq += 1
        heapq.heappush(self._heap, (ts, self._seq, entry))

    @property
    def max_clock_us(self) -> float:
        """The largest processor clock: the simulated wall-clock time of
        the run once all processors have finished."""
        return max(ctx.clock.now for ctx in self.procs)

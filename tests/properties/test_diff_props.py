"""Property-based tests for the twin/diff machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsm.diff import apply_diff, create_diff, merge_diffs

words = hnp.arrays(np.uint32, st.integers(4, 256), elements=st.integers(0, 2**32 - 1))


@given(words)
@settings(max_examples=60, deadline=None)
def test_roundtrip_reconstructs_modified(base):
    rng = np.random.default_rng(int(base.sum()) % 2**31)
    cur = base.copy()
    k = rng.integers(0, base.size + 1)
    if k:
        cur[rng.choice(base.size, k, replace=False)] ^= 0xDEADBEEF
    d = create_diff(0, base, cur)
    target = base.copy()
    apply_diff(d, target)
    assert np.array_equal(target, cur)


@given(words)
@settings(max_examples=60, deadline=None)
def test_diff_indices_sorted_and_minimal(base):
    cur = base.copy()
    cur[0] ^= 1
    d = create_diff(0, base, cur)
    assert list(d.idx) == sorted(set(d.idx.tolist()))
    assert d.nwords == int(np.count_nonzero(base != cur))


@given(words, st.integers(1, 6), st.data())
@settings(max_examples=40, deadline=None)
def test_merge_equals_sequential_application(base, nsteps, data):
    """Coalescing a chain of same-writer diffs must be equivalent to
    applying them one by one (lazy-diffing equivalence)."""
    cur = base.copy()
    diffs = []
    for step in range(nsteps):
        prev = cur.copy()
        n = data.draw(st.integers(0, base.size))
        if n:
            idx = data.draw(
                st.lists(
                    st.integers(0, base.size - 1),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
            cur[np.array(idx)] = step + 1
        diffs.append(create_diff(0, prev, cur))
    merged = merge_diffs(diffs)

    via_merged = base.copy()
    apply_diff(merged, via_merged)
    via_seq = base.copy()
    for d in diffs:
        apply_diff(d, via_seq)
    assert np.array_equal(via_merged, via_seq)
    assert np.array_equal(via_merged, cur)


@given(words)
@settings(max_examples=40, deadline=None)
def test_wire_bytes_bounded(base):
    cur = base.copy()
    cur[::2] ^= 5
    d = create_diff(0, base, cur)
    # Wire size is at least the data words and at most data + one run
    # header per word + framing.
    assert d.wire_bytes >= d.nwords * 4
    assert d.wire_bytes <= d.nwords * 12 + 16


# ----------------------------------------------------------------------
# Exact recovery: the diff carries precisely the modified words.
# ----------------------------------------------------------------------
@given(words, st.data())
@settings(max_examples=60, deadline=None)
def test_diff_carries_exactly_the_modified_words(base, data):
    cur = base.copy()
    n = data.draw(st.integers(0, base.size))
    picked = data.draw(
        st.lists(st.integers(0, base.size - 1), min_size=n, max_size=n,
                 unique=True)
    )
    for i in picked:
        cur[i] = ~cur[i]  # bit-flip guarantees inequality
    d = create_diff(0, base, cur)
    modified = sorted(picked)
    assert d.idx.tolist() == modified
    assert d.values.tolist() == [int(cur[i]) for i in modified]
    # ...and nothing else: applying to a scribbled target fixes exactly
    # the modified words, leaving every other word untouched.
    scratch = data.draw(
        hnp.arrays(np.uint32, base.size, elements=st.integers(0, 2**32 - 1))
    )
    target = scratch.copy()
    apply_diff(d, target)
    picked_idx = np.array(modified, dtype=int)
    untouched = np.setdiff1d(np.arange(base.size), picked_idx)
    assert np.array_equal(target[untouched], scratch[untouched])
    assert np.array_equal(target[picked_idx], cur[picked_idx])


# ----------------------------------------------------------------------
# Wire size vs an independent reference run-length encoder.
# ----------------------------------------------------------------------
def reference_rle_bytes(offsets) -> int:
    """Naive reference encoder: walk the sorted offsets, open a new
    (offset, length) run whenever the gap exceeds one word, charge
    RUN_HEADER_BYTES per run, WORD per data word, DIFF_HEADER_BYTES
    framing.  Mirrors the TreadMarks diff wire format."""
    from repro.dsm.diff import DIFF_HEADER_BYTES, RUN_HEADER_BYTES, WORD

    offsets = list(offsets)
    if not offsets:
        return DIFF_HEADER_BYTES
    runs = 1
    for prev, nxt in zip(offsets, offsets[1:]):
        if nxt != prev + 1:
            runs += 1
    return DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + len(offsets) * WORD


@given(st.lists(st.integers(0, 511), unique=True))
@settings(max_examples=100, deadline=None)
def test_wire_bytes_matches_reference_encoder(offsets):
    from repro.dsm.diff import _wire_bytes

    idx = np.array(sorted(offsets), dtype=np.int32)
    assert _wire_bytes(idx) == reference_rle_bytes(sorted(offsets))


@given(words, st.data())
@settings(max_examples=60, deadline=None)
def test_created_diff_wire_bytes_matches_reference(base, data):
    cur = base.copy()
    n = data.draw(st.integers(0, base.size))
    picked = data.draw(
        st.lists(st.integers(0, base.size - 1), min_size=n, max_size=n,
                 unique=True)
    )
    for i in picked:
        cur[i] = ~cur[i]
    d = create_diff(0, base, cur)
    assert d.wire_bytes == reference_rle_bytes(sorted(picked))


# ----------------------------------------------------------------------
# Edge cases: empty and full-unit diffs.
# ----------------------------------------------------------------------
@given(words)
@settings(max_examples=30, deadline=None)
def test_empty_diff_costs_only_framing(base):
    from repro.dsm.diff import DIFF_HEADER_BYTES

    d = create_diff(0, base, base.copy())
    assert d.nwords == 0
    assert d.data_bytes == 0
    assert d.wire_bytes == DIFF_HEADER_BYTES
    target = base.copy()
    apply_diff(d, target)  # no-op, no error
    assert np.array_equal(target, base)


@given(words)
@settings(max_examples=30, deadline=None)
def test_full_unit_diff_is_one_run(base):
    from repro.dsm.diff import DIFF_HEADER_BYTES, RUN_HEADER_BYTES, WORD

    cur = ~base  # every word differs
    d = create_diff(0, base, cur)
    assert d.nwords == base.size
    # One maximal run covering the unit: a single run header.
    assert d.wire_bytes == DIFF_HEADER_BYTES + RUN_HEADER_BYTES + base.size * WORD
    target = base.copy()
    apply_diff(d, target)
    assert np.array_equal(target, cur)

"""Regenerates Figure 3 (false-sharing signatures at 4 KB vs 16 KB)."""

from benchmarks.conftest import save_text
from repro.bench.figures import expected_shape_figure3, figure3
from repro.bench.harness import write_csv


def test_figure3(benchmark, results_dir):
    matrix, text = benchmark.pedantic(figure3, rounds=1, iterations=1)
    save_text(results_dir, "figure3.txt", text)
    write_csv(
        results_dir / "figure3.csv",
        (
            dict(
                app=app,
                dataset=ds,
                unit=label,
                writers=writers,
                useful_fraction=f"{u:.4f}",
                useless_fraction=f"{ul:.4f}",
            )
            for (app, ds), cells in matrix.items()
            for label in ("4K", "16K")
            for writers, (u, ul) in sorted(cells[label].signature.items())
        ),
    )
    violations = expected_shape_figure3(matrix)
    assert not violations, violations

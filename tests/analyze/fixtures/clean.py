"""detlint fixture: hazard-free spellings of everything the bad_*
files seed, plus one justified suppression -- zero active findings."""

import random

import numpy as np


def drain(pending, table):
    out = []
    for unit in sorted(set(pending)):  # sorted() launders the set
        out.append(unit)
    for key in table:  # plain dict iteration is insertion-ordered
        out.append(key)
    for page in {4096}:  # detlint: ok(set-iter) -- singleton, order moot
        out.append(page)
    return out


def shuffle(items, seed):
    rng = random.Random(seed)  # seeded instance, not the global RNG
    rng.shuffle(items)
    gen = np.random.default_rng(seed)  # seeded: fine
    return gen.random()


def rank(records):
    return sorted(records, key=lambda r: r.key)  # stable field, not id()


def account(report, nwords):
    report.useless_bytes += nwords * 4  # integral: no finding
    return report

"""Read-only results service over one store.

``python -m repro.farm serve`` exposes the cached sweep cells as HTTP
endpoints rendered on demand -- pure stdlib (``http.server``), no write
path, and **no in-request simulation**: an experiment whose cells are
not all stored yet answers ``202`` with the list of pending cells (the
farm workers are the only computers of cells), enforced hard by
:meth:`repro.bench.harness.ResultCache.set_compute`.

Endpoints (all ``GET``/``HEAD``):

``/``                          JSON index of everything below
``/healthz``                   liveness probe
``/v1/status.json``            store + queue counters
``/v1/experiments/<name>.txt``   the paper-shaped text rendering
``/v1/experiments/<name>.json``  every cell's full result, keyed
``/v1/experiments/<name>.csv``   flat per-cell golden counters
``/v1/cells/<key>.json``       one raw store entry by cell key

Experiment names are the bench CLI's (``table1``, ``figure1``,
``figure2``, ``figure3``, ``ablation``, ``protocols``) -- the service
reuses the same cell enumerators and renderers, so its output is
byte-identical to ``python -m repro.bench <name>`` over a warm cache.

Caching: complete experiment responses carry a strong ``ETag`` derived
from the sorted content-addressed cell keys (which hash the code
version, the config, and the identity of every cell), so a revalidation
(``If-None-Match``) answers ``304`` until any underlying cell -- or the
simulator itself -- changes.  Raw cell entries use the key itself.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.golden import GOLDEN_FIELDS
from repro.bench.harness import CaseResult, PendingCellError, ResultCache
from repro.bench.pool import SweepCell, dedupe_cells
from repro.farm.store import ResultStore
from repro.sim.config import DEFAULT_PROTOCOL

#: Experiments served: every bench CLI command with a cell enumerator
#: (micro measures sync primitives in-process, so it has no cells to
#: serve from a store).
EXPERIMENTS = ("table1", "figure1", "figure2", "figure3", "ablation",
               "protocols")

#: Pending responses list at most this many missing cells.
MAX_MISSING_LISTED = 50

#: Renderers touch the process-wide ResultCache; one render at a time.
_RENDER_LOCK = threading.Lock()


def experiment_cells(name: str) -> List[SweepCell]:
    """The deduplicated cells one experiment consumes."""
    from repro.bench.cli import _cells_for

    return dedupe_cells(_cells_for([name]))


def _render_text(name: str, cells: Sequence[SweepCell],
                 results: Sequence[CaseResult]) -> str:
    """The bench CLI's text rendering, fed exclusively from ``results``.

    Computation is disabled for the duration: if a renderer consumed a
    cell its enumerator failed to declare, that is a bug
    (:class:`PendingCellError`), not a license to simulate in-request.
    """
    from repro.bench.cli import COMMANDS

    with _RENDER_LOCK:
        previous_disk = ResultCache.disk()
        previous_compute = ResultCache.set_compute(False)
        ResultCache.configure(None)
        try:
            for cell, result in zip(cells, results, strict=True):
                ResultCache.put(
                    cell.app, cell.dataset, cell.label, result, **cell.kwargs
                )
            return COMMANDS[name]()
        finally:
            ResultCache.set_compute(previous_compute)
            ResultCache.configure(previous_disk)


def _cells_etag(cells: Sequence[SweepCell]) -> str:
    """Strong ETag over the sorted content-addressed cell keys."""
    blob = ",".join(sorted(c.key for c in cells))
    return '"' + hashlib.sha256(blob.encode()).hexdigest()[:32] + '"'


def _json_payload(name: str, cells: Sequence[SweepCell],
                  results: Sequence[CaseResult]) -> Dict[str, Any]:
    return {
        "experiment": name,
        "cells": [
            {
                "app": cell.app,
                "dataset": cell.dataset,
                "label": cell.label,
                "extra": dict(cell.extra),
                "key": cell.key,
                "result": result.to_json_dict(),
            }
            for cell, result in zip(cells, results, strict=True)
        ],
    }


def _csv_payload(cells: Sequence[SweepCell],
                 results: Sequence[CaseResult]) -> str:
    buf = io.StringIO()
    fields = ["app", "dataset", "label", "protocol", "key", *GOLDEN_FIELDS]
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for cell, result in zip(cells, results, strict=True):
        row: Dict[str, Any] = {
            "app": cell.app,
            "dataset": cell.dataset,
            "label": cell.label,
            "protocol": cell.kwargs.get("protocol", DEFAULT_PROTOCOL),
            "key": cell.key,
        }
        for f in GOLDEN_FIELDS:
            row[f] = getattr(result, f)
        writer.writerow(row)
    return buf.getvalue()


class _Response:
    """One materialized HTTP response."""

    def __init__(self, status: int, content_type: str, body: str,
                 etag: Optional[str] = None) -> None:
        self.status = status
        self.content_type = content_type
        self.body = body.encode()
        self.etag = etag

    @classmethod
    def json(cls, status: int, payload: Dict[str, Any],
             etag: Optional[str] = None) -> "_Response":
        return cls(status, "application/json",
                   json.dumps(payload, sort_keys=True, indent=1) + "\n", etag)

    @classmethod
    def text(cls, status: int, body: str,
             etag: Optional[str] = None,
             content_type: str = "text/plain; charset=utf-8") -> "_Response":
        return cls(status, content_type, body, etag)


class FarmService:
    """Routing and rendering, separated from the socket plumbing so the
    tests can drive it without binding a port."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    # -- routing ------------------------------------------------------
    def handle(self, path: str) -> _Response:
        path = path.split("?", 1)[0]
        if path in ("/", "/v1", "/v1/"):
            return self._index()
        if path == "/healthz":
            return _Response.text(200, "ok\n")
        if path == "/v1/status.json":
            return _Response.json(200, self.store.status().to_json_dict())
        if path.startswith("/v1/experiments/"):
            rest = path[len("/v1/experiments/"):]
            if "." in rest:
                name, fmt = rest.rsplit(".", 1)
                if name in EXPERIMENTS and fmt in ("json", "csv", "txt"):
                    return self._experiment(name, fmt)
        if path.startswith("/v1/cells/") and path.endswith(".json"):
            key = path[len("/v1/cells/"):-len(".json")]
            return self._cell(key)
        return _Response.json(404, {"error": f"no such resource: {path}"})

    def _index(self) -> _Response:
        return _Response.json(200, {
            "service": "repro.farm results service (read-only)",
            "endpoints": {
                "/healthz": "liveness probe",
                "/v1/status.json": "store and queue counters",
                "/v1/experiments/<name>.{json,csv,txt}":
                    f"rendered experiments; names: {', '.join(EXPERIMENTS)}",
                "/v1/cells/<key>.json": "one raw store entry by cell key",
            },
        })

    # -- handlers -----------------------------------------------------
    def _fetch(
        self, cells: Sequence[SweepCell]
    ) -> Tuple[List[CaseResult], List[SweepCell]]:
        results: List[CaseResult] = []
        missing: List[SweepCell] = []
        for cell in cells:
            result = self.store.get_result(cell)
            if result is None:
                missing.append(cell)
            else:
                results.append(result)
        return results, missing

    def _experiment(self, name: str, fmt: str) -> _Response:
        cells = experiment_cells(name)
        results, missing = self._fetch(cells)
        if missing:
            return _Response.json(202, {
                "status": "pending",
                "experiment": name,
                "need": len(cells),
                "have": len(cells) - len(missing),
                "missing": [
                    {"cell": str(c), "key": c.key}
                    for c in missing[:MAX_MISSING_LISTED]
                ],
                "hint": "cells are computed by farm workers, never "
                        "in-request; submit the sweep and run workers",
            })
        etag = _cells_etag(cells)
        if fmt == "json":
            return _Response.json(200, _json_payload(name, cells, results),
                                  etag=etag)
        if fmt == "csv":
            return _Response.text(200, _csv_payload(cells, results),
                                  etag=etag, content_type="text/csv")
        try:
            text = _render_text(name, cells, results)
        except PendingCellError as exc:  # enumerator drift; see docstring
            return _Response.json(500, {"error": str(exc)})
        return _Response.text(200, text + "\n", etag=etag)

    def _cell(self, key: str) -> _Response:
        entry = self.store.backend.find_entry(key)
        if entry is None:
            queued = self.store.backend.queue_lookup(key)
            if queued is not None:
                return _Response.json(202, {
                    "status": "pending",
                    "key": key,
                    "state": queued.state,
                    "cell": str(queued.cell),
                })
            return _Response.json(404, {"error": f"unknown cell key {key!r}"})
        return _Response.json(200, entry, etag=f'"{key}"')


class _Handler(BaseHTTPRequestHandler):
    """Socket-level adapter; the routing lives in :class:`FarmService`."""

    service: FarmService  # installed by make_server
    server_version = "repro-farm/1"
    quiet = True

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._respond(head=False)

    def do_HEAD(self) -> None:  # noqa: N802 (http.server API)
        self._respond(head=True)

    def _respond(self, head: bool) -> None:
        response = self.service.handle(self.path)
        if (
            response.etag is not None
            and self.headers.get("If-None-Match") == response.etag
        ):
            self.send_response(304)
            self.send_header("ETag", response.etag)
            self.end_headers()
            return
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if response.etag is not None:
            self.send_header("ETag", response.etag)
            self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        if not head:
            self.wfile.write(response.body)

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)


def make_server(
    store: ResultStore, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (port 0 picks
    a free one; read it back from ``server.server_address``)."""
    service = FarmService(store)

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    return ThreadingHTTPServer((host, port), BoundHandler)


def serve_forever(
    store: ResultStore, host: str, port: int,
    announce: Optional[Any] = None,
) -> None:  # pragma: no cover - exercised by the CLI smoke, not pytest
    server = make_server(store, host, port)
    bound_host, bound_port = server.server_address[:2]
    if announce is not None:
        announce(f"serving on http://{bound_host}:{bound_port}/ (read-only)")
    try:
        server.serve_forever()
    finally:
        server.server_close()

"""Timeout / ack / retransmit state machine of the fault lab.

The simulated protocol layers assume reliable delivery (TreadMarks runs
over UDP with its own retransmission layer); this module models that
layer.  One :class:`ReliableChannel` per ``(src, dst)`` processor pair
walks every message through the classic stop-and-wait automaton::

    IN_FLIGHT --delivered--> WAIT_ACK --ack--> DELIVERED
        ^                        |
        |   timeout: retransmit  | ack lost: retransmit arrives as a
        +--------(backoff)-------+ duplicate at the receiver

* a transmission is lost with the spec's ``drop_rate``; the sender times
  out (``plan.timeout_us`` with exponential ``plan.backoff``) and
  retransmits, up to ``plan.max_retries`` times -- exceeding the cap (or
  losing the first copy with retries disabled) raises
  :class:`DroppedMessageError`;
* the ack is lost with the same probability, in which case the delivery
  already happened and the timed-out retransmission arrives at the
  receiver as a *duplicate*, which the receiver discards;
* independent of loss, the network may duplicate (``dup_rate``), delay
  (``jitter_us``) or reorder (``reorder_rate`` / ``reorder_window``) a
  delivered message.

The machine is driven entirely by the per-message RNG from
:func:`repro.faults.plan.message_rng`; it never reads wall-clock or
global state, so one ``(plan, msg_id)`` pair always yields the same
:class:`Delivery`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.faults.plan import FaultPlan, FaultSpec

#: Extra delivery delay per position a reordered message slips back,
#: roughly the per-message service gap of the paper platform's NIC.
REORDER_SLIP_US = 25.0


class DroppedMessageError(RuntimeError):
    """A message exhausted its retransmission budget (or retries are
    disabled and the first copy was lost): the simulated protocol cannot
    make progress.  The bench harness treats this as a graceful per-cell
    failure rather than a crash."""

    def __init__(self, msg_id: int, klass: str, attempts: int) -> None:
        super().__init__(
            f"message {msg_id} ({klass}) lost after {attempts} "
            f"transmission attempt(s); retransmission budget exhausted"
        )
        self.msg_id = msg_id
        self.klass = klass
        self.attempts = attempts


class XmitPhase(enum.Enum):
    """Phases of one message's trip through the reliable channel."""

    IN_FLIGHT = "in_flight"
    WAIT_ACK = "wait_ack"
    DELIVERED = "delivered"
    FAILED = "failed"


@dataclass
class Delivery:
    """Resolved outcome of transmitting one message."""

    attempts: int = 1
    """Transmissions until the receiver got a copy (1 = no loss)."""

    failed: bool = False
    """True when the retransmission budget was exhausted."""

    timeout_stall_us: float = 0.0
    """Total sender-side timeout time before the delivering attempt."""

    resend_offsets_us: Tuple[float, ...] = ()
    """Offset (after the original send) of each retransmission."""

    ack_resend: bool = False
    """The ack was lost: one more retransmission went out after
    delivery and reached the receiver as a duplicate."""

    net_dup: bool = False
    """The network itself duplicated the delivered copy."""

    jitter_us: float = 0.0
    reorder_depth: int = 0
    reorder_us: float = 0.0

    @property
    def retransmissions(self) -> int:
        """Copies sent beyond the first (timeouts plus a lost ack)."""
        return (self.attempts - 1) + (1 if self.ack_resend else 0)

    @property
    def duplicate_deliveries(self) -> int:
        """Copies the receiver saw and discarded."""
        return (1 if self.ack_resend else 0) + (1 if self.net_dup else 0)

    @property
    def extra_delay_us(self) -> float:
        """Delivery-latency inflation excluding retransmission stalls."""
        return self.jitter_us + self.reorder_us


@dataclass
class ReliableChannel:
    """Per-(src, dst) reliable-delivery endpoint with link counters."""

    src: int
    dst: int
    plan: FaultPlan
    sent: int = 0
    delivered: int = 0
    retransmitted: int = 0
    failed: int = 0
    history: List[XmitPhase] = field(default_factory=list)

    def transmit(
        self, msg_id: int, klass: str, spec: FaultSpec,
        rng: random.Random,
    ) -> Delivery:
        """Resolve one message's delivery; raises
        :class:`DroppedMessageError` when the budget is exhausted."""
        plan = self.plan
        self.sent += 1
        out = Delivery()
        phase = XmitPhase.IN_FLIGHT
        offsets: List[float] = []
        elapsed = 0.0

        # Loss / timeout / retransmit loop.
        while phase is XmitPhase.IN_FLIGHT:
            lost = rng.random() < spec.drop_rate
            if not lost:
                phase = XmitPhase.WAIT_ACK
                break
            retries_used = out.attempts - 1
            if not plan.retries_enabled or retries_used >= plan.max_retries:
                phase = XmitPhase.FAILED
                break
            timeout = plan.timeout_us * plan.backoff**retries_used
            elapsed += timeout
            offsets.append(elapsed)
            out.attempts += 1
            out.timeout_stall_us += timeout

        if phase is XmitPhase.FAILED:
            out.failed = True
            out.resend_offsets_us = tuple(offsets)
            self.failed += 1
            self.history.append(phase)
            raise DroppedMessageError(msg_id, klass, out.attempts)

        # Ack leg: a lost ack triggers one more (duplicate) copy.  The
        # delivery already happened, so no stall accrues; the duplicate
        # arrives one timeout later.
        if plan.retries_enabled and rng.random() < spec.drop_rate:
            out.ack_resend = True
            retries_used = out.attempts - 1
            elapsed += plan.timeout_us * plan.backoff**retries_used
            offsets.append(elapsed)

        # Network-level perturbations of the delivered copy.
        if spec.dup_rate > 0.0 and rng.random() < spec.dup_rate:
            out.net_dup = True
        if spec.jitter_us > 0.0:
            out.jitter_us = rng.random() * spec.jitter_us
        if spec.reorder_rate > 0.0 and rng.random() < spec.reorder_rate:
            out.reorder_depth = 1 + rng.randrange(spec.reorder_window)
            out.reorder_us = out.reorder_depth * REORDER_SLIP_US

        out.resend_offsets_us = tuple(offsets)
        phase = XmitPhase.DELIVERED
        self.delivered += 1
        self.retransmitted += out.retransmissions
        self.history.append(phase)
        return out

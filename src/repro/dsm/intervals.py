"""Interval records and write notices -- the LRC consistency metadata.

An *interval* is the span of one processor's execution between two of its
synchronization operations.  Closing an interval (at a release or barrier
arrival) produces one :class:`Diff` per consistency unit the processor
wrote, plus *write notices* -- (processor, interval, unit) triples that
invalidate remote copies when they propagate at the next acquire.

``commit_seq`` is a global monotone counter assigned at close time.
Because the scheduling engine services synchronization operations in
simulated-time order and every happens-before edge crosses such an
operation, commit order is a linear extension of the happens-before
partial order; sorting pending diffs by ``commit_seq`` therefore applies
them in a correct (and deterministic) order even when intervals are
concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.dsm.diff import Diff
from repro.dsm.vc import VectorClock

_EMPTY_UNITS = np.empty(0, dtype=np.int64)


@dataclass
class Interval:
    """One closed interval of one processor."""

    proc: int
    index: int
    """1-based interval index within ``proc`` (== vc[proc] at close)."""
    vc: VectorClock
    """The processor's vector clock when the interval closed."""
    commit_seq: int
    """Global close-order stamp; a linear extension of happens-before."""
    diffs: Dict[int, Diff] = field(default_factory=dict)
    """unit id -> diff for every unit written during the interval."""
    units_arr: np.ndarray = field(default_factory=lambda: _EMPTY_UNITS)
    """The written units as an int64 array in ``diffs`` insertion order,
    precomputed at close time so notice application can index per-unit
    metadata arrays in one vectorized step per interval."""
    units_list: List[int] = field(default_factory=list)
    """``units_arr`` as plain Python ints (same order); the per-notice
    bookkeeping that still builds :class:`WriteNotice` objects iterates
    this without paying numpy scalar extraction."""

    @property
    def units(self) -> Iterable[int]:
        """The consistency units this interval wrote."""
        return self.diffs.keys()

    def diff_for(self, unit: int) -> Diff:
        """The diff for ``unit``; KeyError if the interval did not write it."""
        return self.diffs[unit]


@dataclass(frozen=True, slots=True)
class WriteNotice:
    """An invalidation token: interval (proc, index) wrote ``unit``."""

    proc: int
    index: int
    unit: int
    commit_seq: int


class IntervalStore:
    """All closed intervals of a run, indexed by (proc, interval index).

    The store stands in for TreadMarks' per-node diff/interval caches; in
    the simulation every node can retrieve any closed interval (paying the
    modelled message costs at the protocol layer).
    """

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._by_proc: List[Dict[int, Interval]] = [{} for _ in range(nprocs)]
        self._closed_count: List[int] = [0] * nprocs
        self._commit_counter = 0
        self.collected = 0
        """Intervals reclaimed by :meth:`collect` over the run."""
        self.diff_scan_cache = set()
        """Keys (proc, unit, first_index, last_index) of coalesced diffs
        already created: TreadMarks keeps created diffs in a diff cache,
        so later requests for the same span are served without another
        word-compare scan."""

    def close_interval(
        self, proc: int, vc: VectorClock, diffs: Dict[int, Diff]
    ) -> Interval:
        """Record a newly closed interval; assigns its commit stamp.

        ``vc`` must already have ``proc``'s component ticked to the new
        interval's index.
        """
        expected = self._closed_count[proc] + 1
        if vc[proc] != expected:
            raise ValueError(
                f"proc {proc} closing interval {vc[proc]}, expected {expected}"
            )
        self._commit_counter += 1
        units_list = list(diffs.keys())
        interval = Interval(
            proc=proc,
            index=expected,
            vc=vc.copy(),
            commit_seq=self._commit_counter,
            diffs=dict(diffs),
            units_arr=np.asarray(units_list, dtype=np.int64)
            if units_list
            else _EMPTY_UNITS,
            units_list=units_list,
        )
        self._by_proc[proc][expected] = interval
        self._closed_count[proc] = expected
        return interval

    def get(self, proc: int, index: int) -> Interval:
        """Interval ``index`` (1-based) of ``proc``."""
        try:
            return self._by_proc[proc][index]
        except KeyError:
            if 1 <= index <= self._closed_count[proc]:
                raise KeyError(
                    f"interval ({proc}, {index}) was garbage collected "
                    f"while still needed -- GC safety violation"
                ) from None
            raise KeyError(f"proc {proc} has no interval {index}") from None

    def count(self, proc: Optional[int] = None) -> int:
        """Number of *live* (uncollected) intervals."""
        if proc is None:
            return sum(len(d) for d in self._by_proc)
        return len(self._by_proc[proc])

    def closed_count(self, proc: int) -> int:
        """Number of intervals ever closed by ``proc`` (including
        collected ones)."""
        return self._closed_count[proc]

    def intervals_between(
        self, proc: int, after: int, upto: int
    ) -> Iterator[Interval]:
        """Intervals of ``proc`` with ``after < index <= upto``.

        This is exactly the set of write notices an acquirer with
        ``vc[proc] == after`` receives from a releaser with
        ``vc[proc] == upto``.
        """
        for i in range(after + 1, upto + 1):
            yield self.get(proc, i)

    def collect(self, known_vc: VectorClock, referenced) -> int:
        """Garbage-collect intervals, as TreadMarks does periodically.

        An interval (p, i) is reclaimable when every processor's
        knowledge covers it (``i <= known_vc[p]``, so its write notices
        can never be delivered again) and no processor still holds a
        pending notice for it (``(p, i) not in referenced``, so its
        diffs can never be requested again).  Returns the number of
        intervals reclaimed.
        """
        dropped = 0
        for p in range(self.nprocs):
            dead = [
                i
                for i in self._by_proc[p]
                if i <= known_vc[p] and (p, i) not in referenced
            ]
            for i in dead:
                del self._by_proc[p][i]
            dropped += len(dead)
        self.collected += dropped
        return dropped

    def notices_between(
        self, old_vc: VectorClock, new_vc: VectorClock
    ) -> Iterator[Tuple[Interval, int]]:
        """(interval, unit) pairs for every write covered by ``new_vc``
        but not by ``old_vc`` -- the write notices that must be applied
        when a processor's knowledge advances from old to new."""
        for proc in range(self.nprocs):
            for interval in self.intervals_between(proc, old_vc[proc], new_vc[proc]):
                for unit in interval.units:
                    yield interval, unit

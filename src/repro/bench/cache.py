"""On-disk result cache for sweep cells.

A *cell* is one (application, dataset, SimConfig) simulation.  Cells are
deterministic, so their distilled :class:`~repro.bench.harness.CaseResult`
can be memoized on disk and reused across processes and invocations --
this is what makes repeated figure/table regeneration and the golden
regression gate cheap.

Keying
------
A cell's cache key hashes four things:

* the **code version** -- a digest over every ``repro`` source file, so
  any change to the simulator, protocol, or applications invalidates the
  entire cache (a stale hit can never mask a behavior change);
* the **application name** and **dataset label**;
* the **canonical config JSON** (:meth:`SimConfig.canonical_json`), so
  two calls that resolve to the same configuration share one entry and
  two configs differing in any field -- including ``**extra`` overrides
  like ``max_group_pages`` -- can never alias.

Entries are one JSON file per cell under ``repro_results/cache/`` with a
human-readable ``<app>-<dataset>-<label>-<key>.json`` name (components
sanitized to a filesystem-safe alphabet; the trailing content-addressed
key is what disambiguates, so prefix collisions are harmless).  Corrupt,
truncated, or stale-schema files are treated as misses and overwritten.

The entry construction / validation / naming helpers below are shared
with the distributed result store (:mod:`repro.farm.store`), whose
``LocalDirBackend`` is byte-compatible with this layout -- a cache
directory written by either is warm for both.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import re
import tempfile
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.sim.config import SimConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness imports us)
    from repro.bench.harness import CaseResult

#: Bump when the cache entry layout changes; old entries become misses.
CACHE_SCHEMA = 1

#: Default cache root, relative to the working directory (the CLI and
#: tests pass explicit paths; this matches the repo layout).
DEFAULT_CACHE_DIR = pathlib.Path("repro_results") / "cache"

_SRC_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Memo for :func:`code_version` ("default" -> digest); sources do not
#: change under a live process, so the walk runs once.
_code_version_cache: Dict[str, str] = {}


def code_version(src_root: Optional[pathlib.Path] = None) -> str:
    """Digest of every ``repro`` source file (path + contents).

    Any edit anywhere in the package changes the digest, invalidating
    all cached cells.  That is intentionally coarse: simulations are
    cheap relative to the cost of trusting a stale number.
    """
    root = pathlib.Path(src_root) if src_root is not None else _SRC_ROOT
    memoize = src_root is None  # sources don't change under a live process
    if memoize and "default" in _code_version_cache:
        return _code_version_cache["default"]
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()[:16]
    if memoize:
        _code_version_cache["default"] = digest
    return digest


def cell_key(app: str, dataset: str, config: SimConfig) -> str:
    """Stable cache key of one sweep cell under the current code."""
    blob = "\n".join(
        [str(CACHE_SCHEMA), code_version(), app, dataset, config.canonical_json()]
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def cell_seed(app: str, dataset: str, config: SimConfig) -> int:
    """Deterministic per-cell RNG seed (32-bit).

    Derived only from the cell identity -- *not* the code version -- so
    seeds are stable across commits and identical whether the cell runs
    serially in the parent process or fanned out to a pool worker.
    """
    blob = "\n".join(["seed", app, dataset, config.canonical_json()])
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:4], "big")


# ----------------------------------------------------------------------
# Entry layout helpers (shared with repro.farm.store backends)
# ----------------------------------------------------------------------
_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]")


def sanitize_component(text: str, limit: int = 48) -> str:
    """Filesystem-safe form of one filename component.

    Anything outside ``[A-Za-z0-9._-]`` becomes ``_`` (path separators,
    spaces, shell metacharacters, NULs), the result is length-capped so
    hostile labels cannot exceed filename limits, and an empty or
    all-dots component (``""``, ``"."``, ``".."``) degrades to ``"_"``
    rather than a path-traversal token.  Every name the paper's apps,
    datasets, and unit labels actually use is already safe, so the
    sanitized filenames -- and hence pre-existing cache directories --
    are unchanged for them.
    """
    safe = _SAFE_COMPONENT.sub("_", text)[:limit]
    if not safe.strip("."):
        return "_"
    return safe


def entry_filename(app: str, dataset: str, label: str, key: str) -> str:
    """The ``<app>-<dataset>-<label>-<key>.json`` cache file name."""
    prefix = "-".join(sanitize_component(c) for c in (app, dataset, label))
    return f"{prefix}-{key}.json"


def entry_digest(entry: Dict[str, Any]) -> str:
    """Integrity digest over an entry's canonical JSON (sans ``digest``).

    Stored inside the entry at write time and re-verified at read time,
    so silent corruption anywhere in the payload -- not just truncation,
    which the JSON parse already catches -- is treated as a miss.
    """
    body = {k: v for k, v in entry.items() if k != "digest"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def build_entry(
    app: str,
    dataset: str,
    label: str,
    config: SimConfig,
    result: "CaseResult",
) -> Dict[str, Any]:
    """The full self-describing cache entry for one cell, with digest."""
    entry: Dict[str, Any] = {
        "schema": CACHE_SCHEMA,
        "key": cell_key(app, dataset, config),
        "code_version": code_version(),
        "app": app,
        "dataset": dataset,
        "label": label,
        "config": config.to_dict(),
        "result": result.to_json_dict(),
    }
    entry["digest"] = entry_digest(entry)
    return entry


def parse_entry(entry: Dict[str, Any], key: str) -> "CaseResult":
    """Validate an entry dict against ``key`` and decode its result.

    Raises ``ValueError``/``KeyError``/``TypeError`` on a stale schema,
    a key mismatch, or an integrity-digest mismatch; callers treat any
    of those as a cache miss.  Entries written before digests existed
    (no ``digest`` field) still parse -- old caches stay warm.
    """
    from repro.bench.harness import CaseResult

    if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
        raise ValueError("stale cache entry")
    if "digest" in entry and entry["digest"] != entry_digest(entry):
        raise ValueError("integrity digest mismatch")
    result = CaseResult.from_json_dict(entry["result"])
    if not isinstance(result, CaseResult):  # pragma: no cover - defensive
        raise TypeError("entry result is not a CaseResult")
    return result


def dump_entry(entry: Dict[str, Any]) -> str:
    """An entry's on-disk serialization (stable, human-diffable)."""
    return json.dumps(entry, sort_keys=True, indent=1) + "\n"


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (unique temp + rename).

    The temp file name is unique per writer (``mkstemp``), so two
    processes racing the same cell each publish a complete file and the
    last rename wins whole -- a killed or concurrent writer can never
    leave a truncated file that another process half-reads between its
    open and parse.  (Cell entries are content-addressed, so racing
    writers produce identical bytes and the winner is immaterial.)
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


class DiskCache:
    """One-file-per-cell JSON cache with hit/miss accounting."""

    def __init__(self, root: pathlib.Path = DEFAULT_CACHE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, app: str, dataset: str, label: str, key: str) -> pathlib.Path:
        return self.root / entry_filename(app, dataset, label, key)

    def load(
        self, app: str, dataset: str, label: str, config: SimConfig
    ) -> "Optional[CaseResult]":
        """Return the cached :class:`CaseResult`, or None on a miss."""
        key = cell_key(app, dataset, config)
        path = self._path(app, dataset, label, key)
        try:
            entry = json.loads(path.read_text())
            result = parse_entry(entry, key)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(
        self, app: str, dataset: str, label: str, config: SimConfig,
        result: "CaseResult",
    ) -> pathlib.Path:
        """Write one cell's result; returns the file path."""
        entry = build_entry(app, dataset, label, config, result)
        path = self._path(app, dataset, label, str(entry["key"]))
        atomic_write_text(path, dump_entry(entry))
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                n += 1
        return n

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0

"""Water: molecular dynamics with an O(n^2/2) cutoff interaction
(Section 5.5; SPLASH).

The molecule array is shared, contiguous, and block-partitioned.  Each
molecule record mixes the truly shared fields (positions, forces) with
*private* per-molecule scratch (velocities, displacements, old forces)
-- the paper's source of "a large amount of useless data carried in
useful messages": a reader fetches a molecule's diff to read its
positions, but the co-diffed private words are never read.

Phases per timestep, as in the paper:

* **intra-molecular**: each owner updates its own molecules
  (fine-grained writes; write-write false sharing on the pages at
  partition boundaries, producing the paper's useless messages when a
  processor receives data for the preceding neighbour's molecules);
* **inter-molecular**: each molecule interacts with the n/2 molecules
  around it (wrap-around).  Reads are fine-grained (one molecule) but
  the region each processor reads covers half the shared array, so
  aggregation wins.  Owners accumulate the full force on their own
  molecules (computing each pair from both sides), so molecule pages
  keep their owners as the only writers -- matching the paper's
  observation that an inter-phase fault contacts one or two processors.
  A global lock protects the shared potential-energy accumulator;
* **integration**: owners fold forces into positions and zero the
  accumulators.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: float32 words per molecule record.
REC = 64
#: Field slots within a record.
POS = slice(0, 9)      # 3 atoms x 3 coordinates -- shared, read by peers
FORCE = slice(9, 18)   # force accumulators -- shared, owner-written
PRIVATE = slice(18, 64)  # velocities / scratch -- written, never read remotely

#: Lock protecting the global potential-energy sum.
ENERGY_LOCK = 99


def _initial_positions(n: int) -> np.ndarray:
    rng = np.random.default_rng(4242)
    mol = np.zeros((n, REC), dtype=np.float32)
    mol[:, POS] = rng.uniform(0.0, 10.0, size=(n, 9)).astype(np.float32)
    mol[:, PRIVATE] = rng.standard_normal((n, 46)).astype(np.float32) * 0.01
    return mol


def _pair_force(pi: np.ndarray, pj: np.ndarray) -> np.ndarray:
    """Deterministic float32 pseudo-Lennard-Jones force on i from j
    (9 components, one per atom coordinate)."""
    d = pi - pj
    r2 = np.float32((d * d).sum()) + np.float32(0.1)
    scale = np.float32(1.0) / (r2 * r2)
    return (d * scale).astype(np.float32)


def _pair_energy(pi: np.ndarray, pj: np.ndarray) -> float:
    d = pi - pj
    r2 = np.float32((d * d).sum()) + np.float32(0.1)
    return float(np.float32(1.0) / r2)


def _inter_forces(pos: np.ndarray, lo: int, hi: int, n: int) -> tuple:
    """Forces on molecules ``[lo, hi)`` plus their potential-energy sum,
    vectorized over molecules and the n/2 wrap-around pair offsets.

    Shared by the worker and the sequential reference so both fold
    float32 identically: every per-pair elementwise operation matches
    :func:`_pair_force` bit-for-bit, and the per-molecule reduction
    order depends only on the pair count, not on the caller's block."""
    k = np.arange(1, n // 2 + 1)
    i_idx = np.arange(lo, hi)
    plus = (i_idx[:, None] + k[None, :]) % n
    minus = (i_idx[:, None] - k[None, :]) % n
    pi = pos[i_idx][:, None, :]                        # (m, 1, 9)
    dp = pi - pos[plus]                                # (m, K, 9)
    r2p = (dp * dp).sum(axis=2) + np.float32(0.1)
    fp = dp * (np.float32(1.0) / (r2p * r2p))[:, :, None]
    dm = pos[minus] - pos[i_idx][:, None, :]
    r2m = (dm * dm).sum(axis=2) + np.float32(0.1)
    fm = dm * (np.float32(1.0) / (r2m * r2m))[:, :, None]
    forces = (fp.sum(axis=1) - fm.sum(axis=1)).astype(np.float32)
    epot = float((np.float32(1.0) / r2p).astype(np.float64).sum())
    return forces, epot


def _inter_read_order(lo: int, hi: int, n: int) -> np.ndarray:
    """First-touch order of molecule reads in the inter phase: the order
    the scalar loop's per-molecule position cache would miss in (own
    molecule first, then alternating +k / -k neighbours)."""
    k = np.arange(1, n // 2 + 1, dtype=np.int64)
    # Per-molecule touch sequence [0, +1, -1, +2, -2, ...], flattened
    # across molecules in loop order; unique-by-first-occurrence yields
    # the same order a per-touch seen-set would produce.
    offs = np.empty(1 + 2 * k.shape[0], dtype=np.int64)
    offs[0] = 0
    offs[1::2] = k
    offs[2::2] = -k
    flat = (np.arange(lo, hi, dtype=np.int64)[:, None] + offs[None, :]) % n
    _, first = np.unique(flat.reshape(-1), return_index=True)
    return flat.reshape(-1)[np.sort(first)]


@AppRegistry.register
class Water(Application):
    """SPLASH Water's sharing structure on the simulated DSM."""

    name = "Water"
    checksum_rtol = 1e-5

    datasets = {
        # Paper used 512/1728 molecules; 216 preserves partition
        # boundaries inside pages (16 molecules of 256 B per 4 KB page;
        # 27 molecules per processor).
        "512": {"n": 216, "iters": 2},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return p["n"] * REC * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {
            "mol": tmk.array("mol", (p["n"], REC), "float32"),
            "energy": tmk.array("energy", (16,), "float32"),
        }

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        mol, energy = handles["mol"], handles["energy"]
        n, iters = params["n"], params["iters"]
        lo, hi = self.block_range(n, proc.nprocs, proc.id)

        # Distributed initialization: owners write their own molecules.
        mol.write_rows(proc, lo, _initial_positions(n)[lo:hi])
        if proc.id == 0:
            energy.write(proc, 0, np.zeros(16, np.float32))
        proc.barrier()

        rows = np.arange(lo, hi, dtype=np.int64)
        for _ in range(iters):
            # ---- Intra-molecular phase: update own records in place.
            # One bulk gather/scatter per field keeps the per-molecule
            # access ranges of the scalar loop (read the whole record,
            # write positions and private scratch separately) while the
            # arithmetic runs vectorized over the block.
            block = mol.gather_rows(proc, rows, 0, REC)
            priv = block[:, PRIVATE] * np.float32(0.99)
            pos = block[:, POS] + priv[:, :9] * np.float32(0.001)
            proc.compute(flops=3 * REC * (hi - lo))
            mol.scatter_rows(proc, rows, pos, 0)
            mol.scatter_rows(proc, rows, priv, PRIVATE.start)
            proc.barrier()

            # ---- Inter-molecular phase: owners accumulate the full
            # force on their own molecules, interacting with the n/2
            # molecules on each side (each pair computed by both
            # owners).  Positions are still read one molecule at a time
            # (fine-grained 9-word ranges, as the scalar loop's
            # per-phase cache would first touch them); the gather order
            # reproduces that first-touch order exactly so faults and
            # fetches are unchanged.
            order = _inter_read_order(lo, hi, n)
            pos_all = np.empty((n, 9), dtype=np.float32)
            pos_all[order] = mol.gather_rows(proc, order, 0, 9)
            forces, epot = _inter_forces(pos_all, lo, hi, n)
            # The real Water potential costs several hundred flops
            # per pair (square roots, exponentials, 3x3 atom pairs).
            proc.compute(flops=2 * 320 * (n // 2) * (hi - lo))
            mol.scatter_rows(proc, rows, forces, FORCE.start)

            # Global potential-energy sum, lock-protected.
            proc.acquire(ENERGY_LOCK)
            cur = energy.read(proc, 0, 1)[0]
            energy.write(
                proc, 0, np.array([cur + np.float32(epot)], np.float32)
            )
            proc.release(ENERGY_LOCK)
            proc.barrier()

            # ---- Integration: owners fold forces into positions and
            # zero the accumulators for the next timestep.
            block = mol.gather_rows(proc, rows, 0, REC)
            out = block[:, :FORCE.stop].copy()
            out[:, POS] = out[:, POS] + out[:, FORCE] * np.float32(1e-4)
            out[:, FORCE] = np.float32(0.0)
            proc.compute(flops=2 * REC * (hi - lo))
            mol.scatter_rows(proc, rows, out, 0)
            proc.barrier()

        local = float(
            np.abs(mol.gather_rows(proc, rows, 0, 18))
            .astype(np.float64).sum()
        )
        return self.collect_checksum(proc, handles, local)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: block-owned molecule records with mixed
        shared/private fields, plus the lock-protected energy word every
        processor rewrites inside the inter-molecular epoch (the lock
        orders the writes, but they share one barrier epoch -- the
        energy page is a predicted multi-writer page)."""
        from repro.analyze.access import AccessPattern

        mol, energy = handles["mol"], handles["energy"]
        n = params["n"]
        ranges = [self.block_range(n, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            ph.write_rows(mol, p, lo, hi)
        ph.write(energy, 0, 0, 16)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:intra")
            for p, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    ph.read(mol, p, (i, 0), REC)
                    ph.write(mol, p, (i, 0), 9)
                    ph.write(mol, p, (i, PRIVATE.start), REC - PRIVATE.start)
            ph = pat.phase(f"iter{it}:inter")
            for p, (lo, hi) in enumerate(ranges):
                for j in range(n):
                    ph.read(mol, p, (j, 0), 9)
                for i in range(lo, hi):
                    ph.write(mol, p, (i, FORCE.start), 9)
                ph.read(energy, p, 0, 1)
                ph.write(energy, p, 0, 1)
            ph = pat.phase(f"iter{it}:integrate")
            for p, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    ph.read(mol, p, (i, 0), REC)
                    ph.write(mol, p, (i, 0), FORCE.stop)
        ph = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            for i in range(lo, hi):
                ph.read(mol, p, (i, 0), 18)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        n, iters = p["n"], p["iters"]
        m = _initial_positions(n)
        for _ in range(iters):
            m[:, PRIVATE] = m[:, PRIVATE] * np.float32(0.99)
            m[:, POS] = m[:, POS] + m[:, PRIVATE][:, :9] * np.float32(0.001)
            forces, _ = _inter_forces(
                np.ascontiguousarray(m[:, POS]), 0, n, n
            )
            m[:, POS] = m[:, POS] + forces * np.float32(1e-4)
        total = np.abs(m[:, :18]).astype(np.float64).sum()
        return float(total)

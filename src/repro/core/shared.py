"""Typed views over shared heap allocations.

A :class:`SharedArray` is a *global* handle (shape, dtype, heap offset)
created once at setup time via :meth:`repro.core.treadmarks.TreadMarks.array`;
processors access it through their :class:`repro.core.proc.Proc`.  All
accesses decompose into contiguous word-range reads/writes on the shared
heap, which is where faulting and instrumentation happen.

Supported dtypes are the 4-byte-multiple numeric types (float32, int32,
uint32, float64, int64, complex64, complex128), matching the paper's
4-byte instrumentation word.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike

from repro.core.proc import Proc
from repro.dsm.address_space import Allocation, SharedHeapLayout
from repro.dsm.diff import WORD

#: An element index: flat int for 1-D arrays, or an (i, j, ...) tuple.
Index = Union[int, Tuple[int, ...]]

#: A shape spec: an int (1-D) or a sequence of ints.
ShapeLike = Union[int, Sequence[int]]

#: Anything ``np.dtype()`` accepts (name string, dtype, scalar type).
DTypeLike = Union[str, np.dtype, type]


def _as_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, int):
        return (int(shape),)
    return tuple(int(s) for s in shape)


def alloc_array(
    layout: SharedHeapLayout, name: str, shape: ShapeLike,
    dtype: DTypeLike = "float32", page_align: bool = True,
) -> "SharedArray":
    """Allocate a typed shared array in ``layout`` (the single shared
    implementation behind :meth:`repro.core.treadmarks.TreadMarks.array`
    and the static analyzer's layout probe, so both resolve identical
    heap addresses for the same ``setup()`` call sequence)."""
    shp = _as_shape(shape)
    dt = np.dtype(dtype)
    nbytes = int(np.prod(shp)) * dt.itemsize
    alloc = layout.malloc(name, nbytes, page_align=page_align)
    return SharedArray(alloc, shp, dt)


class SharedArray:
    """A C-ordered shared array living in the DSM heap."""

    def __init__(
        self, alloc: Allocation, shape: Tuple[int, ...], dtype: DTypeLike
    ) -> None:
        self.alloc = alloc
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize % WORD:
            raise ValueError(
                f"dtype {self.dtype} has itemsize {self.dtype.itemsize}, "
                f"not a multiple of the {WORD}-byte word"
            )
        self.words_per_elem = self.dtype.itemsize // WORD
        self.size = int(np.prod(self.shape))
        if self.size * self.dtype.itemsize > alloc.nbytes:
            raise ValueError(
                f"array {alloc.name!r} needs {self.size * self.dtype.itemsize} "
                f"bytes, allocation holds {alloc.nbytes}"
            )

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def word_offset(self, flat_index: int) -> int:
        """Heap word offset of flat element ``flat_index``."""
        if flat_index < 0 or flat_index > self.size:
            raise IndexError(f"flat index {flat_index} out of {self.size}")
        return self.alloc.word_offset + flat_index * self.words_per_elem

    def _flatten(self, index: Index) -> int:
        """Flat element index of an (i, j, ...) tuple or int."""
        if isinstance(index, int):
            if len(self.shape) != 1:
                raise IndexError(f"array {self.alloc.name!r} needs a tuple index")
            return index
        return int(np.ravel_multi_index(index, self.shape))

    # ------------------------------------------------------------------
    # Element / block access
    # ------------------------------------------------------------------
    def read(self, proc: Proc, start: Index, count: int = 1) -> np.ndarray:
        """Read ``count`` contiguous elements starting at ``start`` (an
        int for 1-D arrays or an index tuple); returns a 1-D ndarray of
        the array's dtype."""
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        if flat < 0 or flat + count > self.size:
            raise IndexError(
                f"read of {count} elements at flat {flat} exceeds size {self.size}"
            )
        wpe = self.words_per_elem
        raw = proc.read(self.alloc.word_offset + flat * wpe, count * wpe)
        return raw.view(self.dtype)

    def write(self, proc: Proc, start: Index, values: ArrayLike) -> None:
        """Write contiguous elements starting at ``start``."""
        vals = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        if flat < 0 or flat + vals.size > self.size:
            raise IndexError(
                f"write of {vals.size} elements at flat {flat} exceeds "
                f"size {self.size}"
            )
        wpe = self.words_per_elem
        proc.write(self.alloc.word_offset + flat * wpe, vals.view(np.uint32))

    # ------------------------------------------------------------------
    # Bulk gather / scatter (many equal-length element ranges per call,
    # routed through the Proc bulk-access API)
    # ------------------------------------------------------------------
    def gather(
        self, proc: Proc, starts: ArrayLike, count: int = 1
    ) -> np.ndarray:
        """Read ``count`` contiguous elements at each flat element index
        in ``starts``; returns an (nranges, count) ndarray of the
        array's dtype.  Semantically a loop of :meth:`read` calls, in
        order."""
        s = np.ascontiguousarray(starts, dtype=np.int64)
        if s.size and (
            int(s.min()) < 0 or int(s.max()) + count > self.size
        ):
            raise IndexError(
                f"gather of {count}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        wpe = self.words_per_elem
        raw = proc.read_gather(
            self.alloc.word_offset + s * wpe, count * wpe
        )
        return raw.view(self.dtype).reshape(s.shape[0], count)

    def scatter(
        self, proc: Proc, starts: ArrayLike, values: ArrayLike
    ) -> None:
        """Write an (nranges, count) block of elements at each flat
        element index in ``starts``.  Semantically a loop of
        :meth:`write` calls, in order."""
        s = np.ascontiguousarray(starts, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.ndim != 2 or vals.shape[0] != s.shape[0]:
            raise ValueError(
                f"scatter needs (nranges, count) values matching "
                f"{s.shape[0]} starts, got shape {vals.shape}"
            )
        if s.size and (
            int(s.min()) < 0
            or int(s.max()) + vals.shape[1] > self.size
        ):
            raise IndexError(
                f"scatter of {vals.shape[1]}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        proc.write_scatter(
            self.alloc.word_offset + s * self.words_per_elem,
            vals.view(np.uint32),
        )

    def gather_rows(
        self, proc: Proc, rows: ArrayLike, col0: int = 0,
        ncols: int | None = None,
    ) -> np.ndarray:
        """Read the column window ``[col0, col0+ncols)`` of each row in
        ``rows`` of a 2-D array (one gather range per row)."""
        self._check_2d()
        ncols = self.shape[1] - col0 if ncols is None else ncols
        r = np.ascontiguousarray(rows, dtype=np.int64)
        self._check_row_window(r, col0, ncols)
        return self.gather(proc, r * self.shape[1] + col0, ncols)

    def scatter_rows(
        self, proc: Proc, rows: ArrayLike, values: ArrayLike, col0: int = 0
    ) -> None:
        """Write an (nrows, ncols) block into the column window starting
        at ``col0`` of each row in ``rows`` of a 2-D array."""
        self._check_2d()
        r = np.ascontiguousarray(rows, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.ndim != 2:
            raise ValueError(f"scatter_rows needs 2-D values, got {vals.shape}")
        self._check_row_window(r, col0, vals.shape[1])
        self.scatter(proc, r * self.shape[1] + col0, vals)

    def _check_row_window(self, rows: np.ndarray, col0: int, ncols: int) -> None:
        if rows.size and (
            int(rows.min()) < 0 or int(rows.max()) >= self.shape[0]
        ):
            raise IndexError(
                f"row index out of range for {self.alloc.name!r} with "
                f"{self.shape[0]} rows"
            )
        if col0 < 0 or ncols <= 0 or col0 + ncols > self.shape[1]:
            raise IndexError(
                f"column window [{col0}, {col0 + ncols}) outside "
                f"{self.shape[1]} columns of {self.alloc.name!r}"
            )

    # ------------------------------------------------------------------
    # Row helpers for 2-D arrays (C order: a row is contiguous)
    # ------------------------------------------------------------------
    def read_row(self, proc: Proc, i: int) -> np.ndarray:
        """Read row ``i`` of a 2-D array."""
        self._check_2d()
        return self.read(proc, (i, 0), self.shape[1])

    def write_row(self, proc: Proc, i: int, values: ArrayLike) -> None:
        """Write row ``i`` of a 2-D array."""
        self._check_2d()
        self.write(proc, (i, 0), values)

    def read_rows(self, proc: Proc, i0: int, i1: int) -> np.ndarray:
        """Read rows ``[i0, i1)`` of a 2-D array as an (i1-i0, ncols)
        ndarray (one contiguous shared access)."""
        self._check_2d()
        n = (i1 - i0) * self.shape[1]
        return self.read(proc, (i0, 0), n).reshape(i1 - i0, self.shape[1])

    def write_rows(self, proc: Proc, i0: int, values: ArrayLike) -> None:
        """Write consecutive rows starting at ``i0`` (one contiguous
        shared access)."""
        self._check_2d()
        self.write(proc, (i0, 0), np.asarray(values))

    def _check_2d(self) -> None:
        if len(self.shape) != 2:
            raise IndexError(
                f"row access needs a 2-D array, {self.alloc.name!r} has "
                f"shape {self.shape}"
            )

    def __repr__(self) -> str:
        return (
            f"SharedArray({self.alloc.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, word_offset={self.alloc.word_offset})"
        )

"""Command-line driver for the static-analysis subsystem.

Three modes, one per pillar:

``--lint``
    Determinism lint over the simulator sources (default roots:
    ``src/repro``).  Exit 0 iff no active findings and no stale
    suppressions.  ``--json PATH`` additionally writes the machine
    report consumed by CI artifacts.

``--predict APP``
    Static access-pattern analysis for one application: predicted
    write-write conflict pages at 4 KB plus the useless-data lower
    bound at each paper unit size.

``--crosscheck``
    The static-vs-dynamic gate over every application's smallest
    dataset (or ``--apps A,B``): traced 4 KB runs must observe every
    predicted page, and dynamic-only pages must stay within the
    committed ratchet (``--update-ratchet`` re-records it).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analyze.crosscheck import run_crosscheck
from repro.analyze.detlint import lint_paths, repo_roots
from repro.analyze.predict import predict
from repro.bench.golden import SMALL_DATASETS


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = [pathlib.Path(p) for p in args.paths] or repo_roots()
    report = lint_paths(paths)
    print(report.render())
    if args.json:
        report.write_json(pathlib.Path(args.json))
        print(f"json report: {args.json}")
    return 0 if report.ok else 1


def _cmd_predict(args: argparse.Namespace) -> int:
    dataset = args.dataset or SMALL_DATASETS[args.predict]
    prediction = predict(args.predict, dataset, nprocs=args.nprocs)
    print(prediction.render())
    return 0


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    apps = args.apps.split(",") if args.apps else None
    return run_crosscheck(
        apps=apps, nprocs=args.nprocs, update_ratchet=args.update_ratchet
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analyze",
        description="determinism lint and static access-pattern analysis",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--lint", action="store_true",
        help="run the determinism lint (exit 1 on findings)",
    )
    mode.add_argument(
        "--predict", metavar="APP",
        help="predict false-sharing pages / useless-data bound for APP",
    )
    mode.add_argument(
        "--crosscheck", action="store_true",
        help="validate predictions against traced runs (all 8 apps)",
    )
    parser.add_argument(
        "--paths", nargs="*", default=[],
        help="lint these files/dirs instead of the default src/repro",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="with --lint: also write the JSON report here",
    )
    parser.add_argument(
        "--dataset", default=None,
        help="with --predict: dataset name (default: smallest paper set)",
    )
    parser.add_argument(
        "--nprocs", type=int, default=8,
        help="processor count for --predict/--crosscheck (default 8)",
    )
    parser.add_argument(
        "--apps", default=None,
        help="with --crosscheck: comma-separated subset of app names",
    )
    parser.add_argument(
        "--update-ratchet", action="store_true",
        help="with --crosscheck: rewrite the analyzer-gap ratchet file",
    )
    args = parser.parse_args(argv)

    if args.lint:
        return _cmd_lint(args)
    if args.predict:
        return _cmd_predict(args)
    return _cmd_crosscheck(args)


if __name__ == "__main__":
    sys.exit(main())

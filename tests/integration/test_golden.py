"""End-to-end golden regression gate against the committed baselines.

This is the test-suite twin of ``python -m repro.bench --check``: every
application's smallest paper dataset at each consistency unit, plus the
microbenchmarks, must match ``benchmarks/golden/`` counter-for-counter.
Any protocol, simulator, or application change that shifts a message,
byte, fault, or simulated-time counter fails here with a field-level
diff; if the shift is intended, regenerate the baselines with
``python -m repro.bench --refresh-golden`` and commit the diff.
"""

import json

import pytest

from repro.bench import golden
from repro.bench.golden import (
    GOLDEN_DIR,
    GOLDEN_LABELS,
    SMALL_DATASETS,
    compare_case,
    load_app_golden,
)
from repro.bench.harness import ResultCache


def test_baselines_are_committed_for_all_eight_apps():
    assert GOLDEN_DIR.is_dir(), (
        f"missing {GOLDEN_DIR}; run python -m repro.bench --refresh-golden"
    )
    for app in SMALL_DATASETS:
        assert load_app_golden(GOLDEN_DIR, app) is not None, app
    assert (GOLDEN_DIR / "micro.json").is_file()


@pytest.mark.parametrize("app", sorted(SMALL_DATASETS))
def test_app_matches_golden_baselines(app):
    """One exact-match check per application (split per app so a failure
    names the culprit and the rest still report)."""
    ds = SMALL_DATASETS[app]
    gold = load_app_golden(GOLDEN_DIR, app)
    mismatches = []
    for label in GOLDEN_LABELS:
        entry = gold.get(ds, {}).get(label)
        assert entry is not None, f"no baseline for {app}/{ds}@{label}"
        case = ResultCache.get(app, ds, label)
        mismatches.extend(compare_case(f"{app}/{ds}@{label}", case, entry))
    assert not mismatches, "\n" + "\n".join(m.render() for m in mismatches)


def test_micro_matches_golden_baselines():
    from repro.bench import micro

    gold = json.loads((GOLDEN_DIR / "micro.json").read_text())
    assert micro.snapshot(micro.run_all()) == gold


def test_full_check_passes_and_is_deterministic():
    """The gate itself: repro.bench.golden.check over the committed
    baselines (pure cache hits after the per-app tests above)."""
    report = golden.check(GOLDEN_DIR, jobs=1)
    assert report.ok, "\n" + report.render()
    assert report.cells_checked == 8 * len(GOLDEN_LABELS) + 5  # + 5 micro


def test_perturbed_baseline_fails_with_readable_diff(tmp_path):
    """Acceptance property: a perturbed counter produces a field-level
    diff naming the cell, the expected and actual values, and the delta."""
    bad_dir = tmp_path / "golden"
    bad_dir.mkdir()
    for app in SMALL_DATASETS:
        (bad_dir / f"{app}.json").write_text(
            json.dumps(load_app_golden(GOLDEN_DIR, app))
        )
    (bad_dir / "micro.json").write_text((GOLDEN_DIR / "micro.json").read_text())
    path = bad_dir / "MGS.json"
    entry = json.loads(path.read_text())
    entry["1Kx1K"]["8K"]["useless_messages"] -= 13
    path.write_text(json.dumps(entry))

    report = golden.check(bad_dir, jobs=1)
    assert not report.ok
    [m] = report.mismatches
    assert m.where == "MGS/1Kx1K@8K" and m.field == "useless_messages"
    text = report.render()
    assert "FAILED" in text and "+13" in text and "--refresh-golden" in text

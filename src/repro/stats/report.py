"""Consolidated run results: the quantities plotted in Figures 1 and 2.

For every run the harness reports:

* simulated execution time (the max processor clock),
* total messages, split into useful / useless (a useless message carries
  no useful data; both directions of a useless exchange count),
* total data, split into useful data, useless data carried in useless
  messages, and *piggybacked* useless data (useless words riding on
  messages that also carry useful words),

all of which normalize against a 4 KB-unit baseline to reproduce the
paper's bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.config import SimConfig
from repro.sim.network import DATA_CLASSES, SYNC_CLASSES, MessageClass, Network
from repro.stats.counters import ProtocolStats
from repro.stats.signature import FalseSharingSignature, build_signature


@dataclass
class CommBreakdown:
    """Message and data totals split per the paper's methodology."""

    useful_messages: int = 0
    useless_messages: int = 0
    sync_messages: int = 0

    useful_bytes: int = 0
    """Bytes that were usefully consumed (diff words read before being
    overwritten) plus protocol framing on useful messages."""

    useless_bytes: int = 0
    """All useless diff-word bytes (both piggybacked and in useless
    messages) plus framing of useless messages."""

    piggybacked_useless_bytes: int = 0
    """Useless diff-word bytes carried on messages that also carried
    useful data -- a subset of ``useless_bytes``."""

    sync_bytes: int = 0
    """Lock / barrier payloads (consistency metadata)."""

    fault_messages: int = 0
    """Transport-level copies injected by the fault lab (RETRANSMIT
    class): retransmissions and duplicate deliveries.  Zero on a
    reliable network; excluded from the useful/useless classification
    because they re-carry data already classified on the original."""

    fault_bytes: int = 0
    """Payload bytes of the injected copies."""

    @property
    def total_messages(self) -> int:
        return (
            self.useful_messages
            + self.useless_messages
            + self.sync_messages
            + self.fault_messages
        )

    @property
    def data_messages(self) -> int:
        return self.useful_messages + self.useless_messages

    @property
    def total_bytes(self) -> int:
        return (
            self.useful_bytes
            + self.useless_bytes
            + self.sync_bytes
            + self.fault_bytes
        )


@dataclass
class RunResult:
    """Everything measured in one simulated run."""

    config: SimConfig
    app_name: str
    dataset: str
    time_us: float
    proc_times_us: List[float]
    comm: CommBreakdown
    stats: ProtocolStats
    signature: FalseSharingSignature
    checksum: Optional[float] = None
    """Application-defined result digest, used by the coherence-invariance
    tests (must match across unit sizes and the sequential reference)."""

    trace: Optional[object] = None
    """The run's :class:`repro.trace.recorder.TraceRecorder` when
    ``config.trace`` was set; None otherwise.  Purely observational --
    present or absent, every other field is bit-identical."""

    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def unit_label(self) -> str:
        """Human label for the consistency configuration."""
        if self.config.dynamic:
            return "Dyn"
        kb = self.config.unit_bytes // 1024
        return f"{kb}K"

    @property
    def time_seconds(self) -> float:
        return self.time_us / 1e6


def summarize_comm(network: Network, config: SimConfig) -> CommBreakdown:
    """Classify the message ledger after word usefulness has resolved."""
    comm = CommBreakdown()
    # Map exchange -> usefulness of its reply, to classify requests with
    # their replies ("message exchanges" in the paper).
    exchange_useless: Dict[int, bool] = {}
    for msg in network.messages:
        if msg.klass in DATA_CLASSES and msg.exchange_id is not None:
            exchange_useless[msg.exchange_id] = msg.is_useless

    for msg in network.messages:
        if msg.klass is MessageClass.RETRANSMIT:
            comm.fault_messages += 1
            comm.fault_bytes += msg.payload_bytes
            continue
        if msg.klass in SYNC_CLASSES:
            comm.sync_messages += 1
            comm.sync_bytes += msg.payload_bytes
            continue
        if msg.exchange_id is not None:
            useless = exchange_useless.get(msg.exchange_id, False)
        else:
            # Data messages outside an exchange (eager flushes/pushes)
            # classify by their own resolved word usefulness.  Inert for
            # tm-lrc: its only exchange-less messages are sync-class.
            useless = msg.is_useless
        if useless:
            comm.useless_messages += 1
            comm.useless_bytes += msg.payload_bytes
        else:
            comm.useful_messages += 1
            if msg.klass in DATA_CLASSES:
                useless_data = msg.words_useless * 4
                comm.piggybacked_useless_bytes += useless_data
                comm.useless_bytes += useless_data
                comm.useful_bytes += msg.payload_bytes - useless_data
            else:
                comm.useful_bytes += msg.payload_bytes
    return comm


def build_result(
    app_name: str,
    dataset: str,
    config: SimConfig,
    network: Network,
    stats: ProtocolStats,
    proc_times_us: List[float],
    checksum: Optional[float] = None,
    trace: Optional[object] = None,
) -> RunResult:
    """Assemble the final :class:`RunResult` for a finished run."""
    return RunResult(
        config=config,
        app_name=app_name,
        dataset=dataset,
        time_us=max(proc_times_us),
        proc_times_us=list(proc_times_us),
        comm=summarize_comm(network, config),
        stats=stats,
        signature=build_signature(stats, network),
        checksum=checksum,
        trace=trace,
    )

"""Thread-free deterministic stepper for exhaustive interleaving control.

The scheduling engine (:mod:`repro.sim.engine`) runs application bodies
on real threads and serves synchronization in simulated-time order --
deterministic, but offering exactly *one* interleaving per run.  The
model checker (:mod:`repro.analyze.modelcheck`) needs the opposite: a
way to drive the very same protocol engines (:class:`repro.dsm.lrc.LrcProc`
subclasses plus :class:`repro.dsm.sync.SyncManager`) through *any*
interleaving of a tiny litmus program, one instruction at a time, under
external schedule control.

:class:`SteppedSystem` provides that hook.  It assembles a complete DSM
system exactly the way :class:`repro.core.treadmarks.TreadMarks` does --
heap layout, network ledger, interval store, protocol build hook,
aggregators, sync manager -- but with no threads and no run loop; the
caller picks which processor executes its next instruction.  Blocking
mirrors the engine faithfully: a synchronization op that returns no
:class:`~repro.sim.engine.Resume` for its issuer parks that processor
until a later op's resume list wakes it (FIFO lock grants, full-barrier
departure), exactly the states the engine's scheduler can reach.

Litmus instructions (plain tuples, word addresses are heap word
offsets):

* ``("write", word, value)``   -- one shared word store
* ``("read", word, reg)``      -- one shared word load into ``reg``
* ``("rmw", word, k, reg)``    -- load into ``reg`` then store ``+k``
  (used inside critical sections for migratory-ownership litmuses)
* ``("acquire", lock_id)`` / ``("release", lock_id)``
* ``("barrier", barrier_id)``

State hashing (:meth:`SteppedSystem.state_key`) canonicalizes every
piece of state that can influence future *values or control flow*:
program counters, registers, block flags, heap contents, twins, pending
write notices, vector clocks, the interval store (including diff
contents and commit stamps), lock/barrier state, and any protocol
directory.  Simulated clocks, the message ledger, and cost counters are
deliberately excluded -- timestamps never feed back into protocol
decisions (lock grants are FIFO, barriers wait for all arrivals), so
two states differing only in timing have identical futures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsm.address_space import SharedHeapLayout
from repro.dsm.aggregation import make_aggregator
from repro.dsm.intervals import IntervalStore
from repro.dsm.lrc import LrcProc
from repro.dsm.sync import SyncManager
from repro.protocols.base import ProtocolInfo
from repro.sim.clock import Clock
from repro.sim.config import SimConfig
from repro.sim.engine import Op, OpKind
from repro.sim.network import Network
from repro.stats.counters import ProtocolStats

#: One litmus instruction (see the module docstring for the shapes).
Instruction = Tuple[object, ...]

#: One processor's straight-line program.
Program = Tuple[Instruction, ...]

_SYNC_KINDS = {
    "acquire": OpKind.ACQUIRE,
    "release": OpKind.RELEASE,
    "barrier": OpKind.BARRIER,
}


@dataclass
class ProcCursor:
    """Execution position of one processor in its litmus program."""

    pc: int = 0
    blocked: bool = False
    regs: Dict[str, int] = field(default_factory=dict)


class SteppedSystem:
    """One DSM system under external, instruction-granular scheduling."""

    def __init__(
        self,
        info: ProtocolInfo,
        programs: Sequence[Program],
        heap_bytes: int = 8192,
        config: Optional[SimConfig] = None,
    ) -> None:
        nprocs = len(programs)
        self.config = config if config is not None else SimConfig(
            nprocs=nprocs
        )
        if self.config.nprocs != nprocs:
            raise ValueError(
                f"config.nprocs={self.config.nprocs} but "
                f"{nprocs} programs given"
            )
        self.programs: Tuple[Program, ...] = tuple(
            tuple(p) for p in programs
        )
        self.layout = SharedHeapLayout(
            heap_bytes, self.config.page_size, self.config.unit_bytes
        )
        self.network = Network(self.config)
        self.store = IntervalStore(nprocs)
        self.stats = ProtocolStats()
        self.clocks = [Clock() for _ in range(nprocs)]
        self.procs: List[LrcProc] = info.build(
            self.layout,
            self.config,
            self.store,
            self.network,
            self.stats,
            self.clocks,
            self._credit,
        )
        for lp in self.procs:
            lp.trace = None
            lp.aggregator = make_aggregator(lp)
        self.sync = SyncManager(
            self.config, self.network, self.procs, self.stats
        )
        self.cursors = [ProcCursor() for _ in range(nprocs)]
        self._seq = 0

    def _credit(self, msg_id: int, nwords: int) -> None:
        self.network.messages[msg_id].words_useful += nwords

    # ------------------------------------------------------------------
    # Scheduling surface
    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.config.nprocs

    def finished(self, p: int) -> bool:
        """True when processor ``p`` has executed its whole program."""
        return self.cursors[p].pc >= len(self.programs[p])

    def enabled(self) -> List[int]:
        """Processors that can execute an instruction right now."""
        return [
            p
            for p in range(self.nprocs)
            if not self.finished(p) and not self.cursors[p].blocked
        ]

    def terminal(self) -> bool:
        """True when every processor has finished (no proc still blocked
        -- a blocked processor with instructions left means deadlock,
        which :meth:`enabled` exposes as an empty list)."""
        return all(self.finished(p) for p in range(self.nprocs))

    def next_instruction(self, p: int) -> Instruction:
        return self.programs[p][self.cursors[p].pc]

    def step(self, p: int) -> Instruction:
        """Execute processor ``p``'s next instruction; returns it.

        ``p`` must be enabled.  A synchronization instruction advances
        the pc *before* the op is serviced, so a processor parked inside
        an acquire/barrier resumes past it once woken.
        """
        cur = self.cursors[p]
        if self.finished(p):
            raise ValueError(f"proc {p} already finished")
        if cur.blocked:
            raise ValueError(f"proc {p} is blocked")
        instr = self.programs[p][cur.pc]
        cur.pc += 1
        kind = instr[0]
        lp = self.procs[p]
        if kind == "write":
            _, word, value = instr
            lp.write_words(
                int(word), np.array([value], dtype=np.uint32)
            )
        elif kind == "read":
            _, word, reg = instr
            cur.regs[str(reg)] = int(lp.read_words(int(word), 1)[0])
        elif kind == "rmw":
            _, word, k, reg = instr
            old = int(lp.read_words(int(word), 1)[0])
            cur.regs[str(reg)] = old
            lp.write_words(
                int(word), np.array([old + int(k)], dtype=np.uint32)
            )
        elif kind in _SYNC_KINDS:
            self._sync(p, _SYNC_KINDS[str(kind)], int(instr[1]))
        else:
            raise ValueError(f"unknown litmus instruction {instr!r}")
        return instr

    def _sync(self, p: int, opkind: OpKind, arg: int) -> None:
        # Mirrors Proc.acquire/release/barrier + Engine.park: close the
        # open interval, service the op, apply resumes.
        lp = self.procs[p]
        lp.at_sync_point()
        op = Op(
            kind=opkind, proc=p, ts=self.clocks[p].now, arg=arg,
            seq=self._seq,
        )
        self._seq += 1
        resumes = self.sync.service(op)
        woke_self = False
        for r in resumes:
            self.clocks[r.proc].advance_to(r.wake_ts)
            self.cursors[r.proc].blocked = False
            if r.proc == p:
                woke_self = True
        if not woke_self:
            self.cursors[p].blocked = True

    # ------------------------------------------------------------------
    # Value inspection (used by the oracle on terminal states)
    # ------------------------------------------------------------------
    def read_word(self, p: int, word: int) -> int:
        """Read ``word`` through processor ``p``'s coherence engine
        (faults in pending diffs exactly like a program read would)."""
        return int(self.procs[p].read_words(word, 1)[0])

    # ------------------------------------------------------------------
    # Canonical state
    # ------------------------------------------------------------------
    def state_key(self) -> str:
        """Stable digest of all future-relevant state (see module doc)."""
        return hashlib.sha256(
            repr(self._canonical_state()).encode()
        ).hexdigest()

    def _canonical_state(self) -> Tuple[object, ...]:
        procs_state = []
        for p, lp in enumerate(self.procs):
            cur = self.cursors[p]
            pending = tuple(
                sorted(
                    (
                        unit,
                        tuple(
                            (nt.proc, nt.index, nt.commit_seq)
                            for nt in notices
                        ),
                    )
                    for unit, notices in lp.pending.items()
                    if notices
                )
            )
            twins = tuple(
                sorted(
                    (unit, lp.twins[unit].tobytes())
                    for unit in lp.twins
                )
            )
            procs_state.append(
                (
                    cur.pc,
                    cur.blocked,
                    tuple(sorted(cur.regs.items())),
                    tuple(lp.vc.entries),
                    pending,
                    twins,
                    lp.space.words.tobytes(),
                )
            )
        store_state = []
        for p in range(self.nprocs):
            ivs = []
            for index in sorted(self.store._by_proc[p]):
                iv = self.store._by_proc[p][index]
                diffs = tuple(
                    (
                        unit,
                        iv.diffs[unit].idx.tobytes(),
                        iv.diffs[unit].values.tobytes(),
                    )
                    for unit in sorted(iv.diffs)
                )
                ivs.append(
                    (iv.index, iv.commit_seq, tuple(iv.vc.entries), diffs)
                )
            store_state.append(tuple(ivs))
        store_meta = (
            self.store._commit_counter,
            tuple(self.store._closed_count),
        )
        locks = tuple(
            sorted(
                (
                    lock_id,
                    lk.holder,
                    lk.last_owner,
                    tuple(lk.last_vc.entries) if lk.last_vc else None,
                    tuple(proc for proc, _ in lk.waiters),
                )
                for lock_id, lk in self.sync.locks.items()
            )
        )
        barriers = tuple(
            sorted(
                (bid, tuple(sorted(proc for proc, _ in arrivals)))
                for bid, arrivals in self.sync.barrier_arrivals.items()
            )
        )
        directory = None
        d = getattr(self.procs[0], "directory", None)
        if d is not None:
            directory = (
                tuple(d.owner),
                tuple(tuple(sorted(cs)) for cs in d.copyset),
                d.excl.tobytes(),
            )
        return (
            tuple(procs_state),
            tuple(store_state),
            store_meta,
            locks,
            barriers,
            directory,
        )

"""Single-writer invalidate (SWI).

The classic Li/Hudak-style ownership protocol: at any moment each
consistency unit has at most one *writer* (its owner) plus any number of
read-only copy holders (the *copyset*).  A write to a non-exclusively
owned unit takes ownership -- one round trip to the previous owner --
and invalidates every other copy (invalidation + ack per holder); a read
or write of an invalidated unit fetches the whole current unit from the
owner in one exchange.

There are no twins, no diffs, no write notices, and no vector clocks:
coherence is enforced *per access*, not per synchronization interval.
This is exactly the protocol class the multiple-writer work of Carter et
al. (and TreadMarks) was designed to displace, and it makes the paper's
false-sharing story brutally visible: two processors writing different
words of the same unit *ping-pong its ownership* -- every alternation
pays a transfer round trip plus invalidations plus a whole-unit refetch,
so growing the unit from 4 K to 16 K multiplies the cost of every
falsely-shared boundary instead of amortizing it.  The
``ownership_transfers`` counter is the ping-pong meter.

Modelling notes:

* The directory is "free": real systems pay a (distributed) manager
  lookup; we charge only the transfer / invalidation traffic itself,
  which keeps the protocol's scaling behaviour while staying simple.
* Invalidations are sent in parallel and individually acked; the writer
  stalls for one round trip (or their sum under the serialized-fetch
  ablation) plus per-message CPU.
* Invalidated units are marked with a sentinel pending entry so the
  existing aggregation strategies (which only test pending-ness) drive
  fault service unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Set

import numpy as np

from repro.dsm.diff import DIFF_HEADER_BYTES
from repro.dsm.intervals import WriteNotice
from repro.dsm.lrc import REQUEST_BASE_BYTES, REQUEST_ENTRY_BYTES, LrcProc
from repro.protocols.base import CreditFn, ProtocolInfo, register
from repro.sim.network import MessageClass

if TYPE_CHECKING:
    from repro.dsm.address_space import SharedHeapLayout
    from repro.dsm.intervals import IntervalStore
    from repro.sim.clock import Clock
    from repro.sim.config import SimConfig
    from repro.sim.network import Network
    from repro.stats.counters import ProtocolStats

#: Wire sizes of the ownership / invalidation control messages.
OWNERSHIP_REQUEST_BYTES = 16
OWNERSHIP_GRANT_BYTES = 16
INVALIDATE_BYTES = 12
INVALIDATE_ACK_BYTES = 8


def _sentinel(unit: int) -> WriteNotice:
    """The pending-list marker for an invalidated unit.  SWI has no
    intervals, so the notice fields are dummies; only the list's
    truthiness (tested by the aggregators and :meth:`SwiProc.fetch`)
    matters.  ``proc=-1`` can never collide with a real interval in the
    barrier GC's referenced-set bookkeeping."""
    return WriteNotice(proc=-1, index=0, unit=unit, commit_seq=0)


class OwnershipDirectory:
    """Global owner + copyset state, shared by all processors of a run."""

    def __init__(self, nunits: int, nprocs: int) -> None:
        self.owner: List[int] = [-1] * nunits
        """Current writer of each unit; -1 until first written."""

        self.copyset: List[Set[int]] = [
            set(range(nprocs)) for _ in range(nunits)
        ]
        """Processors holding a valid copy (everyone starts valid: the
        heap is zero-initialized identically on every node)."""

        self.excl: "np.ndarray[Any, np.dtype[Any]]" = np.full(
            nunits, -1, dtype=np.int32
        )
        """Per-unit exclusivity cache: the pid for which
        ``owner[u] == pid and copyset[u] == {pid}`` holds, else -1.
        Both mutation sites keep it current (ownership acquisition sets
        it, a fetch joining the copyset clears it), so the write fast
        path tests exclusivity with one array read per unit instead of
        building set comparisons."""


class SwiProc(LrcProc):
    """One processor under single-writer invalidate."""

    #: All processors of the run (index == pid), wired by the build hook.
    peers: "List[SwiProc]"

    #: The run's shared ownership directory, wired by the build hook.
    directory: OwnershipDirectory

    # ------------------------------------------------------------------
    # Write path: ownership + invalidation before the store
    # ------------------------------------------------------------------
    def write_words(
        self, word0: int, values: "np.ndarray[Any, np.dtype[Any]]"
    ) -> None:
        nwords = int(values.shape[0])
        self._check_range(word0, nwords)
        assert self.aggregator is not None
        self.aggregator.ensure_valid(word0, nwords)
        for unit in self.layout.units_of_range(word0, nwords):
            self._ensure_exclusive(unit)
        if self.trace is not None:
            self.trace.on_access(self.pid, self.clock.now, "write", word0, nwords)
        self.tracker.on_write(word0, nwords)
        self.space.write_words(word0, values)
        self.clock.advance(
            self.config.region_op_us + nwords * self.config.word_access_us
        )

    # ------------------------------------------------------------------
    # Bulk scatter fast path: ready only when already exclusive
    # ------------------------------------------------------------------
    def _bulk_write_ready(self, units: List[int]) -> bool:
        """The scatter fast path may run only when every touched unit is
        already exclusively owned here, under which
        :meth:`_ensure_exclusive` is a guaranteed no-op; otherwise the
        reference loop performs the ownership acquisitions per range."""
        excl = self.directory.excl
        pid = self.pid
        return all(excl[u] == pid for u in units)

    def _bulk_write_prep_needed(self, units: List[int]) -> bool:
        return False

    def _bulk_write_prep(self, word0: int, nwords: int) -> None:
        """No-op: SWI has no twins, and :meth:`_bulk_write_ready`
        established exclusive ownership of every touched unit."""

    def _ensure_exclusive(self, unit: int) -> None:
        """Make this processor the exclusive owner of ``unit`` (the
        MSI "M state"): take ownership from the previous owner if any,
        invalidate every other copy."""
        d = self.directory
        if d.excl[unit] == self.pid:
            return
        now = self.clock.now
        # Write-protection trap: the unit was not writable here.
        cost = self.config.fault_trap_us + self.config.mprotect_us
        self.stats.mprotects += 1

        prev = d.owner[unit]
        if prev >= 0 and prev != self.pid:
            # Ownership transfer round trip to the current owner.
            self.network.record(
                self.pid, prev, MessageClass.OWNERSHIP,
                OWNERSHIP_REQUEST_BYTES, now, waiter=self.pid,
            )
            self.network.record(
                prev, self.pid, MessageClass.OWNERSHIP,
                OWNERSHIP_GRANT_BYTES, now, waiter=self.pid,
            )
            cost += (
                self.config.msg_cost_us(OWNERSHIP_REQUEST_BYTES)
                + self.config.msg_cost_us(OWNERSHIP_GRANT_BYTES)
                + 2 * self.config.msg_cpu_us
            )
            self.stats.ownership_transfers += 1

        sharers = sorted(d.copyset[unit] - {self.pid})
        inval_rtt = self.config.msg_cost_us(
            INVALIDATE_BYTES
        ) + self.config.msg_cost_us(INVALIDATE_ACK_BYTES)
        for peer_pid in sharers:
            self.network.record(
                self.pid, peer_pid, MessageClass.INVALIDATE,
                INVALIDATE_BYTES, now, waiter=self.pid,
            )
            self.network.record(
                peer_pid, self.pid, MessageClass.INVALIDATE,
                INVALIDATE_ACK_BYTES, now, waiter=self.pid,
            )
            peer = self.peers[peer_pid]
            if not peer.pending_n[unit]:
                peer.pending[unit] = [_sentinel(unit)]
                peer.pending_n[unit] = 1
                assert peer.aggregator is not None
                peer.aggregator.on_invalidate(unit)
                self.stats.mprotects += 1  # the holder protects its copy
            self.stats.invalidations += 1
        if sharers:
            if self.config.parallel_fetch:
                cost += inval_rtt  # parallel: one round trip covers all
            else:
                cost += inval_rtt * len(sharers)
            cost += 2 * self.config.msg_cpu_us * len(sharers)

        d.owner[unit] = self.pid
        d.copyset[unit] = {self.pid}
        d.excl[unit] = self.pid
        if self.trace is not None:
            self.trace.on_ownership(self.pid, now, unit, prev, len(sharers))
        self.clock.advance(cost)

    # ------------------------------------------------------------------
    # Fault service: whole-unit refetch from the owner
    # ------------------------------------------------------------------
    def fetch(self, units: Sequence[int]) -> None:
        by_owner: Dict[int, List[int]] = {}
        for unit in units:
            if self.pending.get(unit):
                owner = self.directory.owner[unit]
                if owner < 0 or owner == self.pid:
                    raise AssertionError(
                        f"invalid unit {unit} with owner {owner} at proc "
                        f"{self.pid}"
                    )
                by_owner.setdefault(owner, []).append(unit)
        if not by_owner:
            raise AssertionError(f"fetch with nothing pending: units={units}")

        now = self.clock.now
        fault_id = len(self.stats.fault_records)
        stall = 0.0
        apply_cost = 0.0
        exchange_ids = []
        for owner in sorted(by_owner):
            ounits = sorted(by_owner[owner])
            ex = self.network.new_exchange(self.pid, owner, fault_id)
            exchange_ids.append(ex)
            req_bytes = REQUEST_BASE_BYTES + REQUEST_ENTRY_BYTES * len(ounits)
            req = self.network.record(
                self.pid, owner, MessageClass.DIFF_REQUEST, req_bytes, now, ex,
                waiter=self.pid,
            )
            # The owner's copy is always current (single-writer
            # invariant), and SWI has no diffs: ship the whole unit.
            reply_bytes = len(ounits) * (
                self.layout.unit_bytes + DIFF_HEADER_BYTES
            )
            reply = self.network.record(
                owner, self.pid, MessageClass.DIFF_REPLY, reply_bytes, now, ex,
                waiter=self.pid,
            )
            reply.words_carried = len(ounits) * self.layout.words_per_unit
            self.network.close_exchange(ex, req.msg_id, reply.msg_id)
            response_time = (
                self.config.msg_cost_us(req_bytes)
                + self.config.diff_service_us
                + self.config.msg_cost_us(reply_bytes)
            )
            if self.config.parallel_fetch:
                stall = max(stall, response_time)
            else:
                stall += response_time
            for unit in ounits:
                w0, w1 = self.layout.unit_word_range(unit)
                self.space.unit_view(unit)[:] = self.peers[owner].space.unit_view(unit)
                self.tracker.mark(np.arange(w0, w1, dtype=np.int64), reply.msg_id)
                apply_cost += self.layout.unit_bytes * self.config.twin_byte_us
                self.directory.copyset[unit].add(self.pid)
                self.directory.excl[unit] = -1
                self.stats.diffs_applied += 1
                self.stats.diff_words_applied += self.layout.words_per_unit
                if self.trace is not None:
                    pages = tuple(self.layout.pages_of_range(w0, w1 - w0))
                    self.trace.on_diff_apply(
                        self.pid, now, unit, owner,
                        self.layout.words_per_unit, reply.msg_id,
                        pages,
                        (self.layout.words_per_page,) * len(pages),
                    )
        stall += 2 * self.config.msg_cpu_us * len(by_owner)

        for unit in units:
            self.pending.pop(unit, None)
            self.pending_n[unit] = 0
        self.stats.mprotects += len(units)
        cost = (
            self.config.fault_trap_us
            + len(units) * self.config.mprotect_us
            + stall
            + apply_cost
        )
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=now,
                fault_id=fault_id,
                units=tuple(units),
                writers=len(by_owner),
                exchange_ids=tuple(exchange_ids),
                stall_us=stall,
                cost_us=cost,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=now,
            units=tuple(units),
            writers=len(by_owner),
            exchange_ids=tuple(exchange_ids),
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)


def _build(
    layout: "SharedHeapLayout",
    config: "SimConfig",
    store: "IntervalStore",
    network: "Network",
    stats: "ProtocolStats",
    clocks: "List[Clock]",
    credit: CreditFn,
) -> List[LrcProc]:
    directory = OwnershipDirectory(layout.nunits, config.nprocs)
    procs = [
        SwiProc(
            pid=pid,
            layout=layout,
            config=config,
            store=store,
            network=network,
            stats=stats,
            clock=clocks[pid],
            credit=credit,
        )
        for pid in range(config.nprocs)
    ]
    for p in procs:
        p.peers = procs
        p.directory = directory
    return list(procs)


register(
    ProtocolInfo(
        name="swi",
        description=(
            "single-writer invalidate: one owner per unit, invalidations "
            "on ownership transfer; false sharing ping-pongs ownership"
        ),
        build=_build,
    )
)

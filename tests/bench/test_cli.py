"""CLI runner smoke tests (fast experiments only)."""

import pytest

from repro.bench.cli import COMMANDS, _cells_for, main
from repro.bench.harness import ResultCache


def test_commands_cover_all_experiments():
    assert set(COMMANDS) == {
        "table1", "figure1", "figure2", "figure3", "micro", "ablation",
        "protocols",
    }


def test_micro_via_cli(capsys, tmp_path):
    rc = main(["micro", "--out", str(tmp_path), "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "microbenchmarks" in out
    assert (tmp_path / "micro.txt").exists()


def test_bad_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_bad_jobs_rejected():
    with pytest.raises(SystemExit):
        main(["micro", "--jobs", "0"])


def test_nothing_to_do_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_cells_for_covers_every_sweep_experiment():
    for name in (
        "table1", "figure1", "figure2", "figure3", "ablation", "protocols",
    ):
        assert _cells_for([name]), name
    assert _cells_for(["micro"]) == []  # micro has no sweep cells


def test_unknown_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["--check", "--protocols", "mesi"])


def test_main_restores_cache_configuration(tmp_path):
    before = ResultCache.disk()
    main(["micro", "--cache-dir", str(tmp_path / "cache")])
    assert ResultCache.disk() is before


class TestGoldenFlow:
    """--refresh-golden / --check wired through the CLI (one cheap app)."""

    def test_refresh_then_check_roundtrip(self, tmp_path, capsys):
        gdir = tmp_path / "golden"
        args = ["--only", "Jacobi", "--golden-dir", str(gdir),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(["--refresh-golden"] + args) == 0
        assert (gdir / "Jacobi.json").exists()
        assert main(["--check"] + args) == 0
        assert "golden check OK" in capsys.readouterr().out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        import json

        gdir = tmp_path / "golden"
        args = ["--only", "Jacobi", "--golden-dir", str(gdir),
                "--cache-dir", str(tmp_path / "cache")]
        main(["--refresh-golden"] + args)
        path = gdir / "Jacobi.json"
        entry = json.loads(path.read_text())
        entry["1Kx1K"]["Dyn"]["sync_messages"] += 1
        path.write_text(json.dumps(entry))
        assert main(["--check"] + args) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "sync_messages" in out

    def test_check_missing_baselines_fails(self, tmp_path, capsys):
        rc = main(["--check", "--only", "Jacobi",
                   "--golden-dir", str(tmp_path / "nowhere"),
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 1
        assert "missing baseline" in capsys.readouterr().out

    def test_protocol_baselines_roundtrip(self, tmp_path, capsys):
        # --protocols widens the gate; non-default baselines land in a
        # <protocol>/ subdirectory and check tags cells with [erc].
        gdir = tmp_path / "golden"
        args = ["--only", "Jacobi", "--protocols", "erc",
                "--golden-dir", str(gdir),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(["--refresh-golden"] + args) == 0
        assert (gdir / "erc" / "Jacobi.json").exists()
        assert not (gdir / "Jacobi.json").exists()
        assert main(["--check"] + args) == 0
        assert "golden check OK" in capsys.readouterr().out

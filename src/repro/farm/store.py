"""Content-addressed result store with a pluggable backend and a
claim/lease work queue.

The store holds two things, both keyed by the content-addressed cell key
of :func:`repro.bench.cache.cell_key` (code version + app + dataset +
canonical config):

* **results** -- the same self-describing JSON entries the local disk
  cache writes (:func:`repro.bench.cache.build_entry`), integrity-digested
  and validated on read;
* a **work queue** -- cells submitted for computation, claimed by
  workers under expiring leases.

Because cells are deterministic and identity-hashed, the store is the
*only* coordination a fleet of workers needs: any worker that claims a
cell computes exactly the bytes every other worker would, so the queue
only has to make duplicated work rare, not impossible.  The lease
protocol makes cells *at-most-once-usefully*: a live lease keeps other
workers away, an expired lease (crashed worker) is reclaimed under a new
generation number, and a cell is computed at most once per lease
generation.  A cell whose lease expires ``max_generations`` times is
abandoned as failed rather than looping forever.

Backends:

* :class:`LocalDirBackend` -- wraps the on-disk layout of
  :class:`repro.bench.cache.DiskCache` byte-compatibly (a pre-existing
  cache directory is a warm store and vice versa), with the queue in a
  ``queue/`` subdirectory.  Claims use ``O_CREAT | O_EXCL`` lease files,
  so they are atomic for any number of processes sharing the directory
  (including over NFS-style shared mounts that honor exclusive create).
* :class:`SqliteBackend` -- a single-file SQLite database in WAL mode;
  claims are ``BEGIN IMMEDIATE`` transactions, safe for many concurrent
  writers, and the natural choice when workers share one filesystem or
  the file lives on a network store with proper locking.
"""

from __future__ import annotations

import abc
import contextlib
import json
import os
import pathlib
import re
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.bench.cache import (
    atomic_write_text,
    build_entry,
    dump_entry,
    entry_filename,
    parse_entry,
)
from repro.bench.harness import CaseResult, config_for
from repro.bench.pool import SweepCell, dedupe_cells

#: Queue states persisted by the backends.  ``claimed`` with an expired
#: lease is *effectively* queued again; :meth:`ResultStore.status`
#: reports it as ``expired``.
QUEUE_STATES = ("queued", "claimed", "done", "failed")

#: Default lease duration.  Cells take seconds; a lease an order of
#: magnitude longer means reclaims only ever follow real crashes.
DEFAULT_LEASE_TTL = 300.0

#: Default bound on lease generations per cell: a cell that kills its
#: worker this many times is abandoned as failed, not retried forever.
DEFAULT_MAX_GENERATIONS = 3


def cell_to_json(cell: SweepCell) -> Dict[str, Any]:
    """A sweep cell's queue serialization (identity *and* spelling)."""
    return {
        "app": cell.app,
        "dataset": cell.dataset,
        "label": cell.label,
        "extra": dict(cell.extra),
    }


def cell_from_json(data: Dict[str, Any]) -> SweepCell:
    """Rebuild a sweep cell from :func:`cell_to_json` output."""
    return SweepCell.make(
        data["app"], data["dataset"], data["label"], **data["extra"]
    )


@dataclass(frozen=True)
class Claim:
    """One granted lease on one queued cell."""

    cell: SweepCell
    key: str
    worker: str
    generation: int
    expires: float


@dataclass(frozen=True)
class QueueEntry:
    """One queue row, as the backend stores it."""

    key: str
    seq: int
    cell: SweepCell
    state: str
    worker: Optional[str] = None
    lease_expires: Optional[float] = None
    generation: int = 0
    error: Optional[str] = None


class StoreBackend(abc.ABC):
    """Storage interface behind :class:`ResultStore`.

    Result entries are opaque validated-elsewhere JSON dicts; the queue
    methods implement the claim/lease protocol documented in the module
    docstring.  All methods must be safe to call from many processes
    (and, for the HTTP service, many threads) at once.
    """

    # -- results ------------------------------------------------------
    @abc.abstractmethod
    def load_entry(
        self, app: str, dataset: str, label: str, key: str
    ) -> Optional[Dict[str, Any]]:
        """The stored entry for one cell, or None."""

    @abc.abstractmethod
    def save_entry(
        self, app: str, dataset: str, label: str, key: str,
        entry: Dict[str, Any],
    ) -> None:
        """Store one cell's entry atomically (write-temp+rename or
        upsert); racing writers publish identical bytes, so last wins."""

    @abc.abstractmethod
    def find_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Entry lookup by bare key (the service's raw-cell endpoint)."""

    @abc.abstractmethod
    def result_count(self) -> int:
        """Number of stored result entries."""

    # -- queue --------------------------------------------------------
    @abc.abstractmethod
    def enqueue(self, key: str, cell: SweepCell, seq: int) -> bool:
        """Add one cell to the queue; False when already present (in any
        state -- enqueue never resets a done/failed/claimed row)."""

    @abc.abstractmethod
    def claim(
        self, worker: str, now: float, ttl: float, max_generations: int
    ) -> Optional[Claim]:
        """Claim the next available cell (queued, or claimed with an
        expired lease) under a fresh lease generation; None when nothing
        is claimable.  Cells past ``max_generations`` are marked failed
        as a side effect rather than handed out."""

    @abc.abstractmethod
    def mark_done(self, key: str) -> None:
        """Record that a cell's result is stored."""

    @abc.abstractmethod
    def mark_failed(self, key: str, error: str) -> None:
        """Record a permanent failure (deterministic error or lease
        budget exhausted)."""

    @abc.abstractmethod
    def queue_entries(self) -> List[QueueEntry]:
        """Every queue row (for status reporting and the facade)."""

    def queue_lookup(self, key: str) -> Optional[QueueEntry]:
        """One queue row by key (default: scan; backends may override)."""
        for entry in self.queue_entries():
            if entry.key == key:
                return entry
        return None

    def close(self) -> None:
        """Release backend resources (no-op by default)."""


# ----------------------------------------------------------------------
# Local directory backend
# ----------------------------------------------------------------------
_LEASE_RE = re.compile(r"\.g(\d+)\.lease$")


class LocalDirBackend(StoreBackend):
    """Directory-of-JSON-files backend, byte-compatible with
    :class:`repro.bench.cache.DiskCache`.

    Results live at the directory root under the exact names and bytes
    the disk cache writes.  The queue lives under ``queue/``: one
    ``<key>.cell.json`` item per cell plus one ``<key>.g<N>.lease`` file
    per lease generation.  Exclusive file creation makes lease grants
    atomic; lease files carry ``{worker, expires}`` and fall back to
    ``mtime + ttl`` if a claimer died between creating and filling one.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    @property
    def queue_dir(self) -> pathlib.Path:
        return self.root / "queue"

    # -- results ------------------------------------------------------
    def _entry_path(
        self, app: str, dataset: str, label: str, key: str
    ) -> pathlib.Path:
        return self.root / entry_filename(app, dataset, label, key)

    def load_entry(
        self, app: str, dataset: str, label: str, key: str
    ) -> Optional[Dict[str, Any]]:
        return self._read_json(self._entry_path(app, dataset, label, key))

    def save_entry(
        self, app: str, dataset: str, label: str, key: str,
        entry: Dict[str, Any],
    ) -> None:
        atomic_write_text(
            self._entry_path(app, dataset, label, key), dump_entry(entry)
        )

    def find_entry(self, key: str) -> Optional[Dict[str, Any]]:
        for path in self.root.glob(f"*-{key}.json"):
            entry = self._read_json(path)
            if entry is not None:
                return entry
        return None

    def result_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    @staticmethod
    def _read_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    # -- queue --------------------------------------------------------
    def _item_path(self, key: str) -> pathlib.Path:
        return self.queue_dir / f"{key}.cell.json"

    def _lease_path(self, key: str, generation: int) -> pathlib.Path:
        return self.queue_dir / f"{key}.g{generation}.lease"

    def _latest_lease(
        self, key: str, ttl: float
    ) -> Tuple[int, Optional[str], Optional[float]]:
        """(generation, worker, expires) of the newest lease; generation
        0 when the cell has never been claimed."""
        best_gen, worker, expires = 0, None, None
        for path in self.queue_dir.glob(f"{key}.g*.lease"):
            m = _LEASE_RE.search(path.name)
            if not m:
                continue
            gen = int(m.group(1))
            if gen <= best_gen:
                continue
            data = self._read_json(path) or {}
            best_gen = gen
            worker = data.get("worker")
            expires = data.get("expires")
            if not isinstance(expires, (int, float)):
                # Claimer died between creating and filling the lease
                # file: treat it as a normal lease aged from its mtime.
                try:
                    expires = path.stat().st_mtime + ttl
                except OSError:
                    expires = 0.0
        return best_gen, worker, float(expires) if expires is not None else None

    def enqueue(self, key: str, cell: SweepCell, seq: int) -> bool:
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        item = {
            "key": key,
            "seq": seq,
            "cell": cell_to_json(cell),
            "state": "queued",
            "error": None,
        }
        try:
            fd = os.open(
                self._item_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(item, sort_keys=True, indent=1) + "\n")
        return True

    def claim(
        self, worker: str, now: float, ttl: float, max_generations: int
    ) -> Optional[Claim]:
        for entry in self.queue_entries():
            # "claimed" is derived from lease files; the lease check
            # below decides whether that lease is live or reclaimable.
            if entry.state not in ("queued", "claimed"):
                continue
            gen, _, expires = self._latest_lease(entry.key, ttl)
            if gen > 0 and expires is not None and expires > now:
                continue  # live lease held elsewhere
            if gen >= max_generations:
                self.mark_failed(
                    entry.key,
                    f"abandoned: lease expired {gen} time(s) "
                    f"(max_generations={max_generations})",
                )
                continue
            if self.find_entry(entry.key) is not None:
                # A racing generation already published the result.
                self.mark_done(entry.key)
                continue
            lease_path = self._lease_path(entry.key, gen + 1)
            try:
                fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # lost the race for this generation
            lease = {"worker": worker, "expires": now + ttl,
                     "generation": gen + 1}
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(lease, sort_keys=True) + "\n")
            return Claim(
                cell=entry.cell, key=entry.key, worker=worker,
                generation=gen + 1, expires=now + ttl,
            )
        return None

    def _rewrite_item(self, key: str, state: str, error: Optional[str]) -> None:
        item = self._read_json(self._item_path(key))
        if item is None:
            return
        item["state"] = state
        item["error"] = error
        atomic_write_text(
            self._item_path(key), json.dumps(item, sort_keys=True, indent=1) + "\n"
        )

    def mark_done(self, key: str) -> None:
        self._rewrite_item(key, "done", None)

    def mark_failed(self, key: str, error: str) -> None:
        self._rewrite_item(key, "failed", error)

    def queue_entries(self) -> List[QueueEntry]:
        entries: List[QueueEntry] = []
        if not self.queue_dir.is_dir():
            return entries
        for path in self.queue_dir.glob("*.cell.json"):
            item = self._read_json(path)
            if item is None:
                continue
            try:
                cell = cell_from_json(item["cell"])
            except (KeyError, TypeError):
                continue
            key = str(item.get("key", ""))
            gen, worker, expires = self._latest_lease(key, DEFAULT_LEASE_TTL)
            state = str(item.get("state", "queued"))
            if state == "queued" and gen > 0:
                state = "claimed"
            error = item.get("error")
            entries.append(
                QueueEntry(
                    key=key,
                    seq=int(item.get("seq", 0)),
                    cell=cell,
                    state=state,
                    worker=worker,
                    lease_expires=expires,
                    generation=gen,
                    error=str(error) if error is not None else None,
                )
            )
        entries.sort(key=lambda e: (e.seq, e.key))
        return entries


# ----------------------------------------------------------------------
# SQLite backend
# ----------------------------------------------------------------------
class SqliteBackend(StoreBackend):
    """Single-file SQLite store (WAL journal, immediate-mode claims).

    Every operation opens a short-lived connection, so one backend
    object is safe to share across the service's request threads and a
    path is safe to share across any number of worker processes; WAL
    keeps readers unblocked while writers commit.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        key     TEXT PRIMARY KEY,
        app     TEXT NOT NULL,
        dataset TEXT NOT NULL,
        label   TEXT NOT NULL,
        entry   TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS queue (
        key           TEXT PRIMARY KEY,
        seq           INTEGER NOT NULL,
        cell          TEXT NOT NULL,
        state         TEXT NOT NULL DEFAULT 'queued',
        worker        TEXT,
        lease_expires REAL,
        generation    INTEGER NOT NULL DEFAULT 0,
        error         TEXT
    );
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as con:
            con.executescript(self._SCHEMA)

    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        con = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            con.execute("PRAGMA journal_mode=WAL")
            con.execute("PRAGMA synchronous=NORMAL")
            yield con
            con.commit()
        finally:
            con.close()

    # -- results ------------------------------------------------------
    def load_entry(
        self, app: str, dataset: str, label: str, key: str
    ) -> Optional[Dict[str, Any]]:
        return self.find_entry(key)

    def save_entry(
        self, app: str, dataset: str, label: str, key: str,
        entry: Dict[str, Any],
    ) -> None:
        with self._connect() as con:
            con.execute(
                "INSERT INTO results (key, app, dataset, label, entry) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET entry = excluded.entry",
                (key, app, dataset, label,
                 json.dumps(entry, sort_keys=True)),
            )

    def find_entry(self, key: str) -> Optional[Dict[str, Any]]:
        with self._connect() as con:
            row = con.execute(
                "SELECT entry FROM results WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            data = json.loads(row[0])
        except ValueError:
            return None
        return data if isinstance(data, dict) else None

    def result_count(self) -> int:
        with self._connect() as con:
            row = con.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])

    # -- queue --------------------------------------------------------
    def enqueue(self, key: str, cell: SweepCell, seq: int) -> bool:
        with self._connect() as con:
            cur = con.execute(
                "INSERT OR IGNORE INTO queue (key, seq, cell) VALUES (?, ?, ?)",
                (key, seq, json.dumps(cell_to_json(cell), sort_keys=True)),
            )
        return cur.rowcount > 0

    def claim(
        self, worker: str, now: float, ttl: float, max_generations: int
    ) -> Optional[Claim]:
        while True:
            with self._connect() as con:
                con.execute("BEGIN IMMEDIATE")
                row = con.execute(
                    "SELECT key, cell, state, generation FROM queue "
                    "WHERE state = 'queued' "
                    "   OR (state = 'claimed' AND lease_expires <= ?) "
                    "ORDER BY seq, key LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    return None
                key, cell_json, _state, generation = row
                if generation >= max_generations:
                    con.execute(
                        "UPDATE queue SET state = 'failed', error = ? "
                        "WHERE key = ?",
                        (
                            f"abandoned: lease expired {generation} time(s) "
                            f"(max_generations={max_generations})",
                            key,
                        ),
                    )
                    continue
                done = con.execute(
                    "SELECT 1 FROM results WHERE key = ?", (key,)
                ).fetchone()
                if done is not None:
                    con.execute(
                        "UPDATE queue SET state = 'done', error = NULL "
                        "WHERE key = ?",
                        (key,),
                    )
                    continue
                con.execute(
                    "UPDATE queue SET state = 'claimed', worker = ?, "
                    "lease_expires = ?, generation = generation + 1 "
                    "WHERE key = ?",
                    (worker, now + ttl, key),
                )
            try:
                cell = cell_from_json(json.loads(cell_json))
            except (KeyError, TypeError, ValueError):
                self.mark_failed(key, "unreadable cell spelling")
                continue
            return Claim(
                cell=cell, key=key, worker=worker,
                generation=generation + 1, expires=now + ttl,
            )

    def mark_done(self, key: str) -> None:
        with self._connect() as con:
            con.execute(
                "UPDATE queue SET state = 'done', error = NULL WHERE key = ?",
                (key,),
            )

    def mark_failed(self, key: str, error: str) -> None:
        with self._connect() as con:
            con.execute(
                "UPDATE queue SET state = 'failed', error = ? WHERE key = ?",
                (error, key),
            )

    def queue_entries(self) -> List[QueueEntry]:
        with self._connect() as con:
            rows = con.execute(
                "SELECT key, seq, cell, state, worker, lease_expires, "
                "generation, error FROM queue ORDER BY seq, key"
            ).fetchall()
        entries: List[QueueEntry] = []
        for key, seq, cell_json, state, worker, expires, gen, error in rows:
            try:
                cell = cell_from_json(json.loads(cell_json))
            except (KeyError, TypeError, ValueError):
                continue
            entries.append(
                QueueEntry(
                    key=key, seq=seq, cell=cell, state=state, worker=worker,
                    lease_expires=expires, generation=gen, error=error,
                )
            )
        return entries

    def queue_lookup(self, key: str) -> Optional[QueueEntry]:
        with self._connect() as con:
            row = con.execute(
                "SELECT key, seq, cell, state, worker, lease_expires, "
                "generation, error FROM queue WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        key, seq, cell_json, state, worker, expires, gen, error = row
        try:
            cell = cell_from_json(json.loads(cell_json))
        except (KeyError, TypeError, ValueError):
            return None
        return QueueEntry(
            key=key, seq=seq, cell=cell, state=state, worker=worker,
            lease_expires=expires, generation=gen, error=error,
        )


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
@dataclass
class SubmitReport:
    """What one ``submit`` call did."""

    requested: int = 0
    deduped: int = 0
    already_done: int = 0
    already_queued: int = 0
    enqueued: int = 0

    def summary(self) -> str:
        return (
            f"{self.requested} cells requested, {self.deduped} unique: "
            f"{self.enqueued} enqueued, {self.already_done} already done, "
            f"{self.already_queued} already queued"
        )


@dataclass
class StoreStatus:
    """Point-in-time view of one store."""

    results: int = 0
    queued: int = 0
    claimed: int = 0
    expired: int = 0
    done: int = 0
    failed: int = 0
    failures: List[Tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.results} results; queue: {self.queued} queued, "
            f"{self.claimed} claimed, {self.expired} lease-expired, "
            f"{self.done} done, {self.failed} failed"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "results": self.results,
            "queue": {
                "queued": self.queued,
                "claimed": self.claimed,
                "expired": self.expired,
                "done": self.done,
                "failed": self.failed,
            },
            "failures": [
                {"cell": cell, "error": error} for cell, error in self.failures
            ],
        }


class ResultStore:
    """Typed facade over one :class:`StoreBackend`.

    ``clock`` exists for tests (lease expiry without sleeping); the
    default is the host wall clock, which is safe because lease timing
    only decides *which worker* computes a cell -- the cell's bytes are
    determined by its identity hash alone, so wall-clock nondeterminism
    can never reach a result.
    """

    def __init__(
        self,
        backend: StoreBackend,
        clock: Callable[[], float] = time.time,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_generations: int = DEFAULT_MAX_GENERATIONS,
    ) -> None:
        self.backend = backend
        self.clock = clock
        self.lease_ttl = lease_ttl
        self.max_generations = max_generations
        self.hits = 0
        self.misses = 0

    # -- results ------------------------------------------------------
    def get_result(self, cell: SweepCell) -> Optional[CaseResult]:
        """The stored result of one cell, or None (corrupt or
        digest-mismatched entries count as misses)."""
        key = cell.key
        entry = self.backend.load_entry(cell.app, cell.dataset, cell.label, key)
        if entry is not None:
            try:
                result = parse_entry(entry, key)
            except (ValueError, KeyError, TypeError):
                entry = None
            else:
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put_result(self, cell: SweepCell, result: CaseResult) -> str:
        """Store one cell's result; returns its key.  Idempotent: the
        entry bytes are a function of the cell identity."""
        config = config_for(cell.label, **cell.kwargs)
        entry = build_entry(cell.app, cell.dataset, cell.label, config, result)
        key = str(entry["key"])
        self.backend.save_entry(cell.app, cell.dataset, cell.label, key, entry)
        return key

    def has_result(self, cell: SweepCell) -> bool:
        entry = self.backend.load_entry(
            cell.app, cell.dataset, cell.label, cell.key
        )
        if entry is None:
            return False
        try:
            parse_entry(entry, cell.key)
        except (ValueError, KeyError, TypeError):
            return False
        return True

    # -- queue --------------------------------------------------------
    def submit(self, cells: Sequence[SweepCell]) -> SubmitReport:
        """Enqueue every cell that is neither stored nor already queued."""
        report = SubmitReport(requested=len(cells))
        unique = dedupe_cells(cells)
        report.deduped = len(unique)
        for seq, cell in enumerate(unique):
            key = cell.key
            if self.has_result(cell):
                report.already_done += 1
                # Keep any stale queue row honest without resetting it.
                if self.backend.queue_lookup(key) is not None:
                    self.backend.mark_done(key)
                continue
            if self.backend.enqueue(key, cell, seq):
                report.enqueued += 1
            else:
                report.already_queued += 1
        return report

    def claim(self, worker: str) -> Optional[Claim]:
        """Claim the next available cell for ``worker``, or None."""
        return self.backend.claim(
            worker, self.clock(), self.lease_ttl, self.max_generations
        )

    def complete(self, claim: Claim, result: CaseResult) -> str:
        """Publish a claimed cell's result and retire its queue row."""
        key = self.put_result(claim.cell, result)
        self.backend.mark_done(claim.key)
        return key

    def fail(self, claim: Claim, error: str) -> None:
        """Record a deterministic failure (no retry: the same inputs
        would fail the same way on every worker)."""
        if self.backend.find_entry(claim.key) is not None:
            self.backend.mark_done(claim.key)
            return
        self.backend.mark_failed(claim.key, error)

    # -- reporting ----------------------------------------------------
    def status(self) -> StoreStatus:
        now = self.clock()
        status = StoreStatus(results=self.backend.result_count())
        for entry in self.backend.queue_entries():
            if entry.state == "queued":
                status.queued += 1
            elif entry.state == "claimed":
                if entry.lease_expires is not None and entry.lease_expires <= now:
                    status.expired += 1
                else:
                    status.claimed += 1
            elif entry.state == "done":
                status.done += 1
            elif entry.state == "failed":
                status.failed += 1
                status.failures.append(
                    (str(entry.cell), entry.error or "unknown error")
                )
        return status

    def close(self) -> None:
        self.backend.close()


def open_store(
    spec: Union[str, pathlib.Path],
    clock: Callable[[], float] = time.time,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_generations: int = DEFAULT_MAX_GENERATIONS,
) -> ResultStore:
    """Open a store from a CLI spec.

    ``sqlite:PATH`` or a path ending in ``.sqlite`` / ``.db`` selects
    :class:`SqliteBackend`; anything else is a
    :class:`LocalDirBackend` directory (today's cache layout).
    """
    text = str(spec)
    backend: StoreBackend
    if text.startswith("sqlite:"):
        backend = SqliteBackend(text[len("sqlite:"):])
    elif text.endswith((".sqlite", ".db")):
        backend = SqliteBackend(text)
    else:
        backend = LocalDirBackend(text)
    return ResultStore(
        backend, clock=clock, lease_ttl=lease_ttl,
        max_generations=max_generations,
    )

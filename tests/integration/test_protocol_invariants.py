"""Whole-run protocol invariants, checked over real application runs.

These are the DESIGN.md section-5 invariants that must hold for ANY
workload; they are checked here over several full application runs
(cheap piggybacking on the tiny datasets).
"""

import pytest

from repro.apps.base import run_app
from repro.core.treadmarks import TreadMarks
from repro.sim.config import SimConfig
from repro.sim.network import DATA_CLASSES, MessageClass
from tests.conftest import tiny_app

CASES = ["Jacobi", "MGS", "Water", "ILINK", "TSP"]


def full_run(name, **cfg):
    app, ds = tiny_app(name)
    params = app.params(ds)
    tmk = TreadMarks(
        SimConfig(nprocs=8, **cfg),
        heap_bytes=app.heap_bytes(ds),
        app_name=name,
        dataset=ds,
    )
    handles = app.setup(tmk, ds)
    res = tmk.run(lambda proc: app.worker(proc, handles, params))
    return tmk, res


@pytest.mark.parametrize("name", CASES)
def test_every_exchange_closed_and_paired(name):
    tmk, _ = full_run(name)
    for ex in tmk.network.exchanges:
        assert ex.request_msg >= 0 and ex.reply_msg >= 0
        req = tmk.network.messages[ex.request_msg]
        reply = tmk.network.messages[ex.reply_msg]
        assert req.klass is MessageClass.DIFF_REQUEST
        assert reply.klass is MessageClass.DIFF_REPLY
        assert req.src == reply.dst == ex.requester
        assert req.dst == reply.src == ex.writer


@pytest.mark.parametrize("name", CASES)
def test_useful_words_never_exceed_carried(name):
    tmk, _ = full_run(name)
    for msg in tmk.network.messages:
        if msg.klass in DATA_CLASSES:
            assert 0 <= msg.words_useful <= msg.words_carried


@pytest.mark.parametrize("name", CASES)
def test_fault_exchange_accounting(name):
    tmk, res = full_run(name)
    # Every data-fault's exchange ids exist and reference its requester.
    for rec in res.stats.fault_records:
        if rec.monitoring:
            assert rec.exchange_ids == ()
            continue
        assert len(rec.exchange_ids) >= 1
        for ex_id in rec.exchange_ids:
            assert tmk.network.exchanges[ex_id].requester == rec.proc
    # With request combining, exchanges per fault == distinct writers.
    for rec in res.stats.fault_records:
        if not rec.monitoring:
            assert len(rec.exchange_ids) == rec.writers


@pytest.mark.parametrize("name", ["Jacobi", "Water"])
def test_no_pending_words_left_in_dirty_state(name):
    """Word usefulness totals are consistent: useful + pending-at-end +
    overwritten == carried, per processor tracker conservation."""
    tmk, _ = full_run(name)
    carried = sum(
        m.words_carried
        for m in tmk.network.messages
        if m.klass in DATA_CLASSES
    )
    useful = sum(
        m.words_useful
        for m in tmk.network.messages
        if m.klass in DATA_CLASSES
    )
    pending = sum(lp.tracker.pending_count() for lp in tmk.procs)
    assert useful + pending <= carried


@pytest.mark.parametrize("name", CASES)
def test_clock_monotonicity_and_positive_time(name):
    _, res = full_run(name)
    assert res.time_us > 0
    assert all(t >= 0 for t in res.proc_times_us)
    assert res.time_us == max(res.proc_times_us)

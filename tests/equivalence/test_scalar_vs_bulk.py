"""The scalar-vs-bulk differential gate.

The bulk region-access fast path (:mod:`repro.dsm.lrc`) resolves
faults, twin creation, diff-word usefulness, and clock charges
analytically per touched unit instead of per word.  Its correctness
claim is *exact equivalence*: a run under ``access_mode="bulk"`` must be
bit-identical -- every golden counter, the checksum, the false-sharing
signature, and (traced) the full event stream -- to the same run with
every bulk access decomposed into word-granularity operations
(``access_mode="scalar"``), under every consistency protocol.

This suite is that claim as tests: every application under every
protocol of the zoo, at multiple consistency-unit sizes.  The scalar
runs take the reference decomposition loop, so any divergence localizes
a bug in the fast path's analytic charging (or a protocol whose
overrides the fast path fails to respect -- see
``LrcProc._bulk_write_ready`` and friends).
"""

import random

import numpy as np
import pytest

from repro.apps.base import get_app, run_app
from repro.bench.cache import cell_seed
from repro.bench.golden import GOLDEN_FIELDS, SMALL_DATASETS
from repro.bench.harness import CaseResult, config_for, run_case
from repro.sim.config import DEFAULT_PROTOCOL

APPS = sorted(SMALL_DATASETS)

PROTOCOLS = (DEFAULT_PROTOCOL, "hlrc", "erc", "swi")

#: Unit sizes exercised per protocol.  The default protocol gets the
#: full label sweep; the zoo protocols get the page unit and the
#: dynamic aggregator (the two regimes with distinct bulk-path tiers).
LABELS_FOR = {p: ("4K", "Dyn") for p in PROTOCOLS}
LABELS_FOR[DEFAULT_PROTOCOL] = ("4K", "8K", "16K", "Dyn")

MATRIX = [
    (app, protocol, label)
    for app in APPS
    for protocol in PROTOCOLS
    for label in LABELS_FOR[protocol]
]


def _extra(protocol: str) -> dict:
    return {} if protocol == DEFAULT_PROTOCOL else {"protocol": protocol}


def _case_pair(app: str, protocol: str, label: str):
    ds = SMALL_DATASETS[app]
    bulk = run_case(app, ds, label, **_extra(protocol))
    scalar = run_case(
        app, ds, label, access_mode="scalar", **_extra(protocol)
    )
    return bulk, scalar


def _assert_identical(bulk: CaseResult, scalar: CaseResult) -> None:
    mismatched = {
        f: (getattr(bulk, f), getattr(scalar, f))
        for f in GOLDEN_FIELDS
        if getattr(bulk, f) != getattr(scalar, f)
    }
    assert not mismatched, f"bulk vs scalar drift: {mismatched}"
    assert bulk.signature == scalar.signature


@pytest.mark.parametrize(
    ("app", "protocol", "label"),
    MATRIX,
    ids=[f"{a}-{p}-{lb}" for a, p, lb in MATRIX],
)
def test_bulk_matches_scalar(app, protocol, label):
    bulk, scalar = _case_pair(app, protocol, label)
    _assert_identical(bulk, scalar)


# ----------------------------------------------------------------------
# Trace event streams
# ----------------------------------------------------------------------
def _traced_events(app_name: str, label: str, access_mode: str):
    """The full trace event list of one traced run, seeded exactly like
    the corresponding :func:`run_case` cell."""
    app = get_app(app_name)
    ds = SMALL_DATASETS[app_name]
    config = config_for(label, trace=True, access_mode=access_mode)
    seed = cell_seed(app_name, ds, config)
    np.random.seed(seed)  # detlint: ok(global-random)
    random.seed(seed)  # detlint: ok(global-random)
    res = run_app(app, ds, config)
    return res.trace.events, res


@pytest.mark.parametrize("app", APPS)
def test_trace_streams_identical(app):
    """Traced scalar and bulk runs yield the same event stream, event by
    event (trace events are plain dataclasses: fieldwise comparison).

    Note the global RNG seeds of the two runs differ (the seed hashes
    the config, which includes the access mode) -- equality across that
    difference also re-verifies that no application leaks global-RNG
    state into the simulation.
    """
    bulk_events, bulk_res = _traced_events(app, "4K", "bulk")
    scalar_events, scalar_res = _traced_events(app, "4K", "scalar")
    assert bulk_res.checksum == scalar_res.checksum
    assert len(bulk_events) == len(scalar_events)
    for b, s in zip(bulk_events, scalar_events):
        assert b == s, f"trace divergence at eid {b.eid}: {b} != {s}"


@pytest.mark.parametrize("app", APPS)
def test_traced_run_matches_untraced_counters(app):
    """Tracing is observational *and* the traced bulk run takes the
    reference decomposition loop -- so a traced run reproducing the
    untraced counters ties the fast path (untraced, tiered) to the
    reference loop (traced) on the same cell."""
    _, res = _traced_events(app, "4K", "bulk")
    untraced = run_case(app, SMALL_DATASETS[app], "4K")
    _assert_identical(untraced, CaseResult.from_run(res))

"""Structured access-pattern declarations.

The second pillar of :mod:`repro.analyze`: applications *declare* their
shared-memory access structure -- which processor reads/writes which
element ranges of which shared arrays, in which barrier-delimited phase
-- and the analyzer turns the declaration into page/unit-level
false-sharing predictions **without running the simulator**
(:mod:`repro.analyze.predict`) that are then validated against a traced
run (:mod:`repro.analyze.crosscheck`).

Model
-----
* An :class:`AccessPattern` is an ordered list of :class:`Phase` objects.
  One phase corresponds to one *barrier epoch* of the real program: the
  accesses declared in a phase all execute between the same pair of
  consecutive barriers when the application runs.  That correspondence
  is the soundness contract the cross-checker leans on -- a page
  predicted write-write shared in a phase really is written by several
  processors inside a single dynamic epoch.
* An :class:`Access` is a contiguous word range of the shared heap,
  tagged with the processor, the operation, and a *certainty*: ``must``
  accesses always happen (loop bounds depend only on the dataset and
  processor count), ``may`` accesses are data-dependent (a branch-and-
  bound expansion, a tree traversal).  Predictions use must-writes only,
  which keeps them a lower bound: ``predicted`` conflicts are a subset
  of what the dynamic trace observes, and the dynamic-only remainder is
  tracked explicitly as analyzer gaps (see the crosscheck ratchet).

Resolving declarations to heap addresses needs the exact allocation
layout, which is produced by the application's own ``setup()`` run
against a :class:`LayoutProbe` -- a duck-typed stand-in for
:class:`repro.core.treadmarks.TreadMarks` that performs real allocations
on a real :class:`repro.dsm.address_space.SharedHeapLayout` (through the
same :func:`repro.core.shared.alloc_array` helper the runtime uses) but
cannot run anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.shared import (
    LayoutPlan,
    SharedArray,
    alloc_array,
    plan_slack_bytes,
)
from repro.dsm.address_space import Allocation, SharedHeapLayout
from repro.sim.config import SimConfig

if TYPE_CHECKING:
    from repro.apps.base import Application

READ = "read"
WRITE = "write"

#: An element index: flat int, or an (i, j, ...) tuple for N-D arrays.
IndexLike = Union[int, Tuple[int, ...]]


@dataclass(frozen=True)
class Access:
    """One declared contiguous access to the shared heap."""

    proc: int
    """The accessing processor."""

    op: str
    """``"read"`` or ``"write"``."""

    word0: int
    """First heap word of the range."""

    nwords: int
    """Range length in 4-byte words (always positive)."""

    must: bool = True
    """True when the access provably happens on every run (bounds depend
    only on dataset parameters and the processor count); False for
    data-dependent (``may``) accesses."""

    @property
    def word1(self) -> int:
        """One past the last word of the range."""
        return self.word0 + self.nwords


def _flat(arr: SharedArray, start: IndexLike) -> int:
    """Flat element index of an int or (i, j, ...) index tuple."""
    if isinstance(start, tuple):
        return int(np.ravel_multi_index(start, arr.shape))
    return int(start)


@dataclass
class Phase:
    """One barrier epoch's worth of declared accesses."""

    name: str
    accesses: List[Access] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Declaration helpers (element-level, mirroring SharedArray's API)
    # ------------------------------------------------------------------
    def access(
        self,
        arr: SharedArray,
        op: str,
        proc: int,
        start: IndexLike,
        nelems: int,
        must: bool = True,
    ) -> None:
        """Declare ``nelems`` contiguous elements of ``arr`` starting at
        ``start`` (an int for 1-D arrays or an index tuple)."""
        if op not in (READ, WRITE):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if nelems <= 0:
            raise ValueError(f"nelems must be positive, got {nelems}")
        flat = _flat(arr, start)
        if flat + nelems > arr.size:
            raise IndexError(
                f"access of {nelems} elements at flat {flat} exceeds "
                f"{arr.alloc.name!r} size {arr.size}"
            )
        # One Access per contiguous heap run: a plain array is a single
        # run; a padded array splits at segment boundaries, exactly like
        # the runtime decomposes the same element range.
        for word0, nwords in arr.word_runs(flat, nelems):
            self.accesses.append(
                Access(
                    proc=proc,
                    op=op,
                    word0=word0,
                    nwords=nwords,
                    must=must,
                )
            )

    def read(self, arr: SharedArray, proc: int, start: IndexLike,
             nelems: int, must: bool = True) -> None:
        self.access(arr, READ, proc, start, nelems, must)

    def write(self, arr: SharedArray, proc: int, start: IndexLike,
              nelems: int, must: bool = True) -> None:
        self.access(arr, WRITE, proc, start, nelems, must)

    def read_rows(self, arr: SharedArray, proc: int, i0: int, i1: int,
                  must: bool = True) -> None:
        """Rows ``[i0, i1)`` of a 2-D array, as one contiguous access."""
        self.access(arr, READ, proc, (i0, 0), (i1 - i0) * arr.shape[1], must)

    def write_rows(self, arr: SharedArray, proc: int, i0: int, i1: int,
                   must: bool = True) -> None:
        self.access(arr, WRITE, proc, (i0, 0), (i1 - i0) * arr.shape[1], must)

    def read_all(self, arr: SharedArray, proc: int, must: bool = True) -> None:
        """The whole array (the usual spelling for ``may`` traversals)."""
        self.access(arr, READ, proc, 0 if len(arr.shape) == 1 else
                    (0,) * len(arr.shape), arr.size, must)

    def write_all(self, arr: SharedArray, proc: int, must: bool = True) -> None:
        self.access(arr, WRITE, proc, 0 if len(arr.shape) == 1 else
                    (0,) * len(arr.shape), arr.size, must)


@dataclass
class AccessPattern:
    """The full declared pattern of one (application, dataset, nprocs)."""

    app: str
    dataset: str = ""
    nprocs: int = 0
    phases: List[Phase] = field(default_factory=list)

    def phase(self, name: str) -> Phase:
        """Append and return a new (initially empty) phase."""
        ph = Phase(name=name)
        self.phases.append(ph)
        return ph

    @property
    def n_accesses(self) -> int:
        return sum(len(ph.accesses) for ph in self.phases)


class LayoutProbe:
    """Duck-typed ``TreadMarks`` stand-in for ``Application.setup()``.

    Provides exactly the surface setup code touches -- ``config``,
    ``malloc``, ``array`` -- performing real allocations on a real
    :class:`SharedHeapLayout` so declared accesses resolve to the same
    heap addresses the simulator would use, without constructing
    processors, a network, or a scheduler.
    """

    def __init__(
        self, config: SimConfig, heap_bytes: int,
        layout_plan: Optional[LayoutPlan] = None,
    ) -> None:
        self.config = config
        self.layout_plan = layout_plan
        self.layout = SharedHeapLayout(
            heap_bytes + plan_slack_bytes(layout_plan),
            config.page_size, config.unit_bytes,
        )

    def malloc(self, name: str, nbytes: int,
               page_align: bool = True) -> Allocation:
        return self.layout.malloc(name, nbytes, page_align=page_align)

    def array(self, name: str, shape: IndexLike, dtype: str = "float32",
              page_align: bool = True) -> SharedArray:
        return alloc_array(
            self.layout, name, shape, dtype, page_align,
            plan=self.layout_plan,
        )


@dataclass
class BuiltPattern:
    """An access pattern resolved against a concrete heap layout."""

    pattern: AccessPattern
    layout: SharedHeapLayout
    handles: Dict[str, SharedArray]


def build_pattern(
    app: "Application", dataset: str, nprocs: int = 8,
    layout_plan: Optional[LayoutPlan] = None,
) -> BuiltPattern:
    """Run ``app.setup()`` against a layout probe and collect the app's
    declared access pattern for ``nprocs`` processors.

    ``app`` is an :class:`repro.apps.base.Application` instance whose
    class overrides :meth:`~repro.apps.base.Application.access_pattern`.
    ``layout_plan`` resolves the declaration against a padded layout
    (the advisor's what-if mode): same element ranges, remapped heap
    addresses."""
    cls = type(app)
    if not getattr(cls, "declares_access_pattern", lambda: False)():
        raise NotImplementedError(
            f"{app.name} does not declare an access pattern"
        )
    config = SimConfig(nprocs=nprocs)
    probe = LayoutProbe(config, app.heap_bytes(dataset), layout_plan)
    handles = app.setup(probe, dataset)
    pattern = app.access_pattern(handles, app.params(dataset), nprocs)
    pattern.dataset = dataset
    pattern.nprocs = nprocs
    return BuiltPattern(pattern=pattern, layout=probe.layout, handles=handles)

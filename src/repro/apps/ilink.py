"""Ilink: genetic linkage analysis -- synthetic sharing-pattern
reproduction (Section 5.5).

The real Ilink is a large genetics code with proprietary pedigree
inputs; what the paper's analysis rests on is its *sharing pattern*,
which this workload reproduces (see DESIGN.md, substitution table):

* the pool of sparse *genarrays* lives in shared memory as interleaved
  per-processor blocks assigned round-robin (the master's non-zero
  assignment): every page of the pool is written by every processor,
  fine-grained -- extensive write-write false sharing;
* each block is half *likelihood values* and half *per-element scratch*
  (the sparse-bookkeeping the paper's genarrays carry).  Every
  processor reads the **value** halves of every block (very small read
  granularity, every page accessed by everyone) in a read phase, then
  rewrites its own blocks in a barrier-separated update phase; nobody
  reads scratch remotely.  Every diff therefore mixes read and unread
  words: false sharing appears as **piggybacked useless data on useful
  messages** with almost no useless messages, exactly the paper's Ilink
  profile -- and the phases keep the workload free of happens-before
  races (verified by the :mod:`repro.trace` detector);
* the master additionally sums all values and publishes per-array
  totals in a master-only *results* block that slaves read --
  single-writer faults, giving the ``1`` spike of the false-sharing
  signature next to the ``7`` spike from the pool reads (Figure 3);
* because everyone already touches every page at 4 KB, larger units add
  aggregation without new false sharing: the signature is invariant and
  performance improves monotonically (Figures 1 and 3).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks


def _contribution(g: int, idx: np.ndarray, it: int) -> np.ndarray:
    """Deterministic float32 likelihood contribution per element."""
    x = (idx.astype(np.float32) * np.float32(0.001)
         + np.float32(g * 0.1) + np.float32(it))
    return (np.sin(x) * np.float32(0.5)).astype(np.float32)


def _genarray_sum(vals2d: np.ndarray) -> np.float32:
    """Sum one genarray's value halves ((nblocks, stride) float32):
    per-block float32 row sums folded by numpy's reduction order.
    Shared by the workers, the master, and the reference so the
    checksum folds identically everywhere."""
    return np.float32(
        vals2d.sum(axis=1, dtype=np.float32).sum(dtype=np.float32)
    )


@AppRegistry.register
class Ilink(Application):
    """Master/slave sparse-genarray pool workload."""

    name = "ILINK"
    checksum_rtol = 1e-4

    datasets = {
        # Paper input 'CLP' (2x4x4x4 loci).  length is in words; a block
        # is 2*stride words (stride values + stride scratch).
        "CLP": {"narrays": 8, "length": 2048, "iters": 3, "stride": 4},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return p["narrays"] * p["length"] * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {
            "pool": tmk.array("pool", (p["narrays"], p["length"]), "float32"),
            "results": tmk.array("results", (p["narrays"],), "float32"),
        }

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        pool, results = handles["pool"], handles["results"]
        G, L, iters = params["narrays"], params["length"], params["iters"]
        stride = params["stride"]
        block = 2 * stride
        nblocks = L // block
        P = proc.nprocs
        checksum = 0.0

        bases = np.arange(nblocks, dtype=np.int64) * block
        own_b = np.arange(proc.id, nblocks, P, dtype=np.int64)
        idx2d = bases[:, None] + np.arange(stride, dtype=np.int64)[None, :]

        proc.barrier()
        for it in range(iters):
            # ---- Read phase.  Read the published totals, then walk
            # every genarray reading the value half of every block (tiny
            # strided reads, every page, gathered in block order).
            # Own-block values are kept for the update phase; reads and
            # the owners' updates sit in different barrier epochs so the
            # workload is free of happens-before races (checked by the
            # repro.trace detector).
            if it > 0:
                res = results.read(proc, 0, G).astype(np.float32)
            else:
                res = np.zeros(G, dtype=np.float32)
            own_vals = {}
            for g in range(G):
                vals2d = pool.gather(proc, g * L + bases, stride)
                _genarray_sum(vals2d)
                own_vals[g] = vals2d[own_b]
                # Genetic-likelihood updates are very compute-heavy
                # (the paper's sequential Ilink runs 1128 s).
                proc.compute(flops=1500 * (L // (2 * P)))
            proc.barrier()

            # ---- Update phase: rewrite own blocks (values + scratch).
            for g in range(G):
                new = (own_vals[g] * np.float32(0.9)
                       + _contribution(g, idx2d[own_b], it)
                       + res[g] * np.float32(1e-6)).astype(np.float32)
                scratch = (new * np.float32(0.5)).astype(np.float32)
                pool.scatter(
                    proc, g * L + bases[own_b],
                    np.concatenate([new, scratch], axis=1),
                )
            proc.barrier()

            # ---- Master phase: sum every genarray's values, publish.
            if proc.id == 0:
                total = np.float32(0.0)
                sums = np.empty(G, dtype=np.float32)
                for g in range(G):
                    acc = _genarray_sum(
                        pool.gather(proc, g * L + bases, stride)
                    )
                    sums[g] = acc
                    total = np.float32(total + acc)
                    proc.compute(flops=L // 2)
                results.write(proc, 0, sums)
                checksum = float(total)
            proc.barrier()

        digests = handles.setdefault("_digest", {})
        if proc.id == 0:
            digests["value"] = checksum
        proc.barrier(barrier_id=992)
        return digests["value"]

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: round-robin block ownership means every
        pool page is must-written by every processor in each update
        epoch -- all pool pages are predicted conflict pages, while the
        master-only results block stays single-writer."""
        from repro.analyze.access import AccessPattern

        pool, results = handles["pool"], handles["results"]
        G, L = params["narrays"], params["length"]
        stride = params["stride"]
        block = 2 * stride
        nblocks = L // block
        pat = AccessPattern(app=self.name)

        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:read")
            for p in range(nprocs):
                if it > 0:
                    ph.read(results, p, 0, G)
                for g in range(G):
                    for b in range(nblocks):
                        ph.read(pool, p, (g, b * block), stride)
            ph = pat.phase(f"iter{it}:update")
            for p in range(nprocs):
                for g in range(G):
                    for b in range(p, nblocks, nprocs):
                        ph.write(pool, p, (g, b * block), block)
            ph = pat.phase(f"iter{it}:master")
            for g in range(G):
                for b in range(nblocks):
                    ph.read(pool, 0, (g, b * block), stride)
            ph.write(results, 0, 0, G)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        G, L, iters = p["narrays"], p["length"], p["iters"]
        stride = p["stride"]
        block = 2 * stride
        nblocks = L // block
        pool = np.zeros((G, L), dtype=np.float32)
        sums = np.zeros(G, dtype=np.float32)
        checksum = 0.0
        idx2d = (np.arange(nblocks, dtype=np.int64)[:, None] * block
                 + np.arange(stride, dtype=np.int64)[None, :])
        for it in range(iters):
            res = sums.copy() if it > 0 else np.zeros(G, dtype=np.float32)
            for g in range(G):
                blocks = pool[g].reshape(nblocks, block)
                new = (blocks[:, :stride] * np.float32(0.9)
                       + _contribution(g, idx2d, it)
                       + res[g] * np.float32(1e-6)).astype(np.float32)
                blocks[:, :stride] = new
                blocks[:, stride:block] = new * np.float32(0.5)
            total = np.float32(0.0)
            for g in range(G):
                acc = _genarray_sum(pool[g].reshape(nblocks, block)[:, :stride])
                sums[g] = acc
                total = np.float32(total + acc)
            checksum = float(total)
        return checksum

"""Worker-loop mechanics plus the two-process drain acceptance test.

The acceptance test is the PR's core claim made executable: two
independent ``python -m repro.farm worker`` processes pointed at one
sqlite store drain a submitted sweep, every cell is computed exactly
once (all lease generations stay at 1), and the stored results match
the serial golden baselines field-for-field.
"""

import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, List

import pytest

from repro.bench.golden import GOLDEN_FIELDS
from repro.bench.harness import CaseResult
from repro.bench.pool import SweepCell
from repro.faults.channel import DroppedMessageError
from repro.farm import submit, worker
from repro.farm.store import ResultStore, open_store

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN_JACOBI = REPO_ROOT / "benchmarks" / "golden" / "Jacobi.json"


def _fake_run_case(results: Dict[str, CaseResult]):
    def fake(app: str, dataset: str, label: str, **kwargs) -> CaseResult:
        return results[label]

    return fake


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    st = open_store(str(tmp_path / "store"), lease_ttl=60.0)
    yield st
    st.close()


class TestWorkMechanics:
    def test_drains_queue_and_publishes_results(
        self, store, jacobi_cells, jacobi_results, monkeypatch
    ):
        monkeypatch.setattr(
            worker, "run_case", _fake_run_case(jacobi_results)
        )
        store.submit(list(jacobi_cells.values()))
        lines: List[str] = []
        report = worker.work(store, worker_id="w0", progress=lines.append)
        assert report.claimed == len(jacobi_cells)
        assert report.completed == len(jacobi_cells)
        assert report.failed == 0
        assert "w0" in report.summary()
        assert any(line.startswith("done ") for line in lines)
        status = store.status()
        assert status.done == len(jacobi_cells)
        assert status.queued == 0
        for label, cell in jacobi_cells.items():
            got = store.get_result(cell)
            assert got == jacobi_results[label]
        # A second worker finds nothing left to do.
        again = worker.work(store, worker_id="w1")
        assert again.claimed == 0

    def test_max_cells_bounds_the_loop(
        self, store, jacobi_cells, jacobi_results, monkeypatch
    ):
        monkeypatch.setattr(
            worker, "run_case", _fake_run_case(jacobi_results)
        )
        store.submit(list(jacobi_cells.values()))
        report = worker.work(store, worker_id="w0", max_cells=2)
        assert report.claimed == 2
        assert store.status().queued == len(jacobi_cells) - 2

    def test_follow_polls_until_max_polls(self, store):
        naps: List[float] = []
        report = worker.work(
            store,
            worker_id="w0",
            follow=True,
            poll_seconds=0.01,
            max_polls=3,
            sleep=naps.append,
        )
        assert report.claimed == 0
        # Poll 3 breaks before sleeping, so two naps for three polls.
        assert naps == [0.01, 0.01]

    def test_deterministic_failure_is_not_retried(
        self, store, jacobi_cells, jacobi_results, monkeypatch
    ):
        def explode(app, dataset, label, **kwargs):
            raise DroppedMessageError(7, "diff_request", 3)

        monkeypatch.setattr(worker, "run_case", explode)
        cell = jacobi_cells["4K"]
        store.submit([cell])
        report = worker.work(store, worker_id="w0")
        assert report.claimed == 1
        assert report.completed == 0
        assert report.failed == 1
        assert "failed" in report.summary()
        status = store.status()
        assert status.failed == 1
        assert "budget exhausted" in status.failures[0][1]
        # Even a healthy worker never sees the cell again.
        monkeypatch.setattr(
            worker, "run_case", _fake_run_case(jacobi_results)
        )
        again = worker.work(store, worker_id="w1")
        assert again.claimed == 0
        assert store.get_result(cell) is None

    def test_default_worker_id_mentions_pid(self):
        assert str(os.getpid()) in worker.default_worker_id()

    def test_run_claim_forwards_cell_kwargs(self, store, monkeypatch):
        seen = {}

        def spy(app, dataset, label, **kwargs):
            seen.update(app=app, dataset=dataset, label=label, **kwargs)
            raise DroppedMessageError(1, "page_request", 1)

        monkeypatch.setattr(worker, "run_case", spy)
        cell = SweepCell.make("Jacobi", "1Kx1K", "4K", unit_pages=2)
        store.submit([cell])
        worker.work(store, worker_id="w0")
        assert seen == {
            "app": "Jacobi", "dataset": "1Kx1K", "label": "4K",
            "unit_pages": 2,
        }


def _farm_cli(args: List[str], cwd: pathlib.Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.farm", *args],
        cwd=str(cwd), env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def test_two_cli_workers_drain_sqlite_store_to_golden(tmp_path):
    """Acceptance: two concurrent worker processes produce exactly the
    serial golden numbers, with every cell computed on generation 1."""
    store_spec = str(tmp_path / "farm.sqlite")
    cells = submit.sweep_cells(["golden"], apps=["Jacobi"])
    assert len(cells) == 4  # Jacobi x 1Kx1K x (4K, 8K, 16K, Dyn)

    proc = _farm_cli(
        ["submit", "golden", "--apps", "Jacobi", "--store", store_spec],
        cwd=tmp_path,
    )
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    assert "4 enqueued" in out

    workers = [
        _farm_cli(["worker", "--id", f"w{i}", "--store", store_spec],
                  cwd=tmp_path)
        for i in range(2)
    ]
    reports = [p.communicate(timeout=600) for p in workers]
    for p, (out, err) in zip(workers, reports, strict=True):
        assert p.returncode == 0, err

    claimed = sum(
        int(out.split(" cells claimed")[0].rsplit(" ", 1)[-1])
        for out, _ in reports
    )
    assert claimed == 4  # no cell claimed twice across the fleet

    store = open_store(store_spec)
    try:
        status = store.status()
        assert status.results == 4
        assert status.done == 4
        assert status.failed == 0
        for entry in store.backend.queue_entries():
            assert entry.state == "done"
            assert entry.generation == 1  # single lease generation each
        golden = json.loads(GOLDEN_JACOBI.read_text())
        for cell in cells:
            result = store.get_result(cell)
            assert result is not None, f"missing {cell}"
            expected = golden[cell.dataset][cell.label]
            for field in GOLDEN_FIELDS:
                assert getattr(result, field) == expected[field], (
                    f"{cell}: {field}"
                )
    finally:
        store.close()

"""Simulated-cluster substrate for the DSM reproduction.

This package provides the deterministic execution substrate that stands in
for the paper's hardware platform (8 x 166 MHz Pentium, 100 Mbps switched
Ethernet, UDP/IP):

* :mod:`repro.sim.config` -- the cost model, calibrated against the
  latency/bandwidth figures measured in Section 5.1 of the paper.
* :mod:`repro.sim.clock` -- per-processor simulated clocks.
* :mod:`repro.sim.network` -- message cost accounting and the event log.
* :mod:`repro.sim.engine` -- a conservative discrete-event scheduler that
  runs one simulated processor at a time (threads in strict ping-pong with
  the scheduler), switching only at synchronization operations.

The substrate is deterministic: given the same program and configuration it
produces bit-identical simulated schedules, message counts, and clocks.
"""

from repro.sim.config import SimConfig
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Op, OpKind, Resume, DeadlockError, ProcContext
from repro.sim.network import Network, MessageRecord, MessageClass

__all__ = [
    "SimConfig",
    "Clock",
    "Engine",
    "Op",
    "OpKind",
    "Resume",
    "DeadlockError",
    "ProcContext",
    "Network",
    "MessageRecord",
    "MessageClass",
]

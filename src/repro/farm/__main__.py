"""``python -m repro.farm`` entry point."""

from __future__ import annotations

import sys

from repro.farm.cli import main

if __name__ == "__main__":
    sys.exit(main())

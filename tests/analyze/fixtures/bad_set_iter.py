"""detlint fixture: set-iter positives (4 findings; exact lines pinned
by tests/analyze/test_detlint.py)."""

PAGES = {4096, 8192, 16384}


def drain(pending, table):
    out = []
    for unit in {1, 2, 3}:  # finding: set literal
        out.append(unit)
    converted = set(pending)
    acc = 0
    for unit in converted:  # finding: name assigned a set
        acc += unit
    out.extend(
        x * 2 for x in converted | {99}  # finding: set union operator
    )
    names = []
    for key in table.keys():  # finding: dict key view
        names.append(key)
    return out, acc, names

"""Modified Gram-Schmidt orthonormalization (Section 5.5).

``nvec`` vectors of dimension ``dim`` are distributed cyclically.  Each
iteration ``k``: the owner of vector ``k`` normalizes it (the pivot),
everyone synchronizes at a barrier, then every processor orthogonalizes
its own vectors ``j > k`` against the pivot.

Paper behaviour being reproduced -- the one *dramatic* degradation in
the study:

* write granularity == read granularity == one vector.  With the
  ``1Kx1K`` input a vector is exactly the 4 KB page, so at 4 KB there is
  neither false sharing nor useless data;
* at 8 / 16 KB, 2 / 4 cyclically-owned vectors share a unit, so **every
  unit is written concurrently by multiple processors**: a processor
  writing its own vector faults and pulls useless diffs from every
  co-located writer, and reading the pivot pulls useless diffs from the
  pivot's unit co-writers.  Useless messages explode (the paper plots
  MGS on a log scale) and the false-sharing signature shifts hard right;
* the dynamic scheme cannot help ("there is no repetition in any
  processor's data fetch pattern") but also does not hurt: it matches
  the 4 KB static page.

Dataset dims: the vector length keeps the paper's vector-bytes/page
ratio (``1Kx1K`` -> 4 KB vectors, ``2Kx2K`` -> 8 KB, ``1Kx4K`` -> 16 KB);
the vector count is scaled down for runtime.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks


def _initial_vectors(nvec: int, dim: int) -> np.ndarray:
    """Deterministic well-conditioned input set."""
    rng = np.random.default_rng(12345)
    v = rng.standard_normal((nvec, dim)).astype(np.float32)
    v += np.eye(nvec, dim, dtype=np.float32) * 4.0
    return v


def _mgs_reference(v: np.ndarray) -> np.ndarray:
    """Sequential modified Gram-Schmidt in float32 (matching the DSM
    arithmetic)."""
    v = v.copy()
    n = v.shape[0]
    for k in range(n):
        norm = np.float32(np.sqrt(np.float32((v[k] * v[k]).sum())))
        v[k] = v[k] / norm
        for j in range(k + 1, n):
            dot = np.float32((v[j] * v[k]).sum())
            v[j] = v[j] - dot * v[k]
    return v


@AppRegistry.register
class MGS(Application):
    """Modified Gram-Schmidt with cyclic vector distribution."""

    name = "MGS"
    checksum_rtol = 1e-4

    datasets = {
        # Paper 1Kx1K: vector = 1024 float32 = 4 KB = one page.
        "1Kx1K": {"nvec": 96, "dim": 1024},
        # Paper 2Kx2K: vector = 2048 float32 = 8 KB.
        "2Kx2K": {"nvec": 96, "dim": 2048},
        # Paper 1Kx4K: vector = 4096 float32 = 16 KB.
        "1Kx4K": {"nvec": 96, "dim": 4096},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return p["nvec"] * p["dim"] * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {"vectors": tmk.array("vectors", (p["nvec"], p["dim"]), "float32")}

    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        vectors = handles["vectors"]
        nvec, dim = params["nvec"], params["dim"]

        # Distributed initialization: owners write their own vectors.
        init = _initial_vectors(nvec, dim)
        for j in range(proc.id, nvec, proc.nprocs):
            vectors.write_row(proc, j, init[j])
        proc.barrier()

        for k in range(nvec):
            if k % proc.nprocs == proc.id:
                pivot = vectors.read_row(proc, k)
                norm = np.float32(np.sqrt(np.float32((pivot * pivot).sum())))
                proc.compute(flops=2 * dim)
                vectors.write_row(proc, k, pivot / norm)
            proc.barrier()
            pivot = vectors.read_row(proc, k)
            for j in range(k + 1, nvec):
                if j % proc.nprocs != proc.id:
                    continue
                vj = vectors.read_row(proc, j)
                dot = np.float32((vj * pivot).sum())
                proc.compute(flops=4 * dim)
                vectors.write_row(proc, j, vj - dot * pivot)

        # Each processor checks orthonormality of its own vectors.
        local = 0.0
        for j in range(proc.id, nvec, proc.nprocs):
            vj = vectors.read_row(proc, j).astype(np.float64)
            local += float(np.abs(vj).sum())
        return self.collect_checksum(proc, handles, local)

    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        basis = _mgs_reference(_initial_vectors(p["nvec"], p["dim"]))
        return float(np.abs(basis.astype(np.float64)).sum())

    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: cyclically-owned whole-vector accesses.

        Epoch layout follows the worker's barrier placement: epoch ``k``
        (after the pivot-``k`` barrier) holds everyone's pivot read, the
        owners' orthogonalization rewrites of vectors ``j > k``, *and*
        the next pivot's normalization -- the loop's ``k+1`` normalize
        runs before its barrier, i.e. inside epoch ``k``."""
        from repro.analyze.access import AccessPattern

        v = handles["vectors"]
        nvec = params["nvec"]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for j in range(nvec):
            ph.write_rows(v, j % nprocs, j, j + 1)
        ph = pat.phase("normalize0")
        ph.read_rows(v, 0, 0, 1)
        ph.write_rows(v, 0, 0, 1)
        for k in range(nvec):
            ph = pat.phase(f"orth{k}")
            for p in range(nprocs):
                ph.read_rows(v, p, k, k + 1)  # the pivot
            for j in range(k + 1, nvec):
                owner = j % nprocs
                ph.read_rows(v, owner, j, j + 1)
                ph.write_rows(v, owner, j, j + 1)
            if k + 1 < nvec:
                owner = (k + 1) % nprocs
                ph.read_rows(v, owner, k + 1, k + 2)
                ph.write_rows(v, owner, k + 1, k + 2)
        ph = pat.phase("checksum")
        for j in range(nvec):
            ph.read_rows(v, j % nprocs, j, j + 1)
        return pat

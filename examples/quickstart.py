"""Quickstart: a first program on the simulated TreadMarks DSM.

Runs a tiny producer/consumer program on 4 simulated processors, showing
the core API (shared arrays, barriers, locks) and the instrumentation
every run produces (simulated time, message and data breakdowns, the
false-sharing signature).

    python examples/quickstart.py
"""

import numpy as np

from repro.core import SimConfig, TreadMarks


def main() -> None:
    # A simulated 4-node cluster, 4 KB consistency unit (the paper's
    # baseline platform is SimConfig() with nprocs=8).
    config = SimConfig(nprocs=4, unit_pages=1)
    tmk = TreadMarks(config, heap_bytes=1 << 20)

    # Shared arrays live in the DSM heap (page-aligned like Tmk_malloc).
    grid = tmk.array("grid", (64, 1024), dtype="float32")
    totals = tmk.array("totals", (4,), dtype="float32")

    def worker(proc) -> float:
        rows = 64 // proc.nprocs
        lo = proc.id * rows

        # Each processor initializes and relaxes its own band.
        band = np.full((rows, 1024), float(proc.id + 1), dtype=np.float32)
        grid.write_rows(proc, lo, band)
        proc.barrier()

        # Read the neighbour's boundary row -- this faults, and the DSM
        # fetches a diff from the single concurrent writer.
        neighbour = (proc.id + 1) % proc.nprocs
        boundary = grid.read_row(proc, neighbour * rows)
        proc.compute(flops=1024 * rows)

        # Lock-protected reduction into a shared slot.
        proc.acquire(1)
        totals.write(proc, proc.id, np.array([boundary.sum()], np.float32))
        proc.release(1)
        proc.barrier()

        if proc.id == 0:
            return float(totals.read(proc, 0, proc.nprocs).sum())
        return 0.0

    result = tmk.run(worker)

    print(f"checksum                 : {result.checksum}")
    print(f"simulated execution time : {result.time_seconds * 1e3:.2f} ms")
    c = result.comm
    print(f"messages                 : {c.total_messages} "
          f"(useful {c.useful_messages}, useless {c.useless_messages}, "
          f"sync {c.sync_messages})")
    print(f"data                     : {c.total_bytes} bytes "
          f"({c.useless_bytes} useless, "
          f"{c.piggybacked_useless_bytes} piggybacked)")
    print(f"faults                   : {result.stats.faults}, "
          f"twins {result.stats.twins}, diffs {result.stats.diffs_created}")
    print(f"false-sharing signature  : "
          f"{ {k: tuple(round(x, 2) for x in v) for k, v in result.signature.normalized().items()} }")


if __name__ == "__main__":
    main()

"""Parallel sweep engine: dedup, cache economics, serial == parallel."""

import pytest

from repro.bench.cache import DiskCache
from repro.bench.harness import ResultCache
from repro.bench.pool import SweepCell, dedupe_cells, run_cells


@pytest.fixture
def isolated_cache(tmp_path):
    """Fresh in-memory + on-disk cache, restored afterwards."""
    old = ResultCache.disk()
    ResultCache.clear()
    disk = DiskCache(tmp_path / "cache")
    ResultCache.configure(disk)
    yield disk
    ResultCache.configure(old)
    ResultCache.clear()


CELLS = [SweepCell.make("Jacobi", "1Kx1K", label) for label in ("4K", "8K")]


class TestSweepCell:
    def test_kwargs_roundtrip(self):
        c = SweepCell.make("ILINK", "CLP", "Dyn", max_group_pages=2)
        assert c.kwargs == {"max_group_pages": 2}
        assert "max_group_pages=2" in str(c)

    def test_dedupe_collapses_equivalent_spellings(self):
        cells = [
            SweepCell.make("Jacobi", "1Kx1K", "4K"),
            SweepCell.make("Jacobi", "1Kx1K", "4K", unit_pages=1),  # same config
            SweepCell.make("Jacobi", "1Kx1K", "8K"),
        ]
        assert len(dedupe_cells(cells)) == 2

    def test_dedupe_keeps_distinct_extras(self):
        cells = [
            SweepCell.make("ILINK", "CLP", "Dyn", max_group_pages=2),
            SweepCell.make("ILINK", "CLP", "Dyn", max_group_pages=8),
        ]
        assert len(dedupe_cells(cells)) == 2


class TestRunCells:
    def test_serial_fills_both_cache_layers(self, isolated_cache):
        report = run_cells(CELLS, jobs=1)
        assert report.ran == 2 and report.cached == 0
        assert isolated_cache.stores == 2
        again = run_cells(CELLS, jobs=1)
        assert again.ran == 0 and again.cached == 2

    def test_parallel_identical_to_serial(self, isolated_cache, tmp_path):
        """The acceptance property: a --jobs N sweep produces
        counter-for-counter identical results to the serial run."""
        run_cells(CELLS, jobs=2)
        parallel = {
            c.label: ResultCache.get(c.app, c.dataset, c.label) for c in CELLS
        }
        ResultCache.configure(DiskCache(tmp_path / "other"))
        ResultCache.clear()
        run_cells(CELLS, jobs=1)
        serial = {
            c.label: ResultCache.get(c.app, c.dataset, c.label) for c in CELLS
        }
        assert parallel == serial  # dataclass equality: every field exact

    def test_parallel_results_land_on_disk(self, isolated_cache):
        run_cells(CELLS, jobs=2)
        assert isolated_cache.stores == 2
        ResultCache.clear()  # next invocation: disk hits only
        report = run_cells(CELLS, jobs=2)
        assert report.ran == 0 and report.cached == 2
        assert isolated_cache.hits == 2

    def test_progress_callback_sees_runs(self, isolated_cache):
        lines = []
        run_cells(CELLS, jobs=1, progress=lines.append)
        assert any("Jacobi/1Kx1K@4K" in line for line in lines)

    def test_report_summary_mentions_economics(self, isolated_cache):
        report = run_cells(CELLS, jobs=1)
        assert "2 unique" in report.summary()
        assert "2 run" in report.summary()

"""The key correctness invariant (DESIGN.md #1): every application
produces the same result under every consistency configuration, and
matches its sequential reference."""

import pytest

from repro.apps.base import run_app
from repro.sim.config import SimConfig
from tests.conftest import ALL_APPS, UNIT_CONFIGS, checksum_close, tiny_app


@pytest.mark.parametrize("name", ALL_APPS)
@pytest.mark.parametrize("unit", sorted(UNIT_CONFIGS))
def test_coherence_invariance(name, unit):
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SimConfig(nprocs=8, **UNIT_CONFIGS[unit]))
    assert checksum_close(app, res.checksum, ref), (
        name,
        unit,
        res.checksum,
        ref,
    )


@pytest.mark.parametrize("name", ALL_APPS)
def test_odd_processor_counts(name):
    """Partitioning must be correct when nothing divides evenly."""
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SimConfig(nprocs=3))
    assert checksum_close(app, res.checksum, ref), (res.checksum, ref)

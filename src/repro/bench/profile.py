"""Hot-path profiler for sweep cells: where does wall-clock go?

    python -m repro.bench profile
    python -m repro.bench profile --profile-case Barnes,32K,4K

Runs one (application, dataset, unit-label) cell once with

* a :mod:`cProfile` profiler attached to **every engine worker thread**
  (application and protocol code runs on those threads, so a main-thread
  profiler would see almost nothing) plus the main thread, aggregated
  into one top-N-by-cumulative-time table of real wall-clock cost; and
* the :mod:`repro.trace` recorder, whose barrier arrive/depart events
  attribute the run's *simulated* microseconds (and fault / diff /
  message counts) to per-barrier-epoch phases -- the same hooks the
  Chrome-trace exporter consumes, so profiling adds no new
  instrumentation to the protocol layer.

The profiler is observational: the report ends with the cell's golden
counters, and ``tests/bench/test_profile_smoke.py`` asserts they equal
an unprofiled run of the same cell.  Output lands in
``repro_results/profile/`` as both ``.txt`` (human table) and ``.json``.
"""

from __future__ import annotations

import bisect
import cProfile
import io
import json
import pathlib
import pstats
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.apps.base import get_app, run_app
from repro.bench.harness import CaseResult, config_for

#: Default cell: the heaviest full-size figure-1 configuration.
DEFAULT_CASE = "Barnes,32K,4K"
#: Default output directory (under the repository root).
DEFAULT_OUT = pathlib.Path("repro_results") / "profile"
#: Rows in the cumulative-time table.
TOP_N = 20


@dataclass
class PhaseRow:
    """Aggregates of one barrier epoch (one paper 'phase')."""

    epoch: int
    busy_us: float = 0.0
    """Simulated processor-time between the previous barrier departure
    and this epoch's arrival, summed over processors."""
    faults: int = 0
    diff_creates: int = 0
    messages: int = 0


@dataclass
class ProfileReport:
    """Everything the profile command measured for one cell."""

    app: str
    dataset: str
    label: str
    wall_s: float
    case: CaseResult
    top: List[Tuple[str, int, float, float]]
    """(function, ncalls, tottime_s, cumtime_s), cumulative-descending."""
    phases: List[PhaseRow] = field(default_factory=list)
    tail_busy_us: float = 0.0
    """Simulated busy time after the last barrier (checksum epilogue)."""

    # ------------------------------------------------------------------
    def render(self) -> str:
        out = io.StringIO()
        cell = f"{self.app}/{self.dataset}/{self.label}"
        out.write(f"profile {cell}: {self.wall_s:.2f}s wall\n\n")
        out.write(f"top {TOP_N} by cumulative wall-clock (all threads)\n")
        out.write(f"{'cum_s':>8} {'tot_s':>8} {'ncalls':>9}  function\n")
        for name, ncalls, tot, cum in self.top:
            out.write(f"{cum:8.3f} {tot:8.3f} {ncalls:9d}  {name}\n")
        out.write("\nper-phase simulated cost (barrier epochs)\n")
        out.write(
            f"{'epoch':>5} {'busy_ms':>10} {'faults':>7} "
            f"{'diffs':>6} {'msgs':>7}\n"
        )
        for ph in self.phases:
            out.write(
                f"{ph.epoch:5d} {ph.busy_us / 1000.0:10.2f} "
                f"{ph.faults:7d} {ph.diff_creates:6d} {ph.messages:7d}\n"
            )
        if self.tail_busy_us:
            out.write(
                f"{'tail':>5} {self.tail_busy_us / 1000.0:10.2f}\n"
            )
        c = self.case
        out.write(
            f"\ncounters: time_us={c.time_us} faults={c.faults} "
            f"msgs={c.total_messages} bytes={c.total_bytes} "
            f"checksum={c.checksum}\n"
        )
        return out.getvalue()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "dataset": self.dataset,
            "label": self.label,
            "wall_s": self.wall_s,
            "top": [
                {"function": n, "ncalls": c, "tottime_s": t, "cumtime_s": u}
                for n, c, t, u in self.top
            ],
            "phases": [
                {
                    "epoch": p.epoch,
                    "busy_us": p.busy_us,
                    "faults": p.faults,
                    "diff_creates": p.diff_creates,
                    "messages": p.messages,
                }
                for p in self.phases
            ],
            "tail_busy_us": self.tail_busy_us,
            "counters": self.case.to_json_dict(),
        }


# ----------------------------------------------------------------------
def _profiled_run(app_name: str, dataset: str, label: str):
    """Run one cell with a profiler on every engine thread; returns
    (RunResult, list of per-thread profiles)."""
    from repro.sim.engine import Engine

    profiles: List[cProfile.Profile] = []
    orig = Engine._thread_body

    def wrapped(self: Engine, ctx, fn) -> None:  # type: ignore[no-untyped-def]
        prof = cProfile.Profile()
        profiles.append(prof)

        def run(c) -> None:  # type: ignore[no-untyped-def]
            prof.enable()
            try:
                fn(c)
            finally:
                prof.disable()

        orig(self, ctx, run)

    main_prof = cProfile.Profile()
    profiles.append(main_prof)
    Engine._thread_body = wrapped  # type: ignore[method-assign]
    try:
        main_prof.enable()
        try:
            res = run_app(
                get_app(app_name), dataset, config_for(label, trace=True)
            )
        finally:
            main_prof.disable()
    finally:
        Engine._thread_body = orig  # type: ignore[method-assign]
    return res, profiles


def _top_rows(
    profiles: List[cProfile.Profile], top_n: int
) -> Tuple[List[Tuple[str, int, float, float]], float]:
    """Aggregate thread profiles into (rows, total wall seconds)."""
    stats = pstats.Stats(profiles[0], stream=io.StringIO())
    for prof in profiles[1:]:
        stats.add(prof)
    rows: List[Tuple[str, int, float, float]] = []
    for (fname, lineno, func), (
        _cc,
        nc,
        tt,
        ct,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        short = pathlib.Path(fname).name if fname != "~" else "builtin"
        rows.append((f"{short}:{lineno}:{func}", nc, tt, ct))
    # Cumulative-descending, then name: a total order, so equal-cost
    # rows render in a stable order.
    rows.sort(key=lambda r: (-r[3], r[0]))
    total = getattr(stats, "total_tt", 0.0)
    return rows[:top_n], float(total)


def _phase_rows(trace) -> Tuple[List[PhaseRow], float]:  # type: ignore[no-untyped-def]
    """Fold trace events into per-barrier-epoch aggregates."""
    arrives = trace.by_kind("barrier_arrive")
    departs = trace.by_kind("barrier_depart")
    if not arrives:
        return [], 0.0
    # Epoch k of processor p spans from p's depart of barrier k-1 (or 0)
    # to its arrival at barrier k; boundaries are per-proc arrival times.
    by_proc_arrive: Dict[int, List[float]] = {}
    by_proc_depart: Dict[int, List[float]] = {}
    for ev in arrives:
        by_proc_arrive.setdefault(ev.proc, []).append(ev.ts_us)
    for ev in departs:
        by_proc_depart.setdefault(ev.proc, []).append(ev.wake_ts_us)
    nepochs = max(len(ts) for ts in by_proc_arrive.values())
    phases = [PhaseRow(epoch=i) for i in range(nepochs)]
    tail = 0.0
    for proc, ats in by_proc_arrive.items():
        dts = by_proc_depart.get(proc, [])
        prev = 0.0
        for i, at in enumerate(ats):
            phases[i].busy_us += at - prev
            prev = dts[i] if i < len(dts) else at
        # Work after the final departure (checksum epilogue).
        last = trace.events[-1].ts_us if trace.events else prev
        if last > prev:
            tail += last - prev
    for kind, attr in (
        ("fault", "faults"),
        ("diff_create", "diff_creates"),
        ("message", "messages"),
    ):
        for ev in trace.by_kind(kind):
            ats = by_proc_arrive.get(ev.proc)
            if not ats:
                continue
            i = bisect.bisect_left(ats, ev.ts_us)
            if i < nepochs:
                setattr(
                    phases[i], attr, getattr(phases[i], attr) + 1
                )
    return phases, tail


# ----------------------------------------------------------------------
def run_profile(case_spec: str) -> ProfileReport:
    """Profile one ``APP,DATASET,LABEL`` cell."""
    parts = case_spec.split(",")
    if len(parts) != 3:
        raise ValueError(
            f"--profile-case wants APP,DATASET,LABEL; got {case_spec!r}"
        )
    app_name, dataset, label = (p.strip() for p in parts)
    res, profiles = _profiled_run(app_name, dataset, label)
    top, wall = _top_rows(profiles, TOP_N)
    phases, tail = _phase_rows(res.trace)
    return ProfileReport(
        app=app_name,
        dataset=dataset,
        label=label,
        wall_s=wall,
        case=CaseResult.from_run(res),
        top=top,
        phases=phases,
        tail_busy_us=tail,
    )


def run_and_write(case_spec: str, outdir: pathlib.Path) -> str:
    """Profile a cell, write .txt/.json reports, return the rendered
    table (with the output paths appended)."""
    report = run_profile(case_spec)
    outdir.mkdir(parents=True, exist_ok=True)
    stem = f"{report.app.lower()}-{report.dataset}-{report.label}"
    txt = outdir / f"{stem}.profile.txt"
    js = outdir / f"{stem}.profile.json"
    text = report.render()
    txt.write_text(text)
    js.write_text(json.dumps(report.to_json_dict(), indent=2) + "\n")
    return text + f"\nwrote {txt}\nwrote {js}"

"""Public API of the DSM reproduction.

Typical use::

    from repro.core import TreadMarks, SimConfig

    tmk = TreadMarks(SimConfig(nprocs=8, unit_pages=2), heap_bytes=1 << 20)
    grid = tmk.array("grid", (128, 1024), dtype="float32")

    def worker(proc):
        ...
        proc.barrier()
        row = grid.read_row(proc, i)
        ...

    result = tmk.run(worker)
    print(result.time_seconds, result.comm.useless_messages)

:class:`TreadMarks` wires the simulated cluster, the LRC protocol, and
the instrumentation together; :class:`Proc` is the per-processor handle
applications program against (the analogue of the TreadMarks C API:
``Tmk_malloc``, ``Tmk_lock_acquire``, ``Tmk_barrier``, plus explicit
shared reads/writes, which in the real system are ordinary loads and
stores trapped by the VM hardware).
"""

from repro.sim.config import SimConfig, PAPER_PLATFORM
from repro.core.proc import Proc
from repro.core.shared import SharedArray
from repro.core.treadmarks import TreadMarks
from repro.stats.report import RunResult

__all__ = [
    "SimConfig",
    "PAPER_PLATFORM",
    "Proc",
    "SharedArray",
    "TreadMarks",
    "RunResult",
]

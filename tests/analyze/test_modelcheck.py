"""Small-scope model checker: exhaustive exploration, the RC oracle,
the DRF self-check, witnesses, and the seeded-bug mutation gate.

The expensive litmus programs (fs-diff-merge, migratory) are covered by
the committed state-count baseline and the CI gate; the tests here keep
to the cheap programs so the tier-1 suite stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.analyze.modelcheck import (
    CHECKED_PROTOCOLS,
    LITMUS_TESTS,
    Litmus,
    LitmusError,
    broken_protocol,
    explore,
    load_baseline,
    mutation_gate,
    replay,
    replay_witness,
    run_modelcheck,
)
from repro.protocols import get_protocol

CHEAP_LITMUS = ("mp", "corr")


@pytest.fixture(scope="module")
def explored():
    """Every cheap litmus exhaustively explored under every protocol."""
    return {
        (name, proto): explore(LITMUS_TESTS[name], get_protocol(proto))
        for name in CHEAP_LITMUS
        for proto in CHECKED_PROTOCOLS
    }


@pytest.mark.parametrize("proto", CHECKED_PROTOCOLS)
@pytest.mark.parametrize("name", CHEAP_LITMUS)
def test_exhaustive_exploration_finds_no_violation(explored, name, proto):
    res = explored[(name, proto)]
    assert res.ok, res.violation
    assert res.states > res.terminals >= 1
    assert res.outcomes


@pytest.mark.parametrize("proto", CHECKED_PROTOCOLS)
def test_mp_admits_only_the_message_received_outcome(explored, proto):
    # Both the flag and the data written before the barrier must be
    # visible after it, in every interleaving.
    assert explored[("mp", proto)].outcomes == ((1, 1),)


@pytest.mark.parametrize("proto", CHECKED_PROTOCOLS)
def test_corr_reads_agree_within_a_critical_section(explored, proto):
    outcomes = set(explored[("corr", proto)].outcomes)
    # Reader before writer sees (0, 0); after, (2, 2).  A split pair
    # would be a coherence violation the oracle must have caught.
    assert outcomes == {(0, 0), (2, 2)}


def test_committed_baseline_matches_fresh_exploration(explored):
    known = load_baseline()
    for (name, proto), res in explored.items():
        assert known[f"{name}/{proto}"] == res.baseline_entry()


def test_racy_litmus_rejected_as_litmus_error():
    racy = Litmus(
        name="racy-ww",
        description="two unsynchronized writers of one word",
        programs=((("write", 0, 1),), (("write", 0, 2),)),
        words=(0,),
    )
    with pytest.raises(LitmusError, match="racy"):
        explore(racy, get_protocol("tm-lrc"))


def test_schedule_picking_a_blocked_processor_is_invalid():
    with pytest.raises(LitmusError, match="not enabled"):
        replay(LITMUS_TESTS["mp"], get_protocol("tm-lrc"), (0,) * 10)


def test_mutation_gate_catches_the_skipped_flush():
    doc = mutation_gate()
    assert doc["protocol"] == "hlrc-broken-flush"
    assert doc["litmus"] == "fs-diff-merge"
    v = doc["violation"]
    assert v["expected"] != v["actual"]
    assert doc["schedule"], "witness must carry a replayable schedule"
    # The witness document is self-contained: JSON-serializable with an
    # embedded Chrome trace, and its schedule replays to the recorded
    # violation.
    doc = json.loads(json.dumps(doc))
    assert doc["chrome_trace"]["traceEvents"]
    rep = replay_witness(doc, info=broken_protocol())
    assert rep.violation == doc["violation"]


def test_run_modelcheck_gates_on_the_baseline(tmp_path, capsys):
    base = tmp_path / "counts.json"
    args = dict(
        litmus_names=["mp"],
        protocols=["tm-lrc"],
        with_mutation_gate=False,
        baseline=base,
    )
    # No committed entry: the gate fails closed.
    assert run_modelcheck(**args) == 1
    assert "no committed baseline entry" in capsys.readouterr().out
    # --update-baseline records it; the next run is green.
    assert run_modelcheck(update_baseline=True, **args) == 0
    assert base.exists()
    assert run_modelcheck(**args) == 0

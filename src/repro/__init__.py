"""repro: a reproduction of "Tradeoffs Between False Sharing and
Aggregation in Software Distributed Shared Memory" (Amza et al.,
PPoPP 1997).

The package implements a TreadMarks-style page-based software DSM --
lazy release consistency with a multiple-writer twin/diff protocol --
over a deterministic simulated cluster, together with the paper's eight
applications, its Section-5.3 instrumentation (useful/useless messages
and data, false-sharing signatures), static consistency-unit aggregation
(Section 3), and the dynamic page-group aggregation algorithm
(Section 4).

Entry points:

* :mod:`repro.core` -- the public DSM API (``TreadMarks``, ``Proc``,
  ``SharedArray``, ``SimConfig``).
* :mod:`repro.apps` -- the application suite.
* :mod:`repro.bench` -- the experiment harness regenerating the paper's
  Table 1 and Figures 1-3.
"""

from repro.core import PAPER_PLATFORM, Proc, RunResult, SharedArray, SimConfig, TreadMarks

__all__ = [
    "PAPER_PLATFORM",
    "Proc",
    "RunResult",
    "SharedArray",
    "SimConfig",
    "TreadMarks",
]

__version__ = "1.0.0"

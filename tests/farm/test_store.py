"""Store backends: local/sqlite parity on put/get/claim, lease expiry
and reclaim, corrupt entries as misses, and the concurrent-writer
hammer (spawned processes racing the same cell)."""

import json
import multiprocessing

import pytest

from repro.bench.cache import build_entry
from repro.bench.harness import config_for
from repro.bench.pool import SweepCell
from repro.farm.store import (
    LocalDirBackend,
    ResultStore,
    SqliteBackend,
    open_store,
)

BACKENDS = ("local", "sqlite")


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_store(kind, tmp_path, **kwargs):
    if kind == "local":
        backend = LocalDirBackend(tmp_path / "store")
    else:
        backend = SqliteBackend(tmp_path / "store.sqlite")
    return ResultStore(backend, **kwargs)


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(request.param, tmp_path, clock=FakeClock())


class TestResults:
    def test_roundtrip(self, store, jacobi_cells, jacobi_results):
        cell = jacobi_cells["4K"]
        assert store.get_result(cell) is None
        assert store.misses == 1
        store.put_result(cell, jacobi_results["4K"])
        assert store.get_result(cell) == jacobi_results["4K"]
        assert store.hits == 1
        assert store.has_result(cell)
        assert store.backend.result_count() == 1

    def test_put_is_idempotent(self, store, jacobi_cells, jacobi_results):
        cell = jacobi_cells["4K"]
        k1 = store.put_result(cell, jacobi_results["4K"])
        k2 = store.put_result(cell, jacobi_results["4K"])
        assert k1 == k2 == cell.key
        assert store.backend.result_count() == 1

    def test_find_entry_by_key(self, store, jacobi_cells, jacobi_results):
        cell = jacobi_cells["4K"]
        store.put_result(cell, jacobi_results["4K"])
        entry = store.backend.find_entry(cell.key)
        assert entry is not None and entry["key"] == cell.key
        assert store.backend.find_entry("0" * 24) is None

    def test_corrupt_entry_is_a_miss(self, store, jacobi_cells,
                                     jacobi_results):
        cell = jacobi_cells["4K"]
        store.put_result(cell, jacobi_results["4K"])
        _corrupt_entry_payload(store.backend, cell)
        assert store.get_result(cell) is None
        assert not store.has_result(cell)

    def test_tampered_entry_fails_integrity_digest(
        self, store, jacobi_cells, jacobi_results
    ):
        cell = jacobi_cells["4K"]
        store.put_result(cell, jacobi_results["4K"])
        entry = store.backend.find_entry(cell.key)
        # Flip one counter without updating the digest: still valid
        # JSON, still the right key and schema -- only the digest can
        # catch it.
        entry["result"]["useful_messages"] += 1
        store.backend.save_entry(
            cell.app, cell.dataset, cell.label, cell.key, entry
        )
        assert store.get_result(cell) is None

    def test_pre_digest_entries_stay_warm(self, store, jacobi_cells,
                                          jacobi_results):
        # Entries written before integrity digests existed have no
        # "digest" field; they must still load (caches stay warm).
        cell = jacobi_cells["4K"]
        entry = build_entry(
            cell.app, cell.dataset, cell.label, config_for(cell.label),
            jacobi_results["4K"],
        )
        del entry["digest"]
        store.backend.save_entry(
            cell.app, cell.dataset, cell.label, cell.key, entry
        )
        assert store.get_result(cell) == jacobi_results["4K"]


def _corrupt_entry_payload(backend, cell):
    """Replace a stored entry with non-JSON garbage, per backend."""
    if isinstance(backend, LocalDirBackend):
        for path in backend.root.glob(f"*-{cell.key}.json"):
            path.write_text("{ truncated")
    else:
        import sqlite3

        con = sqlite3.connect(str(backend.path))
        con.execute(
            "UPDATE results SET entry = '{ truncated' WHERE key = ?",
            (cell.key,),
        )
        con.commit()
        con.close()


class TestQueue:
    def test_submit_dedupes_and_skips_done(self, store, jacobi_cells,
                                           jacobi_results):
        store.put_result(jacobi_cells["4K"], jacobi_results["4K"])
        cells = [
            jacobi_cells["4K"],
            jacobi_cells["8K"],
            SweepCell.make("Jacobi", "1Kx1K", "8K", unit_pages=2),  # alias
            jacobi_cells["16K"],
        ]
        report = store.submit(cells)
        assert report.requested == 4
        assert report.deduped == 3
        assert report.already_done == 1
        assert report.enqueued == 2
        again = store.submit(cells)
        assert again.enqueued == 0
        assert again.already_queued == 2

    def test_claim_complete_cycle(self, store, jacobi_cells,
                                  jacobi_results):
        store.submit([jacobi_cells["4K"], jacobi_cells["8K"]])
        first = store.claim("w1")
        assert first is not None
        assert first.generation == 1
        assert first.worker == "w1"
        second = store.claim("w2")
        assert second is not None
        assert second.key != first.key  # leased cells are not re-handed
        assert store.claim("w3") is None
        store.complete(first, jacobi_results[first.cell.label])
        store.complete(second, jacobi_results[second.cell.label])
        status = store.status()
        assert status.done == 2 and status.queued == 0 and status.claimed == 0
        assert store.has_result(jacobi_cells["4K"])

    def test_lease_expiry_reclaim_bumps_generation(self, store,
                                                   jacobi_cells):
        store.submit([jacobi_cells["4K"]])
        first = store.claim("w1")
        assert first is not None and first.generation == 1
        assert store.claim("w2") is None  # live lease
        store.clock.advance(store.lease_ttl + 1)
        reclaimed = store.claim("w2")
        assert reclaimed is not None
        assert reclaimed.key == first.key
        assert reclaimed.generation == 2
        assert reclaimed.worker == "w2"

    def test_lease_budget_exhaustion_abandons_cell(self, store,
                                                   jacobi_cells):
        store.max_generations = 2
        store.submit([jacobi_cells["4K"]])
        for _ in range(2):
            assert store.claim("w") is not None
            store.clock.advance(store.lease_ttl + 1)
        assert store.claim("w") is None
        status = store.status()
        assert status.failed == 1
        assert "abandoned" in status.failures[0][1]

    def test_deterministic_failure_is_not_retried(self, store,
                                                  jacobi_cells):
        store.submit([jacobi_cells["4K"]])
        claim = store.claim("w1")
        store.fail(claim, "retransmission budget exhausted")
        assert store.claim("w2") is None
        status = store.status()
        assert status.failed == 1
        assert status.failures[0][1] == "retransmission budget exhausted"

    def test_claim_skips_cell_whose_result_appeared(
        self, store, jacobi_cells, jacobi_results
    ):
        # A racing generation published the result while this queue row
        # still looked claimable: claim must mark it done, not hand it out.
        store.submit([jacobi_cells["4K"]])
        first = store.claim("w1")
        store.put_result(jacobi_cells["4K"], jacobi_results["4K"])
        store.clock.advance(store.lease_ttl + 1)
        assert store.claim("w2") is None
        assert store.status().done == 1
        # The original claimer completing afterwards is harmless.
        store.complete(first, jacobi_results["4K"])
        assert store.status().done == 1

    def test_expired_lease_visible_in_status(self, store, jacobi_cells):
        store.submit([jacobi_cells["4K"]])
        store.claim("w1")
        assert store.status().claimed == 1
        store.clock.advance(store.lease_ttl + 1)
        status = store.status()
        assert status.claimed == 0 and status.expired == 1


class TestParity:
    """The two backends expose identical observable behavior."""

    def test_status_parity_through_a_lifecycle(self, tmp_path, jacobi_cells,
                                               jacobi_results):
        snapshots = []
        for kind in BACKENDS:
            store = make_store(kind, tmp_path / kind, clock=FakeClock())
            store.submit([jacobi_cells[lb] for lb in ("4K", "8K", "16K")])
            claim = store.claim("w1")
            store.complete(claim, jacobi_results[claim.cell.label])
            store.claim("w2")
            snapshots.append(store.status().to_json_dict())
        assert snapshots[0] == snapshots[1]

    def test_entry_bytes_parity_with_disk_cache(self, tmp_path, jacobi_cells,
                                                jacobi_results):
        """LocalDirBackend writes byte-identical files to DiskCache, so a
        bench cache directory is a warm farm store and vice versa."""
        from repro.bench.cache import DiskCache

        cell = jacobi_cells["4K"]
        cache = DiskCache(tmp_path / "a")
        cache_path = cache.store(
            cell.app, cell.dataset, cell.label, config_for(cell.label),
            jacobi_results["4K"],
        )
        store = ResultStore(LocalDirBackend(tmp_path / "b"))
        store.put_result(cell, jacobi_results["4K"])
        farm_path = tmp_path / "b" / cache_path.name
        assert farm_path.is_file()
        assert farm_path.read_bytes() == cache_path.read_bytes()
        # Cross-reads: each layer loads the other's file.
        assert DiskCache(tmp_path / "b").load(
            cell.app, cell.dataset, cell.label, config_for(cell.label)
        ) == jacobi_results["4K"]
        assert ResultStore(LocalDirBackend(tmp_path / "a")).get_result(
            cell
        ) == jacobi_results["4K"]


# ----------------------------------------------------------------------
# Concurrent-writer hammer: spawned processes racing the same cell.
# ----------------------------------------------------------------------
def _hammer_writer(spec, entry_json, results_q):
    """Race: repeatedly store the same entry while readers watch."""
    from repro.farm.store import open_store

    store = open_store(spec)
    entry = json.loads(entry_json)
    for _ in range(20):
        store.backend.save_entry(
            entry["app"], entry["dataset"], entry["label"], entry["key"],
            entry,
        )
    results_q.put("ok")


def _hammer_reader(spec, cell_args, results_q):
    """Readers must only ever see a complete entry or a clean miss."""
    from repro.bench.pool import SweepCell
    from repro.farm.store import open_store

    store = open_store(spec)
    cell = SweepCell.make(*cell_args)
    seen = 0
    for _ in range(40):
        result = store.get_result(cell)
        if result is not None:
            seen += 1
    results_q.put(seen)


def _hammer_claimer(spec, worker_id, results_q):
    """All claimers race one queued cell; at most one wins generation 1."""
    from repro.farm.store import open_store

    store = open_store(spec)
    claim = store.claim(worker_id)
    results_q.put(None if claim is None else claim.generation)


@pytest.mark.parametrize("kind", BACKENDS)
def test_hammer_concurrent_writers_and_readers(kind, tmp_path, jacobi_cells,
                                               jacobi_results):
    cell = jacobi_cells["4K"]
    spec = (
        str(tmp_path / "store.sqlite") if kind == "sqlite"
        else str(tmp_path / "store")
    )
    entry = build_entry(
        cell.app, cell.dataset, cell.label, config_for(cell.label),
        jacobi_results["4K"],
    )
    ctx = multiprocessing.get_context("spawn")
    results_q = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer_writer,
                    args=(spec, json.dumps(entry), results_q))
        for _ in range(3)
    ] + [
        ctx.Process(target=_hammer_reader,
                    args=(spec, (cell.app, cell.dataset, cell.label),
                          results_q))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    outcomes = [results_q.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert outcomes.count("ok") == 3  # every writer finished
    # The store holds exactly the one complete entry afterwards.
    store = open_store(spec)
    assert store.get_result(cell) == jacobi_results["4K"]
    assert store.backend.result_count() == 1


@pytest.mark.parametrize("kind", BACKENDS)
def test_hammer_claim_race_grants_one_lease(kind, tmp_path, jacobi_cells):
    spec = (
        str(tmp_path / "store.sqlite") if kind == "sqlite"
        else str(tmp_path / "store")
    )
    store = open_store(spec)
    store.submit([jacobi_cells["4K"]])
    ctx = multiprocessing.get_context("spawn")
    results_q = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer_claimer, args=(spec, f"w{i}", results_q))
        for i in range(4)
    ]
    for p in procs:
        p.start()
    grants = [results_q.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    # Exactly one claimer won the (only) first-generation lease.
    assert grants.count(1) == 1
    assert grants.count(None) == 3


def test_open_store_dispatch(tmp_path):
    assert isinstance(
        open_store(tmp_path / "x.sqlite").backend, SqliteBackend
    )
    assert isinstance(open_store(tmp_path / "x.db").backend, SqliteBackend)
    assert isinstance(
        open_store(f"sqlite:{tmp_path}/y").backend, SqliteBackend
    )
    assert isinstance(open_store(tmp_path / "dir").backend, LocalDirBackend)
    assert isinstance(
        open_store(str(tmp_path / "dir2")).backend, LocalDirBackend
    )

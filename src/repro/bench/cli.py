"""Command-line runner for the experiment harness.

    python -m repro.bench table1
    python -m repro.bench figure1 figure2 figure3
    python -m repro.bench micro ablation
    python -m repro.bench all --out repro_results

Each command prints the paper-shaped table and (with ``--out``) writes
it next to the CSV data, exactly like the pytest-benchmark suite.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict

from repro.bench import ablation, figures, micro
from repro.bench.table1 import build_table1, render_table1


def _run_table1() -> str:
    return render_table1(build_table1())


def _run_figure(fig: Callable) -> Callable[[], str]:
    def run() -> str:
        _, text = fig()
        return text

    return run


def _run_micro() -> str:
    return micro.render(micro.run_all())


def _run_ablation() -> str:
    rows = (
        ablation.sweep_group_size("ILINK", "CLP")
        + ablation.sweep_group_size("MGS", "1Kx1K")
        + ablation.ablate_request_combining("ILINK", "CLP")
        + ablation.ablate_parallel_fetch("ILINK", "CLP")
    )
    return "Ablations\n" + ablation.render(rows)


COMMANDS: Dict[str, Callable[[], str]] = {
    "table1": _run_table1,
    "figure1": _run_figure(figures.figure1),
    "figure2": _run_figure(figures.figure2),
    "figure3": _run_figure(figures.figure3),
    "micro": _run_micro,
    "ablation": _run_ablation,
}


def _dump_traces(outdir: pathlib.Path) -> None:
    """Write Chrome-trace timelines of the figure-1 applications (one
    traced 4 KB run each) into ``outdir``.  Traced runs bypass the
    result cache: the recorder is observational, but cached results do
    not carry one."""
    from repro.apps.base import get_app, run_app
    from repro.bench.harness import config_for
    from repro.trace.export import write_chrome_trace

    outdir.mkdir(parents=True, exist_ok=True)
    for app_name, dataset in figures.FIGURE1_CASES:
        res = run_app(
            get_app(app_name), dataset, config_for("4K", trace=True)
        )
        path = outdir / f"{app_name.lower()}-{dataset}-4K.trace.json"
        write_chrome_trace(path, res.trace, label=f"{app_name}/{dataset} 4K")
        print(f"wrote {path} ({len(res.trace.events)} events)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        metavar="{" + ",".join(sorted(COMMANDS) + ["all"]) + "}",
        help="which experiments to run",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write .txt outputs into (default: print only)",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="also write Chrome-trace timelines of the figure-1 "
        "applications (viewable in Perfetto) into this directory",
    )
    args = parser.parse_args(argv)
    if not args.experiments and args.trace_out is None:
        parser.error("nothing to do: give experiments and/or --trace-out")
    for name in args.experiments:
        if name != "all" and name not in COMMANDS:
            parser.error(
                f"unknown experiment {name!r} "
                f"(choose from {', '.join(sorted(COMMANDS) + ['all'])})"
            )

    names = sorted(COMMANDS) if "all" in args.experiments else args.experiments
    for name in names:
        text = COMMANDS[name]()
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    if args.trace_out is not None:
        _dump_traces(args.trace_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())

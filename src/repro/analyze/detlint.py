"""The determinism-lint engine: files in, :class:`LintReport` out.

Suppression contract
--------------------
A finding is suppressed by a comment **on the line it points at**::

    for unit in pending:  # detlint: ok(set-iter) -- drained in vc order

Several rules may be named, comma-separated: ``ok(set-iter, id-order)``.
Suppressions are per-line and per-rule only -- there is deliberately no
file- or block-level form, so every accepted hazard is visible exactly
where it lives.  A suppression whose rule did not fire on that line is
itself reported (``unused-suppression``) and fails the gate: stale
``ok(...)`` comments would otherwise silently swallow the next real
finding on the line.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analyze.report import Finding, LintReport, merge_reports
from repro.analyze.rules import RULES, SUPPRESSIBLE

#: The suppression marker (rule names comma-separated) in a comment.
_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*ok\(([^)]*)\)")

PathLike = Union[str, pathlib.Path]


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """line number -> rule names accepted on that line.

    Only real comment tokens count (a ``detlint: ok(...)`` mentioned in
    a docstring is documentation, not a suppression); the
    unused-suppression check keeps every accepted one honest.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                names = {
                    part.strip()
                    for part in m.group(1).split(",")
                    if part.strip()
                }
                if names:
                    out.setdefault(tok.start[0], set()).update(names)
    except (tokenize.TokenError, SyntaxError):
        pass  # the ast.parse below reports the real problem
    return out


def lint_source(source: str, path: str) -> LintReport:
    """Lint one module's source text."""
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            rule="parse-error",
            message=f"file does not parse: {exc.msg}",
        )
        return LintReport(
            findings=[finding], files_checked=1, unused_suppressions=[]
        )

    findings: List[Finding] = []
    used: Dict[int, Set[str]] = {}
    for rule in RULES:
        for line, col, message in rule.check(tree):
            suppressed = rule.name in suppressions.get(line, set())
            if suppressed:
                used.setdefault(line, set()).add(rule.name)
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule=rule.name,
                    message=message,
                    suppressed=suppressed,
                )
            )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))

    unused: List[Finding] = []
    for line, names in sorted(suppressions.items()):
        for name in sorted(names):
            if name not in SUPPRESSIBLE:
                unused.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="unused-suppression",
                        message=f"unknown rule {name!r} in suppression",
                    )
                )
            elif name not in used.get(line, set()):
                unused.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="unused-suppression",
                        message=(
                            f"suppression ok({name}) matches no finding on "
                            f"this line; remove it"
                        ),
                    )
                )
    return LintReport(
        findings=findings, files_checked=1, unused_suppressions=unused
    )


def lint_file(path: PathLike) -> LintReport:
    p = pathlib.Path(path)
    return lint_source(p.read_text(), str(p))


def iter_python_files(root: PathLike) -> List[pathlib.Path]:
    """All ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    p = pathlib.Path(root)
    if p.is_file():
        return [p]
    return sorted(f for f in p.rglob("*.py") if "__pycache__" not in f.parts)


def lint_paths(
    paths: Iterable[PathLike], exclude_parts: Iterable[str] = ()
) -> LintReport:
    """Lint every Python file under the given files/directories.

    ``exclude_parts`` skips files with a matching path component (used
    to keep deliberate hazard corpora -- the rule-engine's test fixtures
    -- out of the helper gate)."""
    skip = frozenset(exclude_parts)
    files: List[pathlib.Path] = []
    seen: Set[pathlib.Path] = set()
    for path in paths:
        for f in iter_python_files(path):
            if skip and skip.intersection(f.parts):
                continue
            if f not in seen:
                seen.add(f)
                files.append(f)
    return merge_reports([lint_file(f) for f in files])


#: The tree the CI gate lints (the whole package: simulation-ordered
#: code plus the harnesses whose output feeds cache keys and baselines).
DEFAULT_ROOTS: Tuple[str, ...] = ("src/repro",)


#: Helper trees linted with the same rules but reported separately:
#: test and benchmark code feeds baselines and goldens, so hidden
#: iteration-order dependence there corrupts the gates it serves.
HELPER_ROOTS: Tuple[str, ...] = ("tests", "benchmarks")

#: Path components excluded from the helper lint: the rule tests'
#: fixture files are *deliberate* hazard corpora.
HELPER_EXCLUDE_PARTS: Tuple[str, ...] = ("fixtures",)


def repo_roots(base: Optional[PathLike] = None) -> List[pathlib.Path]:
    """The default lint roots resolved against ``base`` (default: the
    repository root containing this package, so the CLI works from any
    working directory)."""
    if base is None:
        base = pathlib.Path(__file__).resolve().parents[3]
    return [pathlib.Path(base) / root for root in DEFAULT_ROOTS]


def helper_roots(base: Optional[PathLike] = None) -> List[pathlib.Path]:
    """The test/benchmark helper lint roots (see :data:`HELPER_ROOTS`),
    resolved like :func:`repo_roots`; missing directories are skipped
    (the benchmarks tree holds committed JSON baselines, not always
    Python)."""
    if base is None:
        base = pathlib.Path(__file__).resolve().parents[3]
    return [
        pathlib.Path(base) / root
        for root in HELPER_ROOTS
        if (pathlib.Path(base) / root).exists()
    ]

"""Section 5.1 platform microbenchmarks on the simulated cluster."""

from benchmarks.conftest import save_text
from repro.bench.micro import render, run_all


def test_micro(benchmark, results_dir):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_text(results_dir, "micro.txt", render(results))
    for r in results:
        assert r.in_range, (r.name, r.measured_us)

"""The per-processor lazy release consistency protocol engine.

One :class:`LrcProc` per simulated processor holds:

* a private copy of the shared heap (:class:`AddressSpace`),
* a vector clock of the intervals it has seen,
* per-unit *pending write notices* -- invalidations received at acquires
  and barriers that have not yet been satisfied by fetching diffs,
* the twins of units written in the current interval.

Life cycle of a write, exactly as in TreadMarks:

1. the first write to a unit in an interval makes a *twin* (and pays a
   memory-protection operation);
2. at the next synchronization the interval *closes*: each twinned unit
   is compared to the current contents to create a word-granularity diff,
   and (proc, interval, unit) write notices are published;
3. an acquire (or barrier departure) delivers to the acquirer all write
   notices it has not seen, invalidating the named units;
4. the first access to an invalid unit faults; the faulting processor
   requests diffs from every concurrent writer of the unit -- requests to
   the same writer are combined, distinct writers answer in parallel --
   applies them in a happens-before-compatible order, and revalidates.

The fetch granularity (one unit, or a dynamic page group) is delegated to
an aggregation strategy from :mod:`repro.dsm.aggregation`.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.dsm.address_space import AddressSpace, SharedHeapLayout
from repro.dsm.diff import (
    DIFF_HEADER_BYTES,
    RUN_HEADER_BYTES,
    WORD,
    Diff,
    apply_diff,
    create_diff,
    merge_diffs,
)
from repro.dsm.intervals import IntervalStore, WriteNotice
from repro.dsm.vc import VectorClock
from repro.sim.clock import Clock
from repro.sim.config import SimConfig
from repro.sim.network import MessageClass, Network
from repro.stats.counters import ProtocolStats
from repro.stats.words import WordTracker

if TYPE_CHECKING:
    from repro.dsm.aggregation import Aggregator

#: Fixed bytes of a diff request message plus per-requested-diff entry.
REQUEST_BASE_BYTES = 8
REQUEST_ENTRY_BYTES = 12


class LrcProc:
    """Consistency state and protocol actions of one processor."""

    def __init__(
        self,
        pid: int,
        layout: SharedHeapLayout,
        config: SimConfig,
        store: IntervalStore,
        network: Network,
        stats: ProtocolStats,
        clock: Clock,
        credit,
    ) -> None:
        self.pid = pid
        self.layout = layout
        self.config = config
        self.store = store
        self.network = network
        self.stats = stats
        self.clock = clock
        self.space = AddressSpace(layout)
        self.tracker = WordTracker(
            layout.nwords, credit, unit_words=layout.words_per_unit
        )
        self.vc = VectorClock(config.nprocs)
        self.pending: Dict[int, List[WriteNotice]] = {}
        self.pending_n = np.zeros(layout.nunits, dtype=np.int32)
        """Per-unit mirror of ``len(self.pending[unit])``.  The dict of
        :class:`WriteNotice` lists stays the source of truth (fetch and
        the barrier GC walk it), but every hot-path *emptiness* question
        -- aggregator readiness, dirty masks, invalidation counting --
        reads this preallocated array instead of hashing unit ids.
        Every site that mutates ``pending`` updates the mirror in the
        same statement block; ``tests/properties`` pins the invariant."""
        self.twins: Dict[int, np.ndarray] = {}
        self.twinned = np.zeros(layout.nunits, dtype=bool)
        """Per-unit mirror of ``unit in self.twins``: the batched diff
        kernel and the scatter fast path test twin presence as one
        vectorized mask instead of per-unit dict lookups."""
        self._twin_pool: Optional[np.ndarray] = None
        self._twin_slot = np.full(layout.nunits, -1, dtype=np.int32)
        self._twin_count = 0
        self._twin_persist = np.zeros(layout.nunits, dtype=bool)
        """Units whose (logical) twin survives from an earlier interval:
        in TreadMarks a twin persists across releases until the unit is
        invalidated or its diff is garbage collected, so re-dirtying such
        a unit in the next interval costs nothing.  Our simulator closes
        intervals eagerly for correctness but charges twin costs on the
        real system's schedule."""
        self.unsent_notices = 0
        """Write notices created since this processor's last barrier
        arrival (models the arrival-message payload)."""
        self.aggregator: Optional["Aggregator"] = None  # wired by the runtime
        self.trace = None
        """Optional :class:`repro.trace.recorder.TraceRecorder` attached
        by the runtime.  All hooks below are observer-only: they never
        advance the clock or touch protocol state."""
        # Hot-path locals: the access path runs once per shared access,
        # so the per-access cost constants are cached off the config.
        self._region_op_us = config.region_op_us
        self._word_access_us = config.word_access_us
        self._wpu = layout.words_per_unit
        self._heap_words = layout.nwords

    # ------------------------------------------------------------------
    # Application access path
    # ------------------------------------------------------------------
    def read_words(self, word0: int, nwords: int) -> np.ndarray:
        """Shared read of a word range: fault if needed, resolve word
        usefulness, charge access time, return the raw words."""
        if word0 < 0 or nwords <= 0 or word0 + nwords > self._heap_words:
            self._check_range(word0, nwords)
        self.aggregator.ensure_valid(word0, nwords)
        if self.trace is not None:
            self.trace.on_access(self.pid, self.clock.now, "read", word0, nwords)
        self.tracker.on_read(word0, nwords)
        clock = self.clock
        clock.now = clock.now + (
            self._region_op_us + nwords * self._word_access_us
        )
        return self.space.read_words(word0, nwords)

    def write_words(self, word0: int, values: np.ndarray) -> None:
        """Shared write of a word range: fault if needed, twin the
        covered units on first write, install the values."""
        nwords = int(values.shape[0])
        if word0 < 0 or nwords <= 0 or word0 + nwords > self._heap_words:
            self._check_range(word0, nwords)
        self.aggregator.ensure_valid(word0, nwords)
        twins = self.twins
        wpu = self._wpu
        for unit in range(word0 // wpu, (word0 + nwords - 1) // wpu + 1):
            if unit not in twins:
                self._make_twin(unit)
        if self.trace is not None:
            self.trace.on_access(self.pid, self.clock.now, "write", word0, nwords)
        self.tracker.on_write(word0, nwords)
        self.space.write_words(word0, values)
        clock = self.clock
        clock.now = clock.now + (
            self._region_op_us + nwords * self._word_access_us
        )

    def _check_range(self, word0: int, nwords: int) -> None:
        if word0 < 0 or nwords <= 0 or word0 + nwords > self.layout.nwords:
            raise IndexError(
                f"shared access [{word0}, {word0 + nwords}) outside heap "
                f"of {self.layout.nwords} words"
            )

    # ------------------------------------------------------------------
    # Bulk access path (gather / scatter)
    # ------------------------------------------------------------------
    # ``read_gather`` / ``write_scatter`` are *semantically defined* as a
    # loop of :meth:`read_words` / :meth:`write_words` over equal-length
    # word ranges, in order (the reference path, forced by
    # ``config.access_mode == "scalar"``).  When the bulk fast path can
    # prove the loop would neither fault nor change aggregation state
    # (:meth:`Aggregator.ready` over the touched units, plus the
    # protocol's own :meth:`_bulk_write_ready`), it charges the clock
    # with the *identical sequence of float additions* folded in one
    # step, performs twin bookkeeping in the same first-touch order, and
    # moves all data with one vectorized gather/scatter.  Any
    # uncertainty -- a pending unit, an access-invalid page, a non-owned
    # unit under single-writer invalidate, an out-of-bounds range --
    # falls back to the reference loop, which faults (or raises) exactly
    # where a scalar program would.  ``tests/equivalence/`` asserts the
    # two paths are bit-identical in every counter, checksum, and trace
    # event across all applications and protocols.

    def read_gather(self, starts: np.ndarray, nwords: int) -> np.ndarray:
        """Bulk read of ``len(starts)`` word ranges of ``nwords`` words
        each; returns an (nranges, nwords) uint32 array.  Equivalent to
        calling :meth:`read_words` once per range, in order."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        n = int(starts.shape[0])
        if n == 0:
            return np.empty((0, max(nwords, 0)), dtype=np.uint32)
        if self._bulk_ready_units(starts, nwords, write=False) is None:
            out = self._read_gather_mid(starts, nwords)
            if out is not None:
                return out
            return self._read_gather_ref(starts, nwords)
        per = self._region_op_us + nwords * self._word_access_us
        trace = self.trace
        if trace is None:
            if not self.tracker.pending_count():
                self.clock.advance_to(self._fold_end(n, per))
                return self.space.gather(starts, nwords)
            # Pending words among valid units: resolve them in one
            # batched pass (exact for disjoint ranges -- each word is
            # credited at most once and totals are additive).
            idx = self._mid_tier_ranges(starts, nwords)
            if idx is not None:
                self.clock.advance_to(self._fold_end(n, per))
                self.tracker.resolve_read(idx.reshape(-1))
                return self.space.gather(starts, nwords)
        tracker, clock = self.tracker, self.clock
        for i in range(n):
            w0 = int(starts[i])
            if trace is not None:
                trace.on_access(self.pid, clock.now, "read", w0, nwords)
            tracker.on_read(w0, nwords)
            clock.advance(per)
        return self.space.gather(starts, nwords)

    def write_scatter(self, starts: np.ndarray, values: np.ndarray) -> None:
        """Bulk write of ``len(starts)`` word ranges from a (nranges,
        nwords) uint32 array.  Equivalent to calling :meth:`write_words`
        once per range, in order."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.uint32)
        if values.ndim != 2 or values.shape[0] != starts.shape[0]:
            raise ValueError(
                f"write_scatter needs (nranges, nwords) values matching "
                f"{starts.shape[0]} starts, got shape {values.shape}"
            )
        n, nwords = int(values.shape[0]), int(values.shape[1])
        if n == 0:
            return
        touched = self._bulk_ready_units(starts, nwords, write=True)
        if touched is None:
            if not self._write_scatter_mid(starts, values):
                self._write_scatter_ref(starts, values)
            return
        per = self._region_op_us + nwords * self._word_access_us
        trace = self.trace
        if trace is None:
            pend = self.tracker.pending_count()
            prep = self._bulk_write_prep_needed(touched)
            if not pend and not prep:
                self.clock.advance_to(self._fold_end(n, per))
                self.space.scatter(starts, values)
                return
            idx = self._mid_tier_ranges(starts, nwords)
            if idx is not None:
                # Batched tier: fold the clock over runs of ranges whose
                # units are already twinned, run the per-range prep (and
                # its clock charges) only where a first write occurs,
                # and clear overwritten pending words in one pass.  The
                # touched units are ``ready`` here, so twinning is the
                # only per-range work -- and a range's prep twins its
                # units, letting every later range over them fold.
                if not prep:
                    self.clock.advance_to(self._fold_end(n, per))
                else:
                    twins = self.twins
                    wpu = self._wpu
                    span = nwords - 1
                    run = 0
                    for w0 in starts.tolist():
                        u0 = w0 // wpu
                        u1 = (w0 + span) // wpu
                        if all(
                            u in twins for u in range(u0, u1 + 1)
                        ):
                            run += 1
                            continue
                        if run:
                            self.clock.advance_to(
                                self._fold_end(run, per)
                            )
                            run = 0
                        self._bulk_write_prep(w0, nwords)
                        self.clock.advance(per)
                    if run:
                        self.clock.advance_to(self._fold_end(run, per))
                if pend:
                    self.tracker.resolve_write(idx.reshape(-1))
                self.space.scatter(starts, values)
                return
        tracker, clock = self.tracker, self.clock
        for i in range(n):
            w0 = int(starts[i])
            self._bulk_write_prep(w0, nwords)
            if trace is not None:
                trace.on_access(self.pid, clock.now, "write", w0, nwords)
            tracker.on_write(w0, nwords)
            clock.advance(per)
        # Deferring the data movement behind the bookkeeping loop is
        # exact: a unit is always twinned at its first touch within the
        # scatter, before any of the scatter's rows have modified it.
        self.space.scatter(starts, values)

    def _read_gather_ref(self, starts: np.ndarray, nwords: int) -> np.ndarray:
        out = np.empty((starts.shape[0], nwords), dtype=np.uint32)
        for i in range(starts.shape[0]):
            out[i] = self.read_words(int(starts[i]), nwords)
        return out

    def _write_scatter_ref(self, starts: np.ndarray, values: np.ndarray) -> None:
        for i in range(starts.shape[0]):
            self.write_words(int(starts[i]), values[i])

    # The *middle tier* handles gathers/scatters that the pure fast path
    # must refuse (pending fetches among the touched units): it keeps
    # the reference loop's exact per-range fault resolution and clock
    # charges -- ``ensure_valid`` then ``advance`` per range, in order,
    # the identical float sequence -- but batches the word-usefulness
    # resolution and the data movement into one vectorized pass at the
    # end.  That batching is exact because the ranges are pairwise
    # disjoint (checked) and a range's words cannot change state after
    # its own ``ensure_valid``: the first touch of a unit drains its
    # pending diffs, and later faults apply diffs only to *their* units,
    # so each word's owner tag and value are already final when its
    # range's turn has passed.  Tracing forces the reference loop (trace
    # events carry per-range timestamps sampled mid-loop), as does any
    # protocol that overrides the scalar access method itself.

    def _mid_tier_ranges(
        self, starts: np.ndarray, nwords: int
    ) -> Optional[np.ndarray]:
        """Flat word indices for a middle-tier pass, or None if the
        gather/scatter does not qualify (bounds, overlap, tracing)."""
        if self.config.access_mode != "bulk" or nwords <= 0:
            return None
        if self.trace is not None:
            return None
        if int(starts.min()) < 0:
            return None
        if int(starts.max()) + nwords > self.layout.nwords:
            return None
        if starts.shape[0] > 1:
            s = np.sort(starts)
            if int(np.diff(s).min()) < nwords:
                return None  # overlapping ranges: replay word by word
        return starts[:, None] + np.arange(nwords, dtype=np.int64)[None, :]

    def _mid_dirty_arr(
        self, need_twins: bool
    ) -> Optional[np.ndarray]:
        """Bool per unit: True where the per-range bookkeeping (fault
        resolution, first-write twinning) may still do work.  Clean
        units are exact no-ops apart from their clock charge -- and
        *stay* clean for the rest of the pass, because faults only
        shrink the pending set, pages only become access-valid, and
        twins only accumulate.  The middle-tier loops exploit the same
        monotonicity in the other direction: a dirty unit stays dirty
        until the pass's *own first range over it* runs (a fetch only
        drains other units' pending as a dynamic-aggregation group
        member, which leaves them access-invalid, hence still dirty),
        so the work positions are exactly the first-touch ranges of the
        initially dirty units.  None when the aggregator cannot provide
        its dirty-unit mask."""
        dirty = self.aggregator.dirty_units()
        if dirty is None:
            return None
        if need_twins:
            dirty = dirty | ~self.twinned
        return dirty

    @staticmethod
    def _mid_first_touch(u0s: np.ndarray, dirty: np.ndarray) -> List[int]:
        """Positions of the first range over each dirty unit, in range
        order (every range single-unit): exactly where the reference
        loop's ``ensure_valid`` (and first-write twinning) does work --
        see :meth:`_mid_dirty_arr` for why later ranges are no-ops."""
        uniq, first_idx = np.unique(u0s, return_index=True)
        sel = first_idx[dirty[uniq]]
        sel.sort()
        return sel.tolist()

    def _read_gather_mid(
        self, starts: np.ndarray, nwords: int
    ) -> Optional[np.ndarray]:
        if type(self).read_words is not LrcProc.read_words:
            return None
        idx = self._mid_tier_ranges(starts, nwords)
        if idx is None:
            return None
        per = self._region_op_us + nwords * self._word_access_us
        n = int(starts.shape[0])
        ensure = self.aggregator.ensure_valid
        advance = self.clock.advance
        dirty = self._mid_dirty_arr(need_twins=False)
        if dirty is None:
            for w0 in starts.tolist():
                ensure(w0, nwords)
                advance(per)
        else:
            wpu = self._wpu
            u0s = starts // wpu
            u1s = (starts + (nwords - 1)) // wpu
            if np.array_equal(u0s, u1s):
                # Single-unit ranges: the work positions are known up
                # front (first touch of each dirty unit); runs of
                # no-op ranges between them charge their clock in one
                # fold -- the same sequential float additions.
                pos = 0
                for i in self._mid_first_touch(u0s, dirty):
                    if i > pos:
                        self.clock.advance_to(self._fold_end(i - pos, per))
                    ensure(int(starts[i]), nwords)
                    advance(per)
                    pos = i + 1
                if n > pos:
                    self.clock.advance_to(self._fold_end(n - pos, per))
            else:
                # Unit-straddling ranges: walk in order, flipping a
                # range's units clean after its own ensure so later
                # ranges over them fold.
                dl = dirty.tolist()
                run = 0
                for i, w0 in enumerate(starts.tolist()):
                    u0 = int(u0s[i])
                    u1 = int(u1s[i])
                    if not (dl[u0] if u1 == u0 else True in dl[u0:u1 + 1]):
                        run += 1
                        continue
                    if run:
                        self.clock.advance_to(self._fold_end(run, per))
                        run = 0
                    ensure(w0, nwords)
                    for u in range(u0, u1 + 1):
                        dl[u] = False
                    advance(per)
                if run:
                    self.clock.advance_to(self._fold_end(run, per))
        self.tracker.resolve_read(idx.reshape(-1))
        return self.space.words[idx]

    def _write_scatter_mid(
        self, starts: np.ndarray, values: np.ndarray
    ) -> bool:
        if type(self).write_words is not LrcProc.write_words:
            return False
        nwords = int(values.shape[1])
        idx = self._mid_tier_ranges(starts, nwords)
        if idx is None:
            return False
        per = self._region_op_us + nwords * self._word_access_us
        n = int(starts.shape[0])
        ensure = self.aggregator.ensure_valid
        advance = self.clock.advance
        twins = self.twins
        wpu = self._wpu
        span = nwords - 1
        dirty = self._mid_dirty_arr(need_twins=True)
        if dirty is None:
            for w0 in starts.tolist():
                ensure(w0, nwords)
                for unit in range(w0 // wpu, (w0 + span) // wpu + 1):
                    if unit not in twins:
                        self._make_twin(unit)
                advance(per)
        else:
            u0s = starts // wpu
            u1s = (starts + span) // wpu
            if np.array_equal(u0s, u1s):
                pos = 0
                for i in self._mid_first_touch(u0s, dirty):
                    if i > pos:
                        self.clock.advance_to(self._fold_end(i - pos, per))
                    w0 = int(starts[i])
                    ensure(w0, nwords)
                    unit = int(u0s[i])
                    if unit not in twins:
                        self._make_twin(unit)
                    advance(per)
                    pos = i + 1
                if n > pos:
                    self.clock.advance_to(self._fold_end(n - pos, per))
            else:
                dl = dirty.tolist()
                run = 0
                for i, w0 in enumerate(starts.tolist()):
                    u0 = int(u0s[i])
                    u1 = int(u1s[i])
                    if not (dl[u0] if u1 == u0 else True in dl[u0:u1 + 1]):
                        run += 1
                        continue
                    if run:
                        self.clock.advance_to(self._fold_end(run, per))
                        run = 0
                    ensure(w0, nwords)
                    for unit in range(u0, u1 + 1):
                        if unit not in twins:
                            self._make_twin(unit)
                        dl[unit] = False
                    advance(per)
                if run:
                    self.clock.advance_to(self._fold_end(run, per))
        self.tracker.resolve_write(idx.reshape(-1))
        self.space.words[idx] = values
        return True

    def _bulk_ready_units(
        self, starts: np.ndarray, nwords: int, write: bool
    ) -> Optional[List[int]]:
        """The units a gather/scatter touches, if the fast path may run;
        None forces the reference loop.  The returned list may be a
        conservative superset when individual ranges span more than two
        units (safe: extra units can only veto the fast path)."""
        if self.config.access_mode != "bulk" or nwords <= 0:
            return None
        if int(starts.min()) < 0:
            return None
        last = starts + (nwords - 1)
        if int(last.max()) >= self.layout.nwords:
            return None
        wpu = self.layout.words_per_unit
        u0 = starts // wpu
        u1 = last // wpu
        if int((u1 - u0).max()) <= 1:
            touched = np.unique(np.concatenate((u0, u1))).tolist()
        else:
            touched = list(range(int(u0.min()), int(u1.max()) + 1))
        if not self.aggregator.ready(touched):
            return None
        if write and not self._bulk_write_ready(touched):
            return None
        return touched

    def _bulk_write_ready(self, units: List[int]) -> bool:
        """Protocol veto for the scatter fast path.  The base multiple-
        writer protocols (tm-lrc, hlrc, erc) handle first-write twinning
        inside the bookkeeping loop, so any valid span is ready; the
        single-writer protocol overrides this to require exclusive
        ownership (otherwise its per-unit ownership acquisition must run
        on the reference path)."""
        return True

    def _bulk_write_prep_needed(self, units: List[int]) -> bool:
        """Whether :meth:`_bulk_write_prep` would do anything for a
        scatter over ``units`` (conservative True is safe)."""
        return not self.twinned[units].all()

    def _bulk_write_prep(self, word0: int, nwords: int) -> None:
        """Per-range first-write bookkeeping on the scatter fast path --
        exactly the twin block of :meth:`write_words`."""
        for unit in self.layout.units_of_range(word0, nwords):
            if unit not in self.twins:
                self._make_twin(unit)

    def _fold_end(self, n: int, per: float) -> float:
        """The clock value after ``n`` sequential ``advance(per)`` calls,
        bit-identical to the loop: ``cumsum`` accumulates left-to-right
        in float64, the same associativity as repeated ``+=`` (pinned by
        ``tests/core/test_bulk_access.py``)."""
        arr = np.empty(n + 1, dtype=np.float64)
        arr[0] = self.clock.now
        arr[1:] = per
        return float(arr.cumsum()[-1])

    # ------------------------------------------------------------------
    # Twinning and interval closing
    # ------------------------------------------------------------------
    def _make_twin(self, unit: int) -> None:
        # Twins live in rows of a preallocated pool (reused across
        # intervals, grown geometrically) so an interval's worth of twins
        # costs no per-unit allocations and the batched diff kernel can
        # gather them with one fancy index.  ``self.twins[unit]`` is a
        # *view* of the pool row: protocols that patch a live twin
        # (hlrc/erc flushes) write through it unchanged.
        pool = self._twin_pool
        if pool is None or self._twin_count == pool.shape[0]:
            cap = 64 if pool is None else pool.shape[0] * 2
            grown = np.empty((cap, self._wpu), dtype=np.uint32)
            if pool is not None:
                grown[: pool.shape[0]] = pool
                slot_of = self._twin_slot
                for u in self.twins:
                    self.twins[u] = grown[slot_of[u]]
            self._twin_pool = pool = grown
        slot = self._twin_count
        self._twin_count = slot + 1
        pool[slot] = self.space.unit_view(unit)
        self.twins[unit] = pool[slot]
        self._twin_slot[unit] = slot
        self.twinned[unit] = True
        if self._twin_persist[unit]:
            # The real system's twin from an earlier interval is still in
            # place (no invalidation arrived, no diff was requested):
            # re-dirtying the unit is free.
            return
        self._twin_persist[unit] = True
        self.stats.twins += 1
        self.stats.mprotects += 1  # remove write protection
        if self.trace is not None:
            self.trace.on_twin(self.pid, self.clock.now, unit)
        self.clock.advance(
            self.config.mprotect_us
            + self.layout.unit_bytes * self.config.twin_byte_us
        )

    def close_interval(self) -> None:
        """End the current interval (called at every synchronization
        operation, on the processor's own thread): record per-unit diffs
        and publish the interval's write notices.

        The simulator materializes the diff data here so a later fetch
        can be served from any point in the run, but the *cost* of diff
        creation is charged lazily at fetch time (see :meth:`fetch`), as
        in TreadMarks, where a release only queues write notices and the
        word-compare scan happens when a diff is first requested."""
        if not self.twins:
            return
        diffs = self._interval_diffs()
        self.vc.tick(self.pid)
        self.store.close_interval(self.pid, self.vc, diffs)
        self.stats.intervals_closed += 1
        self.stats.write_notices_sent += len(diffs)
        self.unsent_notices += len(diffs)
        self.twins.clear()
        self.twinned[:] = False
        self._twin_count = 0

    def _interval_diffs(self) -> Dict[int, Diff]:
        """Word-compare every twinned unit against current memory in one
        batched pass; bit-identical to :meth:`_interval_diffs_ref` (the
        per-unit ``create_diff`` loop, kept as the differential oracle).

        Identity argument: ``np.flatnonzero(self.twinned)`` is the
        ascending unit order of ``sorted(self.twins)``; a raveled
        ``np.flatnonzero`` over the stacked ``(unit, word)`` inequality
        matrix enumerates changed words by unit then word offset --
        exactly the reference loop's per-unit ``np.nonzero`` outputs
        concatenated; and run counting per segment reproduces
        ``diff._wire_bytes`` because in flat coordinates a run can only
        continue across a row boundary as ``offset == 0`` (which we
        break explicitly), so segment boundaries always break a run.

        The kernel is density-adaptive: bulk writers that dirty most of
        a unit (Jacobi/Shallow interior sweeps) pay mainly for the
        idx/value copies, and a per-row pass over the inequality matrix
        stays cache-resident, while the flat kernel's int64 index
        arrays would double the traffic; sparse intervals (false-shared
        pages, Barnes/TSP scatter) are where the flat one-pass kernel
        wins.  Both branches produce identical :class:`Diff` contents.
        """
        units = np.flatnonzero(self.twinned)
        wpu = self._wpu
        if units.shape[0] <= 64:
            # Few twinned units: the per-unit view loop touches no
            # memory beyond the changed words themselves, while the
            # batched kernel would copy every twin and current unit
            # into stacked matrices first.  Batching only pays once
            # the per-call numpy overhead amortizes over many units.
            return self._interval_diffs_ref()
        cur2d = self.space.words.reshape(-1, wpu)[units]
        twin2d = self._twin_pool[self._twin_slot[units]]
        ne = twin2d != cur2d
        nchanged = int(np.count_nonzero(ne))
        nunits_twinned = units.shape[0]
        diffs: Dict[int, Diff] = {}
        if nchanged * 4 > nunits_twinned * wpu:
            # Dense: >25% of twinned words changed.
            for i, unit in enumerate(units.tolist()):
                idx = np.flatnonzero(ne[i])
                n = idx.shape[0]
                idx32 = idx.astype(np.int32)
                if n:
                    runs = 1 + int(np.count_nonzero(np.diff(idx32) != 1))
                    wire = (
                        DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + n * WORD
                    )
                else:
                    wire = DIFF_HEADER_BYTES
                diffs[unit] = Diff(
                    unit=unit,
                    idx=idx32,
                    values=cur2d[i, idx],
                    wire_bytes=wire,
                    nwords=int(n),
                )
            return diffs
        flat = np.flatnonzero(ne.reshape(-1))
        vals = cur2d.reshape(-1)[flat]
        cc = flat % wpu
        cc32 = cc.astype(np.int32)
        seg_start = np.searchsorted(
            flat, np.arange(nunits_twinned) * wpu
        )
        nruns_total = 0
        run_before = seg_start  # placeholder when nchanged == 0
        if nchanged:
            new_run = np.empty(nchanged, dtype=bool)
            new_run[0] = True
            np.logical_or(
                np.diff(flat) != 1, cc[1:] == 0, out=new_run[1:]
            )
            run_pos = np.flatnonzero(new_run)
            run_before = np.searchsorted(run_pos, seg_start)
            nruns_total = run_pos.shape[0]
        for i, unit in enumerate(units.tolist()):
            s = int(seg_start[i])
            e = int(seg_start[i + 1]) if i + 1 < nunits_twinned else nchanged
            n = e - s
            if n:
                rb = (
                    int(run_before[i + 1])
                    if i + 1 < nunits_twinned
                    else nruns_total
                )
                runs = rb - int(run_before[i])
                wire = DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + n * WORD
            else:
                wire = DIFF_HEADER_BYTES
            diffs[unit] = Diff(
                unit=unit,
                idx=cc32[s:e],
                values=vals[s:e],
                wire_bytes=wire,
                nwords=n,
            )
        return diffs

    def _interval_diffs_ref(self) -> Dict[int, Diff]:
        """Reference diff creation: one :func:`create_diff` per twinned
        unit in ascending order (the pre-vectorization implementation)."""
        diffs: Dict[int, Diff] = {}
        for unit in sorted(self.twins):
            diffs[unit] = create_diff(
                unit, self.twins[unit], self.space.unit_view(unit)
            )
        return diffs

    def at_sync_point(self) -> None:
        """Hook run on the processor's own thread immediately before it
        parks at any synchronization operation."""
        self.close_interval()
        self.aggregator.on_sync()

    # ------------------------------------------------------------------
    # Invalidation (runs on the scheduler thread while parked)
    # ------------------------------------------------------------------
    def apply_notices_upto(self, new_vc: VectorClock) -> tuple:
        """Receive write notices for every interval covered by ``new_vc``
        that this processor has not seen; invalidate their units.

        Returns ``(cost_us, payload_bytes, n_notices)`` so the caller can
        charge the wake-up time and size the carrying message.

        The per-unit side effects are batched per *interval* (the units
        of one interval are distinct, so testing ``pending_n == 0``
        against the state before the interval's own appends is exactly
        the per-notice emptiness check, and clearing persistence /
        access-validity flags is idempotent); the
        :class:`~repro.dsm.intervals.WriteNotice` objects themselves are
        still appended one by one because a later fetch consumes them as
        ordered lists.  ``tests/properties`` diffs this against the
        retained :meth:`IntervalStore.notices_between` oracle.
        """
        newly_invalid = 0
        n = 0
        pending = self.pending
        pending_n = self.pending_n
        persist = self._twin_persist
        invalidate_many = self.aggregator.on_invalidate_many
        store = self.store
        own_vc = self.vc
        for proc in range(self.config.nprocs):
            for interval in store.intervals_between(
                proc, own_vc[proc], new_vc[proc]
            ):
                if interval.proc == self.pid:
                    raise AssertionError("received a notice for own interval")
                ua = interval.units_arr
                if not ua.shape[0]:
                    continue
                n += ua.shape[0]
                newly_invalid += int((pending_n[ua] == 0).sum())
                pending_n[ua] += 1
                persist[ua] = False
                invalidate_many(ua)
                iproc, iidx, iseq = (
                    interval.proc,
                    interval.index,
                    interval.commit_seq,
                )
                for unit in interval.units_list:
                    lst = pending.get(unit)
                    if lst is None:
                        lst = pending[unit] = []
                    lst.append(
                        WriteNotice(
                            proc=iproc, index=iidx, unit=unit, commit_seq=iseq
                        )
                    )
        self.vc.join(new_vc)
        cost = newly_invalid * self.config.mprotect_us
        self.stats.mprotects += newly_invalid
        return cost, n * self.config.write_notice_bytes, n

    # ------------------------------------------------------------------
    # Fault service
    # ------------------------------------------------------------------
    def fetch(self, units: Sequence[int]) -> None:
        """Service an access miss by fetching the pending diffs of
        ``units`` (the faulting unit plus whatever the aggregation
        strategy bundled with it).

        Requests to the same writer are combined into one exchange;
        distinct writers are contacted in parallel, so the stall is the
        maximum (not the sum) of the per-writer response times --- the
        aggregation advantage of Sections 3 and 4.
        """
        pending_get = self.pending.get
        by_writer: Dict[int, List[WriteNotice]] = {}
        for unit in units:
            for notice in pending_get(unit, ()):
                by_writer.setdefault(notice.proc, []).append(notice)
        if not by_writer:
            raise AssertionError(f"fetch with nothing pending: units={units}")

        config = self.config
        now = self.clock.now
        fault_id = len(self.stats.fault_records)

        # Coalesce each writer's diffs as TreadMarks' lazy diffing would:
        # group the globally commit-ordered notices into maximal runs of
        # consecutive (writer, unit) entries and merge each run into one
        # diff (repro.dsm.diff.merge_diffs).  Restricting merging to
        # *consecutive* runs keeps the apply order a linear extension of
        # happens-before even when another writer's interval falls
        # between two intervals of the same writer (migratory data under
        # locks), where merging across would resurrect stale words.
        all_notices = sorted(
            (nt for lst in by_writer.values() for nt in lst),
            key=attrgetter("commit_seq"),
        )
        runs: List[List[WriteNotice]] = []
        for nt in all_notices:
            if runs and runs[-1][-1].proc == nt.proc and runs[-1][-1].unit == nt.unit:
                runs[-1].append(nt)
            else:
                runs.append([nt])

        per_writer_runs: Dict[int, List[Diff]] = {w: [] for w in by_writer}
        to_apply: List[tuple] = []  # (commit order position, writer, diff)
        writer_diff_cost: Dict[int, float] = {w: 0.0 for w in by_writer}
        store_get = self.store.get
        scan_cache = self.store.diff_scan_cache
        unit_scan_us = self.layout.unit_bytes * config.diff_create_byte_us
        for position, run in enumerate(runs):
            d = merge_diffs(
                [store_get(nt.proc, nt.index).diff_for(nt.unit) for nt in run]
            )
            first = run[0]
            per_writer_runs[first.proc].append(d)
            to_apply.append((position, first.proc, d))
            # Lazy diffing: the writer scans the unit when a span is
            # first requested (the cost sits on the response path) and
            # caches the result; later requests for the same span are
            # served from the diff cache.
            cache_key = (first.proc, first.unit, first.index, run[-1].index)
            if cache_key not in scan_cache:
                scan_cache.add(cache_key)
                writer_diff_cost[first.proc] += unit_scan_us
                self.stats.diffs_created += 1
                self.stats.diff_words_created += d.nwords
                if self.trace is not None:
                    self.trace.on_diff_create(
                        first.proc, self.pid, now, first.unit, d.nwords
                    )

        # Build the exchanges: normally one per writer carrying all that
        # writer's runs; with combine_requests disabled (ablation), one
        # per (writer, run).
        exchange_plans: List[tuple] = []  # (writer, [run diffs], n_notices)
        if config.combine_requests:
            for writer in sorted(by_writer):
                exchange_plans.append(
                    (writer, per_writer_runs[writer], len(by_writer[writer]))
                )
        else:
            for _pos, writer, d in to_apply:
                exchange_plans.append((writer, [d], 1))

        stall = 0.0
        exchange_ids = []
        reply_of_run: Dict[int, int] = {}  # id(diff) -> reply msg id
        network = self.network
        msg_cost = config.msg_cost_us
        parallel = config.parallel_fetch
        for writer, run_diffs, n_notices in exchange_plans:
            ex = network.new_exchange(self.pid, writer, fault_id)
            exchange_ids.append(ex)
            req_bytes = REQUEST_BASE_BYTES + REQUEST_ENTRY_BYTES * n_notices
            # Both legs of the exchange stall the faulting processor, so
            # injected delivery faults (repro.faults) charge their delays
            # to it, whichever direction the perturbed copy travels.
            req = network.record(
                self.pid, writer, MessageClass.DIFF_REQUEST, req_bytes, now, ex,
                waiter=self.pid,
            )
            reply_bytes = sum(d.wire_bytes for d in run_diffs)
            reply_words = sum(d.nwords for d in run_diffs)
            reply = network.record(
                writer, self.pid, MessageClass.DIFF_REPLY, reply_bytes, now, ex,
                waiter=self.pid,
            )
            reply.words_carried = reply_words
            for d in run_diffs:
                reply_of_run[id(d)] = reply.msg_id
            network.close_exchange(ex, req.msg_id, reply.msg_id)
            response_time = (
                msg_cost(req_bytes)
                + config.diff_service_us
                + writer_diff_cost[writer]
                + msg_cost(reply_bytes)
            )
            if parallel:
                stall = max(stall, response_time)
            else:
                stall += response_time

        # Per-exchange CPU time at the requester (send + receive): wire
        # latencies overlap across writers, CPU work does not.
        stall += 2 * config.msg_cpu_us * len(exchange_plans)

        # Apply in global commit order.
        apply_cost = 0.0
        stats = self.stats
        tracker_mark = self.tracker.mark
        apply_byte_us = config.diff_apply_byte_us
        wpu = self._wpu
        for _pos, writer, d in to_apply:
            msg_id = reply_of_run[id(d)]
            w0 = d.unit * wpu
            apply_diff(d, self.space.unit_view(d.unit))
            if d.nwords:
                tracker_mark(d.idx + np.int64(w0), msg_id)
            apply_cost += d.data_bytes * apply_byte_us
            stats.diffs_applied += 1
            stats.diff_words_applied += d.nwords
            if self.trace is not None:
                pages, page_words = (), ()
                if d.nwords:
                    pg, cnt = np.unique(
                        (d.idx.astype(np.int64) + w0) // self.layout.words_per_page,
                        return_counts=True,
                    )
                    pages = tuple(int(p) for p in pg)
                    page_words = tuple(int(c) for c in cnt)
                self.trace.on_diff_apply(
                    self.pid, now, d.unit, writer, d.nwords, msg_id,
                    pages, page_words,
                )

        pending_pop = self.pending.pop
        pending_n = self.pending_n
        for unit in units:
            pending_pop(unit, None)
            pending_n[unit] = 0

        stats.mprotects += len(units)
        cost = (
            config.fault_trap_us
            + len(units) * config.mprotect_us
            + stall
            + apply_cost
        )
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=now,
                fault_id=fault_id,
                units=tuple(units),
                writers=len(by_writer),
                exchange_ids=tuple(exchange_ids),
                stall_us=stall,
                cost_us=cost,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=now,
            units=tuple(units),
            writers=len(by_writer),
            exchange_ids=tuple(exchange_ids),
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)

    def monitoring_fault(self, unit: int) -> None:
        """A dynamic-aggregation access-tracking fault: the unit's data is
        already current, so no messages are exchanged; only the trap and
        re-protection costs are paid (the Section-4 monitoring overhead)."""
        self.stats.mprotects += 1
        cost = self.config.fault_trap_us + self.config.mprotect_us
        trace_eid = None
        if self.trace is not None:
            trace_eid = self.trace.on_fault(
                proc=self.pid,
                ts=self.clock.now,
                fault_id=len(self.stats.fault_records),
                units=(unit,),
                writers=0,
                exchange_ids=(),
                stall_us=0.0,
                cost_us=cost,
                monitoring=True,
            )
        self.stats.record_fault(
            proc=self.pid,
            time_us=self.clock.now,
            units=(unit,),
            writers=0,
            exchange_ids=(),
            monitoring=True,
            trace_eid=trace_eid,
        )
        self.clock.advance(cost)

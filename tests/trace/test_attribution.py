"""Per-page false-sharing attribution."""

import pytest

from repro.apps.base import run_app
from repro.sim.config import SimConfig
from repro.trace.attribution import attribute_pages, render_attribution

from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def mgs_8k():
    """MGS at an 8 KB unit: the paper's useless-message explosion."""
    app, ds = tiny_app("MGS")
    return run_app(app, ds, SimConfig(nprocs=8, unit_pages=2, trace=True))


@pytest.fixture(scope="module")
def jacobi_4k():
    app, ds = tiny_app("Jacobi")
    return run_app(app, ds, SimConfig(nprocs=8, unit_pages=1, trace=True))


def test_rows_are_ranked_by_useless_bytes(mgs_8k):
    rows = attribute_pages(mgs_8k.trace)
    keys = [(-r.useless_words, r.page) for r in rows]
    assert keys == sorted(keys)


def test_useless_traffic_localized_with_labels(mgs_8k):
    rows = attribute_pages(mgs_8k.trace)
    assert mgs_8k.comm.useless_messages > 0  # precondition of the scenario
    assert any(r.useless_words > 0 for r in rows)
    top = rows[0]
    assert top.useless_words > 0
    assert top.allocation != ""


def test_totals_match_diff_traffic(mgs_8k):
    rows = attribute_pages(mgs_8k.trace)
    total_words = sum(r.words_received for r in rows)
    applied = sum(ev.nwords for ev in mgs_8k.trace.by_kind("diff_apply"))
    assert total_words == applied
    for r in rows:
        assert r.useful_words + r.useless_words == pytest.approx(r.words_received)


def test_useless_message_count_is_conserved(mgs_8k):
    rows = attribute_pages(mgs_8k.trace)
    attributed = sum(r.useless_messages for r in rows)
    # Each useless *exchange* counts two messages (request + reply) in
    # the run breakdown but attributes its one data-carrying reply.
    assert attributed == pytest.approx(mgs_8k.comm.useless_messages / 2)


def test_no_useless_attribution_when_run_has_none(jacobi_4k):
    assert jacobi_4k.comm.useless_messages == 0
    assert jacobi_4k.comm.piggybacked_useless_bytes == 0
    rows = attribute_pages(jacobi_4k.trace)
    assert rows, "Jacobi still ships useful boundary diffs"
    assert all(r.useless_words == pytest.approx(0.0) for r in rows)
    assert all(r.useless_messages == 0 for r in rows)


def test_fault_counts_cover_faulting_pages(jacobi_4k):
    rows = attribute_pages(jacobi_4k.trace)
    assert sum(r.faults for r in rows) >= jacobi_4k.stats.faults


def test_render_lists_top_pages(mgs_8k):
    rows = attribute_pages(mgs_8k.trace)
    text = render_attribution(rows, top=3)
    assert "False-sharing attribution" in text
    # Header + 3 rows.
    assert len(text.splitlines()) == 2 + 3
    assert rows[0].allocation[:16] in text


def test_render_empty():
    assert "no diff traffic" in render_attribution([])

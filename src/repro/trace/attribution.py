"""Per-page false-sharing attribution.

The run-level useful/useless breakdown (:mod:`repro.stats.report`) says
*how much* traffic was wasted; this module says *where*.  It joins three
sources:

* ``diff_apply`` trace events, which record how many words each reply
  message installed into each hardware page,
* the network ledger, where each reply's useful word count resolved as
  the run consumed (or failed to consume) the shipped words,
* the heap layout, which maps pages back to allocation labels
  (``Tmk_malloc`` names).

A reply message can carry diffs for several pages and its usefulness
resolves per message, not per word-position, so a message's useless
words are attributed to its pages *proportionally* to the words it
installed in each -- exact when a message touches one page (the 4 KB
baseline), a documented approximation for combined fetches.

The ranking that falls out -- pages ordered by useless bytes received --
is the actionable artifact: the top entries are the falsely-shared
pages whose layout (or consistency-unit choice) is costing messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.network import DATA_CLASSES, Network
from repro.trace.recorder import TraceRecorder

if False:  # TYPE_CHECKING without the runtime import
    from repro.dsm.address_space import SharedHeapLayout


@dataclass
class PageAttribution:
    """Traffic attributed to one hardware page."""

    page: int
    allocation: str
    """Label of the allocation covering the page ('' for unallocated)."""

    words_received: int = 0
    useful_words: float = 0.0
    useless_words: float = 0.0
    useless_messages: float = 0.0
    """Useless data messages attributed here (fractional when a useless
    reply carried diffs for several pages)."""

    faults: int = 0
    """Data faults whose faulting unit covers this page."""

    @property
    def useless_bytes(self) -> float:
        return self.useless_words * 4

    @property
    def useful_bytes(self) -> float:
        return self.useful_words * 4


def attribute_pages(
    trace: TraceRecorder,
    network: Optional[Network] = None,
    layout: Optional["SharedHeapLayout"] = None,
) -> List[PageAttribution]:
    """Build the per-page attribution, ranked by useless bytes
    (descending), then by page number."""
    network = network if network is not None else trace.network
    layout = layout if layout is not None else trace.layout
    if network is None:
        raise ValueError("attribution needs the run's network ledger")

    # words installed per (msg, page)
    msg_page_words: Dict[int, Dict[int, int]] = {}
    fault_pages: Dict[int, int] = {}
    pages_per_unit = trace.config.unit_pages

    for ev in trace.events:
        if ev.kind == "diff_apply":
            per_page = msg_page_words.setdefault(ev.msg_id, {})
            for page, nw in zip(ev.pages, ev.page_words, strict=True):
                per_page[page] = per_page.get(page, 0) + nw
        elif ev.kind == "fault" and not ev.monitoring:
            for unit in ev.units:
                for page in range(
                    unit * pages_per_unit, (unit + 1) * pages_per_unit
                ):
                    fault_pages[page] = fault_pages.get(page, 0) + 1

    rows: Dict[int, PageAttribution] = {}

    def row(page: int) -> PageAttribution:
        if page not in rows:
            label = ""
            if layout is not None:
                alloc = layout.allocation_containing(page * layout.page_size)
                if alloc is not None:
                    label = alloc.name
            rows[page] = PageAttribution(page=page, allocation=label)
        return rows[page]

    for msg in network.messages:
        if msg.klass not in DATA_CLASSES:
            continue
        per_page = msg_page_words.get(msg.msg_id)
        if not per_page:
            continue
        carried = sum(per_page.values())
        if carried <= 0:
            continue
        useless_frac = msg.words_useless / msg.words_carried if msg.words_carried else 0.0
        for page, nw in per_page.items():
            r = row(page)
            r.words_received += nw
            r.useless_words += nw * useless_frac
            r.useful_words += nw * (1.0 - useless_frac)
            if msg.is_useless:
                # Fractional by design: PageAttribution.useless_messages
                # apportions one message across its pages (module
                # docstring); it never feeds the golden counters.
                r.useless_messages += nw / carried  # detlint: ok(golden-float)

    for page, n in fault_pages.items():
        row(page).faults += n

    return sorted(
        rows.values(), key=lambda r: (-r.useless_words, r.page)
    )


def concurrent_write_pages(trace: TraceRecorder) -> List[int]:
    """Pages written by >= 2 distinct processors within one barrier
    epoch, from the linearized access trace.

    A processor's epoch counter is the number of its ``barrier_depart``
    events seen so far (the recorder's append order is a valid
    linearization, so per-processor program order is preserved).  This
    is the dynamic ground truth the static analyzer's predicted
    conflict pages are validated against
    (:mod:`repro.analyze.crosscheck`): lock-protected writes by
    different processors in the same epoch *do* count -- locks order
    the writes but do not separate the interval, which is exactly the
    write-write sharing the protocol pays for.
    """
    layout = trace.layout
    if layout is None:
        raise ValueError("concurrent_write_pages needs the run's layout")
    epoch = [0] * trace.config.nprocs
    writers: Dict[Tuple[int, int], Set[int]] = {}
    for ev in trace.events:
        if ev.kind == "barrier_depart":
            epoch[ev.proc] += 1
        elif ev.kind == "access" and ev.op == "write":
            for page in layout.pages_of_range(ev.word0, ev.nwords):
                writers.setdefault((epoch[ev.proc], page), set()).add(ev.proc)
    return sorted(
        {page for (_, page), procs in writers.items() if len(procs) >= 2}
    )


def render_attribution(
    rows: Sequence[PageAttribution], top: int = 10
) -> str:
    """ASCII report of the top-``top`` pages by useless bytes."""
    lines = [
        f"False-sharing attribution (top {min(top, len(rows))} of "
        f"{len(rows)} pages by useless bytes)",
        f"{'page':>6} {'allocation':<16} {'useless msgs':>12} "
        f"{'useless KB':>11} {'useful KB':>10} {'faults':>7}",
    ]
    for r in rows[:top]:
        lines.append(
            f"{r.page:>6} {r.allocation[:16]:<16} {r.useless_messages:>12.1f} "
            f"{r.useless_bytes / 1024:>11.2f} {r.useful_bytes / 1024:>10.2f} "
            f"{r.faults:>7}"
        )
    if not rows:
        lines.append("  (no diff traffic recorded)")
    return "\n".join(lines)

"""Static-vs-dynamic cross-validation of the access-pattern analyzer.

For each application's smallest paper dataset, run the static predictor
(:mod:`repro.analyze.predict`) and one traced 4 KB simulation, then
compare:

* every **predicted** write-write page must be **observed** by
  :func:`repro.trace.attribution.concurrent_write_pages` -- a predicted
  page the run never multi-writes means a wrong declaration or a broken
  analyzer, and fails hard;
* **observed-but-unpredicted** pages are *analyzer gaps*: dynamic
  sharing the static declaration cannot see (data-dependent ``may``
  accesses -- TSP's migratory queue is the designed example).  Gaps are
  recorded in a committed ratchet file
  (``benchmarks/analyze/crosscheck_gaps.json``): a run may only ever
  *shrink* an application's gap set.  A new gap fails the gate until
  either the declaration is improved or the gap is consciously accepted
  with ``--update-ratchet`` (and the diff reviewed in the commit).

Pages are keyed as ``allocation:page`` labels, so the ratchet file
stays reviewable and stable across refactors that do not move the heap
layout.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analyze.predict import Prediction, predict
from repro.apps.base import get_app, run_app
from repro.bench.golden import SMALL_DATASETS
from repro.bench.harness import config_for
from repro.dsm.address_space import SharedHeapLayout
from repro.trace.attribution import concurrent_write_pages

#: The committed analyzer-gap ratchet (repository root relative).
RATCHET_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "analyze"
    / "crosscheck_gaps.json"
)


def _labels(pages: Sequence[int], layout: SharedHeapLayout) -> List[str]:
    out = []
    for page in pages:
        alloc = layout.allocation_containing(page * layout.page_size)
        name = alloc.name if alloc is not None else "?"
        out.append(f"{name}:{page}")
    return out


@dataclass
class CrosscheckResult:
    """Outcome of one application's static-vs-dynamic comparison."""

    app: str
    dataset: str
    nprocs: int
    prediction: Prediction
    observed: List[str]
    """``allocation:page`` labels of dynamically multi-written pages."""

    missing: List[str]
    """Predicted but never observed (hard failure: unsound prediction)."""

    gaps: List[str]
    """Observed but not predicted (ratcheted analyzer gaps)."""

    @property
    def key(self) -> str:
        return f"{self.app}/{self.dataset}/p{self.nprocs}"

    @property
    def sound(self) -> bool:
        return not self.missing

    def render(self) -> str:
        lines = [
            f"{self.app} {self.dataset} (p{self.nprocs}): "
            f"{len(self.prediction.conflict_pages)} predicted, "
            f"{len(self.observed)} observed, "
            f"{len(self.gaps)} analyzer gap(s)"
        ]
        for label in self.missing:
            lines.append(f"  MISSING (predicted, never observed): {label}")
        for label in self.gaps:
            lines.append(f"  gap (dynamic-only): {label}")
        return "\n".join(lines)


def crosscheck_app(
    app_name: str, dataset: Optional[str] = None, nprocs: int = 8
) -> CrosscheckResult:
    """Predict + traced 4 KB run + compare, for one application."""
    dataset = dataset if dataset is not None else SMALL_DATASETS[app_name]
    prediction = predict(app_name, dataset, nprocs)

    config = config_for("4K", nprocs=nprocs, trace=True)
    result = run_app(get_app(app_name), dataset, config)
    trace = result.trace
    assert trace is not None, "run was configured with trace=True"
    observed_pages = concurrent_write_pages(trace)

    predicted = set(prediction.labeled_pages())
    observed = set(_labels(observed_pages, trace.layout))
    return CrosscheckResult(
        app=app_name,
        dataset=dataset,
        nprocs=nprocs,
        prediction=prediction,
        observed=sorted(observed),
        missing=sorted(predicted - observed),
        gaps=sorted(observed - predicted),
    )


# ----------------------------------------------------------------------
# Ratchet file
# ----------------------------------------------------------------------
def load_ratchet(path: pathlib.Path = RATCHET_PATH) -> Dict[str, List[str]]:
    """cell key -> accepted gap labels (empty when uninitialized)."""
    if not path.exists():
        return {}
    with open(path) as fh:
        return {k: list(v) for k, v in json.load(fh).items()}


def write_ratchet(
    data: Dict[str, List[str]], path: pathlib.Path = RATCHET_PATH
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(
            {k: sorted(v) for k, v in sorted(data.items())},
            fh,
            indent=1,
            sort_keys=True,
        )
        fh.write("\n")


def run_crosscheck(
    apps: Optional[Sequence[str]] = None,
    nprocs: int = 8,
    update_ratchet: bool = False,
    ratchet_path: pathlib.Path = RATCHET_PATH,
) -> int:
    """The full gate: every requested app (default: all 8) must be sound
    and within its ratcheted gap set.  Returns a process exit code."""
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    ratchet = load_ratchet(ratchet_path)
    failures = 0
    new_ratchet: Dict[str, List[str]] = dict(ratchet)

    for name in names:
        res = crosscheck_app(name, nprocs=nprocs)
        print(res.render())
        accepted = set(ratchet.get(res.key, []))
        current = set(res.gaps)
        if not res.sound:
            print(f"  FAIL: prediction unsound for {res.key}")
            failures += 1
        elif res.key not in ratchet and current and not update_ratchet:
            print(
                f"  FAIL: no ratchet entry for {res.key}; run with "
                f"--update-ratchet to record the initial gap set"
            )
            failures += 1
        elif current - accepted:
            print(
                f"  FAIL: new analyzer gap(s) beyond the ratchet: "
                f"{sorted(current - accepted)}"
            )
            if not update_ratchet:
                failures += 1
        elif accepted - current:
            print(
                f"  note: gap set shrank by {len(accepted - current)} "
                f"page(s); tighten the ratchet with --update-ratchet"
            )
        new_ratchet[res.key] = sorted(current)

    if update_ratchet:
        write_ratchet(new_ratchet, ratchet_path)
        print(f"ratchet written: {ratchet_path}")
    print(
        f"crosscheck: {len(names)} app(s), {failures} failure(s)"
    )
    return 1 if failures else 0

"""Vector clock partial-order laws (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.vc import VectorClock

vecs = st.lists(st.integers(0, 20), min_size=1, max_size=8)


def pair(draw_len=4):
    return st.tuples(
        st.lists(st.integers(0, 20), min_size=draw_len, max_size=draw_len),
        st.lists(st.integers(0, 20), min_size=draw_len, max_size=draw_len),
    )


@given(vecs)
def test_reflexive(entries):
    v = VectorClock(entries)
    assert v <= v
    assert not (v < v)


@given(pair())
def test_antisymmetric(ab):
    a, b = (VectorClock(x) for x in ab)
    if a <= b and b <= a:
        assert a == b


@given(st.tuples(*[st.lists(st.integers(0, 9), min_size=3, max_size=3)] * 3))
def test_transitive(abc):
    a, b, c = (VectorClock(x) for x in abc)
    if a <= b and b <= c:
        assert a <= c


@given(pair())
def test_join_is_least_upper_bound(ab):
    a, b = (VectorClock(x) for x in ab)
    j = a.joined(b)
    assert a <= j and b <= j
    # Any other upper bound dominates the join.
    ub = VectorClock([max(x, y) + 1 for x, y in zip(a, b)])
    assert j <= ub


@given(pair())
def test_join_commutative_idempotent(ab):
    a, b = (VectorClock(x) for x in ab)
    assert a.joined(b) == b.joined(a)
    assert a.joined(a) == a


@given(pair())
def test_exactly_one_relation(ab):
    a, b = (VectorClock(x) for x in ab)
    relations = [a == b, a < b, b < a, a.concurrent_with(b)]
    assert sum(relations) == 1


@given(vecs, st.data())
def test_tick_strictly_increases(entries, data):
    v = VectorClock(entries)
    old = v.copy()
    pid = data.draw(st.integers(0, len(entries) - 1))
    v.tick(pid)
    assert old < v


@given(st.tuples(*[st.lists(st.integers(0, 9), min_size=3, max_size=3)] * 3))
def test_join_associative(abc):
    a, b, c = (VectorClock(x) for x in abc)
    assert a.joined(b).joined(c) == a.joined(b.joined(c))


@given(pair())
def test_concurrency_is_symmetric_and_irreflexive(ab):
    a, b = (VectorClock(x) for x in ab)
    assert a.concurrent_with(b) == b.concurrent_with(a)
    assert not a.concurrent_with(a)


@given(pair())
def test_join_dominates_iff_comparable(ab):
    """The merge adds no information when one side already dominates:
    a <= b  iff  join(a, b) == b."""
    a, b = (VectorClock(x) for x in ab)
    assert (a <= b) == (a.joined(b) == b)

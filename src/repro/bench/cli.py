"""Command-line runner for the experiment harness.

    python -m repro.bench table1
    python -m repro.bench figure1 figure2 figure3 --jobs 4
    python -m repro.bench micro ablation
    python -m repro.bench all --out repro_results
    python -m repro.bench --check
    python -m repro.bench --refresh-golden

Each command prints the paper-shaped table and (with ``--out``) writes
it next to the CSV data, exactly like the pytest-benchmark suite.

Sweep cells are cached on disk under ``repro_results/cache/`` (keyed by
code version + configuration, so any source change invalidates them) and
can be fanned out over worker processes with ``--jobs``; parallel runs
are bit-identical to serial ones.  ``--check`` is the golden-baseline
regression gate (exit 1 on any counter drift); ``--refresh-golden``
regenerates the committed baselines after an intended behavior change.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import (
    ablation,
    cache,
    figures,
    golden,
    micro,
    pool,
    profile,
    protocol_sweep,
    table1,
)
from repro.bench.harness import ResultCache


def _run_table1() -> str:
    return table1.render_table1(table1.build_table1())


def _run_figure(
    fig: Callable[[], Tuple[figures.Matrix, str]]
) -> Callable[[], str]:
    def run() -> str:
        _, text = fig()
        return text

    return run


def _run_micro() -> str:
    return micro.render(micro.run_all())


def _run_ablation() -> str:
    rows = (
        ablation.sweep_group_size("ILINK", "CLP")
        + ablation.sweep_group_size("MGS", "1Kx1K")
        + ablation.ablate_request_combining("ILINK", "CLP")
        + ablation.ablate_parallel_fetch("ILINK", "CLP")
    )
    return "Ablations\n" + ablation.render(rows)


def _run_protocols() -> str:
    return protocol_sweep.render(protocol_sweep.sweep_rows())


COMMANDS: Dict[str, Callable[[], str]] = {
    "table1": _run_table1,
    "figure1": _run_figure(figures.figure1),
    "figure2": _run_figure(figures.figure2),
    "figure3": _run_figure(figures.figure3),
    "micro": _run_micro,
    "ablation": _run_ablation,
    "protocols": _run_protocols,
}


def _cells_for(names: List[str]) -> List[pool.SweepCell]:
    """Every sweep cell the named experiments will consume, so a parallel
    prewarm leaves only cache hits for the (serial) renderers."""
    cells: List[pool.SweepCell] = []
    for name in names:
        if name == "table1":
            cells.extend(table1.cells())
        elif name in ("figure1", "figure2", "figure3"):
            cells.extend(figures.cells(name))
        elif name == "ablation":
            cells.extend(ablation.cells())
        elif name == "protocols":
            cells.extend(protocol_sweep.cells())
        # micro measures sync primitives directly; it has no sweep cells.
    return cells


def _dump_traces(outdir: pathlib.Path) -> None:
    """Write Chrome-trace timelines of the figure-1 applications (one
    traced 4 KB run each) into ``outdir``.  Traced runs bypass the
    result cache: the recorder is observational, but cached results do
    not carry one."""
    from repro.apps.base import get_app, run_app
    from repro.bench.harness import config_for
    from repro.trace.export import write_chrome_trace

    outdir.mkdir(parents=True, exist_ok=True)
    for app_name, dataset in figures.FIGURE1_CASES:
        res = run_app(
            get_app(app_name), dataset, config_for("4K", trace=True)
        )
        path = outdir / f"{app_name.lower()}-{dataset}-4K.trace.json"
        write_chrome_trace(path, res.trace, label=f"{app_name}/{dataset} 4K")
        print(f"wrote {path} ({len(res.trace.events)} events)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        metavar="{" + ",".join(sorted(COMMANDS) + ["all"]) + "}",
        help="which experiments to run",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write .txt outputs into (default: print only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep cells over N worker processes (results are "
        "bit-identical to a serial run; default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=cache.DEFAULT_CACHE_DIR,
        help="on-disk result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="golden-baseline regression gate: re-run the fixed matrix "
        "(all apps, smallest dataset, 4K/8K/16K/Dyn, plus the "
        "microbenchmarks) and exact-match every counter against "
        "benchmarks/golden/; exit 1 on any drift",
    )
    parser.add_argument(
        "--refresh-golden",
        action="store_true",
        help="regenerate the committed golden baselines from the current "
        "code (review the diff before committing)",
    )
    parser.add_argument(
        "--golden-dir",
        type=pathlib.Path,
        default=golden.GOLDEN_DIR,
        help="golden baseline directory (default: %(default)s)",
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        metavar="APP[,APP]",
        help="restrict --check / --refresh-golden to these applications "
        "(skips the micro baselines)",
    )
    parser.add_argument(
        "--protocols",
        type=str,
        default=None,
        metavar="P[,P]|all",
        help="widen --check / --refresh-golden to these consistency "
        f"protocols ('all' = {','.join(golden.GOLDEN_PROTOCOLS)}; "
        "default: the default protocol only)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="widen --check / --refresh-golden with the paper full-size "
        "datasets (Barnes 32K bodies, Jacobi 512x512, Shallow 512x512; "
        "default protocol, 4K and Dyn units).  This is the DEFAULT for "
        "bulk mode since the vectorized protocol kernels made the full "
        "sizes cheap; the flag remains to force the tier onto a "
        "scalar-mode check",
    )
    parser.add_argument(
        "--small-only",
        action="store_true",
        help="restrict --check / --refresh-golden to the scaled small "
        "datasets (opts out of the default full-size tier)",
    )
    parser.add_argument(
        "--access-mode",
        choices=("bulk", "scalar"),
        default="bulk",
        help="region-access decomposition for --check: 'scalar' re-runs "
        "the gate matrix with every bulk access decomposed into word "
        "accesses and exact-matches it against the same (bulk-generated) "
        "baselines -- the scalar-vs-bulk equivalence gate "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="also write Chrome-trace timelines of the figure-1 "
        "applications (viewable in Perfetto) into this directory",
    )
    parser.add_argument(
        "--profile-case",
        type=str,
        default=profile.DEFAULT_CASE,
        metavar="APP,DATASET,LABEL",
        help="cell the 'profile' experiment measures "
        "(default: %(default)s, the heaviest full-size figure-1 cell)",
    )
    parser.add_argument(
        "--profile-out",
        type=pathlib.Path,
        default=profile.DEFAULT_OUT,
        help="directory the 'profile' experiment writes its .txt/.json "
        "reports into (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    doing_golden = args.check or args.refresh_golden
    if not args.experiments and args.trace_out is None and not doing_golden:
        parser.error(
            "nothing to do: give experiments and/or --trace-out / --check "
            "/ --refresh-golden"
        )
    for name in args.experiments:
        if name not in ("all", "profile") and name not in COMMANDS:
            parser.error(
                f"unknown experiment {name!r} (choose from "
                f"{', '.join(sorted(COMMANDS) + ['all', 'profile'])})"
            )
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.access_mode != "bulk" and (args.experiments or args.refresh_golden):
        parser.error(
            "--access-mode scalar is only meaningful with --check (the "
            "baselines and experiment tables are defined under bulk mode)"
        )

    apps = args.only.split(",") if args.only else None
    protocols: Tuple[str, ...]
    if args.protocols == "all":
        protocols = golden.GOLDEN_PROTOCOLS
    elif args.protocols:
        protocols = tuple(args.protocols.split(","))
        unknown = set(protocols) - set(golden.GOLDEN_PROTOCOLS)
        if unknown:
            parser.error(
                f"unknown protocol(s) {sorted(unknown)} "
                f"(choose from {', '.join(golden.GOLDEN_PROTOCOLS)} or 'all')"
            )
    else:
        protocols = (golden.DEFAULT_PROTOCOL,)
    if args.small_only and args.full:
        parser.error("--small-only and --full are mutually exclusive")
    # Full-size cells are the default tier for bulk-mode --check and
    # --refresh-golden (keeping the refresh->check roundtrip closed);
    # scalar-mode decomposes every access into words, which multiplies
    # protocol bookkeeping, so it stays small unless --full forces it.
    full = args.full or (
        (args.check or args.refresh_golden)
        and not args.small_only
        and args.access_mode == "bulk"
    )
    previous_disk = ResultCache.disk()
    ResultCache.configure(
        None if args.no_cache else cache.DiskCache(args.cache_dir)
    )
    try:
        names = sorted(COMMANDS) if "all" in args.experiments else args.experiments
        if "profile" in names:
            # Profiled runs are never cached (the profiler needs the
            # simulation to actually execute) and run after the cached
            # experiments so their cells stay warm for the renderers.
            names = [n for n in names if n != "profile"]
            text = profile.run_and_write(args.profile_case, args.profile_out)
            print(text)
            print()
        if names:
            report = pool.run_cells(_cells_for(names), jobs=args.jobs)
            print(f"# sweep: {report.summary()}", file=sys.stderr)
        for name in names:
            text = COMMANDS[name]()
            print(text)
            print()
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(text + "\n")
        if args.trace_out is not None:
            _dump_traces(args.trace_out)

        if args.refresh_golden:
            written = golden.write_golden(
                args.golden_dir, apps=apps, jobs=args.jobs,
                protocols=protocols, full=full,
            )
            for path in written:
                print(f"wrote {path}")
        if args.check:
            check_report = golden.check(
                args.golden_dir, apps=apps, jobs=args.jobs,
                protocols=protocols, access_mode=args.access_mode,
                full=full,
            )
            print(check_report.render())
            if not check_report.ok:
                return 1
        return 0
    finally:
        ResultCache.configure(previous_disk)


if __name__ == "__main__":
    sys.exit(main())

"""JSON report round trips: every machine report the analyze CLI writes
(`--lint --json`, `--predict --json`, `layout --json`) must load back
field-for-field through the matching ``from_json_dict`` inverse."""

from __future__ import annotations

import json

from repro.analyze.cli import main
from repro.analyze.detlint import lint_source
from repro.analyze.layout import LayoutReport, Remedy
from repro.analyze.predict import Prediction, predict
from repro.analyze.report import (
    LintReport,
    merge_sections,
    sections_from_json_dict,
)

HAZARDOUS = (
    "import time\n"
    "t = time.monotonic()\n"
    "for x in {1, 2}:  # detlint: ok(set-iter)\n"
    "    print(x)\n"
)


def test_lint_sections_round_trip():
    sections = {
        "src": lint_source(HAZARDOUS, "a.py"),
        "helpers": lint_source("x = 1\n", "b.py"),
    }
    doc = json.loads(json.dumps(merge_sections(sections)))
    assert doc["ok"] is False
    assert sorted(doc["sections"]) == ["helpers", "src"]
    back = sections_from_json_dict(doc)
    assert back == sections
    # The derived verdict survives the trip too.
    assert back["src"].ok is False and back["helpers"].ok is True
    assert any(f.suppressed for f in back["src"].findings)


def test_lint_report_round_trips_field_for_field():
    report = lint_source(HAZARDOUS, "a.py")
    doc = json.loads(json.dumps(report.to_json_dict()))
    back = LintReport.from_json_dict(doc)
    assert back == report
    assert back.to_json_dict() == report.to_json_dict()


def test_prediction_round_trips_field_for_field():
    pred = predict("Barnes", "16K", 8)
    assert pred.conflict_pages, "Barnes must predict ww pages"
    doc = json.loads(json.dumps(pred.to_json_dict()))
    back = Prediction.from_json_dict(doc)
    assert back == pred
    assert back.to_json_dict() == pred.to_json_dict()


def test_layout_report_round_trips_field_for_field():
    concrete = Remedy(
        kind="hot-cold-split",
        array="grid",
        unit_bytes=8192,
        segments=((0, 12288), (12288, 86016)),
        note="isolate hot runs",
        ww_units_before=0,
        ww_units_after=0,
        useless_words_before=14336,
        useless_words_after=0,
        useless_units_before=14,
        useless_units_after=0,
    )
    advisory = Remedy(
        kind="per-proc-blocking",
        array="cells",
        unit_bytes=4096,
        segments=(),
        note="re-block the iteration space",
        ww_units_before=5,
        ww_units_after=5,
        useless_words_before=0,
        useless_words_after=0,
        useless_units_before=0,
        useless_units_after=0,
    )
    report = LayoutReport(
        app="Jacobi",
        dataset="1Kx1K",
        nprocs=8,
        baseline={8192: {"ww_units": 0, "useless_words": 14336,
                         "useless_units": 14}},
        remedies=[concrete, advisory],
    )
    doc = json.loads(json.dumps(report.to_json_dict()))
    back = LayoutReport.from_json_dict(doc)
    assert back == report
    assert back.to_json_dict() == report.to_json_dict()


# ------------------------------------------------------------- CLI level
def test_cli_lint_json_loads_back(tmp_path, capsys):
    hazard = tmp_path / "hazard.py"
    hazard.write_text(HAZARDOUS)
    out = tmp_path / "lint.json"
    rc = main(["--lint", "--paths", str(hazard), "--json", str(out)])
    capsys.readouterr()
    assert rc == 1  # one active wall-clock finding
    doc = json.loads(out.read_text())
    back = sections_from_json_dict(doc)
    assert set(back) == {"src"}
    assert doc["ok"] is False and back["src"].ok is False
    assert [f.rule for f in back["src"].active] == ["wall-clock"]


def test_cli_predict_json_loads_back(tmp_path, capsys):
    out = tmp_path / "predict.json"
    rc = main(["--predict", "Barnes", "--json", str(out)])
    capsys.readouterr()
    assert rc == 0
    back = Prediction.from_json_dict(json.loads(out.read_text()))
    assert back == predict("Barnes", "16K", 8)


def test_cli_layout_json_loads_back(tmp_path, capsys):
    out = tmp_path / "layout.json"
    rc = main(["layout", "--apps", "Jacobi", "--json", str(out)])
    capsys.readouterr()
    assert rc == 0
    doc = json.loads(out.read_text())
    assert set(doc) == {"Jacobi"}
    back = LayoutReport.from_json_dict(doc["Jacobi"])
    assert back.app == "Jacobi" and back.nprocs == 8
    assert back.to_json_dict() == doc["Jacobi"]
    # The full-advice run proposes the pinned Jacobi remedy.
    assert back.best("grid", 8192, "hot-cold-split") is not None

"""Stop-and-wait reliable-channel state machine."""

import pytest

from repro.faults.channel import (
    REORDER_SLIP_US,
    DroppedMessageError,
    ReliableChannel,
    XmitPhase,
)
from repro.faults.plan import FaultPlan, FaultSpec, message_rng


def channel(plan=None):
    return ReliableChannel(src=0, dst=1, plan=plan or FaultPlan())


def test_clean_delivery_touches_nothing():
    ch = channel()
    d = ch.transmit(0, "lock", FaultSpec(), message_rng(0, 0))
    assert d.attempts == 1 and not d.failed
    assert d.retransmissions == 0 and d.duplicate_deliveries == 0
    assert d.timeout_stall_us == 0.0 and d.extra_delay_us == 0.0
    assert d.resend_offsets_us == ()
    assert ch.history == [XmitPhase.DELIVERED]
    assert (ch.sent, ch.delivered, ch.failed) == (1, 1, 0)


def test_certain_loss_exhausts_retry_budget():
    plan = FaultPlan(max_retries=3, timeout_us=100.0, backoff=2.0)
    ch = channel(plan)
    spec = FaultSpec(drop_rate=0.999999999)
    with pytest.raises(DroppedMessageError) as exc:
        ch.transmit(7, "barrier", spec, message_rng(0, 7))
    # Initial transmission + max_retries copies, all lost.
    assert exc.value.attempts == plan.max_retries + 1
    assert exc.value.msg_id == 7 and exc.value.klass == "barrier"
    assert ch.failed == 1 and ch.history == [XmitPhase.FAILED]


def test_retries_disabled_first_loss_is_fatal():
    plan = FaultPlan(retries_enabled=False)
    with pytest.raises(DroppedMessageError) as exc:
        channel(plan).transmit(3, "lock", FaultSpec(drop_rate=0.999999999),
                               message_rng(0, 3))
    assert exc.value.attempts == 1


def test_timeout_backoff_schedule():
    # Find a message whose first two transmissions are lost under a
    # heavy drop rate, and check the exponential backoff arithmetic.
    plan = FaultPlan(timeout_us=100.0, backoff=2.0, max_retries=8)
    spec = FaultSpec(drop_rate=0.6)
    for msg_id in range(200):
        d = channel(plan).transmit(msg_id, "lock", spec,
                                   message_rng(1, msg_id))
        if d.attempts == 3 and not d.ack_resend:
            # Timeouts: 100 (retry 0), then 200 (retry 1).
            assert d.resend_offsets_us == (100.0, 300.0)
            assert d.timeout_stall_us == 300.0
            assert d.retransmissions == 2
            return
    pytest.fail("no message with exactly two timeout retransmissions found")


def test_lost_ack_is_duplicate_not_stall():
    plan = FaultPlan(timeout_us=100.0, backoff=2.0)
    spec = FaultSpec(drop_rate=0.5)
    for msg_id in range(400):
        d = channel(plan).transmit(msg_id, "lock", spec,
                                   message_rng(2, msg_id))
        if d.ack_resend and d.attempts == 1:
            assert d.retransmissions == 1
            assert d.duplicate_deliveries >= 1
            assert d.timeout_stall_us == 0.0  # delivery already happened
            assert d.resend_offsets_us == (100.0,)
            return
    pytest.fail("no delivered-but-ack-lost message found")


def test_network_duplicate_and_jitter_and_reorder():
    spec = FaultSpec(dup_rate=0.999999999, reorder_rate=0.999999999,
                     reorder_window=4, jitter_us=50.0)
    d = channel().transmit(0, "diff_reply", spec, message_rng(3, 0))
    assert d.net_dup and d.duplicate_deliveries == 1
    assert 0.0 <= d.jitter_us < 50.0
    assert 1 <= d.reorder_depth <= 4
    assert d.reorder_us == d.reorder_depth * REORDER_SLIP_US
    assert d.extra_delay_us == d.jitter_us + d.reorder_us


def test_transmit_is_deterministic_per_key():
    plan = FaultPlan(timeout_us=50.0)
    spec = FaultSpec(drop_rate=0.3, dup_rate=0.2, reorder_rate=0.2,
                     jitter_us=10.0)
    for msg_id in range(32):
        a = channel(plan).transmit(msg_id, "lock", spec,
                                   message_rng(9, msg_id))
        b = channel(plan).transmit(msg_id, "lock", spec,
                                   message_rng(9, msg_id))
        assert a == b

"""Cost model for the simulated platform.

All costs are expressed in *microseconds* of simulated time.  The defaults
are calibrated against the measurements reported in Section 5.1 of the
paper for the Rice platform (166 MHz Pentiums, FreeBSD 2.1.6, 100 Mbps
switched Ethernet, UDP/IP):

* round-trip latency for a 1-byte UDP message: 296 us  -> one-way 148 us
* time to acquire a lock: 374 - 574 us
* 8-processor barrier: 861 us
* time to obtain a diff: 579 - 1746 us
* hardware page size: 4 KB

The derived constants below reproduce those figures to within a few
percent; see ``tests/sim/test_config.py`` which checks the calibration
arithmetic, and ``benchmarks/test_micro.py`` which re-measures them on the
simulated platform.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

#: Name of the default consistency protocol (TreadMarks LRC).  Kept here
#: rather than in :mod:`repro.protocols` because the config layer must
#: not depend on the protocol implementations (they depend on it).
DEFAULT_PROTOCOL = "tm-lrc"


@dataclass(frozen=True)
class SimConfig:
    """Immutable bundle of platform and protocol cost parameters.

    Instances are cheap value objects; use :meth:`replace` to derive
    variants (e.g. a different consistency-unit size) without mutating
    shared state.
    """

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    nprocs: int = 8
    """Number of simulated processors."""

    # ------------------------------------------------------------------
    # Memory geometry
    # ------------------------------------------------------------------
    page_size: int = 4096
    """Hardware page size in bytes (4 KB on the paper's Pentiums)."""

    word_size: int = 4
    """Instrumentation word size in bytes (the paper classifies useful /
    useless data at 4-byte word granularity)."""

    unit_pages: int = 1
    """Consistency unit size in hardware pages (1 -> 4 KB, 2 -> 8 KB,
    4 -> 16 KB).  Ignored when :attr:`dynamic` is true."""

    dynamic: bool = False
    """Use the Section-4 dynamic page-group aggregation algorithm instead
    of a static consistency unit."""

    protocol: str = DEFAULT_PROTOCOL
    """Consistency protocol implementation (a name registered in
    :mod:`repro.protocols`): ``"tm-lrc"`` (TreadMarks lazy release
    consistency, the paper's protocol), ``"hlrc"`` (home-based LRC),
    ``"erc"`` (eager release consistency), or ``"swi"`` (single-writer
    invalidate).  The default is **omitted** from :meth:`to_dict` and
    hence from :meth:`canonical_json`, so cache keys, cell seeds, and
    golden baselines produced before this field existed stay valid
    byte-for-byte."""

    access_mode: str = "bulk"
    """Engine path for bulk region operations (``Proc.read_range`` /
    ``write_range`` and the gather/scatter entry points): ``"bulk"``
    resolves clock charges, twin creation, and diff-word usefulness
    analytically per touched range with vectorized data movement;
    ``"scalar"`` forces the word-loop reference path that defines the
    semantics.  The two modes are bit-identical in every counter,
    checksum, and trace event (enforced by ``tests/equivalence/``); the
    default is **omitted** from :meth:`to_dict` like :attr:`protocol`,
    so cache keys and golden baselines predating the field stay valid
    byte-for-byte."""

    max_group_pages: int = 8
    """Maximum number of pages per dynamic page group (the paper leaves
    this implementation-defined)."""

    # ------------------------------------------------------------------
    # Network costs
    # ------------------------------------------------------------------
    msg_latency_us: float = 148.0
    """One-way wire+stack latency of a small message (296 us RTT / 2)."""

    byte_time_us: float = 0.08
    """Per-byte transfer time: 100 Mbps = 12.5 MB/s = 0.08 us/byte."""

    msg_header_bytes: int = 32
    """UDP/IP + TreadMarks header bytes charged per message."""

    # ------------------------------------------------------------------
    # Protocol service costs
    # ------------------------------------------------------------------
    fault_trap_us: float = 70.0
    """Kernel trap + handler dispatch on an access miss (SIGSEGV path)."""

    msg_cpu_us: float = 35.0
    """Requester-side CPU cost per message (UDP send syscall / receive
    processing).  Charged twice per fault-time exchange (request out,
    reply in); this is why extra *messages* cost far more than extra
    *data* on this class of platform (Section 2)."""

    mprotect_us: float = 12.0
    """One mprotect call covering one hardware page."""

    diff_service_us: float = 140.0
    """Fixed remote-side cost to service one diff request message
    (interrupt, lookup, reply construction)."""

    twin_byte_us: float = 0.010
    """Per-byte cost of copying a consistency unit to create a twin
    (~100 MB/s memcpy on the 166 MHz Pentium)."""

    diff_create_byte_us: float = 0.005
    """Per-byte cost of the word-compare scan that builds a diff
    (~3 cycles/word at 166 MHz).  Charged lazily, at first request, and
    cached per created diff as in TreadMarks."""

    diff_apply_byte_us: float = 0.012
    """Per-diff-byte cost of patching a diff into a page copy."""

    write_notice_bytes: int = 12
    """Wire size of one write notice (page id + vector-clock entry)."""

    # ------------------------------------------------------------------
    # Synchronization costs
    # ------------------------------------------------------------------
    lock_manager_us: float = 40.0
    """Manager-side processing for a lock request (lookup + forward)."""

    lock_messages: int = 3
    """Messages for a remote lock acquire: request to the static manager,
    forward to the last owner, grant (with write notices) to the
    requester.  A re-acquire by the current holder is free."""

    barrier_service_us: float = 25.0
    """Per-arrival manager processing at a barrier."""

    # ------------------------------------------------------------------
    # Local computation costs (application-visible)
    # ------------------------------------------------------------------
    flop_us: float = 0.055
    """Cost of one floating-point operation including its memory traffic
    (~166 MHz, ~9 cycles amortized)."""

    word_access_us: float = 0.012
    """Per-word cost of an instrumented shared-memory access."""

    region_op_us: float = 1.0
    """Fixed per-region-operation overhead (address arithmetic, page
    lookup) charged for every shared read/write call."""

    # ------------------------------------------------------------------
    # Accounting switches
    # ------------------------------------------------------------------
    count_sync_messages: bool = True
    """Include lock/barrier messages in the total message counts reported
    by the harness (the paper's totals include them; they are invariant
    across consistency-unit sizes)."""

    trace: bool = False
    """Record a structured protocol event trace (see :mod:`repro.trace`).
    Tracing is observer-only: a traced run yields bit-identical simulated
    times and message counts to the same run untraced (asserted in
    ``tests/trace/test_zero_cost.py``); the only cost is host memory for
    the event list."""

    fault_plan: str = ""
    """Canonical JSON of a :class:`repro.faults.plan.FaultPlan` ("" =
    perfectly reliable network, the paper's assumption).  A nonempty
    plan attaches a :class:`repro.faults.inject.FaultInjector` to the
    run: message loss, duplication, reorder, jitter, and node straggler
    windows are modelled as *shadow costs* -- retransmission stalls and
    delivery delays accrue in a side ledger added to the processor
    clocks after the run, and injected copies appear as RETRANSMIT-class
    ledger messages -- so the protocol schedule, checksums, and all
    useful-data counters stay bit-identical to the fault-free run (the
    chaos gate in :mod:`repro.faults.gate` enforces this invariant).
    Carried as a string so config serialization, hashing, and sweep-cell
    identity extend to fault plans unchanged."""

    gc_threshold: int = 2048
    """Garbage-collect consistency metadata at a barrier once the live
    interval count exceeds this (0 disables).  TreadMarks performs the
    analogous periodic reclamation of diffs and intervals; collection is
    only a memory optimization and never changes results."""

    parallel_fetch: bool = True
    """Fetch diffs from distinct writers in parallel (stall = max of the
    per-writer response times), as TreadMarks does.  Setting this false
    serializes the exchanges (stall = sum) -- an ablation isolating the
    aggregation advantage the paper attributes to parallel diff
    requests."""

    combine_requests: bool = True
    """Combine all diffs needed from one writer into a single exchange.
    Setting this false issues one exchange per (writer, unit) pair -- an
    ablation of the Section-4 request-combining optimization."""

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    @property
    def unit_bytes(self) -> int:
        """Consistency unit size in bytes."""
        return self.page_size * self.unit_pages

    @property
    def words_per_page(self) -> int:
        """Number of instrumentation words in one hardware page."""
        return self.page_size // self.word_size

    @property
    def words_per_unit(self) -> int:
        """Number of instrumentation words in one consistency unit."""
        return self.unit_bytes // self.word_size

    def msg_cost_us(self, payload_bytes: int) -> float:
        """One-way cost of a message carrying ``payload_bytes`` bytes."""
        return (
            self.msg_latency_us
            + (payload_bytes + self.msg_header_bytes) * self.byte_time_us
        )

    def barrier_overhead_us(self, nprocs: int) -> float:
        """Stall between the last arrival and departure of a barrier.

        Arrival and departure each cost one message latency, and the
        manager serially processes every arrival; for ``nprocs == 8`` with
        the default constants this evaluates to ~861 us, the figure
        measured in Section 5.1.
        """
        return 2 * self.msg_latency_us + nprocs * self.barrier_service_us + 365.0

    def lock_acquire_overhead_us(self, remote: bool) -> float:
        """End-to-end cost of acquiring an uncontended lock.

        ``remote`` selects the 3-hop path (requester -> manager -> last
        owner -> requester); a locally-cached re-acquire pays only the
        manager round trip.  The defaults land inside the 374-574 us range
        measured in Section 5.1.
        """
        if remote:
            return self.lock_messages * self.msg_latency_us + 3 * self.lock_manager_us
        return 2 * self.msg_latency_us + 2 * self.lock_manager_us

    def validate(self) -> None:
        """Raise :class:`ValueError` on an inconsistent configuration."""
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.page_size <= 0 or self.page_size % self.word_size:
            raise ValueError(
                f"page_size must be a positive multiple of word_size, got "
                f"{self.page_size}"
            )
        if self.unit_pages < 1:
            raise ValueError(f"unit_pages must be >= 1, got {self.unit_pages}")
        if self.max_group_pages < 1:
            raise ValueError(
                f"max_group_pages must be >= 1, got {self.max_group_pages}"
            )
        if self.word_size != 4:
            raise ValueError("the instrumentation assumes 4-byte words")
        if self.access_mode not in ("bulk", "scalar"):
            raise ValueError(
                f"access_mode must be 'bulk' or 'scalar', got "
                f"{self.access_mode!r}"
            )
        if self.protocol != DEFAULT_PROTOCOL:
            # Check against the registry (lazy import: the protocols
            # package depends on this module, not the other way around).
            # The default name skips the import so constructing a stock
            # config never pulls in the protocol implementations.
            from repro.protocols import protocol_names

            if self.protocol not in protocol_names():
                raise ValueError(
                    f"unknown protocol {self.protocol!r}; registered: "
                    f"{protocol_names()}"
                )
        if self.fault_plan:
            # Parse-validate the embedded plan (lazy import: the faults
            # package depends on this module, not the other way around).
            from repro.faults.plan import parse_plan

            parse_plan(self.fault_plan).validate(self.nprocs)

    def replace(self, **kwargs: object) -> "SimConfig":
        """Return a copy with the given fields replaced (and validated)."""
        cfg = dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    # Stable serialization (the result cache and golden baselines key on
    # this; see repro.bench.cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields as a JSON-safe dict (ints, floats, bools only).

        ``protocol`` and ``access_mode`` are omitted when they hold their
        defaults, so the canonical JSON (and everything keyed on it:
        config hashes, cache keys, cell seeds, golden baselines) of a
        default config is byte-identical to what it was before each
        field existed.  :meth:`from_dict` fills the missing keys back in
        via the dataclass defaults."""
        data = dataclasses.asdict(self)
        if data["protocol"] == DEFAULT_PROTOCOL:
            del data["protocol"]
        if data["access_mode"] == "bulk":
            del data["access_mode"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Unknown keys raise so a cache entry written by a future config
        schema is rejected rather than silently reinterpreted."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimConfig fields: {sorted(unknown)}")
        cfg = cls(**data)
        cfg.validate()
        return cfg

    def canonical_json(self) -> str:
        """Canonical JSON form: every field, keys sorted, no whitespace.

        Two configs are behaviorally identical iff their canonical JSON
        is byte-identical (floats serialize via repr, which round-trips
        exactly), so this string is a sound cache-key component.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """Short stable digest of :meth:`canonical_json`."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]


#: The configuration matching the paper's platform with the baseline 4 KB
#: consistency unit.  Derive variants with :meth:`SimConfig.replace`.
PAPER_PLATFORM = SimConfig()

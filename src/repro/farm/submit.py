"""Enqueue existing sweeps as farm cells.

Every experiment in the repo already enumerates its sweep cells (that is
what makes ``--jobs`` prewarming work); ``submit`` reuses those
enumerators verbatim, so the farm computes exactly the cells the CLI
renderers will later consume -- same keys, same seeds, same bytes.

Sweep names:

``table1``, ``figure1``, ``figure2``, ``figure3``, ``ablation``
    The paper experiments (:mod:`repro.bench`).
``protocols``
    The protocol x unit-size sweep (all registered protocols).
``golden``
    The golden-gate matrix (all apps, smallest datasets, 4K/8K/16K/Dyn),
    optionally widened per app/protocol via ``apps`` / ``protocols``.
``chaos``
    The fault-lab chaos sweep (default plans, seeds ``0..seeds-1``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.pool import SweepCell
from repro.sim.config import DEFAULT_PROTOCOL


def _table1() -> List[SweepCell]:
    from repro.bench import table1

    return list(table1.cells())


def _figure(which: str) -> Callable[[], List[SweepCell]]:
    def build() -> List[SweepCell]:
        from repro.bench import figures

        return list(figures.cells(which))

    return build


def _ablation() -> List[SweepCell]:
    from repro.bench import ablation

    return list(ablation.cells())


def _protocols() -> List[SweepCell]:
    from repro.bench import protocol_sweep

    return list(protocol_sweep.cells())


def _golden() -> List[SweepCell]:
    from repro.bench.golden import golden_cells

    return golden_cells()


def _chaos() -> List[SweepCell]:
    from repro.faults.gate import chaos_cells, default_plan

    return chaos_cells([default_plan(seed) for seed in range(3)])


#: Sweep name -> cell enumerator.
SWEEPS: Dict[str, Callable[[], List[SweepCell]]] = {
    "table1": _table1,
    "figure1": _figure("figure1"),
    "figure2": _figure("figure2"),
    "figure3": _figure("figure3"),
    "ablation": _ablation,
    "protocols": _protocols,
    "golden": _golden,
    "chaos": _chaos,
}


def sweep_names() -> List[str]:
    return sorted(SWEEPS)


def sweep_cells(
    names: Sequence[str],
    apps: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
) -> List[SweepCell]:
    """All cells of the named sweeps, in submit order.

    ``apps`` / ``protocols`` filter the enumerated cells (an app filter
    keeps smoke submissions cheap; a protocol filter narrows the zoo
    sweeps).  Filtering happens after enumeration so every sweep -- not
    just the golden matrix -- honors them.
    """
    cells: List[SweepCell] = []
    for name in names:
        if name not in SWEEPS:
            raise KeyError(
                f"unknown sweep {name!r}; have {', '.join(sweep_names())}"
            )
        cells.extend(SWEEPS[name]())
    if apps is not None:
        allowed = set(apps)
        cells = [c for c in cells if c.app in allowed]
    if protocols is not None:
        wanted = set(protocols)
        cells = [
            c for c in cells
            if str(c.kwargs.get("protocol", DEFAULT_PROTOCOL)) in wanted
        ]
    return cells

"""Pins that keep existing caches warm across this PR and the next.

The acceptance criterion "existing caches stay warm" decomposes into
byte-level invariants: the config hash, the cell-key recipe, the entry
file names, and the readability of entries written before integrity
digests existed.  Each is pinned here so an accidental format change
fails loudly instead of silently cold-starting every cache.
"""

import hashlib
import json

from repro.bench.cache import (
    CACHE_SCHEMA,
    DiskCache,
    build_entry,
    cell_key,
    code_version,
    dump_entry,
    entry_digest,
    entry_filename,
    sanitize_component,
)
from repro.bench.harness import config_for
from repro.farm.store import LocalDirBackend
from repro.sim.config import SimConfig


class TestSanitize:
    def test_paper_names_pass_through_unchanged(self):
        for name in ("Jacobi", "3D-FFT", "1Kx1K", "64x64x32", "19-city",
                     "4K", "Dyn", "CLP", "1Kx0.5K"):
            assert sanitize_component(name) == name

    def test_hostile_characters_are_replaced(self):
        assert sanitize_component("a/b") == "a_b"
        assert sanitize_component("..\\evil") == ".._evil"
        assert sanitize_component("a b\tc\0d") == "a_b_c_d"
        assert sanitize_component("sh$(rm)") == "sh__rm_"

    def test_traversal_tokens_degrade_to_underscore(self):
        assert sanitize_component("") == "_"
        assert sanitize_component(".") == "_"
        assert sanitize_component("..") == "_"
        assert sanitize_component("...") == "_"

    def test_length_is_capped(self):
        assert len(sanitize_component("x" * 500)) == 48

    def test_entry_filename_pin(self):
        assert (
            entry_filename("Jacobi", "1Kx1K", "4K", "abc")
            == "Jacobi-1Kx1K-4K-abc.json"
        )
        assert (
            entry_filename("a/b", "..", "c d", "k")
            == "a_b-_-c_d-k.json"
        )


class TestKeyStability:
    def test_default_config_hash_pin(self):
        # Must match tests/protocols/test_registry.py -- the repo-wide
        # canary that canonical_json never drifts.
        assert SimConfig().config_hash() == "2359c599160e1bc0"

    def test_cell_key_recipe_pin(self):
        config = config_for("4K")
        blob = "\n".join([
            str(CACHE_SCHEMA), code_version(), "Jacobi", "1Kx1K",
            config.canonical_json(),
        ])
        expected = hashlib.sha256(blob.encode()).hexdigest()[:24]
        assert cell_key("Jacobi", "1Kx1K", config) == expected

    def test_entry_digest_ignores_itself(self):
        entry = {"a": 1, "b": [2, 3]}
        digest = entry_digest(entry)
        assert entry_digest({**entry, "digest": digest}) == digest
        assert entry_digest({**entry, "a": 2}) != digest


class TestPreDigestEntries:
    """Entries written before this PR carry no ``digest`` field; both
    readers must treat them as hits, not misses."""

    def _write_old_entry(self, root, cell, result):
        config = config_for(cell.label, **cell.kwargs)
        entry = build_entry(cell.app, cell.dataset, cell.label, config,
                            result)
        del entry["digest"]
        path = root / entry_filename(
            cell.app, cell.dataset, cell.label, str(entry["key"])
        )
        root.mkdir(parents=True, exist_ok=True)
        path.write_text(dump_entry(entry))
        return entry

    def test_disk_cache_reads_pre_digest_entry(
        self, tmp_path, jacobi_cells, jacobi_results
    ):
        cell = jacobi_cells["8K"]
        self._write_old_entry(tmp_path, cell, jacobi_results["8K"])
        cache = DiskCache(tmp_path)
        got = cache.load(cell.app, cell.dataset, cell.label,
                         config_for(cell.label, **cell.kwargs))
        assert got == jacobi_results["8K"]
        assert cache.hits == 1 and cache.misses == 0

    def test_local_backend_reads_pre_digest_entry(
        self, tmp_path, jacobi_cells, jacobi_results
    ):
        cell = jacobi_cells["8K"]
        self._write_old_entry(tmp_path, cell, jacobi_results["8K"])
        backend = LocalDirBackend(tmp_path)
        entry = backend.load_entry(cell.app, cell.dataset, cell.label,
                                   cell.key)
        assert entry is not None
        assert "digest" not in entry

    def test_rewritten_entry_gains_digest_same_bytes_otherwise(
        self, tmp_path, jacobi_cells, jacobi_results
    ):
        """The new writer's output differs from the old format only by
        the added ``digest`` field -- same name, same serialization."""
        cell = jacobi_cells["8K"]
        old = self._write_old_entry(tmp_path / "old", cell,
                                    jacobi_results["8K"])
        cache = DiskCache(tmp_path / "new")
        path = cache.store(cell.app, cell.dataset, cell.label,
                           config_for(cell.label, **cell.kwargs),
                           jacobi_results["8K"])
        assert path.name == entry_filename(
            cell.app, cell.dataset, cell.label, cell.key
        )
        new = json.loads(path.read_text())
        assert new.pop("digest") == entry_digest(old)
        assert new == old
        assert path.read_text() == dump_entry(
            {**old, "digest": entry_digest(old)}
        )

"""Typed trace event records.

Every event carries the id of the emitting processor (``proc``), the
simulated timestamp at which it happened (``ts_us``), and a recorder-
assigned sequence id (``eid``).  The recorder appends events in real
execution order; because the engine runs exactly one thread at a time,
that append order is a valid linearization of the run: each processor's
events appear in its program order, and synchronization events appear in
the order the scheduler serviced them.  The happens-before detector
(:mod:`repro.trace.hb`) relies on exactly this property.

Events are plain mutable dataclasses so the recorder can stamp ``eid``
at emit time; they are not meant to be constructed by anything but the
hooks (and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple


@dataclass
class TraceEvent:
    """Common header of every trace event."""

    eid: int
    """Sequence id assigned by the recorder (== index in the event list)."""

    ts_us: float
    """Simulated time at which the event happened (microseconds)."""

    proc: int
    """The processor the event belongs to (message events use the
    sender; diff-create events use the writer that serves the scan)."""

    kind: str = ""
    """Short event-type tag, fixed per subclass (set in __post_init__)."""


@dataclass
class AccessEvent(TraceEvent):
    """One application-level shared access (read or write)."""

    op: str = ""
    """``"read"`` or ``"write"``."""

    word0: int = 0
    nwords: int = 0

    def __post_init__(self) -> None:
        self.kind = "access"


@dataclass
class FaultEvent(TraceEvent):
    """One access miss serviced by the protocol (or a dynamic-mode
    access-tracking fault when ``monitoring`` is true)."""

    fault_id: int = -1
    units: Tuple[int, ...] = ()
    writers: int = 0
    exchange_ids: Tuple[int, ...] = ()
    stall_us: float = 0.0
    """Network stall component of the fault (0 for monitoring faults)."""

    cost_us: float = 0.0
    """Total time charged to the faulting processor (trap + mprotect +
    stall + diff apply)."""

    monitoring: bool = False

    def __post_init__(self) -> None:
        self.kind = "fault"


@dataclass
class TwinEvent(TraceEvent):
    """A twin copy was created (first write to a unit in an interval)."""

    unit: int = -1

    def __post_init__(self) -> None:
        self.kind = "twin"


@dataclass
class DiffCreateEvent(TraceEvent):
    """A writer ran the word-compare scan building a diff (lazy, at the
    first request for the span; ``proc`` is the writer)."""

    requester: int = -1
    unit: int = -1
    nwords: int = 0

    def __post_init__(self) -> None:
        self.kind = "diff_create"


@dataclass
class DiffApplyEvent(TraceEvent):
    """A fetched diff was patched into the faulting processor's copy."""

    unit: int = -1
    writer: int = -1
    nwords: int = 0
    msg_id: int = -1
    """The reply message that carried the diff."""

    pages: Tuple[int, ...] = ()
    """Hardware pages the diff's words fall in."""

    page_words: Tuple[int, ...] = ()
    """Words installed per entry of ``pages`` (same order)."""

    def __post_init__(self) -> None:
        self.kind = "diff_apply"


@dataclass
class MessageEvent(TraceEvent):
    """One simulated protocol message (``proc`` is the sender)."""

    msg_id: int = -1
    src: int = -1
    dst: int = -1
    klass: str = ""
    payload_bytes: int = 0
    recv_ts_us: float = 0.0
    """Send time plus the cost-model wire time (for flow arrows; the
    protocol charges this same quantity, so it is purely derived)."""

    exchange_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.kind = "message"


@dataclass
class LockAcquireEvent(TraceEvent):
    """A lock was granted to ``proc`` (``ts_us`` is the grant time; the
    recorder order of acquire events is the grant order, which the
    happens-before replay uses)."""

    lock_id: int = -1
    req_ts_us: float = 0.0
    """When the requester parked at the acquire."""

    wake_ts_us: float = 0.0
    """When the requester resumes (grant + protocol costs)."""

    cached: bool = False
    """True for a free re-acquire by the last owner."""

    def __post_init__(self) -> None:
        self.kind = "lock_acquire"


@dataclass
class LockReleaseEvent(TraceEvent):
    """``proc`` released a lock."""

    lock_id: int = -1

    def __post_init__(self) -> None:
        self.kind = "lock_release"


@dataclass
class BarrierArriveEvent(TraceEvent):
    """``proc`` arrived at a barrier."""

    barrier_id: int = -1
    instance: int = 0
    """Which occurrence of this barrier id (0-based)."""

    def __post_init__(self) -> None:
        self.kind = "barrier_arrive"


@dataclass
class BarrierDepartEvent(TraceEvent):
    """``proc`` departs a completed barrier (``ts_us`` is the last
    arrival time, ``wake_ts_us`` when this processor actually resumes)."""

    barrier_id: int = -1
    instance: int = 0
    wake_ts_us: float = 0.0

    def __post_init__(self) -> None:
        self.kind = "barrier_depart"


@dataclass
class GroupBuildEvent(TraceEvent):
    """Dynamic aggregation formed a page group at a synchronization."""

    pages: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.kind = "group_build"


@dataclass
class GroupFetchEvent(TraceEvent):
    """A fault on one member fetched the pending diffs of its group."""

    page: int = -1
    group: Tuple[int, ...] = ()
    fetched: Tuple[int, ...] = ()
    """The members that actually had pending diffs to fetch."""

    def __post_init__(self) -> None:
        self.kind = "group_fetch"


@dataclass
class GroupDissolveEvent(TraceEvent):
    """Hysteresis dropped a page from its group (group-fetched but never
    accessed during the interval)."""

    page: int = -1

    def __post_init__(self) -> None:
        self.kind = "group_dissolve"


@dataclass
class DiffFlushEvent(TraceEvent):
    """Home-based LRC: a releaser flushed one unit's diff to the unit's
    home node (``proc`` is the releaser)."""

    home: int = -1
    unit: int = -1
    nwords: int = 0
    msg_id: int = -1
    """The DIFF_FLUSH message that carried the diff."""

    def __post_init__(self) -> None:
        self.kind = "diff_flush"


@dataclass
class DiffPushEvent(TraceEvent):
    """Eager release consistency: a releaser pushed its interval's diffs
    and write notices to one sharer (``proc`` is the releaser)."""

    dst: int = -1
    units: Tuple[int, ...] = ()
    nwords: int = 0
    msg_id: int = -1
    """The DIFF_PUSH message that carried the update."""

    def __post_init__(self) -> None:
        self.kind = "diff_push"


@dataclass
class OwnershipEvent(TraceEvent):
    """Single-writer invalidate: ``proc`` became the writer of a unit
    (``prev_owner`` is -1 for a first-touch claim), invalidating
    ``invalidated`` other copies."""

    unit: int = -1
    prev_owner: int = -1
    invalidated: int = 0

    def __post_init__(self) -> None:
        self.kind = "ownership"


@dataclass
class FaultInjectedEvent(TraceEvent):
    """The fault lab perturbed one message delivery (or, for
    ``fault == "straggler"``, paused a node).  ``proc`` is the processor
    that pays the injected delay."""

    msg_id: int = -1
    """Ledger id of the perturbed message (-1 for straggler windows)."""

    klass: str = ""
    """Message class of the perturbed message ("" for stragglers)."""

    fault: str = ""
    """``"drop"`` / ``"dup"`` / ``"jitter"`` / ``"reorder"`` /
    ``"straggler"``."""

    delay_us: float = 0.0
    """Shadow delay charged for this fault (0 for pure duplicates)."""

    def __post_init__(self) -> None:
        self.kind = "fault_injected"


@dataclass
class RetransmitEvent(TraceEvent):
    """The reliable-delivery layer re-sent one message copy (``proc`` is
    the sender; the copy is also in the ledger as a RETRANSMIT-class
    message)."""

    msg_id: int = -1
    klass: str = ""
    attempt: int = 0
    """Transmission attempt number of this copy (2 = first resend)."""

    stall_us: float = 0.0
    """Timeout the sender sat through before this copy (0 for the
    ack-loss resend, which happens after delivery)."""

    def __post_init__(self) -> None:
        self.kind = "retransmit"


@dataclass
class ParkEvent(TraceEvent):
    """A processor parked at a synchronization operation (engine level)."""

    op_kind: str = ""
    """``acquire`` / ``release`` / ``barrier`` / ``finish``."""

    arg: int = 0
    """Lock or barrier id."""

    def __post_init__(self) -> None:
        self.kind = "park"


@dataclass
class ResumeEvent(TraceEvent):
    """The scheduler woke a processor at ``ts_us``."""

    def __post_init__(self) -> None:
        self.kind = "resume"


def event_to_dict(ev: TraceEvent) -> dict:
    """Flat JSON-serializable dict of one event (for JSONL export)."""
    out = {}
    for f in fields(ev):
        v = getattr(ev, f.name)
        if isinstance(v, tuple):
            v = list(v)
        out[f.name] = v
    return out

"""Home-based LRC: home assignment, eager flushes, single-exchange faults."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.network import MessageClass

WORDS_PER_PAGE = 1024


def make(nprocs=4, **cfg):
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, protocol="hlrc", **cfg), heap_bytes=1 << 16
    )
    arr = tmk.array("a", (4 * WORDS_PER_PAGE,), "uint32")
    return tmk, arr


def flushes(tmk):
    return [
        m for m in tmk.network.messages if m.klass is MessageClass.DIFF_FLUSH
    ]


class TestHomeAssignment:
    def test_home_is_unit_mod_nprocs(self):
        tmk, _ = make(nprocs=3)
        for lp in tmk.procs:
            for unit in range(tmk.layout.nunits):
                assert lp.home(unit) == unit % 3

    def test_home_assignment_agrees_across_processors(self):
        tmk, _ = make(nprocs=4)
        homes = {
            unit: {lp.home(unit) for lp in tmk.procs}
            for unit in range(tmk.layout.nunits)
        }
        assert all(len(owners) == 1 for owners in homes.values())


class TestReleaseFlush:
    def test_release_flushes_to_remote_home(self):
        # Unit 1's home is proc 1; a write by proc 0 must flush there.
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, WORDS_PER_PAGE, np.full(8, 7, np.uint32))
            proc.barrier()

        tmk.run(body)
        sent = flushes(tmk)
        assert [(m.src, m.dst) for m in sent] == [(0, 1)]
        assert tmk.stats.diff_flushes == 1
        # The home's copy became authoritative at the release.
        assert np.all(
            tmk.procs[1].space.unit_view(1)[:8] == 7
        )

    def test_writer_at_home_does_not_flush(self):
        # Unit 0's home is proc 0: its own writes need no flush message.
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 9, np.uint32))
            proc.barrier()

        tmk.run(body)
        assert flushes(tmk) == []
        assert tmk.stats.diff_flushes == 0

    def test_flush_is_one_way(self):
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, WORDS_PER_PAGE, np.full(8, 7, np.uint32))
            proc.barrier()

        tmk.run(body)
        (msg,) = flushes(tmk)
        assert msg.exchange_id is None

    def test_diff_creation_charged_eagerly(self):
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, WORDS_PER_PAGE, np.full(8, 7, np.uint32))
            proc.barrier()

        tmk.run(body)
        # Nobody ever faulted, yet the diff scan ran (at the release).
        assert tmk.stats.faults == 0
        assert tmk.stats.diffs_created == 1


class TestFaultService:
    def test_fault_is_single_exchange_regardless_of_writers(self):
        # Two processors write disjoint words of unit 1 (write-write
        # false sharing); under tm-lrc the reader's fault would gather
        # from both writers, under hlrc it is one exchange to the home.
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id in (0, 2):
                arr.write(
                    proc,
                    WORDS_PER_PAGE + proc.id * 8,
                    np.full(8, proc.id + 1, np.uint32),
                )
            proc.barrier(0)
            if proc.id == 3:
                got = arr.read(proc, WORDS_PER_PAGE, 32)
                assert np.all(got[:8] == 1)
                assert np.all(got[16:24] == 3)
            proc.barrier(1)

        tmk.run(body)
        recs = [r for r in tmk.stats.fault_records if r.proc == 3]
        assert len(recs) == 1
        assert recs[0].writers == 1  # one home, not two writers
        assert len(recs[0].exchange_ids) == 1

    def test_fetch_ships_whole_units(self):
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, WORDS_PER_PAGE, np.full(1, 5, np.uint32))
            proc.barrier(0)
            if proc.id == 2:
                arr.read(proc, WORDS_PER_PAGE, 1)
            proc.barrier(1)

        tmk.run(body)
        replies = [
            m
            for m in tmk.network.messages
            if m.klass is MessageClass.DIFF_REPLY
        ]
        assert len(replies) == 1
        # One word was written, a whole unit travels.
        assert replies[0].words_carried == WORDS_PER_PAGE

    def test_home_never_faults_on_its_own_units(self):
        # Proc 1 is unit 1's home: flushes keep its copy current, so its
        # reads there must never fault.
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, WORDS_PER_PAGE, np.full(8, 3, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                got = arr.read(proc, WORDS_PER_PAGE, 8)
                assert np.all(got == 3)
            proc.barrier(1)

        tmk.run(body)
        assert all(r.proc != 1 for r in tmk.stats.fault_records)

"""Static false-sharing and useless-data prediction.

Consumes an application's declared :class:`repro.analyze.access.AccessPattern`
and computes, without running the simulator:

* **write-write false-sharing pages**: 4 KB hardware pages that at least
  two processors *must*-write inside one phase.  Because phases mirror
  barrier epochs, every predicted page is multi-written within a single
  dynamic epoch -- the property :mod:`repro.analyze.crosscheck` verifies
  against a traced run;
* per consistency-unit size (4 / 8 / 16 KB): the conflicting units and a
  **lower bound on useless data**.

Useless-data lower bound
------------------------
For processor ``p`` and unit ``u``, every word that (a) some other
processor must-writes in a phase before ``p``'s last must-access of
``u`` and (b) ``p`` never reads, will be shipped to ``p`` inside a diff
at least once and never consumed -- useless data by the paper's
definition.  The bound sums ``|W_other(p, u) - R_p(u)|`` over all
``(p, u)`` pairs, where ``W_other`` is the union of other processors'
must-written words (union, not sum: repeated writes re-use one diff
word) and ``R_p`` is *all* of ``p``'s declared reads of ``u``, ``may``
reads included and irrespective of ordering.  Both choices only shrink
the count, and may-writes are ignored entirely, so the result is a true
lower bound on the dynamic useless-word counter for static units.
(Dynamic aggregation regroups pages adaptively and is out of scope.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analyze.access import BuiltPattern, build_pattern
from repro.apps.base import get_app
from repro.dsm.diff import WORD

#: Static consistency-unit sizes analyzed (the paper's 4 / 8 / 16 KB).
UNIT_SIZES: Tuple[int, ...] = (4096, 8192, 16384)

Interval = Tuple[int, int]


# ----------------------------------------------------------------------
# Interval-set arithmetic (half-open word ranges)
# ----------------------------------------------------------------------
def merge(intervals: Iterable[Interval]) -> List[Interval]:
    """Sorted, disjoint, coalesced form of an interval collection."""
    out: List[Interval] = []
    for a, b in sorted(intervals):
        if b <= a:
            continue
        if out and a <= out[-1][1]:
            if b > out[-1][1]:
                out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out


def total(merged: Sequence[Interval]) -> int:
    """Total word count of a merged interval set."""
    return sum(b - a for a, b in merged)


def subtract(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Set difference ``a - b`` of two merged interval sets."""
    out: List[Interval] = []
    bi = 0
    for lo, hi in a:
        cur = lo
        while cur < hi:
            while bi < len(b) and b[bi][1] <= cur:
                bi += 1
            if bi >= len(b) or b[bi][0] >= hi:
                out.append((cur, hi))
                break
            blo, bhi = b[bi]
            if blo > cur:
                out.append((cur, blo))
            cur = max(cur, bhi)
            if bhi >= hi:
                break
    return merge(out)


def clip(intervals: Sequence[Interval], lo: int, hi: int) -> List[Interval]:
    """The parts of a merged interval set inside ``[lo, hi)``."""
    return [
        (max(a, lo), min(b, hi))
        for a, b in intervals
        if a < hi and b > lo
    ]


# ----------------------------------------------------------------------
# Prediction results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnitReport:
    """Per-consistency-unit-size prediction."""

    unit_bytes: int
    conflict_units: Tuple[int, ...]
    """Units must-written by >= 2 processors inside one phase."""

    useless_words_lower: int
    """Lower bound on useless words shipped over the whole run."""


@dataclass
class Prediction:
    """Everything the static analyzer predicts for one cell."""

    app: str
    dataset: str
    nprocs: int
    page_size: int
    n_phases: int
    n_accesses: int

    conflict_pages: Tuple[int, ...] = ()
    """4 KB pages with predicted write-write false sharing."""

    page_labels: Dict[int, str] = field(default_factory=dict)
    """page -> covering allocation name (diagnostics)."""

    units: Dict[int, UnitReport] = field(default_factory=dict)
    """unit_bytes -> per-unit-size report."""

    def labeled_pages(self) -> List[str]:
        """``allocation:page`` labels of the predicted pages."""
        return [
            f"{self.page_labels.get(p, '?')}:{p}" for p in self.conflict_pages
        ]

    def render(self) -> str:
        lines = [
            f"{self.app} {self.dataset} on {self.nprocs} procs: "
            f"{self.n_phases} phases, {self.n_accesses} declared accesses",
            f"predicted write-write false-sharing pages "
            f"({len(self.conflict_pages)}):",
        ]
        if self.conflict_pages:
            for label in self.labeled_pages():
                lines.append(f"  {label}")
        else:
            lines.append("  (none: every page is single-writer per epoch)")
        for ub in sorted(self.units):
            r = self.units[ub]
            lines.append(
                f"[{ub // 1024}K] {len(r.conflict_units)} conflicting "
                f"unit(s); useless data >= "
                f"{r.useless_words_lower * WORD / 1024:.1f} KB"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "dataset": self.dataset,
            "nprocs": self.nprocs,
            "page_size": self.page_size,
            "n_phases": self.n_phases,
            "n_accesses": self.n_accesses,
            "conflict_pages": list(self.conflict_pages),
            "labeled_pages": self.labeled_pages(),
            "units": {
                str(ub): {
                    "conflict_units": list(r.conflict_units),
                    "useless_words_lower": r.useless_words_lower,
                }
                for ub, r in sorted(self.units.items())
            },
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "Prediction":
        """Inverse of :meth:`to_json_dict` (``labeled_pages`` carries the
        page -> allocation labels, so the round trip is lossless)."""
        labeled = [str(s) for s in doc.get("labeled_pages", [])]  # type: ignore[union-attr]
        labels: Dict[int, str] = {}
        for entry in labeled:
            name, _, page = entry.rpartition(":")
            labels[int(page)] = name
        units_doc: Dict[str, Dict[str, object]] = doc["units"]  # type: ignore[assignment]
        units = {
            int(ub): UnitReport(
                unit_bytes=int(ub),
                conflict_units=tuple(int(u) for u in r["conflict_units"]),  # type: ignore[union-attr]
                useless_words_lower=int(r["useless_words_lower"]),  # type: ignore[arg-type]
            )
            for ub, r in units_doc.items()
        }
        return cls(
            app=str(doc["app"]),
            dataset=str(doc["dataset"]),
            nprocs=int(doc["nprocs"]),  # type: ignore[arg-type]
            page_size=int(doc["page_size"]),  # type: ignore[arg-type]
            n_phases=int(doc["n_phases"]),  # type: ignore[arg-type]
            n_accesses=int(doc["n_accesses"]),  # type: ignore[arg-type]
            conflict_pages=tuple(int(p) for p in doc["conflict_pages"]),  # type: ignore[union-attr]
            page_labels=labels,
            units=units,
        )


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
def _conflict_pages(built: BuiltPattern, words_per_page: int) -> List[int]:
    """Pages must-written by >= 2 distinct procs inside one phase."""
    conflicts: set = set()
    for ph in built.pattern.phases:
        writers: Dict[int, set] = {}
        for acc in ph.accesses:
            if acc.op != "write" or not acc.must:
                continue
            first = acc.word0 // words_per_page
            last = (acc.word1 - 1) // words_per_page
            for page in range(first, last + 1):
                writers.setdefault(page, set()).add(acc.proc)
        conflicts.update(p for p, procs in writers.items() if len(procs) >= 2)
    return sorted(conflicts)


def useless_by_unit(
    built: BuiltPattern, words_per_unit: int
) -> Dict[int, int]:
    """The documented useless-word lower bound, attributed per unit.

    Same bookkeeping as the total bound (the total *is* the sum of
    these), binned by the unit whose diff would carry the words.  The
    layout advisor (:mod:`repro.analyze.layout`) uses the per-unit view
    to attribute waste to allocations and to count affected units."""
    nprocs = built.pattern.nprocs

    # last phase index of any must access, per (proc, unit)
    last_access: Dict[Tuple[int, int], int] = {}
    # phase -> unit -> proc -> write intervals (must only)
    unit_writes: Dict[int, Dict[int, Dict[int, List[Interval]]]] = {}
    # (proc, unit) -> read intervals (must and may)
    unit_reads: Dict[Tuple[int, int], List[Interval]] = {}

    for idx, ph in enumerate(built.pattern.phases):
        per_unit = unit_writes.setdefault(idx, {})
        for acc in ph.accesses:
            first = acc.word0 // words_per_unit
            last = (acc.word1 - 1) // words_per_unit
            for unit in range(first, last + 1):
                u0 = unit * words_per_unit
                u1 = u0 + words_per_unit
                iv = (max(acc.word0, u0), min(acc.word1, u1))
                if acc.must:
                    last_access[(acc.proc, unit)] = idx
                if acc.op == "write" and acc.must:
                    per_unit.setdefault(unit, {}).setdefault(
                        acc.proc, []
                    ).append(iv)
                if acc.op == "read":
                    unit_reads.setdefault((acc.proc, unit), []).append(iv)

    useless: Dict[int, int] = {}
    for (proc, unit), last_idx in sorted(last_access.items()):
        others: List[Interval] = []
        for idx in range(last_idx):
            per_proc = unit_writes.get(idx, {}).get(unit)
            if not per_proc:
                continue
            for q in range(nprocs):
                if q != proc and q in per_proc:
                    others.extend(per_proc[q])
        if not others:
            continue
        fetched = merge(others)
        reads = merge(unit_reads.get((proc, unit), []))
        words = total(subtract(fetched, reads))
        if words:
            useless[unit] = useless.get(unit, 0) + words
    return useless


def _useless_lower_bound(built: BuiltPattern, words_per_unit: int) -> int:
    """The documented lower bound on useless words for one unit size."""
    return sum(useless_by_unit(built, words_per_unit).values())


def predict_pattern(built: BuiltPattern,
                    unit_sizes: Sequence[int] = UNIT_SIZES) -> Prediction:
    """Run the full static analysis over a resolved pattern."""
    layout = built.layout
    pages = _conflict_pages(built, layout.words_per_page)
    labels: Dict[int, str] = {}
    for page in pages:
        alloc = layout.allocation_containing(page * layout.page_size)
        labels[page] = alloc.name if alloc is not None else "?"

    units: Dict[int, UnitReport] = {}
    for ub in unit_sizes:
        wpu = ub // WORD
        conflict_units = _conflict_pages(built, wpu)  # same algorithm,
        # coarser granularity: a "page" of wpu words is one unit
        units[ub] = UnitReport(
            unit_bytes=ub,
            conflict_units=tuple(conflict_units),
            useless_words_lower=_useless_lower_bound(built, wpu),
        )

    return Prediction(
        app=built.pattern.app,
        dataset=built.pattern.dataset,
        nprocs=built.pattern.nprocs,
        page_size=layout.page_size,
        n_phases=len(built.pattern.phases),
        n_accesses=built.pattern.n_accesses,
        conflict_pages=tuple(pages),
        page_labels=labels,
        units=units,
    )


def predict(app_name: str, dataset: str, nprocs: int = 8,
            unit_sizes: Sequence[int] = UNIT_SIZES) -> Prediction:
    """Static analysis of one (application, dataset, nprocs) cell."""
    app = get_app(app_name)
    built = build_pattern(app, dataset, nprocs)
    return predict_pattern(built, unit_sizes)

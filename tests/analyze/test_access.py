"""Access-declaration API and layout-probe fidelity."""

from __future__ import annotations

import pytest

from repro.analyze.access import (
    AccessPattern,
    LayoutProbe,
    build_pattern,
)
from repro.apps.base import AppRegistry, get_app
from repro.bench.golden import SMALL_DATASETS
from repro.core.treadmarks import TreadMarks
from repro.sim.config import SimConfig


def test_probe_layout_matches_treadmarks_layout():
    """The soundness of every prediction rests on the probe resolving
    the same addresses the real runtime does."""
    config = SimConfig(nprocs=8)
    app = get_app("Jacobi")
    dataset = SMALL_DATASETS["Jacobi"]
    heap = app.heap_bytes(dataset)

    probe = LayoutProbe(config, heap)
    static = app.setup(probe, dataset)

    tmk = TreadMarks(config, heap_bytes=heap)
    dynamic = app.setup(tmk, dataset)

    assert sorted(static) == sorted(dynamic)
    for name, arr in static.items():
        assert arr.alloc.word_offset == dynamic[name].alloc.word_offset
        assert arr.shape == dynamic[name].shape


def test_every_registered_app_declares_a_pattern():
    for name in sorted(SMALL_DATASETS):
        app = get_app(name)
        assert type(app).declares_access_pattern(), name
        built = build_pattern(app, SMALL_DATASETS[name])
        assert built.pattern.n_accesses > 0
        assert built.pattern.phases


def test_registry_and_paper_table_agree():
    assert set(AppRegistry.names()) == set(SMALL_DATASETS)


def test_phase_validates_bounds():
    config = SimConfig(nprocs=2)
    probe = LayoutProbe(config, 1 << 20)
    arr = probe.array("a", (4, 8), "float32")
    pat = AccessPattern(app="t")
    ph = pat.phase("p0")
    ph.read(arr, 0, (0, 0), 32)  # whole array: fine
    with pytest.raises(IndexError):
        ph.read(arr, 0, (3, 1), 8)  # runs past the end
    with pytest.raises(ValueError):
        ph.access(arr, "rw", 0, 0, 1)  # bogus op
    with pytest.raises(ValueError):
        ph.write(arr, 0, 0, 0)  # empty access


def test_access_words_are_heap_relative():
    config = SimConfig(nprocs=2)
    probe = LayoutProbe(config, 1 << 20)
    a = probe.array("a", (8,), "float32")
    b = probe.array("b", (8,), "float32")
    pat = AccessPattern(app="t")
    ph = pat.phase("p0")
    ph.write(a, 0, 0, 1)
    ph.write(b, 0, 0, 1)
    w0, w1 = [acc.word0 for acc in ph.accesses]
    assert w0 == a.alloc.word_offset
    assert w1 == b.alloc.word_offset
    assert w0 != w1

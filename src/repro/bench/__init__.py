"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.bench.harness` -- run matrix, caching, normalization, and
  ASCII rendering shared by all experiments.
* :mod:`repro.bench.table1` -- Table 1 (sequential times and 8-processor
  speedups at the 4 KB unit).
* :mod:`repro.bench.figures` -- Figures 1 and 2 (normalized execution
  time / messages / data with useful-useless-piggyback breakdowns) and
  Figure 3 (false-sharing signatures at 4 KB vs 16 KB).
* :mod:`repro.bench.micro` -- the Section 5.1 platform microbenchmarks.
* :mod:`repro.bench.ablation` -- ablations of the design choices called
  out in DESIGN.md (dynamic group size, request combining, parallel
  fetch).
* :mod:`repro.bench.cache` -- on-disk result cache keyed by (code
  version, app, dataset, config); any source change invalidates it.
* :mod:`repro.bench.pool` -- multiprocessing fan-out of independent
  sweep cells (``--jobs``), bit-identical to serial execution.
* :mod:`repro.bench.golden` -- the golden-baseline regression gate
  (``--check`` / ``--refresh-golden`` against ``benchmarks/golden/``).

Each module renders the paper-shaped table as text and returns the raw
numbers; the ``benchmarks/`` pytest-benchmark suite drives them and
writes the outputs next to EXPERIMENTS.md.
"""

from repro.bench.cache import DiskCache
from repro.bench.harness import (
    UNIT_LABELS,
    CaseResult,
    ResultCache,
    run_case,
    render_breakdown_table,
)
from repro.bench.pool import SweepCell, run_cells

__all__ = [
    "UNIT_LABELS",
    "CaseResult",
    "DiskCache",
    "ResultCache",
    "SweepCell",
    "run_case",
    "run_cells",
    "render_breakdown_table",
]

"""CLI runner smoke tests (fast experiments only)."""

import pytest

from repro.bench.cli import COMMANDS, main


def test_commands_cover_all_experiments():
    assert set(COMMANDS) == {
        "table1", "figure1", "figure2", "figure3", "micro", "ablation",
    }


def test_micro_via_cli(capsys, tmp_path):
    rc = main(["micro", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "microbenchmarks" in out
    assert (tmp_path / "micro.txt").exists()


def test_bad_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])

"""Ablations of the design choices DESIGN.md calls out.

1. **Dynamic group size**: sweep ``max_group_pages`` in {1, 2, 4, 8, 16}
   on an aggregation-friendly workload (Ilink) and a hostile one (MGS).
   Group size 1 reduces the dynamic scheme to plain 4 KB pages, so the
   sweep isolates the grouping benefit and checks the hysteresis cost
   never makes things worse than no grouping.

2. **Request combining** (Section 4: "multiple requests addressed to the
   same processor are combined"): disable it and count the extra
   messages.

3. **Parallel diff fetch** (Section 3: "P3 can request both diffs in
   parallel"): serialize the per-writer exchanges and measure the added
   stall on a multi-writer workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.bench.harness import ResultCache

if TYPE_CHECKING:  # pragma: no cover - only for the cells() annotation
    from repro.bench.pool import SweepCell


@dataclass
class AblationRow:
    name: str
    setting: str
    time_us: float
    total_messages: int


def cells() -> List[SweepCell]:
    """The sweep cells the default ablation set consumes (for parallel
    prewarming); mirrors ``repro.bench.cli._run_ablation``."""
    from repro.bench.pool import SweepCell

    out: List[SweepCell] = []
    for app, ds in (("ILINK", "CLP"), ("MGS", "1Kx1K")):
        for maxg in (1, 2, 4, 8, 16):
            out.append(SweepCell.make(app, ds, "Dyn", max_group_pages=maxg))
    for combine in (True, False):
        out.append(SweepCell.make("ILINK", "CLP", "Dyn", combine_requests=combine))
    for parallel in (True, False):
        out.append(SweepCell.make("ILINK", "CLP", "16K", parallel_fetch=parallel))
    return out


def sweep_group_size(app: str = "ILINK", dataset: str = "CLP") -> List[AblationRow]:
    rows: List[AblationRow] = []
    for maxg in (1, 2, 4, 8, 16):
        c = ResultCache.get(app, dataset, "Dyn", max_group_pages=maxg)
        rows.append(
            AblationRow(
                name=f"dynamic group size ({app})",
                setting=f"max_group_pages={maxg}",
                time_us=c.time_us,
                total_messages=c.total_messages,
            )
        )
    return rows


def ablate_request_combining(app: str = "ILINK", dataset: str = "CLP") -> List[AblationRow]:
    rows: List[AblationRow] = []
    for combine in (True, False):
        c = ResultCache.get(app, dataset, "Dyn", combine_requests=combine)
        rows.append(
            AblationRow(
                name=f"request combining ({app})",
                setting=f"combine_requests={combine}",
                time_us=c.time_us,
                total_messages=c.total_messages,
            )
        )
    return rows


def ablate_parallel_fetch(app: str = "ILINK", dataset: str = "CLP") -> List[AblationRow]:
    rows: List[AblationRow] = []
    for parallel in (True, False):
        c = ResultCache.get(app, dataset, "16K", parallel_fetch=parallel)
        rows.append(
            AblationRow(
                name=f"parallel fetch ({app})",
                setting=f"parallel_fetch={parallel}",
                time_us=c.time_us,
                total_messages=c.total_messages,
            )
        )
    return rows


def render(rows: List[AblationRow]) -> str:
    lines: List[str] = []
    for r in rows:
        lines.append(
            f"  {r.name:<32} {r.setting:<24} time={r.time_us / 1e6:8.4f}s "
            f"msgs={r.total_messages}"
        )
    return "\n".join(lines)

"""Interval garbage collection: reclaims metadata, never changes
results."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.dsm.intervals import IntervalStore
from repro.dsm.vc import VectorClock
from repro.apps.base import run_app
from repro.sim.config import SimConfig as SC
from tests.conftest import checksum_close, tiny_app


def many_barrier_run(gc_threshold):
    tmk = TreadMarks(
        SimConfig(nprocs=4, gc_threshold=gc_threshold), heap_bytes=1 << 16
    )
    arr = tmk.array("a", (4096,), "uint32")

    def body(proc):
        total = 0.0
        for r in range(40):
            arr.write(proc, proc.id * 64, np.full(8, r, np.uint32))
            proc.barrier(2 * r)
            total += float(arr.read(proc, ((proc.id + 1) % 4) * 64, 8).sum())
            proc.barrier(2 * r + 1)
        return total

    res = tmk.run(body)
    return tmk, res


def test_gc_reclaims_intervals():
    tmk, _ = many_barrier_run(gc_threshold=32)
    assert tmk.store.collected > 0
    assert tmk.store.count() < tmk.store.collected + tmk.store.count()
    # Live set stays bounded near the threshold.
    assert tmk.store.count() <= 32 + 4 * 2  # one round of slack


def test_gc_disabled_keeps_everything():
    tmk, _ = many_barrier_run(gc_threshold=0)
    assert tmk.store.collected == 0
    assert tmk.store.count() == sum(
        tmk.store.closed_count(p) for p in range(4)
    )


def test_gc_does_not_change_results():
    _, with_gc = many_barrier_run(gc_threshold=16)
    _, without = many_barrier_run(gc_threshold=0)
    assert with_gc.checksum == without.checksum
    assert with_gc.time_us == without.time_us
    assert with_gc.comm.total_messages == without.comm.total_messages


@pytest.mark.parametrize("name", ["Jacobi", "Water", "TSP"])
def test_gc_transparent_on_applications(name):
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SC(nprocs=8, gc_threshold=64))
    assert checksum_close(app, res.checksum, ref)


def test_collect_respects_references():
    store = IntervalStore(nprocs=2)
    from tests.dsm.test_intervals import mkdiff

    for i in range(1, 6):
        store.close_interval(0, VectorClock([i, 0]), {0: mkdiff(0)})
    known = VectorClock([5, 0])
    dropped = store.collect(known, referenced={(0, 3)})
    assert dropped == 4
    assert store.get(0, 3).index == 3  # referenced one survives
    with pytest.raises(KeyError, match="garbage collected"):
        store.get(0, 2)


def test_collect_ignores_unknown_intervals():
    store = IntervalStore(nprocs=2)
    from tests.dsm.test_intervals import mkdiff

    store.close_interval(1, VectorClock([0, 1]), {0: mkdiff(0)})
    dropped = store.collect(VectorClock([0, 0]), referenced=set())
    assert dropped == 0
    assert store.count() == 1

"""Seeded, deterministic fault plans.

A :class:`FaultPlan` describes everything the fault lab may do to one
simulated run: per-message-class drop / duplication / reorder / jitter
rates (:class:`FaultSpec`), node straggler windows
(:class:`StragglerWindow`), and the timeout/retransmit parameters of the
reliable-delivery layer.

Plans are immutable value objects with a canonical JSON form, carried
through the simulation inside :attr:`repro.sim.config.SimConfig.fault_plan`
(a string field, so the existing config serialization, cache keying, and
sweep-cell plumbing work unchanged: two cells that differ only in their
fault plan can never alias one cache entry).

Determinism
-----------
Every random decision about one message is drawn from a private generator
keyed by ``(plan.seed, msg_id)`` (:func:`message_rng`) -- the same scheme
:func:`repro.bench.cache.cell_seed` uses for per-cell seeding.  The fate
of message *i* therefore depends only on the plan seed and on *i*, never
on how many random draws earlier messages consumed, which makes fault
schedules reproducible run-to-run, identical between serial and pool
execution, and stable under unrelated protocol changes that leave message
ids untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Wildcard class label: a spec with this klass applies to every message
#: class that has no class-specific spec of its own.
ANY_CLASS = "*"

#: Message-class labels a spec may name (the values of
#: :class:`repro.sim.network.MessageClass`, duplicated here so this
#: module stays import-light and cycle-free).
KNOWN_CLASSES = (
    "diff_request",
    "diff_reply",
    "lock",
    "barrier",
)


@dataclass(frozen=True)
class FaultSpec:
    """Unreliability parameters for one message class (or ``"*"``)."""

    klass: str = ANY_CLASS
    """Message class this spec applies to (a
    :class:`~repro.sim.network.MessageClass` value, or ``"*"``)."""

    drop_rate: float = 0.0
    """Per-transmission loss probability (also the ack-loss probability
    of the reliable-delivery layer)."""

    dup_rate: float = 0.0
    """Probability the network itself duplicates a delivered message."""

    reorder_rate: float = 0.0
    """Probability a delivered message is held back behind later ones."""

    reorder_window: int = 4
    """Maximum number of later messages a reordered one slips behind."""

    jitter_us: float = 0.0
    """Maximum uniform extra delivery latency (microseconds)."""

    def validate(self) -> None:
        if self.klass != ANY_CLASS and self.klass not in KNOWN_CLASSES:
            raise ValueError(
                f"unknown message class {self.klass!r}; "
                f"use one of {KNOWN_CLASSES} or {ANY_CLASS!r}"
            )
        for name in ("drop_rate", "dup_rate", "reorder_rate"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.reorder_window < 1:
            raise ValueError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )
        if self.jitter_us < 0.0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")

    @property
    def active(self) -> bool:
        """True when this spec can actually perturb a message."""
        return (
            self.drop_rate > 0.0
            or self.dup_rate > 0.0
            or self.reorder_rate > 0.0
            or self.jitter_us > 0.0
        )


@dataclass(frozen=True)
class StragglerWindow:
    """One node-level pause: processor ``proc`` is unresponsive for
    ``duration_us`` starting at simulated time ``start_us``.

    The injected cost is ``duration_us * factor``, charged once to the
    processor's shadow overhead if it was still running when the window
    opened (``factor`` < 1 models a slowdown rather than a full pause).
    """

    proc: int
    start_us: float
    duration_us: float
    factor: float = 1.0

    def validate(self, nprocs: Optional[int] = None) -> None:
        if self.proc < 0:
            raise ValueError(f"straggler proc must be >= 0, got {self.proc}")
        if nprocs is not None and self.proc >= nprocs:
            raise ValueError(
                f"straggler proc {self.proc} outside 0..{nprocs - 1}"
            )
        if self.start_us < 0.0 or self.duration_us <= 0.0:
            raise ValueError(
                f"straggler window must have start_us >= 0 and "
                f"duration_us > 0, got ({self.start_us}, {self.duration_us})"
            )
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """One complete, seeded description of an unreliable run."""

    seed: int = 0
    """Root seed of the per-message RNG keying (:func:`message_rng`)."""

    specs: Tuple[FaultSpec, ...] = ()
    """Per-class unreliability; a ``"*"`` spec covers unnamed classes."""

    stragglers: Tuple[StragglerWindow, ...] = ()

    max_retries: int = 8
    """Retransmissions allowed per message before the sender gives up
    (exceeding the cap raises
    :class:`repro.faults.channel.DroppedMessageError`)."""

    timeout_us: float = 1000.0
    """Retransmission timeout of the first retry (roughly 3x the
    paper platform's small-message RTT)."""

    backoff: float = 2.0
    """Exponential backoff multiplier between successive timeouts."""

    retries_enabled: bool = True
    """With retries disabled, the first lost transmission of a message
    is fatal -- the configuration used to exercise the graceful per-cell
    failure path of the bench harness."""

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def spec_for(self, klass: str) -> Optional[FaultSpec]:
        """The effective spec for one message-class value: the
        class-specific spec if present, else the ``"*"`` spec, else None
        (meaning the class is never perturbed)."""
        fallback = None
        for spec in self.specs:
            if spec.klass == klass:
                return spec
            if spec.klass == ANY_CLASS:
                fallback = spec
        return fallback

    @property
    def drops_messages(self) -> bool:
        """True when any spec has a nonzero drop rate (the chaos gate
        uses this to demand nonzero retransmission counts)."""
        return any(s.drop_rate > 0.0 for s in self.specs)

    @property
    def active(self) -> bool:
        return any(s.active for s in self.specs) or bool(self.stragglers)

    def validate(self, nprocs: Optional[int] = None) -> None:
        seen = set()
        for spec in self.specs:
            spec.validate()
            if spec.klass in seen:
                raise ValueError(f"duplicate spec for class {spec.klass!r}")
            seen.add(spec.klass)
        for win in self.stragglers:
            win.validate(nprocs)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_us <= 0.0:
            raise ValueError(f"timeout_us must be > 0, got {self.timeout_us}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def replace(self, **kwargs: object) -> "FaultPlan":
        """Copy with fields replaced and re-validated (e.g. a reseeded
        variant for one cell of a chaos sweep)."""
        plan = dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]
        plan.validate()
        return plan

    # ------------------------------------------------------------------
    # Serialization (carried in SimConfig.fault_plan)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        data = dict(data)
        try:
            specs = tuple(FaultSpec(**s) for s in data.pop("specs", ()))
            stragglers = tuple(
                StragglerWindow(**w) for w in data.pop("stragglers", ())
            )
            plan = cls(specs=specs, stragglers=stragglers, **data)
        except TypeError as exc:
            raise ValueError(f"malformed fault plan: {exc}") from exc
        plan.validate()
        return plan

    def canonical(self) -> str:
        """Canonical JSON: keys sorted, no whitespace.  This exact string
        is stored in :attr:`SimConfig.fault_plan`, so it participates in
        config hashing, cache keys, and sweep-cell identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        seed: int = 0,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        reorder_rate: float = 0.0,
        jitter_us: float = 0.0,
        **kwargs: object,
    ) -> "FaultPlan":
        """A plan applying one ``"*"`` spec to every message class."""
        spec = FaultSpec(
            klass=ANY_CLASS,
            drop_rate=drop_rate,
            dup_rate=dup_rate,
            reorder_rate=reorder_rate,
            jitter_us=jitter_us,
        )
        plan = cls(seed=seed, specs=(spec,), **kwargs)  # type: ignore[arg-type]
        plan.validate()
        return plan


def message_rng(seed: int, msg_id: int) -> random.Random:
    """The private random generator deciding the fate of one message.

    Keyed by ``(seed, msg_id)`` through SHA-256, so every message's
    draws are independent of every other message's and of global RNG
    state -- the property the same-seed determinism suite pins down.
    """
    digest = hashlib.sha256(f"repro.faults:{seed}:{msg_id}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


#: Module-level cache of parsed plans: TreadMarks parses the plan string
#: once per run, but validate() on hot config paths should not re-parse.
_parse_cache: Dict[str, FaultPlan] = {}


def parse_plan(text: str) -> FaultPlan:
    """Parse (and memoize) a canonical plan string; '' means no plan."""
    if not text:
        raise ValueError("empty fault plan string")
    plan = _parse_cache.get(text)
    if plan is None:
        plan = FaultPlan.from_json(text)
        if len(_parse_cache) < 4096:
            _parse_cache[text] = plan
    return plan

"""Shared experiment-harness machinery.

Every paper experiment is a matrix of (application, dataset) x
(consistency configuration).  ``run_case`` executes one cell and distills
a :class:`CaseResult`; :class:`ResultCache` memoizes cells -- in memory
always, and through the on-disk :class:`repro.bench.cache.DiskCache` when
one is attached -- so the benchmark suite never runs the same simulation
twice; the render helpers produce the paper-shaped ASCII tables.
"""

from __future__ import annotations

import pathlib
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apps.base import get_app, run_app
from repro.bench.cache import DiskCache, cell_key, cell_seed
from repro.sim.config import SimConfig
from repro.stats.report import RunResult
from repro.stats.signature import normalized_from_json, normalized_to_json

#: Consistency configurations in paper order.
UNIT_LABELS = ("4K", "8K", "16K", "Dyn")


def config_for(label: str, nprocs: int = 8, **extra: Any) -> SimConfig:
    """The SimConfig for one of the paper's unit labels (or 'seq').

    ``extra`` overrides win over the label's own defaults, so a spelling
    like ``config_for("4K", unit_pages=1)`` is legal (and resolves to the
    same config -- and hence the same cache cell -- as ``config_for("4K")``).
    """
    kwargs: Dict[str, Any]
    if label == "seq":
        kwargs = dict(nprocs=1)
    elif label == "Dyn":
        kwargs = dict(nprocs=nprocs, dynamic=True)
    else:
        pages = {"4K": 1, "8K": 2, "16K": 4}[label]
        kwargs = dict(nprocs=nprocs, unit_pages=pages)
    kwargs.update(extra)
    return SimConfig(**kwargs)


@dataclass
class CaseResult:
    """The distilled measurements of one matrix cell."""

    app: str
    dataset: str
    label: str
    time_us: float
    useful_messages: int
    useless_messages: int
    sync_messages: int
    useful_bytes: int
    useless_bytes: int
    piggybacked_useless_bytes: int
    sync_bytes: int
    signature: Dict[int, Tuple[float, float]]
    checksum: Optional[float]
    faults: int
    monitoring_faults: int

    # Fault-lab measurements (repro.faults); all zero under the default
    # reliable network, and the only counters besides time_us allowed to
    # differ from the fault-free baseline under an injected fault plan.
    fault_messages: int = 0
    fault_bytes: int = 0
    retransmissions: int = 0
    duplicate_deliveries: int = 0
    timeout_stalls: int = 0

    protocol: str = "tm-lrc"
    """Consistency protocol of the run (``SimConfig.protocol``).
    Defaulted so cache entries and baselines written before the protocol
    zoo existed still round-trip through :meth:`from_json_dict`."""

    @property
    def total_messages(self) -> int:
        return (
            self.useful_messages
            + self.useless_messages
            + self.sync_messages
            + self.fault_messages
        )

    @property
    def total_bytes(self) -> int:
        return (
            self.useful_bytes
            + self.useless_bytes
            + self.sync_bytes
            + self.fault_bytes
        )

    @classmethod
    def from_run(cls, res: RunResult) -> "CaseResult":
        c = res.comm
        return cls(
            app=res.app_name,
            dataset=res.dataset,
            label=res.unit_label if res.config.nprocs > 1 else "seq",
            time_us=res.time_us,
            useful_messages=c.useful_messages,
            useless_messages=c.useless_messages,
            sync_messages=c.sync_messages,
            useful_bytes=c.useful_bytes,
            useless_bytes=c.useless_bytes,
            piggybacked_useless_bytes=c.piggybacked_useless_bytes,
            sync_bytes=c.sync_bytes,
            signature=res.signature.normalized(),
            checksum=res.checksum,
            faults=res.stats.faults,
            monitoring_faults=res.stats.monitoring_faults,
            fault_messages=c.fault_messages,
            fault_bytes=c.fault_bytes,
            retransmissions=res.stats.retransmissions,
            duplicate_deliveries=res.stats.duplicate_deliveries,
            timeout_stalls=res.stats.timeout_stalls,
            protocol=res.config.protocol,
        )

    # ------------------------------------------------------------------
    # Lossless JSON round-trip (disk cache, pool workers, baselines).
    # Floats survive exactly: json uses repr, the shortest round-tripping
    # decimal form.
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["signature"] = normalized_to_json(self.signature)
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "CaseResult":
        data = dict(data)
        data["signature"] = normalized_from_json(data["signature"])
        return cls(**data)


def run_case(app_name: str, dataset: str, label: str, **extra: Any) -> CaseResult:
    """Run one (application, dataset, configuration) cell.

    Before the run, the process-global RNGs are seeded from a hash of the
    cell identity (:func:`repro.bench.cache.cell_seed`).  The applications
    construct their own fixed-seed generators, so this is belt and braces:
    it guarantees that even stray global-RNG usage yields bit-identical
    results whether the cell runs serially or in a pool worker, in any
    order relative to other cells.
    """
    app = get_app(app_name)
    config = config_for(label, **extra)
    seed = cell_seed(app_name, dataset, config)
    # Deliberate: pinning the *global* RNGs to the per-cell seed is the
    # belt-and-braces determinism measure described above.
    np.random.seed(seed)  # detlint: ok(global-random)
    random.seed(seed)  # detlint: ok(global-random)
    res = run_app(app, dataset, config)
    return CaseResult.from_run(res)


class PendingCellError(LookupError):
    """A cell was requested while computation is disabled
    (:meth:`ResultCache.set_compute`) and no cached result exists."""


class ResultCache:
    """Process-wide memo of matrix cells (simulations are deterministic,
    so caching is sound), optionally backed by an on-disk cache.

    Keys are the resolved-config cell keys of :mod:`repro.bench.cache`:
    ``get()`` resolves ``(label, **extra)`` to a full :class:`SimConfig`
    first, so two calls that differ in any ``**extra`` override can never
    alias one entry, and two spellings of the same configuration (e.g.
    ``get(.., "4K")`` and ``get(.., "4K", unit_pages=1)``) share one.
    """

    _cells: Dict[str, CaseResult] = {}
    _disk: Optional[DiskCache] = None
    _compute: bool = True

    @classmethod
    def configure(cls, disk: Optional[DiskCache]) -> None:
        """Attach (or detach, with None) the on-disk cache layer."""
        cls._disk = disk

    @classmethod
    def disk(cls) -> Optional[DiskCache]:
        return cls._disk

    @classmethod
    def set_compute(cls, enabled: bool) -> bool:
        """Allow or forbid running simulations on a cache miss; returns
        the previous setting.  The read-only results service disables
        computation so a renderer whose cell enumeration drifted raises
        :class:`PendingCellError` instead of simulating in-request."""
        previous = cls._compute
        cls._compute = enabled
        return previous

    @classmethod
    def get(
        cls, app_name: str, dataset: str, label: str, **extra: Any
    ) -> CaseResult:
        config = config_for(label, **extra)
        key = cell_key(app_name, dataset, config)
        if key in cls._cells:
            return cls._cells[key]
        result = None
        if cls._disk is not None:
            result = cls._disk.load(app_name, dataset, label, config)
        if result is None:
            if not cls._compute:
                raise PendingCellError(
                    f"cell {app_name}/{dataset}@{label} is not cached and "
                    f"computation is disabled"
                )
            result = run_case(app_name, dataset, label, **extra)
            if cls._disk is not None:
                cls._disk.store(app_name, dataset, label, config, result)
        cls._cells[key] = result
        return result

    @classmethod
    def put(cls, app_name: str, dataset: str, label: str,
            result: CaseResult, **extra: Any) -> None:
        """Install an externally-computed cell (pool workers feed results
        back through this), writing through to the disk layer."""
        config = config_for(label, **extra)
        key = cell_key(app_name, dataset, config)
        cls._cells[key] = result
        if cls._disk is not None:
            cls._disk.store(app_name, dataset, label, config, result)

    @classmethod
    def cached(
        cls, app_name: str, dataset: str, label: str, **extra: Any
    ) -> bool:
        """True when the cell is already in memory or on disk (a disk
        probe loads the entry into memory as a side effect)."""
        config = config_for(label, **extra)
        key = cell_key(app_name, dataset, config)
        if key in cls._cells:
            return True
        if cls._disk is not None:
            result = cls._disk.load(app_name, dataset, label, config)
            if result is not None:
                cls._cells[key] = result
                return True
        return False

    @classmethod
    def clear(cls) -> None:
        cls._cells.clear()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 24) -> str:
    n = max(0, min(width * 3, int(round(fraction * width))))
    return "#" * n


def render_breakdown_table(
    app_name: str,
    dataset: str,
    cells: Dict[str, CaseResult],
) -> str:
    """The paper's Figure-1/2 panel for one application/dataset as text:
    execution time, messages, and data, normalized to the 4 KB cell, with
    the useful (#) / useless (.) / piggybacked (~) breakdown."""
    base = cells["4K"]
    lines = [f"--- {app_name} {dataset} (normalized to 4K) ---"]
    lines.append(f"{'':>5} {'time':>6} | {'messages':>9} (useful+useless+sync) | "
                 f"{'data KB':>8} (useful+piggy+useless)")
    for label in UNIT_LABELS:
        if label not in cells:
            continue
        c = cells[label]
        t = c.time_us / base.time_us
        m = c.total_messages / max(base.total_messages, 1)
        d = c.total_bytes / max(base.total_bytes, 1)
        lines.append(
            f"{label:>5} {t:6.2f} | {m:9.2f}  "
            f"{c.useful_messages:6d}+{c.useless_messages:<6d}+{c.sync_messages:<5d} | "
            f"{d:8.2f}  "
            f"{c.useful_bytes // 1024:5d}+{c.piggybacked_useless_bytes // 1024:<5d}"
            f"+{(c.useless_bytes - c.piggybacked_useless_bytes) // 1024:<5d}"
        )
    return "\n".join(lines)


def render_signature(
    cells: Dict[str, CaseResult], labels: Sequence[str] = ("4K", "16K")
) -> str:
    """Figure-3 panel: the false-sharing signature histogram as text."""
    lines: List[str] = []
    for label in labels:
        c = cells[label]
        lines.append(f"  [{label}] mean writers = "
                     f"{sum(k * sum(v) for k, v in c.signature.items()):.2f}")
        for writers in sorted(c.signature):
            useful, useless = c.signature[writers]
            lines.append(
                f"    {writers}: {_bar(useful)}{'.' * len(_bar(useless))} "
                f"({useful:.2f} useful, {useless:.2f} useless)"
            )
    return "\n".join(lines)


def write_csv(
    path: Union[str, pathlib.Path], rows: Iterable[Dict[str, Any]]
) -> None:
    """Write experiment rows as CSV (header from the first row)."""
    materialized = list(rows)
    if not materialized:
        return
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(materialized[0].keys()))
        writer.writeheader()
        writer.writerows(materialized)

"""Word-granularity diffs (the multiple-writer protocol's unit of data).

A *twin* is a copy of a consistency unit taken at the first write in an
interval; at the end of the interval the twin is compared word-by-word
with the modified unit to produce a :class:`Diff` -- exactly the
twin-and-diff scheme of Carter et al. used by TreadMarks.

Diffs are stored as (word-index, word-value) numpy arrays.  The modelled
wire size is run-length encoded, as in TreadMarks: each maximal run of
consecutive modified words costs one (offset, length) header plus its
data words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per run header in the run-length wire encoding (offset + length).
RUN_HEADER_BYTES = 8

#: Fixed per-diff framing bytes (unit id, interval id, run count).
DIFF_HEADER_BYTES = 16

WORD = 4  # bytes per instrumentation word


@dataclass(frozen=True, slots=True)
class Diff:
    """A record of the words an interval modified within one unit.

    ``idx`` holds word offsets (int32) *within the unit*, strictly
    increasing; ``values`` holds the post-write word values (uint32 raw
    bit patterns).
    """

    unit: int
    idx: np.ndarray
    values: np.ndarray
    wire_bytes: int
    nwords: int
    """Number of modified words carried (== ``idx.shape[0]``, stored:
    the fetch path reads it many times per diff)."""

    @property
    def data_bytes(self) -> int:
        """Payload bytes excluding run/framing headers."""
        return self.nwords * WORD


def _wire_bytes(idx: np.ndarray) -> int:
    """Run-length encoded wire size of a diff with the given offsets."""
    n = idx.shape[0]
    if n == 0:
        return DIFF_HEADER_BYTES
    runs = 1 + int(np.count_nonzero(np.diff(idx) != 1))
    return DIFF_HEADER_BYTES + runs * RUN_HEADER_BYTES + n * WORD


def create_diff(unit: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Compare a twin against the current unit contents.

    Both arrays must be uint32 views of the same length (one consistency
    unit).  Returns a possibly-empty :class:`Diff`.
    """
    if twin.shape != current.shape:
        raise ValueError(f"twin/current shape mismatch: {twin.shape} vs {current.shape}")
    changed = np.nonzero(twin != current)[0]
    idx = changed.astype(np.int32)
    values = current[changed].copy()
    return Diff(
        unit=unit, idx=idx, values=values, wire_bytes=_wire_bytes(idx),
        nwords=int(idx.shape[0]),
    )


def merge_diffs(diffs: "list[Diff]") -> Diff:
    """Coalesce several diffs of the *same unit from the same writer*
    (in interval order) into one diff carrying the latest value of each
    word.

    This reproduces TreadMarks' lazy diffing: the real system keeps one
    twin per page across intervals and computes a single diff covering
    all of a writer's modifications when first requested, so a reader
    never pays for the same writer's intermediate versions of a word
    ("diff accumulation" is avoided for single-writer pages).  Our
    simulator closes intervals eagerly, so we coalesce at fetch time
    instead -- the wire contents and sizes are identical.
    """
    if not diffs:
        raise ValueError("merge_diffs needs at least one diff")
    unit = diffs[0].unit
    for d in diffs[1:]:
        if d.unit != unit:
            raise ValueError(f"cannot merge diffs of units {unit} and {d.unit}")
    if len(diffs) == 1:
        return diffs[0]
    idx = np.concatenate([d.idx for d in diffs])
    values = np.concatenate([d.values for d in diffs])
    # Keep the LAST occurrence of every word offset (latest interval
    # wins): np.unique on the reversed stream returns first occurrences,
    # which are last occurrences of the original order.
    rev_idx = idx[::-1]
    uniq, first_pos = np.unique(rev_idx, return_index=True)
    merged_vals = values[::-1][first_pos]
    uniq = uniq.astype(np.int32)
    return Diff(
        unit=unit, idx=uniq, values=merged_vals, wire_bytes=_wire_bytes(uniq),
        nwords=int(uniq.shape[0]),
    )


def encode_payload(diff: Diff) -> bytes:
    """Serialize a diff in the RLE wire format the cost model charges
    for: per maximal run of consecutive word offsets, an
    ``(offset, length)`` pair of little-endian 32-bit words followed by
    the run's data words.  Fully vectorized; the result is always
    exactly ``diff.wire_bytes - DIFF_HEADER_BYTES`` bytes (the framing
    header carries no per-run data), which ties the analytic
    :func:`_wire_bytes` formula to real bytes.  The property suite in
    ``tests/properties/test_diff_rle.py`` pins this encoding
    byte-for-byte against a scalar reference encoder and round-trips it
    through :func:`decode_payload` on arbitrary write masks."""
    idx = diff.idx.astype(np.int64)
    n = idx.shape[0]
    if n == 0:
        return b""
    breaks = np.flatnonzero(np.diff(idx) != 1) + 1
    starts_pos = np.concatenate((np.zeros(1, dtype=np.int64), breaks))
    lengths = np.diff(np.concatenate((starts_pos, np.asarray([n]))))
    runs = starts_pos.shape[0]
    out = np.empty(2 * runs + n, dtype="<u4")
    head_pos = starts_pos + 2 * np.arange(runs)
    out[head_pos] = idx[starts_pos].astype("<u4")
    out[head_pos + 1] = lengths.astype("<u4")
    word_run = np.repeat(np.arange(runs), lengths)
    out[np.arange(n) + 2 * (word_run + 1)] = diff.values.astype("<u4")
    return out.tobytes()


def decode_payload(unit: int, payload: bytes) -> Diff:
    """Rebuild a :class:`Diff` from :func:`encode_payload` output."""
    arr = np.frombuffer(payload, dtype="<u4")
    idx_parts = []
    val_parts = []
    pos = 0
    while pos < arr.shape[0]:
        if pos + 2 > arr.shape[0]:
            raise ValueError("truncated run header in diff payload")
        off, length = int(arr[pos]), int(arr[pos + 1])
        pos += 2
        if length <= 0 or pos + length > arr.shape[0]:
            raise ValueError(f"invalid run (offset {off}, length {length})")
        idx_parts.append(np.arange(off, off + length, dtype=np.int32))
        val_parts.append(arr[pos : pos + length].astype(np.uint32))
        pos += length
    if not idx_parts:
        idx = np.empty(0, dtype=np.int32)
        values = np.empty(0, dtype=np.uint32)
    else:
        idx = np.concatenate(idx_parts)
        values = np.concatenate(val_parts)
    if idx.shape[0] > 1 and not (np.diff(idx) >= 1).all():
        raise ValueError("diff payload runs are not strictly increasing")
    return Diff(
        unit=unit, idx=idx, values=values, wire_bytes=_wire_bytes(idx),
        nwords=int(idx.shape[0]),
    )


def apply_diff(diff: Diff, unit_words: np.ndarray) -> None:
    """Patch ``diff`` into a uint32 view of the target unit, in place."""
    if diff.nwords == 0:
        return
    if int(diff.idx[-1]) >= unit_words.shape[0]:
        raise IndexError(
            f"diff touches word {int(diff.idx[-1])} beyond unit of "
            f"{unit_words.shape[0]} words"
        )
    unit_words[diff.idx] = diff.values

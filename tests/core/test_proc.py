"""Proc facade behaviour."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks


def test_time_us_tracks_clock():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=4096)

    def body(proc):
        t0 = proc.time_us
        proc.compute(us=10.0)
        assert proc.time_us == pytest.approx(t0 + 10.0)

    tmk.run(body)


def test_reads_charge_per_word():
    cfg = SimConfig(nprocs=1)
    tmk = TreadMarks(cfg, heap_bytes=1 << 14)
    arr = tmk.array("a", (2048,), "uint32")

    def body(proc):
        t0 = proc.time_us
        arr.read(proc, 0, 1000)
        expect = cfg.region_op_us + 1000 * cfg.word_access_us
        assert proc.time_us - t0 == pytest.approx(expect)

    tmk.run(body)


def test_write_converts_dtypes():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=1 << 14)
    arr = tmk.array("a", (8,), "float32")

    def body(proc):
        arr.write(proc, 0, [1.5, 2.5])  # list input
        got = arr.read(proc, 0, 2)
        assert list(got) == [1.5, 2.5]

    tmk.run(body)


def test_exception_in_worker_surfaces_from_run():
    tmk = TreadMarks(SimConfig(nprocs=4), heap_bytes=4096)

    def body(proc):
        if proc.id == 2:
            raise ValueError("app bug")
        proc.barrier()

    with pytest.raises(ValueError, match="app bug"):
        tmk.run(body)


def test_mismatched_barriers_detected():
    tmk = TreadMarks(SimConfig(nprocs=2), heap_bytes=4096)

    def body(proc):
        if proc.id == 0:
            proc.barrier(1)

    from repro.sim.engine import DeadlockError

    with pytest.raises(DeadlockError):
        tmk.run(body)

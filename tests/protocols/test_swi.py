"""Single-writer invalidate: ownership ping-pong, invalidations, M-state."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.network import MessageClass

WORDS_PER_PAGE = 1024


def make(nprocs=2, **cfg):
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, protocol="swi", **cfg), heap_bytes=1 << 16
    )
    arr = tmk.array("a", (4 * WORDS_PER_PAGE,), "uint32")
    return tmk, arr


class TestOwnership:
    def test_first_write_claims_ownership_without_transfer(self):
        tmk, arr = make()

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 1, np.uint32))
            proc.barrier()

        tmk.run(body)
        assert tmk.procs[0].directory.owner[0] == 0
        assert tmk.stats.ownership_transfers == 0

    def test_false_sharing_ping_pongs_ownership(self):
        # The two processors alternate writes to *disjoint* words of one
        # unit: no data is ever communicated usefully, yet every
        # alternation pays an ownership transfer (the protocol's
        # defining false-sharing cost).
        tmk, arr = make()
        rounds = 3

        def body(proc):
            for r in range(rounds):
                if proc.id == r % 2:
                    arr.write(
                        proc, proc.id * 8, np.full(8, r + 1, np.uint32)
                    )
                proc.barrier(r)

        tmk.run(body)
        # Round 0 claims (unowned, no transfer); rounds 1..n-1 transfer.
        assert tmk.stats.ownership_transfers == rounds - 1

    def test_larger_units_widen_the_ping_pong(self):
        # Writes to word 0 and word 1024: distinct 4K units (no
        # transfers), one 8K unit (ping-pong).
        def transfers(pages):
            tmk = TreadMarks(
                SimConfig(nprocs=2, protocol="swi", unit_pages=pages),
                heap_bytes=1 << 16,
            )
            arr = tmk.array("a", (4 * WORDS_PER_PAGE,), "uint32")

            def body(proc):
                for r in range(2):
                    if proc.id == r % 2:
                        arr.write(
                            proc,
                            proc.id * WORDS_PER_PAGE,
                            np.full(8, r + 1, np.uint32),
                        )
                    proc.barrier(r)

            tmk.run(body)
            return tmk.stats.ownership_transfers

        assert transfers(1) == 0
        assert transfers(2) == 1


class TestInvalidation:
    def test_write_invalidates_every_other_copy(self):
        # Everyone starts with a valid (zero) copy, so the first write
        # invalidates all nprocs - 1 holders.
        tmk, arr = make(nprocs=4)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 1, np.uint32))
            proc.barrier()

        tmk.run(body)
        assert tmk.stats.invalidations == 3
        assert tmk.procs[0].directory.copyset[0] == {0}

    def test_reader_rejoins_copyset_and_sees_current_data(self):
        tmk, arr = make(nprocs=2)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 9, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                got = arr.read(proc, 0, 8)
                assert np.all(got == 9)
            proc.barrier(1)

        tmk.run(body)
        assert tmk.procs[0].directory.copyset[0] == {0, 1}

    def test_owner_rewrite_reinvalidates_readers(self):
        # Proc 0 owns the unit but proc 1 re-fetched a copy; a second
        # write by the *same owner* must invalidate it again (M state
        # requires exclusivity, not just ownership) or proc 1 reads
        # stale data.
        tmk, arr = make(nprocs=2)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 1, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                arr.read(proc, 0, 8)
            proc.barrier(1)
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 2, np.uint32))
            proc.barrier(2)
            if proc.id == 1:
                got = arr.read(proc, 0, 8)
                assert np.all(got == 2)
            proc.barrier(3)

        tmk.run(body)
        # Invalidated once at the first write, once at the rewrite.
        assert tmk.stats.invalidations == 2
        assert tmk.stats.ownership_transfers == 0

    def test_refetch_is_whole_unit_from_owner(self):
        tmk, arr = make(nprocs=2)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(1, 7, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                arr.read(proc, 0, 1)
            proc.barrier(1)

        tmk.run(body)
        replies = [
            m
            for m in tmk.network.messages
            if m.klass is MessageClass.DIFF_REPLY
        ]
        assert len(replies) == 1
        assert replies[0].src == 0 and replies[0].dst == 1
        assert replies[0].words_carried == WORDS_PER_PAGE


class TestNoLrcMachinery:
    def test_no_twins_no_diffs_no_notices(self):
        tmk, arr = make(nprocs=2)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 3, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                arr.read(proc, 0, 8)
            proc.barrier(1)

        tmk.run(body)
        assert all(not lp.twins for lp in tmk.procs)
        assert tmk.stats.diffs_created == 0
        assert all(all(e == 0 for e in lp.vc) for lp in tmk.procs)

    def test_write_then_read_back_round_trips(self):
        tmk, arr = make(nprocs=2)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.arange(16, dtype=np.uint32))
            proc.barrier(0)
            got = arr.read(proc, 0, 16)
            assert np.array_equal(got, np.arange(16, dtype=np.uint32))
            proc.barrier(1)
            return float(got.sum())

        res = tmk.run(body)
        assert res.checksum == float(np.arange(16).sum())

"""False-sharing signature construction (Figure 3)."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.stats.signature import FalseSharingSignature, SignatureBucket


def run_pattern(body, nprocs=4, **cfg):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg), heap_bytes=1 << 16)
    arr = tmk.array("a", (8 * 1024,), "uint32")
    res = tmk.run(lambda proc: body(proc, arr))
    return tmk, res


def test_bucket_accumulation():
    sig = FalseSharingSignature()
    b = sig.bucket(2)
    b.useful_exchanges += 3
    b.useless_exchanges += 1
    assert sig.bucket(2).exchanges == 4
    assert sig.total_exchanges == 4
    assert sig.max_writers == 2


def test_normalized_fractions_sum_to_one():
    sig = FalseSharingSignature()
    sig.bucket(1).useful_exchanges = 6
    sig.bucket(3).useless_exchanges = 2
    norm = sig.normalized()
    total = sum(u + ul for u, ul in norm.values())
    assert total == pytest.approx(1.0)
    assert norm[3] == (0.0, pytest.approx(0.25))


def test_mean_writers():
    sig = FalseSharingSignature()
    sig.bucket(1).useful_exchanges = 2
    sig.bucket(7).useful_exchanges = 2
    assert sig.mean_writers() == pytest.approx(4.0)


def test_empty_signature():
    sig = FalseSharingSignature()
    assert sig.normalized() == {}
    assert sig.mean_writers() == 0.0
    assert sig.max_writers == 0


def test_single_writer_faults_land_in_bucket_one():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.arange(1024, dtype=np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 1024)
        proc.barrier()

    _, res = run_pattern(body)
    assert set(res.signature.buckets) == {1}
    assert res.signature.bucket(1).useless_exchanges == 0


def test_three_writer_faults_land_in_bucket_three():
    def body(proc, arr):
        if proc.id > 0:
            arr.write(proc, proc.id * 8, np.full(8, proc.id, np.uint32))
        proc.barrier()
        if proc.id == 0:
            arr.read(proc, 8, 24)
        proc.barrier()

    _, res = run_pattern(body)
    assert 3 in res.signature.buckets
    assert res.signature.bucket(3).useful_exchanges == 3


def test_monitoring_faults_excluded():
    def body(proc, arr):
        arr.read(proc, proc.id * 1024, 4)
        proc.barrier()

    _, res = run_pattern(body, dynamic=True)
    assert res.signature.total_exchanges == 0


def test_signature_shift_under_false_sharing():
    """Cyclic 8-word writers: at a 4 KB unit the reader sees all three
    writers; the signature records the rightmost bucket accordingly."""

    def body(proc, arr):
        if proc.id > 0:
            for base in range(proc.id * 8, 1024, 32):
                arr.write(proc, base, np.full(8, proc.id, np.uint32))
        proc.barrier()
        if proc.id == 0:
            arr.read(proc, 0, 1024)
        proc.barrier()

    _, res = run_pattern(body)
    assert res.signature.max_writers == 3


class TestNormalizedJson:
    """JSON round-trip helpers used by the result cache and baselines."""

    def test_roundtrip_exact(self):
        from repro.stats.signature import normalized_from_json, normalized_to_json

        sig = {1: (0.5, 0.25), 3: (0.125, 0.0625)}
        encoded = normalized_to_json(sig)
        assert all(isinstance(k, str) for k in encoded)
        assert normalized_from_json(encoded) == sig

    def test_survives_json_serialization(self):
        import json

        from repro.stats.signature import normalized_from_json, normalized_to_json

        sig = {2: (1 / 3, 2 / 7)}
        wire = json.dumps(normalized_to_json(sig))
        assert normalized_from_json(json.loads(wire)) == sig

"""Message accounting for the simulated interconnect.

The network layer does not move bytes (the DSM layer patches diffs into
per-processor memory copies directly); it *accounts*: every protocol
message is recorded with its source, destination, class, and payload size,
and the per-message cost model from :class:`repro.sim.config.SimConfig` is
used by the protocol layer to charge simulated time.

Diff-carrying messages additionally carry word-level usefulness state that
is resolved retroactively by :mod:`repro.stats.words`; the records created
here are the unit of classification for the paper's useful / useless
message breakdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.config import SimConfig


class MessageClass(enum.Enum):
    """Protocol classes of simulated messages."""

    DIFF_REQUEST = "diff_request"
    """A (possibly combined) request for diffs sent at an access miss."""

    DIFF_REPLY = "diff_reply"
    """The reply carrying the requested diffs."""

    LOCK = "lock"
    """Lock request / forward / grant traffic."""

    BARRIER = "barrier"
    """Barrier arrival / departure traffic."""

    DIFF_FLUSH = "diff_flush"
    """A diff eagerly flushed to a unit's home node at release time
    (home-based LRC, :mod:`repro.protocols.hlrc`).  One-way: no exchange,
    the sender does not stall on it."""

    DIFF_PUSH = "diff_push"
    """Write notices plus diffs pushed to a sharer at release time
    (eager release consistency, :mod:`repro.protocols.erc`).  One-way."""

    OWNERSHIP = "ownership"
    """Unit-ownership request / grant traffic (single-writer invalidate,
    :mod:`repro.protocols.swi`).  Carries no data: the requester's copy
    is already current when ownership moves."""

    INVALIDATE = "invalidate"
    """Invalidation (and its ack) sent to the holders of a unit's copies
    when a new writer takes over (single-writer invalidate)."""

    RETRANSMIT = "retransmit"
    """Transport-level copies injected by the fault lab: timed-out
    retransmissions and duplicate deliveries (see :mod:`repro.faults`).
    Never produced by the protocol itself, never classified useful or
    useless, and excluded from the usefulness breakdowns."""


#: Message classes whose payload is classified word-by-word into useful and
#: useless data (the paper's Figures 1 and 2 breakdowns).  DIFF_REPLY is
#: classified via its exchange; the eager flush/push classes carry data
#: outside any exchange and classify by their own resolved word counts.
DATA_CLASSES = frozenset(
    {MessageClass.DIFF_REPLY, MessageClass.DIFF_FLUSH, MessageClass.DIFF_PUSH}
)

#: Message classes counted as consistency-control / synchronization
#: overhead.  Under tm-lrc (locks and barriers only) these are invariant
#: across consistency-unit sizes; the single-writer invalidate protocol
#: adds ownership and invalidation traffic, which is exactly the part of
#: its overhead that *does* scale with false sharing.
SYNC_CLASSES = frozenset(
    {
        MessageClass.LOCK,
        MessageClass.BARRIER,
        MessageClass.OWNERSHIP,
        MessageClass.INVALIDATE,
    }
)


@dataclass(slots=True)
class MessageRecord:
    """One simulated message.

    ``words_carried`` / ``words_useful`` are only meaningful for
    :data:`DATA_CLASSES` messages; usefulness resolves as the destination
    processor reads (useful) or overwrites / never touches (useless) the
    words a diff installed, per Section 5.3 of the paper.
    """

    msg_id: int
    src: int
    dst: int
    klass: MessageClass
    payload_bytes: int
    send_time_us: float
    exchange_id: Optional[int] = None
    """Groups the request/reply pair of one fault-time message exchange."""

    words_carried: int = 0
    words_useful: int = 0

    @property
    def words_useless(self) -> int:
        """Words shipped in this message that were never usefully read."""
        return self.words_carried - self.words_useful

    @property
    def is_useless(self) -> bool:
        """A data message is *useless* when it carries no useful word
        (the paper: "a message that carries no useful data")."""
        return self.klass in DATA_CLASSES and self.words_useful == 0


@dataclass(slots=True)
class ExchangeRecord:
    """One fault-time message exchange (request + reply) with one writer.

    The false-sharing signature (Figure 3) is a histogram over the number
    of exchanges per fault, with each exchange classified useful/useless
    by its reply's resolved word usefulness.
    """

    exchange_id: int
    requester: int
    writer: int
    fault_id: int
    request_msg: int
    reply_msg: int


class Network:
    """Global message ledger for one simulated run."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.messages: List[MessageRecord] = []
        self.exchanges: List[ExchangeRecord] = []
        self._by_class: Dict[MessageClass, int] = {c: 0 for c in MessageClass}
        self._bytes_by_class: Dict[MessageClass, int] = {c: 0 for c in MessageClass}
        self._next_exchange = 0
        self._observers: List[object] = []
        self._trace = None

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    @property
    def trace(self) -> object:
        """Optional :class:`repro.trace.recorder.TraceRecorder`; every
        recorded message is mirrored as a trace event.  Stored in the
        shared observer list (always first, so the trace sees a message
        before any fault injector reacts to it); assigning None detaches
        it.  Observer-only: never affects accounting."""
        return self._trace

    @trace.setter
    def trace(self, recorder: object) -> None:
        if self._trace is not None:
            self._observers.remove(self._trace)
        self._trace = recorder
        if recorder is not None:
            self._observers.insert(0, recorder)

    def add_observer(self, observer: object) -> None:
        """Register a message observer (``on_message(rec, wire_time_us,
        waiter)``).  Observers are notified in registration order, after
        the trace recorder; the shared list replaces the former bare
        ``trace`` attribute so trace and fault injection compose without
        ordering hazards."""
        if observer in self._observers:
            raise ValueError("observer registered twice")
        self._observers.append(observer)

    def remove_observer(self, observer: object) -> None:
        self._observers.remove(observer)

    @property
    def observers(self) -> tuple:
        """Snapshot of the registered observers, notification order."""
        return tuple(self._observers)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        src: int,
        dst: int,
        klass: MessageClass,
        payload_bytes: int,
        send_time_us: float,
        exchange_id: Optional[int] = None,
        waiter: Optional[int] = None,
    ) -> MessageRecord:
        """Record one message; returns its ledger entry.

        ``waiter`` names the processor that stalls until this message is
        delivered (the faulting processor for a diff exchange, the
        acquirer for lock traffic, ...).  It is accounting metadata for
        observers -- the fault injector charges injected delivery delays
        to it -- and never affects the ledger itself.
        """
        if src == dst:
            raise ValueError(f"message to self: proc {src}")
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        rec = MessageRecord(
            msg_id=len(self.messages),
            src=src,
            dst=dst,
            klass=klass,
            payload_bytes=payload_bytes,
            send_time_us=send_time_us,
            exchange_id=exchange_id,
        )
        self.messages.append(rec)
        self._by_class[klass] += 1
        self._bytes_by_class[klass] += payload_bytes
        observers = self._observers
        if observers:
            wire_time = self.config.msg_cost_us(payload_bytes)
            for obs in tuple(observers):
                obs.on_message(rec, wire_time, waiter)
        return rec

    def new_exchange(self, requester: int, writer: int, fault_id: int) -> int:
        """Open a fault-time exchange; returns its id.  The request and
        reply messages are attached via :meth:`close_exchange`."""
        ex_id = self._next_exchange
        self._next_exchange += 1
        self.exchanges.append(
            ExchangeRecord(
                exchange_id=ex_id,
                requester=requester,
                writer=writer,
                fault_id=fault_id,
                request_msg=-1,
                reply_msg=-1,
            )
        )
        return ex_id

    def close_exchange(self, ex_id: int, request_msg: int, reply_msg: int) -> None:
        """Attach the request and reply message ids to an exchange."""
        ex = self.exchanges[ex_id]
        ex.request_msg = request_msg
        ex.reply_msg = reply_msg

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, klass: Optional[MessageClass] = None) -> int:
        """Number of messages recorded (optionally of one class)."""
        if klass is None:
            return len(self.messages)
        return self._by_class[klass]

    def bytes(self, klass: Optional[MessageClass] = None) -> int:
        """Payload bytes recorded (optionally of one class)."""
        if klass is None:
            return sum(self._bytes_by_class.values())
        return self._bytes_by_class[klass]

    @property
    def sync_message_count(self) -> int:
        """Messages attributable to locks and barriers."""
        return sum(self._by_class[c] for c in SYNC_CLASSES)

    @property
    def data_message_count(self) -> int:
        """Messages attributable to data traffic: fault-time requests
        plus every data-carrying class (replies, flushes, pushes)."""
        return self._by_class[MessageClass.DIFF_REQUEST] + sum(
            self._by_class[c] for c in DATA_CLASSES
        )

    @property
    def fault_message_count(self) -> int:
        """Transport-level copies injected by the fault lab."""
        return self._by_class[MessageClass.RETRANSMIT]

    def exchange_reply(self, ex_id: int) -> MessageRecord:
        """The reply message of an exchange (for usefulness queries)."""
        ex = self.exchanges[ex_id]
        if ex.reply_msg < 0:
            raise ValueError(f"exchange {ex_id} was never closed")
        return self.messages[ex.reply_msg]

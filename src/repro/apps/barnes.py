"""Barnes: Barnes-Hut hierarchical N-body simulation (Section 5.5;
SPLASH).

Structure, as described in the paper:

* the **tree is built sequentially by the master processor**, which
  reads essentially the entire body array (fine-grained, one record per
  body) and writes the cell array;
* the **force computation is parallel**: bodies live in Morton (tree)
  order and each processor owns a contiguous chunk, standing in for
  SPLASH's cost-zone partition.  Fine-grained per-body writes cause
  write-write false sharing on the pages where partitions meet, but the
  extensive true sharing (traversals read bodies and cells all over the
  space) keeps useless messages few: false sharing shows up mostly as
  useless *data*;
* reads and writes are fine-grained (individual particle records), but
  each processor touches a large region of the shared body/cell space,
  which is why static aggregation pays off (Figure 1).

The octree build and the force traversal are pure functions shared with
the sequential reference, so the DSM run is bitwise comparable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: float32 words per body record: pos[0:3] vel[3:6] acc[6:9] mass[9] pad.
BODY_REC = 16
#: float32 words per cell record: com[0:3] mass[3] size[4] pad[5:8]
#: children[8:16] (0 empty, +i cell i-1, -j body j-1).
CELL_REC = 16

THETA2 = np.float32(0.49)  # theta = 0.7
EPS2 = np.float32(0.05)
DT = np.float32(0.002)


def _morton_keys(pos: np.ndarray) -> np.ndarray:
    """Morton (Z-order) keys of 3-D positions, 10 bits per axis."""
    q = np.clip((pos / pos.max() * 1023.0).astype(np.int64), 0, 1023)
    keys = np.zeros(pos.shape[0], dtype=np.int64)
    for bit in range(10):
        for axis in range(3):
            keys |= ((q[:, axis] >> bit) & 1) << (3 * bit + axis)
    return keys


def _initial_bodies(n: int) -> np.ndarray:
    """Deterministic bodies, stored in Morton order: SPLASH Barnes keeps
    the body array in tree order, so contiguous index ranges are spatial
    clusters and the costzone partition owns whole pages (write-write
    false sharing concentrates at partition boundaries)."""
    rng = np.random.default_rng(99)
    b = np.zeros((n, BODY_REC), dtype=np.float32)
    b[:, 0:3] = rng.uniform(0.0, 100.0, size=(n, 3)).astype(np.float32)
    b[:, 3:6] = rng.standard_normal((n, 3)).astype(np.float32) * 0.1
    b[:, 9] = np.float32(1.0)
    order = np.argsort(_morton_keys(b[:, 0:3]), kind="stable")
    return b[order]


# ----------------------------------------------------------------------
# Octree build (pure; used by the master worker and by the reference)
# ----------------------------------------------------------------------
#: Leaf bucket capacity (SPLASH-style multi-body leaves; also bounded by
#: the 8 child slots of the serialized cell record).
BUCKET = 8


class _Node:
    __slots__ = ("cx", "cy", "cz", "size", "bodies")

    def __init__(self, cx: float, cy: float, cz: float, size: float) -> None:
        self.cx, self.cy, self.cz, self.size = cx, cy, cz, size
        self.bodies: List[int] = []  # leaf contents until split


def build_tree(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Build the Barnes-Hut octree over positions; returns the serialized
    cell array ((ncells, CELL_REC) float32)."""
    n = pos.shape[0]
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    size = float((hi - lo).max()) * 1.001 + 1e-6

    nodes: List[_Node] = [_Node(center[0], center[1], center[2], size)]
    slots: List[Dict[int, int]] = [{}]  # node -> octant -> child node id

    def octant(node: _Node, p) -> int:
        return (
            (1 if p[0] >= node.cx else 0)
            | (2 if p[1] >= node.cy else 0)
            | (4 if p[2] >= node.cz else 0)
        )

    def child_center(node: _Node, o: int) -> Tuple[float, float, float, float]:
        q = node.size / 4.0
        return (
            node.cx + (q if o & 1 else -q),
            node.cy + (q if o & 2 else -q),
            node.cz + (q if o & 4 else -q),
            node.size / 2.0,
        )

    def insert(nid: int, j: int) -> None:
        while True:
            node = nodes[nid]
            if not slots[nid]:  # leaf
                if len(node.bodies) < BUCKET:
                    node.bodies.append(j)
                    return
                spill = node.bodies
                node.bodies = []
                for b in spill:
                    _descend_new(nid, b)
                # fall through: continue inserting j below
            o = octant(node, pos[j])
            if o not in slots[nid]:
                cx, cy, cz, s = child_center(node, o)
                nodes.append(_Node(cx, cy, cz, s))
                slots.append({})
                slots[nid][o] = len(nodes) - 1
            nid = slots[nid][o]

    def _descend_new(nid: int, j: int) -> None:
        o = octant(nodes[nid], pos[j])
        if o not in slots[nid]:
            cx, cy, cz, s = child_center(nodes[nid], o)
            nodes.append(_Node(cx, cy, cz, s))
            slots.append({})
            slots[nid][o] = len(nodes) - 1
        insert(slots[nid][o], j)

    for j in range(n):
        insert(0, j)

    # Serialize pre-order; compute centers of mass bottom-up via the
    # serialization recursion.
    cells = np.zeros((len(nodes), CELL_REC), dtype=np.float32)
    order: Dict[int, int] = {}

    def assign(nid: int) -> int:
        cid = len(order)
        order[nid] = cid
        for o in sorted(slots[nid]):
            assign(slots[nid][o])
        return cid

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        assign(0)

        def fill(nid: int) -> Tuple[np.ndarray, np.float32]:
            cid = order[nid]
            node = nodes[nid]
            com = np.zeros(3, dtype=np.float32)
            m = np.float32(0.0)
            ci = 0
            for b in node.bodies:
                cells[cid, 8 + ci] = np.float32(-(b + 1))
                ci += 1
                com = com + pos[b].astype(np.float32) * mass[b]
                m = m + np.float32(mass[b])
            for o in sorted(slots[nid]):
                child = slots[nid][o]
                ccom, cm = fill(child)
                cells[cid, 8 + ci] = np.float32(order[child] + 1)
                ci += 1
                com = com + ccom * cm
                m = m + cm
            if m > 0:
                com = (com / m).astype(np.float32)
            cells[cid, 0:3] = com
            cells[cid, 4] = np.float32(node.size)
            cells[cid, 3] = m
            return com, m

        fill(0)
    finally:
        sys.setrecursionlimit(old_limit)
    return cells


# ----------------------------------------------------------------------
# Force traversal (pure)
# ----------------------------------------------------------------------
def force_on(
    i: int,
    pos_i: np.ndarray,
    read_cell: Callable[[int], np.ndarray],
    read_body: Callable[[int], np.ndarray],
) -> Tuple[np.ndarray, int]:
    """Barnes-Hut acceleration on body ``i``; returns (acc, ninteractions).

    ``read_cell(cid)`` and ``read_body(j)`` fetch records (from shared
    memory in the DSM run, from plain arrays in the reference)."""
    acc = np.zeros(3, dtype=np.float32)
    inter = 0
    stack = [0]
    while stack:
        cid = stack.pop()
        cell = read_cell(cid)
        d = cell[0:3] - pos_i
        r2 = np.float32((d * d).sum()) + EPS2
        if cell[4] * cell[4] < THETA2 * r2:
            inv = np.float32(1.0) / np.float32(np.sqrt(float(r2)))
            acc = acc + d * (cell[3] * inv * inv * inv)
            inter += 1
            continue
        for s in range(8, 16):
            ref = int(cell[s])
            if ref == 0:
                continue
            if ref > 0:
                stack.append(ref - 1)
            else:
                j = -ref - 1
                if j == i:
                    continue
                body = read_body(j)
                db = body[0:3] - pos_i
                rb2 = np.float32((db * db).sum()) + EPS2
                inv = np.float32(1.0) / np.float32(np.sqrt(float(rb2)))
                acc = acc + db * (body[9] * inv * inv * inv)
                inter += 1
    return acc.astype(np.float32), inter


def batched_forces(
    pos_i: np.ndarray,
    ids: np.ndarray,
    get_cells: Callable[[np.ndarray], np.ndarray],
    get_bodies: Callable[[np.ndarray], np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Barnes-Hut accelerations on a batch of bodies at once; returns
    ``(acc (m, 3) float32, interactions (m,) int64)``.

    Level-order version of :func:`force_on`: one frontier of
    (body, cell) pairs per tree level, expanded together.  The opening
    criterion depends only on the cell record and the body position, so
    the visited node *set* per body equals the scalar traversal's; only
    the accumulation order changes (per level: cell terms summed in
    float64 per body via ``bincount``, rounded into the float32
    accumulator, then leaf-body terms likewise).  Per body the partial
    sums depend only on its own pair subsequence, never on the batch,
    so the worker (one block) and the reference (all bodies) fold
    identically.

    ``get_cells(cids)`` / ``get_bodies(js)`` fetch record batches (from
    shared memory in the DSM run, from plain arrays in the reference);
    both may receive duplicate ids within one call."""
    m = int(pos_i.shape[0])
    acc = np.zeros((m, 3), dtype=np.float32)
    inter = np.zeros(m, dtype=np.int64)
    if m == 0:
        return acc, inter
    pb = np.arange(m, dtype=np.int64)  # pair -> batch row
    pc = np.zeros(m, dtype=np.int64)   # pair -> cell id (all start at root)
    while pb.size:
        cells = get_cells(pc)
        d = cells[:, 0:3] - pos_i[pb]
        r2 = (d * d).sum(axis=1) + EPS2
        far = (cells[:, 4] * cells[:, 4]) < (THETA2 * r2)
        if far.any():
            inv = np.float32(1.0) / np.sqrt(r2[far])
            w = cells[far, 3] * inv * inv * inv
            rows = pb[far]
            contrib = d[far] * w[:, None]
            for c in range(3):
                acc[:, c] += np.bincount(
                    rows, weights=contrib[:, c], minlength=m
                ).astype(np.float32)
            inter += np.bincount(rows, minlength=m)
        refs = cells[~far, 8:16].astype(np.int64)
        pair_b = np.repeat(pb[~far], 8)
        flat = refs.reshape(-1)
        keep = flat != 0
        pair_b, flat = pair_b[keep], flat[keep]
        is_cell = flat > 0
        jb = pair_b[~is_cell]
        js = -flat[~is_cell] - 1
        not_self = js != ids[jb]
        jb, js = jb[not_self], js[not_self]
        if js.size:
            brow = get_bodies(js)
            db = brow[:, 0:3] - pos_i[jb]
            rb2 = (db * db).sum(axis=1) + EPS2
            invb = np.float32(1.0) / np.sqrt(rb2)
            wb = brow[:, 9] * invb * invb * invb
            contribb = db * wb[:, None]
            for c in range(3):
                acc[:, c] += np.bincount(
                    jb, weights=contribb[:, c], minlength=m
                ).astype(np.float32)
            inter += np.bincount(jb, minlength=m)
        pb = pair_b[is_cell]
        pc = flat[is_cell] - 1
    return acc, inter


#: Flops charged per gravitational interaction.
FLOPS_PER_INTERACTION = 60


def _owned(n: int, nprocs: int, pid: int) -> List[int]:
    """Costzone-style partition: a contiguous range of the Morton-ordered
    body array (a contiguous chunk of the tree walk)."""
    lo, hi = Application.block_range(n, nprocs, pid)
    return list(range(lo, hi))


@AppRegistry.register
class Barnes(Application):
    """Barnes-Hut with master tree build and cyclic body partition."""

    name = "Barnes"
    checksum_rtol = 1e-4

    datasets = {
        # Paper: 16K bodies; scaled for simulator runtime.  1080 bodies
        # (not a multiple of 64 bodies/page) keeps the partition
        # boundaries inside pages, preserving the boundary write-write
        # false sharing of the original.
        "16K": {"n": 1080, "iters": 2, "max_cells": 4096},
        # Paper full size: 32K bodies, unscaled.  Only reachable at
        # simulator speed through the bulk-access fast path; kept out of
        # the default golden gate (see ``--full`` in repro.bench).
        "32K": {"n": 32768, "iters": 2, "max_cells": 65536},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return (p["n"] * BODY_REC + p["max_cells"] * CELL_REC) * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {
            "bodies": tmk.array("bodies", (p["n"], BODY_REC), "float32"),
            "cells": tmk.array("cells", (p["max_cells"], CELL_REC), "float32"),
            "meta": tmk.array("meta", (16,), "int32"),
        }

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        bodies, cells, meta = handles["bodies"], handles["cells"], handles["meta"]
        n, iters = params["n"], params["iters"]
        mine = _owned(n, proc.nprocs, proc.id)

        # Distributed initialization: owners write their body ranges.
        init = _initial_bodies(n)
        if mine:
            bodies.write_rows(proc, mine[0], init[mine[0] : mine[-1] + 1])
        proc.barrier()

        rows = np.asarray(mine, dtype=np.int64)
        for _ in range(iters):
            # ---- Master builds the tree, reading every body record
            # fine-grained (one 10-word range per body, gathered in
            # index order), then writes the serialized cells.
            if proc.id == 0:
                recs = bodies.gather_rows(
                    proc, np.arange(n, dtype=np.int64), 0, 10
                )
                pos = np.ascontiguousarray(recs[:, 0:3])
                mass = np.ascontiguousarray(recs[:, 9])
                tree = build_tree(pos, mass)
                if tree.shape[0] > params["max_cells"]:
                    raise RuntimeError(
                        f"tree needs {tree.shape[0]} cells, "
                        f"max_cells={params['max_cells']}"
                    )
                proc.compute(us=15.0 * n)  # sequential build work
                cells.scatter_rows(
                    proc, np.arange(tree.shape[0], dtype=np.int64), tree
                )
                meta.write(proc, 0, np.array([tree.shape[0]], np.int32))
            proc.barrier()

            # ---- Parallel force computation over the cyclic partition.
            # Records are still read per body / per cell (10- and 16-word
            # ranges), but batched per traversal level: each level's
            # unseen records are gathered together in ascending id
            # order.  The visited record SET matches the scalar
            # traversal's, so coherence traffic is unchanged.
            cell_store = np.zeros(
                (params["max_cells"], CELL_REC), dtype=np.float32
            )
            cell_have = np.zeros(params["max_cells"], dtype=bool)
            body_store = np.zeros((n, 10), dtype=np.float32)
            body_have = np.zeros(n, dtype=bool)
            own = bodies.gather_rows(proc, rows, 0, 10) if mine else \
                np.zeros((0, 10), dtype=np.float32)
            body_store[rows] = own
            body_have[rows] = True

            def get_cells(cids: np.ndarray) -> np.ndarray:
                missing = np.unique(cids[~cell_have[cids]])
                if missing.size:
                    cell_store[missing] = cells.gather_rows(
                        proc, missing, 0, CELL_REC
                    )
                    cell_have[missing] = True
                return cell_store[cids]

            def get_bodies(js: np.ndarray) -> np.ndarray:
                missing = np.unique(js[~body_have[js]])
                if missing.size:
                    body_store[missing] = bodies.gather_rows(
                        proc, missing, 0, 10
                    )
                    body_have[missing] = True
                return body_store[js]

            acc, inter = batched_forces(
                np.ascontiguousarray(own[:, 0:3]), rows,
                get_cells, get_bodies,
            )
            proc.compute(flops=int(inter.sum()) * FLOPS_PER_INTERACTION)
            proc.barrier()

            # ---- Update phase: owners integrate their bodies, publishing
            # the new accelerations with the position/velocity write.
            # Keeping accelerations private until here means the force
            # phase is read-only, so traversal reads of remote records
            # are never concurrent with owner writes (the phases are
            # race-free under the repro.trace happens-before check).
            if mine:
                recs = bodies.gather_rows(proc, rows, 0, BODY_REC)
                out = recs[:, 0:9].copy()
                out[:, 6:9] = acc
                out[:, 3:6] = out[:, 3:6] + out[:, 6:9] * DT
                out[:, 0:3] = out[:, 0:3] + out[:, 3:6] * DT
                proc.compute(flops=12 * len(mine))
                bodies.scatter_rows(proc, rows, out, 0)
            proc.barrier()

        local = 0.0
        if mine:
            local = float(
                np.abs(bodies.gather_rows(proc, rows, 0, 9))
                .astype(np.float64).sum()
            )
        return self.collect_checksum(proc, handles, local)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: master tree build, read-only force phase,
        fine-grained owner updates.  The cell writes are ``may`` (the
        tree size is data-dependent); the per-body 9-word updates are
        ``must`` and produce the predicted boundary-page conflicts."""
        from repro.analyze.access import AccessPattern

        bodies, cells, meta = (
            handles["bodies"], handles["cells"], handles["meta"],
        )
        n = params["n"]
        ranges = [self.block_range(n, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            if hi > lo:
                ph.write_rows(bodies, p, lo, hi)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:build")
            for j in range(n):
                ph.read(bodies, 0, (j, 0), 10)
            ph.write_all(cells, 0, must=False)
            ph.write(meta, 0, 0, 1)
            ph = pat.phase(f"iter{it}:force")
            for p, (lo, hi) in enumerate(ranges):
                ph.read_all(cells, p, must=False)
                ph.read_all(bodies, p, must=False)
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), 10)
            ph = pat.phase(f"iter{it}:update")
            for p, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), BODY_REC)
                    ph.write(bodies, p, (i, 0), 9)
        ph = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            for i in range(lo, hi):
                ph.read(bodies, p, (i, 0), 9)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        n, iters = p["n"], p["iters"]
        b = _initial_bodies(n)
        for _ in range(iters):
            tree = build_tree(b[:, 0:3].copy(), b[:, 9].copy())
            acc, _ = batched_forces(
                np.ascontiguousarray(b[:, 0:3]),
                np.arange(n, dtype=np.int64),
                lambda cids: tree[cids],
                lambda js: b[js, 0:10],
            )
            b[:, 6:9] = acc
            b[:, 3:6] = b[:, 3:6] + b[:, 6:9] * DT
            b[:, 0:3] = b[:, 0:3] + b[:, 3:6] * DT
        return float(np.abs(b[:, 0:9]).astype(np.float64).sum())

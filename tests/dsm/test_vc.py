"""Vector clock semantics."""

import pytest

from repro.dsm.vc import VectorClock


def test_initial_zero():
    assert list(VectorClock(3)) == [0, 0, 0]


def test_from_entries():
    assert list(VectorClock([1, 2, 3])) == [1, 2, 3]


def test_negative_entries_rejected():
    with pytest.raises(ValueError):
        VectorClock([1, -1])
    v = VectorClock(2)
    with pytest.raises(ValueError):
        v[0] = -5


def test_tick_advances_own_component():
    v = VectorClock(2)
    assert v.tick(1) == 1
    assert v.tick(1) == 2
    assert list(v) == [0, 2]


def test_partial_order():
    a = VectorClock([1, 0])
    b = VectorClock([1, 1])
    assert a <= b
    assert a < b
    assert not (b <= a)
    assert not a.concurrent_with(b)


def test_concurrent():
    a = VectorClock([1, 0])
    b = VectorClock([0, 1])
    assert a.concurrent_with(b)
    assert not a <= b
    assert not b <= a


def test_equality_and_hash():
    assert VectorClock([1, 2]) == VectorClock([1, 2])
    assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))
    assert VectorClock([1, 2]) != VectorClock([2, 1])


def test_join_is_pointwise_max():
    a = VectorClock([3, 0, 5])
    a.join(VectorClock([1, 4, 5]))
    assert list(a) == [3, 4, 5]


def test_joined_leaves_original():
    a = VectorClock([1, 0])
    j = a.joined(VectorClock([0, 2]))
    assert list(a) == [1, 0]
    assert list(j) == [1, 2]


def test_copy_is_independent():
    a = VectorClock([1, 1])
    b = a.copy()
    b.tick(0)
    assert list(a) == [1, 1]


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        VectorClock(2).join(VectorClock(3))
    with pytest.raises(ValueError):
        VectorClock(2) <= VectorClock(3)

"""3D-FFT: NAS-FT-style transpose-based 3-D Fourier transform
(Section 5.5).

The ``n1 x n2 x n3`` complex array is distributed as slabs of ``n1``
planes.  Each step applies FFTs along the two local dimensions, then a
*transpose* redistributes the array: processor ``p`` reads, from every
other processor's slab, the contiguous block holding ``p``'s columns of
each plane -- a producer-consumer pattern whose read granularity is
``(n2/P) * n3 * itemsize`` bytes.

Paper behaviour being reproduced:

* when the transpose read granularity matches the unit, communication is
  perfectly efficient; when the unit exceeds it, the extra words arrive
  as **piggybacked useless data** on useful messages.  Hence the
  paper's pattern: the small set degrades from 4 KB up, the medium set
  improves at 8 KB (aggregation) but degrades at 16 KB, the large set
  improves throughout;
* a one-page **checksum structure concurrently written by all
  processors and read by processor 0** produces the paper's "few useless
  messages": a writer's copy is invalidated by the other writers, so its
  write fault pulls diffs it never reads.

Dataset dims are scaled (complex64 instead of complex128, fewer planes)
while keeping the paper's transpose-granularity-to-page ratios:
``64x64x32`` -> 4 KB blocks, ``64x64x64`` -> 8 KB, ``128x128x128`` ->
16 KB.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks


def _initial_field(n1: int, n2: int, n3: int) -> np.ndarray:
    rng = np.random.default_rng(777)
    re = rng.standard_normal((n1, n2, n3)).astype(np.float32)
    im = rng.standard_normal((n1, n2, n3)).astype(np.float32)
    return (re + 1j * im).astype(np.complex64)


def _fft_flops(n: int) -> float:
    """Standard 5 n log2 n flop count for a length-n complex FFT."""
    return 5.0 * n * np.log2(max(n, 2))


@AppRegistry.register
class FFT3D(Application):
    """Transpose-based 3-D FFT over plane slabs."""

    name = "3D-FFT"
    checksum_rtol = 1e-3

    datasets = {
        # Transpose block = (n2/8) * n3 * 8 bytes.
        "64x64x32": {"n1": 32, "n2": 64, "n3": 64, "iters": 2},     # 4 KB
        "64x64x64": {"n1": 32, "n2": 64, "n3": 128, "iters": 2},    # 8 KB
        "128x128x128": {"n1": 32, "n2": 64, "n3": 256, "iters": 2}, # 16 KB
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        n = p["n1"] * p["n2"] * p["n3"] * 8
        return 2 * n + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        shape = (p["n1"], p["n2"], p["n3"])
        return {
            "a": tmk.array("a", shape, "complex64"),
            "b": tmk.array("b", (p["n2"], p["n1"], p["n3"]), "complex64"),
            "check": tmk.array("check", (tmk.config.nprocs, 2), "complex64"),
        }

    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        a, b, check = handles["a"], handles["b"], handles["check"]
        n1, n2, n3, iters = params["n1"], params["n2"], params["n3"], params["iters"]
        P = proc.nprocs
        lo1, hi1 = self.block_range(n1, P, proc.id)   # slab of a
        lo2, hi2 = self.block_range(n2, P, proc.id)   # slab of b

        # Distributed initialization: each owner writes its slab.
        field = _initial_field(n1, n2, n3)
        a.write(proc, (lo1, 0, 0), field[lo1:hi1].ravel())
        proc.barrier()

        local_abs = 0.0
        for _ in range(iters):
            # Local FFTs along dims 2 and 3 of the own slab of a.
            slab = (
                a.read(proc, (lo1, 0, 0), (hi1 - lo1) * n2 * n3)
                .reshape(hi1 - lo1, n2, n3)
            )
            slab = np.fft.fft(slab, axis=2).astype(np.complex64)
            slab = np.fft.fft(slab, axis=1).astype(np.complex64)
            proc.compute(
                flops=(hi1 - lo1) * (n2 * _fft_flops(n3) + n3 * _fft_flops(n2))
            )
            a.write(proc, (lo1, 0, 0), slab.ravel())
            proc.barrier()

            # Transpose: gather my n2-columns from every plane.  The
            # remote read granularity is one (n2/P, n3) block per plane.
            mine = np.empty((hi2 - lo2, n1, n3), dtype=np.complex64)
            for q in range(P):
                qlo, qhi = self.block_range(n1, P, q)
                for i in range(qlo, qhi):
                    block = (
                        a.read(proc, (i, lo2, 0), (hi2 - lo2) * n3)
                        .reshape(hi2 - lo2, n3)
                    )
                    mine[:, i, :] = block
            # FFT along the (formerly) first dimension.
            mine = np.fft.fft(mine, axis=1).astype(np.complex64)
            proc.compute(flops=(hi2 - lo2) * n3 * _fft_flops(n1))
            b.write(proc, (lo2, 0, 0), mine.ravel())

            # One-page checksum structure, written by all, read by 0.
            partial = mine.sum(dtype=np.complex64)
            check.write(proc, (proc.id, 0), np.array([partial, partial], np.complex64))
            local_abs = float(np.abs(mine).astype(np.float64).sum())
            proc.barrier()
            if proc.id == 0:
                total = np.complex64(0)
                for q in range(P):
                    total += check.read(proc, (q, 0), 1)[0]
            proc.barrier()

        return self.collect_checksum(proc, handles, local_abs)

    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: page-aligned slabs (single-writer) plus the
        one-page check structure concurrently written by all processors
        in the transpose epoch -- the predicted conflict page."""
        from repro.analyze.access import AccessPattern

        a, b, check = handles["a"], handles["b"], handles["check"]
        n1, n2, n3 = params["n1"], params["n2"], params["n3"]
        r1 = [self.block_range(n1, nprocs, p) for p in range(nprocs)]
        r2 = [self.block_range(n2, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo1, hi1) in enumerate(r1):
            ph.write(a, p, (lo1, 0, 0), (hi1 - lo1) * n2 * n3)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:local-fft")
            for p, (lo1, hi1) in enumerate(r1):
                nelems = (hi1 - lo1) * n2 * n3
                ph.read(a, p, (lo1, 0, 0), nelems)
                ph.write(a, p, (lo1, 0, 0), nelems)
            ph = pat.phase(f"iter{it}:transpose")
            for p in range(nprocs):
                lo2, hi2 = r2[p]
                for q in range(nprocs):
                    for i in range(*r1[q]):
                        ph.read(a, p, (i, lo2, 0), (hi2 - lo2) * n3)
                ph.write(b, p, (lo2, 0, 0), (hi2 - lo2) * n1 * n3)
                ph.write(check, p, (p, 0), 2)
            ph = pat.phase(f"iter{it}:check")
            for q in range(nprocs):
                ph.read(check, 0, (q, 0), 1)
        return pat

    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        n1, n2, n3 = p["n1"], p["n2"], p["n3"]
        a = _initial_field(n1, n2, n3)
        value = 0.0
        for _ in range(p["iters"]):
            # a is updated in place by the local FFT passes; the
            # transposed, axis-1-transformed copy lands in b (the workers
            # never copy b back, and neither do we).
            a = np.fft.fft(a, axis=2).astype(np.complex64)
            a = np.fft.fft(a, axis=1).astype(np.complex64)
            b = np.fft.fft(np.transpose(a, (1, 0, 2)), axis=1).astype(np.complex64)
            value = float(np.abs(b).astype(np.float64).sum())
        return value

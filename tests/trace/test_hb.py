"""Happens-before race detection: primitives, directed racy programs,
and the race-freedom of all eight stock applications."""

import numpy as np
import pytest

from repro.apps.base import run_app
from repro.core import SimConfig, TreadMarks
from repro.trace.hb import build_segments, coalesce, detect_races, first_overlap

from tests.conftest import ALL_APPS, tiny_app


# ----------------------------------------------------------------------
# Interval primitives
# ----------------------------------------------------------------------
def test_coalesce_merges_overlaps_and_adjacency():
    assert coalesce([(5, 8), (0, 2), (2, 4), (7, 10)]) == [(0, 4), (5, 10)]
    assert coalesce([]) == []


def test_first_overlap():
    a = [(0, 4), (10, 20)]
    b = [(4, 10), (15, 16)]
    assert first_overlap(a, b) == (15, 16)
    assert first_overlap(a, [(4, 10)]) is None


# ----------------------------------------------------------------------
# Directed programs
# ----------------------------------------------------------------------
def _run(worker_fn, nprocs=4, heap=1 << 16, arrays=None):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, trace=True), heap_bytes=heap)
    handles = {name: tmk.array(name, shape, dtype="float32")
               for name, shape in (arrays or {}).items()}
    res = tmk.run(lambda proc: worker_fn(proc, handles))
    return res


def _jacobi_like(with_middle_barrier):
    """Rows partitioned across procs; each proc reads its neighbours'
    boundary rows and rewrites its own.  Without the barrier between the
    read and write phases the boundary reads race with the owners'
    writes."""

    def worker(proc, handles):
        grid = handles["grid"]
        rows = 4
        lo = proc.id * rows
        grid.write_rows(proc, lo, np.ones((rows, 256), np.float32))
        proc.barrier()
        up = (lo - 1) % (proc.nprocs * rows)
        down = (lo + rows) % (proc.nprocs * rows)
        halo = grid.read_row(proc, up) + grid.read_row(proc, down)
        if with_middle_barrier:
            proc.barrier(barrier_id=1)
        grid.write_rows(proc, lo, np.tile(halo, (rows, 1)))
        proc.barrier(barrier_id=2)
        return float(halo.sum())

    return _run(worker, arrays={"grid": (16, 256)})


def test_barrier_separated_jacobi_is_race_free():
    res = _jacobi_like(with_middle_barrier=True)
    report = detect_races(res.trace.events, 4, layout=res.trace.layout)
    assert report.race_free, report.render()


def test_removing_the_middle_barrier_is_detected_as_racy():
    res = _jacobi_like(with_middle_barrier=False)
    report = detect_races(res.trace.events, 4, layout=res.trace.layout)
    assert not report.race_free
    r = report.races[0]
    assert r.proc_a != r.proc_b
    assert "write" in (r.op_a, r.op_b)
    assert r.allocation == "grid"
    assert r.nwords >= 1


def _counter(with_lock):
    def worker(proc, handles):
        counter = handles["counter"]
        for _ in range(2):
            if with_lock:
                proc.acquire(7)
            v = counter.read(proc, 0, 1)
            counter.write(proc, 0, v + np.float32(1.0))
            if with_lock:
                proc.release(7)
        proc.barrier()
        return float(counter.read(proc, 0, 1)[0])

    return _run(worker, nprocs=3, arrays={"counter": (16,)})


def test_lock_ordered_counter_is_race_free():
    res = _counter(with_lock=True)
    report = detect_races(res.trace.events, 3, layout=res.trace.layout)
    assert report.race_free, report.render()


def test_unlocked_counter_races():
    res = _counter(with_lock=False)
    report = detect_races(res.trace.events, 3, layout=res.trace.layout)
    assert not report.race_free
    assert any(r.op_a == "write" or r.op_b == "write" for r in report.races)


def test_report_render_mentions_location():
    res = _counter(with_lock=False)
    report = detect_races(res.trace.events, 3, layout=res.trace.layout)
    text = report.render()
    assert "race(s)" in text
    assert "'counter'" in text


def test_max_races_truncates():
    res = _jacobi_like(with_middle_barrier=False)
    report = detect_races(res.trace.events, 4, layout=res.trace.layout, max_races=1)
    assert len(report.races) == 1 and report.truncated


def test_disjoint_writers_are_race_free_despite_false_sharing():
    """Write-write false sharing (same page, disjoint words, no sync
    in between) is NOT a data race -- the detector must not flag it."""

    def worker(proc, handles):
        grid = handles["grid"]
        # All four procs write disjoint 8-word strips of the same page.
        grid.write(proc, proc.id * 8, np.full(8, proc.id + 1, np.float32))
        proc.barrier()
        return float(grid.read(proc, 0, 32).sum())

    res = _run(worker, arrays={"grid": (1024,)})
    report = detect_races(res.trace.events, 4, layout=res.trace.layout)
    assert report.race_free, report.render()


# ----------------------------------------------------------------------
# The stock applications (the paper's implicit correctness assumption)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_APPS)
def test_stock_app_is_race_free_at_4k(name):
    app, ds = tiny_app(name)
    res = run_app(app, ds, SimConfig(nprocs=8, unit_pages=1, trace=True))
    report = detect_races(res.trace.events, 8, layout=res.trace.layout)
    assert report.race_free, f"{name}: {report.render()}"

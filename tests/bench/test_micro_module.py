"""The Section-5.1 microbenchmark measurements themselves."""

import pytest

from repro.bench.micro import (
    measure_barrier,
    measure_diff_fetch,
    measure_lock,
    measure_rtt,
    render,
    run_all,
)


def test_rtt_matches_paper():
    assert measure_rtt() == pytest.approx(296.0)


def test_barrier_matches_paper():
    assert measure_barrier(8) == pytest.approx(861.0, rel=0.05)


def test_lock_in_paper_band():
    assert 300.0 <= measure_lock(remote=True) <= 720.0


def test_diff_fetch_scales_with_size():
    small = measure_diff_fetch(64)
    large = measure_diff_fetch(1024)
    assert small < large
    assert 450.0 <= small <= 1800.0
    assert 450.0 <= large <= 1800.0


def test_run_all_in_range():
    results = run_all()
    assert len(results) == 5
    for r in results:
        assert r.in_range, (r.name, r.measured_us)


def test_render_mentions_every_benchmark():
    text = render(run_all())
    for needle in ("round trip", "lock", "barrier", "diff fetch"):
        assert needle in text

"""Property suites for the vectorized bulk-access machinery.

Two claims are pinned here with Hypothesis:

1. The vectorized RLE diff encoder (:func:`repro.dsm.diff.encode_payload`)
   produces *byte-for-byte* the wire format of a scalar reference
   encoder on arbitrary write masks, round-trips through
   :func:`decode_payload`, and always measures exactly
   ``wire_bytes - DIFF_HEADER_BYTES`` bytes -- tying the analytic wire
   cost formula to real bytes.

2. ``read_gather`` / ``write_scatter`` (the bulk region-access API) are
   observationally identical to their scalar decomposition into word
   ops: on small random programs, every ProtocolStats counter, every
   per-processor clock, every network message, and the final heap
   contents match exactly between ``access_mode="bulk"`` and
   ``access_mode="scalar"`` runs.
"""

import struct
from dataclasses import fields

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import SimConfig, TreadMarks
from repro.dsm.diff import (
    DIFF_HEADER_BYTES,
    Diff,
    create_diff,
    decode_payload,
    encode_payload,
)

# ----------------------------------------------------------------------
# 1. RLE wire format
# ----------------------------------------------------------------------
def reference_encode(diff: Diff) -> bytes:
    """Scalar reference RLE encoder: one (offset, length) little-endian
    header per maximal run of consecutive offsets, then the run's data
    words, written one struct.pack at a time."""
    idx = diff.idx.tolist()
    vals = diff.values.tolist()
    out = bytearray()
    i = 0
    while i < len(idx):
        j = i
        while j + 1 < len(idx) and idx[j + 1] == idx[j] + 1:
            j += 1
        out += struct.pack("<II", idx[i], j - i + 1)
        for v in vals[i : j + 1]:
            out += struct.pack("<I", v)
        i = j + 1
    return bytes(out)


masks = hnp.arrays(bool, st.integers(1, 512))


def _diff_from_mask(mask: np.ndarray, salt: int) -> Diff:
    """A diff whose modified-word set is exactly ``mask``."""
    rng = np.random.default_rng(salt)
    twin = rng.integers(0, 2**32, mask.shape[0], dtype=np.uint32)
    cur = twin.copy()
    cur[mask] ^= np.uint32(0x80000001)  # guaranteed different
    return create_diff(0, twin, cur)


@given(masks, st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_vectorized_encoder_matches_reference(mask, salt):
    d = _diff_from_mask(mask, salt)
    assert encode_payload(d) == reference_encode(d)


@given(masks, st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_payload_length_matches_wire_formula(mask, salt):
    d = _diff_from_mask(mask, salt)
    assert len(encode_payload(d)) == d.wire_bytes - DIFF_HEADER_BYTES


@given(masks, st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_encode_decode_roundtrip(mask, salt):
    d = _diff_from_mask(mask, salt)
    back = decode_payload(d.unit, encode_payload(d))
    assert np.array_equal(back.idx, d.idx)
    assert np.array_equal(back.values, d.values)
    assert back.wire_bytes == d.wire_bytes
    assert back.nwords == d.nwords


# ----------------------------------------------------------------------
# 2. Bulk API == scalar decomposition on random programs
# ----------------------------------------------------------------------
HEAP_PAGES = 6
HEAP_WORDS = HEAP_PAGES * 1024
MAX_RANGE = 64

ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.lists(
            st.integers(0, HEAP_WORDS - MAX_RANGE),
            min_size=1,
            max_size=5,
        ),
        st.integers(1, MAX_RANGE),
    ),
    min_size=1,
    max_size=3,
)
programs = st.lists(ops, min_size=1, max_size=3)


def _run_program(program, access_mode: str, dynamic: bool):
    """Run a random gather/scatter program on 2 processors: round ``r``
    is executed by processor ``r % 2``, with a barrier after each
    round.  Ranges may overlap arbitrarily (the bulk path must detect
    overlap and fall back); values are deterministic functions of the
    op position so both modes write identical data."""
    cfg = SimConfig(nprocs=2, unit_pages=1, dynamic=dynamic,
                    access_mode=access_mode)
    tmk = TreadMarks(cfg, heap_bytes=HEAP_WORDS * 4)
    final = {}

    def body(proc):
        for r, round_ops in enumerate(program):
            if proc.id == r % 2:
                for k, (op, starts, nwords) in enumerate(round_ops):
                    starts = np.asarray(starts, dtype=np.int64)
                    if op == "read":
                        proc.read_gather(starts, nwords)
                    else:
                        vals = (
                            np.arange(starts.shape[0] * nwords, dtype=np.uint32)
                            .reshape(starts.shape[0], nwords)
                            + np.uint32(1 + r * 1000 + k * 131)
                        )
                        proc.write_scatter(starts, vals)
            proc.barrier()
        if proc.id == 0:
            final["heap"] = proc.read_range(0, HEAP_WORDS).copy()

    res = tmk.run(body)
    messages = tuple(
        (m.msg_id, m.src, m.dst, m.klass, m.payload_bytes, m.send_time_us)
        for m in tmk.network.messages
    )
    return res, final["heap"], messages


def _stats_tuple(res):
    """All scalar ProtocolStats counters (fault records are covered by
    the counters plus the message stream compared alongside)."""
    return tuple(
        getattr(res.stats, f.name)
        for f in fields(res.stats)
        if isinstance(getattr(res.stats, f.name), (int, float))
    )


@given(programs, st.booleans())
@settings(max_examples=50, deadline=None)
def test_bulk_equals_scalar_on_random_programs(program, dynamic):
    bulk, bulk_heap, bulk_msgs = _run_program(program, "bulk", dynamic)
    scalar, scalar_heap, scalar_msgs = _run_program(program, "scalar", dynamic)
    assert _stats_tuple(bulk) == _stats_tuple(scalar)
    assert bulk.proc_times_us == scalar.proc_times_us
    assert bulk.time_us == scalar.time_us
    assert bulk.signature == scalar.signature
    assert bulk_msgs == scalar_msgs
    assert np.array_equal(bulk_heap, scalar_heap)

"""Cross-protocol checksum invariance over whole application runs.

All four protocols implement release consistency, and every application
is data-race free, so each app's final data -- its checksum -- must be
*bit-identical* under every protocol (the cost counters of course
differ; those are pinned per protocol by the golden baselines).  This is
the zoo's core correctness oracle: any drift is a coherence bug in a
protocol implementation, never an acceptable modelling difference.
"""

import pytest

from repro.apps.base import run_app
from repro.protocols import protocol_names
from repro.sim.config import SimConfig
from tests.conftest import ALL_APPS, tiny_app

ZOO = tuple(p for p in protocol_names() if p != "tm-lrc")


@pytest.fixture(scope="module")
def tmlrc_checksums():
    """Reference checksums of every tiny app under the paper's protocol."""
    out = {}
    for name in ALL_APPS:
        app, ds = tiny_app(name)
        out[name] = run_app(app, ds, SimConfig(nprocs=8)).checksum
    return out


@pytest.mark.parametrize("protocol", ZOO)
@pytest.mark.parametrize("name", ALL_APPS)
def test_checksum_is_protocol_invariant(name, protocol, tmlrc_checksums):
    app, ds = tiny_app(name)
    res = run_app(app, ds, SimConfig(nprocs=8, protocol=protocol))
    assert res.checksum == tmlrc_checksums[name]


@pytest.mark.parametrize("name", ["Jacobi", "Water"])
def test_erc_runs_are_faultless(name):
    app, ds = tiny_app(name)
    res = run_app(app, ds, SimConfig(nprocs=8, protocol="erc"))
    assert res.stats.faults == 0


@pytest.mark.parametrize("name", ["Water", "TSP"])
def test_swi_migratory_data_transfers_ownership(name):
    # Lock-protected shared state migrates between writers, so a full
    # run must exercise the ownership-transfer path.
    app, ds = tiny_app(name)
    res = run_app(app, ds, SimConfig(nprocs=8, protocol="swi"))
    assert res.stats.ownership_transfers > 0
    assert res.stats.invalidations > 0


def test_swi_single_writer_app_never_transfers():
    # Jacobi's rows each have one writer for the whole run: copies are
    # invalidated (readers hold them) but ownership never moves.
    app, ds = tiny_app("Jacobi")
    res = run_app(app, ds, SimConfig(nprocs=8, protocol="swi"))
    assert res.stats.ownership_transfers == 0
    assert res.stats.invalidations > 0

"""TSP's shared data structures: the binary heap and the free ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tsp import TSP, _distances
from repro.core import SimConfig, TreadMarks


def heap_session(keys):
    """Push ``keys`` into the shared heap and pop everything back, all
    inside a 1-processor simulated run."""
    app = TSP()
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=1 << 16)
    h = tmk.array("heap", (256,), "int32")
    meta = tmk.array("meta", (16,), "int32")
    popped = []

    def body(proc):
        meta.write(proc, 0, np.zeros(16, np.int32))
        for k in keys:
            app._heap_push(proc, h, meta, k)
        for _ in keys:
            popped.append(app._heap_pop(proc, h, meta))

    tmk.run(body)
    return popped


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=40))
@settings(max_examples=20, deadline=None)
def test_shared_heap_pops_sorted(keys):
    assert heap_session(keys) == sorted(keys)


def test_heap_interleaved_push_pop():
    app = TSP()
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=1 << 16)
    h = tmk.array("heap", (256,), "int32")
    meta = tmk.array("meta", (16,), "int32")
    out = []

    def body(proc):
        meta.write(proc, 0, np.zeros(16, np.int32))
        app._heap_push(proc, h, meta, 5)
        app._heap_push(proc, h, meta, 1)
        out.append(app._heap_pop(proc, h, meta))  # 1
        app._heap_push(proc, h, meta, 3)
        app._heap_push(proc, h, meta, 0)
        out.append(app._heap_pop(proc, h, meta))  # 0
        out.append(app._heap_pop(proc, h, meta))  # 3
        out.append(app._heap_pop(proc, h, meta))  # 5

    tmk.run(body)
    assert out == [1, 0, 3, 5]


def test_dfs_finds_optimum_from_root():
    d = _distances(9)
    min_edge = np.where(d > 0, d, 1 << 20).min(axis=1).astype(np.int64)
    from repro.apps.tsp import held_karp

    best, path, visited = TSP._dfs(d, min_edge, [0], 0, 1 << 20)
    assert best == held_karp(d)
    assert visited > 0
    assert sorted(path) == list(range(9))


def test_dfs_respects_upper_bound():
    d = _distances(8)
    min_edge = np.where(d > 0, d, 1 << 20).min(axis=1).astype(np.int64)
    # An unbeatable bound prunes everything.
    best, _, visited_tight = TSP._dfs(d, min_edge, [0], 0, 1)
    assert best == 1
    _, _, visited_loose = TSP._dfs(d, min_edge, [0], 0, 1 << 20)
    assert visited_tight < visited_loose

"""Heap-geometry properties (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.address_space import SharedHeapLayout

layouts = st.builds(
    SharedHeapLayout,
    st.integers(4096, 1 << 20),
    st.just(4096),
    st.sampled_from([4096, 8192, 16384]),
)


@given(layouts)
def test_heap_rounding_invariants(lay):
    assert lay.heap_bytes % lay.unit_bytes == 0
    assert lay.nwords * 4 == lay.heap_bytes
    assert lay.npages * 4096 == lay.heap_bytes
    assert lay.nunits * lay.unit_bytes == lay.heap_bytes


@given(layouts, st.data())
def test_units_of_range_covers_exactly_the_range(lay, data):
    word0 = data.draw(st.integers(0, lay.nwords - 1))
    nwords = data.draw(st.integers(1, lay.nwords - word0))
    units = list(lay.units_of_range(word0, nwords))
    # Contiguous, includes first and last word's units, nothing more.
    assert units == list(range(units[0], units[-1] + 1))
    assert units[0] == lay.unit_of_word(word0)
    assert units[-1] == lay.unit_of_word(word0 + nwords - 1)
    w0, w1 = lay.unit_word_range(units[0])
    assert w0 <= word0 < w1


@given(layouts, st.data())
def test_unit_word_ranges_partition_heap(lay, data):
    unit = data.draw(st.integers(0, lay.nunits - 1))
    w0, w1 = lay.unit_word_range(unit)
    assert w1 - w0 == lay.words_per_unit
    assert lay.unit_of_word(w0) == unit
    assert lay.unit_of_word(w1 - 1) == unit


@given(st.lists(st.integers(4, 10_000), min_size=1, max_size=12), st.booleans())
@settings(max_examples=40)
def test_malloc_never_overlaps(sizes, page_align):
    lay = SharedHeapLayout(1 << 22, 4096, 4096)
    spans = []
    for i, nbytes in enumerate(sizes):
        a = lay.malloc(f"a{i}", nbytes, page_align=page_align)
        spans.append((a.offset, a.offset + a.nbytes))
    spans.sort()
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        assert e0 <= s1
    for s, e in spans:
        assert s % 4 == 0 and (e - s) % 4 == 0
        if page_align:
            assert s % 4096 == 0

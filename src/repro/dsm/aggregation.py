"""Aggregation strategies: what an access miss actually fetches.

* :class:`StaticAggregator` -- the consistency unit is a fixed multiple
  of the hardware page (Section 3).  Every protocol action (twin, diff,
  invalidate, fetch) already operates at unit granularity in
  :class:`repro.dsm.lrc.LrcProc`; a miss fetches exactly one unit, and
  distinct units miss separately (their diffs are requested in sequence,
  which is precisely the cost that aggregation removes).

* :class:`DynamicAggregator` -- the Section-4 algorithm.  The unit is one
  page; pages a processor faulted on during the last interval are grouped
  (in access order, up to ``max_group_pages`` per group, not necessarily
  contiguous) at each synchronization.  The first fault on any member of
  a group requests the pending diffs of *all* members, combining requests
  per writer; member pages whose data arrived that way stay
  access-invalid until they fault themselves, which both tracks the
  access pattern and charges the algorithm's monitoring cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsm.lrc import LrcProc


class Aggregator:
    """Strategy interface consulted by :class:`LrcProc` on every shared
    access and at every synchronization point."""

    def ensure_valid(self, word0: int, nwords: int) -> None:
        """Make every unit overlapped by the access valid, faulting and
        fetching as the strategy dictates."""
        raise NotImplementedError

    def ready(self, units) -> bool:
        """True when :meth:`ensure_valid` over every unit in ``units`` is
        a guaranteed no-op (no fault, no monitoring fault, no state
        change) -- the bulk fast path's precondition.  ``units`` is an
        iterable of unit indices; a conservative ``False`` is always
        safe (the caller falls back to the word-loop reference path)."""
        raise NotImplementedError

    def dirty_units(self) -> Optional[np.ndarray]:
        """Bool array over units, True exactly where :meth:`ensure_valid`
        may do work right now.  Units flagged False must stay no-ops for
        the rest of the current gather/scatter (faults only shrink the
        pending set and only validate pages, never the reverse), which
        lets the bulk middle tier skip their per-range calls wholesale.
        ``None`` means the strategy cannot provide the mask and the
        caller must invoke :meth:`ensure_valid` per range."""
        return None

    def on_sync(self) -> None:
        """Called at every synchronization operation (after the interval
        closes, before the processor parks)."""

    def on_invalidate(self, unit: int) -> None:
        """Called when a write notice invalidates ``unit``."""

    def on_invalidate_many(self, units: np.ndarray) -> None:
        """Batch form of :meth:`on_invalidate` over one interval's units
        (distinct, in write-notice order).  The default loops; strategies
        whose reaction is a pure mask update override it with one
        vectorized assignment."""
        for unit in units.tolist():
            self.on_invalidate(unit)


class StaticAggregator(Aggregator):
    """Fixed consistency unit of ``config.unit_pages`` hardware pages."""

    def __init__(self, proc: LrcProc) -> None:
        self.proc = proc
        self._wpu = proc.layout.words_per_unit

    def ensure_valid(self, word0: int, nwords: int) -> None:
        proc = self.proc
        if not proc.pending:
            return
        pending_n = proc.pending_n
        wpu = self._wpu
        for unit in range(word0 // wpu, (word0 + nwords - 1) // wpu + 1):
            if pending_n[unit]:
                # Each invalid unit is a separate access miss: with a
                # static unit there is no cross-unit combining, so a
                # region spanning two invalid units pays two sequential
                # fetches (the paper's "requested in sequence" case).
                proc.fetch([unit])

    def ready(self, units) -> bool:
        if not self.proc.pending:
            return True
        pending_n = self.proc.pending_n
        return not any(pending_n[u] for u in units)

    def dirty_units(self) -> Optional[np.ndarray]:
        return self.proc.pending_n > 0


class DynamicAggregator(Aggregator):
    """Section-4 dynamic page grouping (requires ``unit_pages == 1``).

    Groups are *persistent*: pages faulted on during an interval are
    regrouped (in access order) at the interval-ending synchronization,
    while pages not accessed keep their previous membership -- a
    processor whose phases alternate (read phase / write phase between
    barriers, as in Jacobi) would otherwise lose its groups every other
    interval.  The hysteresis the paper describes is the removal rule: a
    page whose diffs were fetched with its group but that was never
    subsequently accessed is dropped back to singleton behaviour (its
    one useless fetch is the hysteresis cost, overlapped with the
    faulting page's request)."""

    def __init__(self, proc: LrcProc) -> None:
        if proc.config.unit_pages != 1:
            raise ValueError(
                "dynamic aggregation operates on single pages; got "
                f"unit_pages={proc.config.unit_pages}"
            )
        self.proc = proc
        nunits = proc.layout.nunits
        # Pages start access-invalid: the algorithm keeps a page invalid
        # until its first access so that every first access is observed.
        self.access_valid = np.zeros(nunits, dtype=bool)
        # Group membership is array-indexed: ``_group_id[page]`` names the
        # page's group (or -1), ``_groups`` maps that id to the shared
        # member list in access order.  Equivalent to the former
        # page -> shared-list dict, with O(1) array lookups on the access
        # path and vectorized clears on invalidation.
        self._group_id = np.full(nunits, -1, dtype=np.int32)
        self._groups: Dict[int, List[int]] = {}
        self._next_gid = 0
        self._accessed: List[int] = []
        self._accessed_mask = np.zeros(nunits, dtype=bool)
        self._group_fetched = np.zeros(nunits, dtype=bool)

    # ------------------------------------------------------------------
    def ensure_valid(self, word0: int, nwords: int) -> None:
        proc = self.proc
        pending_n = proc.pending_n
        valid = self.access_valid
        for page in proc.layout.units_of_range(word0, nwords):
            if pending_n[page] or not valid[page]:
                self._fault(page)

    def ready(self, units) -> bool:
        pending_n = self.proc.pending_n
        valid = self.access_valid
        return all(valid[u] and not pending_n[u] for u in units)

    def dirty_units(self) -> Optional[np.ndarray]:
        return ~self.access_valid | (self.proc.pending_n > 0)

    def _fault(self, page: int) -> None:
        proc = self.proc
        pending_n = proc.pending_n
        self._record_access(page)
        self._group_fetched[page] = False
        gid = self._group_id[page]
        group = self._groups[gid] if gid >= 0 else [page]
        fetch_set = [q for q in group if pending_n[q]]
        if page not in fetch_set and pending_n[page]:
            fetch_set.insert(0, page)
        self.access_valid[page] = True
        if fetch_set:
            for q in fetch_set:
                if q != page:
                    self._group_fetched[q] = True
            if proc.trace is not None and len(group) > 1:
                proc.trace.on_group_fetch(
                    proc.pid,
                    proc.clock.now,
                    page,
                    tuple(group),
                    tuple(fetch_set),
                )
            proc.fetch(fetch_set)
        else:
            # Data already current (it arrived with an earlier group
            # fetch, or the page was never invalidated): a pure
            # access-tracking fault.
            proc.monitoring_fault(page)

    def _record_access(self, page: int) -> None:
        if not self._accessed_mask[page]:
            self._accessed_mask[page] = True
            self._accessed.append(page)

    # ------------------------------------------------------------------
    def on_sync(self) -> None:
        """Regroup at a synchronization: hysteresis first (drop members
        that were group-fetched but never accessed), then re-chunk the
        pages accessed during the ending interval into new groups of at
        most ``max_group_pages`` (not necessarily contiguous)."""
        if self._group_fetched.any():
            accessed_mask = self._accessed_mask
            for page in np.flatnonzero(self._group_fetched).tolist():
                if not accessed_mask[page]:
                    if self.proc.trace is not None and self._group_id[page] >= 0:
                        self.proc.trace.on_group_dissolve(
                            self.proc.pid, self.proc.clock.now, page
                        )
                    self._remove_from_group(page)
            self._group_fetched[:] = False

        if self._accessed:
            for page in self._accessed:
                self._remove_from_group(page)
            maxg = self.proc.config.max_group_pages
            for i in range(0, len(self._accessed), maxg):
                chunk = self._accessed[i : i + maxg]
                if len(chunk) > 1:
                    group = list(chunk)
                    gid = self._next_gid
                    self._next_gid = gid + 1
                    self._groups[gid] = group
                    for page in group:
                        self._group_id[page] = gid
                    if self.proc.trace is not None:
                        self.proc.trace.on_group_build(
                            self.proc.pid, self.proc.clock.now, tuple(group)
                        )
            self._accessed.clear()
            self._accessed_mask[:] = False

    def _remove_from_group(self, page: int) -> None:
        gid = int(self._group_id[page])
        if gid < 0:
            return
        self._group_id[page] = -1
        group = self._groups[gid]
        if page in group:
            group.remove(page)
        if len(group) == 1:
            last = group[0]
            if self._group_id[last] == gid:
                self._group_id[last] = -1
            del self._groups[gid]
        elif not group:
            del self._groups[gid]

    def on_invalidate(self, unit: int) -> None:
        """An invalidated page must fault again on its next access, which
        re-observes the access pattern."""
        self.access_valid[unit] = False

    def on_invalidate_many(self, units: np.ndarray) -> None:
        self.access_valid[units] = False

    @property
    def group_of(self) -> Dict[int, List[int]]:
        """page -> member list (shared per group), reconstructed from the
        array-indexed state for introspection and tests."""
        return {
            int(page): self._groups[int(gid)]
            for page, gid in enumerate(self._group_id.tolist())
            if gid >= 0
        }


def make_aggregator(proc: LrcProc) -> Aggregator:
    """Build the strategy selected by the processor's configuration."""
    if proc.config.dynamic:
        return DynamicAggregator(proc)
    return StaticAggregator(proc)

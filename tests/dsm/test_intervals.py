"""Interval store: closing, retrieval, notice generation."""

import numpy as np
import pytest

from repro.dsm.diff import create_diff
from repro.dsm.intervals import IntervalStore
from repro.dsm.vc import VectorClock


def mkdiff(unit=0):
    return create_diff(
        unit, np.zeros(4, np.uint32), np.array([1, 0, 0, 0], np.uint32)
    )


@pytest.fixture
def store():
    return IntervalStore(nprocs=3)


def close(store, proc, vc_entries, units):
    vc = VectorClock(vc_entries)
    return store.close_interval(proc, vc, {u: mkdiff(u) for u in units})


def test_close_assigns_index_and_commit_seq(store):
    i1 = close(store, 0, [1, 0, 0], [0])
    i2 = close(store, 1, [0, 1, 0], [1])
    assert (i1.proc, i1.index) == (0, 1)
    assert i2.commit_seq > i1.commit_seq


def test_close_requires_ticked_vc(store):
    with pytest.raises(ValueError):
        close(store, 0, [2, 0, 0], [0])  # first interval must have vc[0]==1


def test_get(store):
    close(store, 2, [0, 0, 1], [5])
    assert store.get(2, 1).diffs[5].unit == 5
    with pytest.raises(KeyError):
        store.get(2, 2)
    with pytest.raises(KeyError):
        store.get(0, 1)


def test_count(store):
    close(store, 0, [1, 0, 0], [0])
    close(store, 0, [2, 0, 0], [0])
    close(store, 1, [0, 1, 0], [0])
    assert store.count() == 3
    assert store.count(0) == 2
    assert store.count(2) == 0


def test_intervals_between(store):
    for i in range(1, 5):
        close(store, 0, [i, 0, 0], [0])
    got = [iv.index for iv in store.intervals_between(0, 1, 3)]
    assert got == [2, 3]


def test_notices_between_covers_exactly_the_gap(store):
    close(store, 0, [1, 0, 0], [10, 11])
    close(store, 1, [0, 1, 0], [11])
    close(store, 0, [2, 0, 0], [12])
    old = VectorClock([1, 0, 0])
    new = VectorClock([2, 1, 0])
    pairs = {(iv.proc, iv.index, u) for iv, u in store.notices_between(old, new)}
    assert pairs == {(0, 2, 12), (1, 1, 11)}


def test_notices_between_empty_when_equal(store):
    close(store, 0, [1, 0, 0], [0])
    vc = VectorClock([1, 0, 0])
    assert list(store.notices_between(vc, vc)) == []


def test_commit_seq_strictly_increasing(store):
    seqs = [close(store, p, e, [0]).commit_seq
            for p, e in [(0, [1, 0, 0]), (1, [0, 1, 0]), (2, [0, 0, 1]),
                         (0, [2, 1, 1])]]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_diff_for_missing_unit_raises(store):
    iv = close(store, 0, [1, 0, 0], [3])
    with pytest.raises(KeyError):
        iv.diff_for(4)

"""Lock and barrier semantics through the public runtime."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.engine import DeadlockError
from repro.sim.network import MessageClass


def run(nprocs, body, **cfg):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg), heap_bytes=1 << 16)
    arr = tmk.array("a", (4096,), "uint32")
    res = tmk.run(lambda proc: body(proc, arr))
    return tmk, res


class TestLocks:
    def test_mutual_exclusion_counter(self):
        """Classic lock-protected increment: no lost updates."""

        def body(proc, arr):
            for _ in range(5):
                proc.acquire(3)
                v = int(arr.read(proc, 0, 1)[0])
                arr.write(proc, 0, np.array([v + 1], np.uint32))
                proc.release(3)
            proc.barrier()
            return float(arr.read(proc, 0, 1)[0]) if proc.id == 0 else None

        tmk, res = run(4, body)
        assert res.checksum == 20.0

    def test_cached_reacquire_free_of_messages(self):
        def body(proc, arr):
            if proc.id == 0:
                proc.acquire(1)
                proc.release(1)
                proc.acquire(1)
                proc.release(1)
            proc.barrier()

        tmk, res = run(2, body)
        # First acquire: manager grant (proc 0 IS the manager -> local);
        # re-acquire cached.  No lock messages at all.
        assert tmk.network.count(MessageClass.LOCK) == 0

    def test_remote_acquire_has_three_hops(self):
        def body(proc, arr):
            if proc.id == 1:
                proc.acquire(1)
                proc.release(1)
            proc.barrier()
            if proc.id == 2:
                proc.acquire(1)
                proc.release(1)
            proc.barrier()

        tmk, res = run(4, body)
        lock_msgs = [m for m in tmk.network.messages if m.klass is MessageClass.LOCK]
        # proc1's first acquire: request to manager(0) + grant = 2.
        # proc2's acquire: request to manager + forward to owner(1) +
        # grant from 1 to 2 = 3.
        assert len(lock_msgs) == 5

    def test_release_of_unheld_lock_rejected(self):
        def body(proc, arr):
            if proc.id == 0:
                proc.release(9)

        with pytest.raises(RuntimeError, match="released lock"):
            run(2, body)

    def test_lock_grant_fifo_under_contention(self):
        order = []

        def body(proc, arr):
            proc.compute(us=proc.id * 10.0)  # stagger request times
            proc.acquire(2)
            order.append(proc.id)
            proc.compute(us=500.0)
            proc.release(2)
            proc.barrier()

        run(4, body)
        assert order == [0, 1, 2, 3]

    def test_lock_acquire_counted(self):
        def body(proc, arr):
            proc.acquire(proc.id + 10)
            proc.release(proc.id + 10)
            proc.barrier()

        tmk, res = run(3, body)
        assert res.stats.lock_acquires == 3


class TestBarriers:
    def test_barrier_propagates_all_knowledge(self):
        def body(proc, arr):
            arr.write(proc, proc.id, np.array([proc.id + 1], np.uint32))
            proc.barrier()
            got = arr.read(proc, 0, 4)
            assert list(got)[: proc.nprocs] == [
                i + 1 for i in range(proc.nprocs)
            ]
            proc.barrier()

        run(4, body)

    def test_barrier_message_count(self):
        def body(proc, arr):
            proc.barrier()

        tmk, res = run(8, body)
        # (n-1) arrivals + (n-1) departures.
        assert tmk.network.count(MessageClass.BARRIER) == 14

    def test_sequential_barrier_is_free(self):
        def body(proc, arr):
            proc.barrier()

        tmk, res = run(1, body)
        assert tmk.network.count() == 0
        assert res.time_us == 0.0

    def test_double_arrival_rejected(self):
        # Two procs at different barrier ids: proc 0 arrives twice at
        # barrier 0 while proc 1 waits at barrier 1.
        def body(proc, arr):
            if proc.id == 0:
                proc.barrier(0)
            else:
                proc.barrier(1)

        with pytest.raises((RuntimeError, DeadlockError)):
            run(2, body)

    def test_barrier_counted(self):
        def body(proc, arr):
            proc.barrier()
            proc.barrier()

        tmk, res = run(2, body)
        assert res.stats.barriers == 2

    def test_distinct_barrier_ids_do_not_mix(self):
        def body(proc, arr):
            proc.barrier(5)
            proc.barrier(6)

        tmk, res = run(4, body)
        assert res.stats.barriers == 2

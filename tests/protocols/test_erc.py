"""Eager RC: push fan-out, eager knowledge transfer, faultlessness."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.network import MessageClass

WORDS_PER_PAGE = 1024


def make(nprocs=4):
    tmk = TreadMarks(
        SimConfig(nprocs=nprocs, protocol="erc"), heap_bytes=1 << 16
    )
    arr = tmk.array("a", (4 * WORDS_PER_PAGE,), "uint32")
    return tmk, arr


def pushes(tmk):
    return [
        m for m in tmk.network.messages if m.klass is MessageClass.DIFF_PUSH
    ]


class TestPushFanOut:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_one_push_per_peer_per_dirty_release(self, nprocs):
        tmk, arr = make(nprocs=nprocs)

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 5, np.uint32))
            proc.barrier()

        tmk.run(body)
        sent = pushes(tmk)
        assert len(sent) == nprocs - 1
        assert {m.dst for m in sent} == set(range(1, nprocs))
        assert all(m.src == 0 for m in sent)
        assert tmk.stats.update_pushes == nprocs - 1

    def test_clean_release_pushes_nothing(self):
        tmk, arr = make()

        def body(proc):
            arr.read(proc, 0, 8)
            proc.barrier()

        tmk.run(body)
        assert pushes(tmk) == []

    def test_pushes_are_one_way_and_carry_the_written_words(self):
        tmk, arr = make()

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(12, 5, np.uint32))
            proc.barrier()

        tmk.run(body)
        for m in pushes(tmk):
            assert m.exchange_id is None
            assert m.words_carried == 12


class TestNoFaults:
    def test_readers_never_fault(self):
        tmk, arr = make()

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 11, np.uint32))
            proc.barrier(0)
            got = arr.read(proc, 0, 8)
            assert np.all(got == 11)
            proc.barrier(1)

        res = tmk.run(body)
        assert res.stats.faults == 0
        assert not tmk.network.exchanges

    def test_fetch_is_structurally_unreachable(self):
        tmk, _ = make()
        with pytest.raises(AssertionError, match="erc never faults"):
            tmk.procs[0].fetch([0])

    def test_acquire_finds_no_unseen_notices(self):
        # Every close joined all peers' clocks, so pending stays empty.
        tmk, arr = make()

        def body(proc):
            if proc.id == 0:
                arr.write(proc, 0, np.full(8, 2, np.uint32))
            proc.barrier(0)
            if proc.id == 1:
                arr.write(proc, 64, np.full(8, 3, np.uint32))
            proc.barrier(1)

        tmk.run(body)
        assert all(not lp.pending for lp in tmk.procs)


class TestUnitSizeIndifference:
    def test_message_count_invariant_across_unit_sizes(self):
        # Word-granularity pushes: growing the unit changes nothing on
        # the wire (the flat rows of the protocol sweep).
        counts = {}
        for pages in (1, 2, 4):
            tmk = TreadMarks(
                SimConfig(nprocs=4, protocol="erc", unit_pages=pages),
                heap_bytes=1 << 16,
            )
            arr = tmk.array("a", (4 * WORDS_PER_PAGE,), "uint32")

            def body(proc):
                if proc.id == 0:
                    arr.write(proc, 0, np.full(8, 5, np.uint32))
                    arr.write(
                        proc, 3 * WORDS_PER_PAGE, np.full(8, 6, np.uint32)
                    )
                proc.barrier(0)
                arr.read(proc, 0, 8)
                proc.barrier(1)

            tmk.run(body)
            counts[pages] = len(pushes(tmk))
        assert counts[1] == counts[2] == counts[4]

"""Cross-application correctness: DSM result == sequential reference."""

import pytest

from repro.apps.base import run_app
from repro.sim.config import SimConfig
from tests.conftest import ALL_APPS, checksum_close, tiny_app


@pytest.mark.parametrize("name", ALL_APPS)
def test_tiny_dataset_matches_reference_8procs(name):
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SimConfig(nprocs=8))
    assert checksum_close(app, res.checksum, ref), (res.checksum, ref)


@pytest.mark.parametrize("name", ALL_APPS)
def test_tiny_dataset_matches_reference_2procs(name):
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SimConfig(nprocs=2))
    assert checksum_close(app, res.checksum, ref), (res.checksum, ref)


@pytest.mark.parametrize("name", ALL_APPS)
def test_sequential_run_matches_reference(name):
    app, ds = tiny_app(name)
    ref = app.reference(ds)
    res = run_app(app, ds, SimConfig(nprocs=1))
    assert checksum_close(app, res.checksum, ref), (res.checksum, ref)


@pytest.mark.parametrize("name", ALL_APPS)
def test_deterministic_runs(name):
    app, ds = tiny_app(name)
    r1 = run_app(app, ds, SimConfig(nprocs=4))
    app2, _ = tiny_app(name)
    r2 = run_app(app2, ds, SimConfig(nprocs=4))
    assert r1.time_us == r2.time_us
    assert r1.comm.total_messages == r2.comm.total_messages
    assert r1.checksum == r2.checksum


@pytest.mark.parametrize("name", ALL_APPS)
def test_unknown_dataset_rejected(name):
    app, _ = tiny_app(name)
    with pytest.raises(KeyError):
        app.params("no-such-dataset")


@pytest.mark.parametrize("name", ALL_APPS)
def test_heap_fits_datasets(name):
    app, ds = tiny_app(name)
    assert app.heap_bytes(ds) > 0
    for real_ds in app.datasets:
        assert app.heap_bytes(real_ds) > 0

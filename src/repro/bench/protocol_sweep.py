"""Protocol x unit-size sweep: where aggregation stops paying, per protocol.

The paper's Figure 1 sweeps the consistency-unit size (4K/8K/16K/Dyn)
under TreadMarks LRC and shows aggregation paying until false sharing
overtakes it.  This sweep re-runs that experiment under every protocol
in the zoo (:mod:`repro.protocols`), because the trade-off's *shape* is
protocol-specific:

* ``tm-lrc`` -- larger units amortize fault exchanges until write-write
  false sharing multiplies diff gathers (the paper's story);
* ``hlrc``   -- faults are one exchange regardless of writers, so
  aggregation keeps helping messages longer, but whole-unit fetches make
  useless *data* grow with the unit much faster;
* ``erc``    -- no faults to amortize: unit size is nearly irrelevant
  (diffs are word-granularity), so the rows are expected to be flat --
  aggregation neither pays nor hurts;
* ``swi``    -- every falsely-shared boundary ping-pongs whole-unit
  ownership, so larger units get strictly more expensive on the sharing
  apps: aggregation stops paying immediately.

``stops_paying`` marks the largest static unit that still strictly
improved execution time over the next smaller one -- "4K" means growing
the unit never helped at all.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench.golden import (
    GOLDEN_LABELS,
    GOLDEN_PROTOCOLS,
    SMALL_DATASETS,
    _protocol_extra,
    golden_cells,
)
from repro.bench.harness import CaseResult, ResultCache
from repro.bench.pool import SweepCell

#: Sweep order: the paper's protocol first, then the zoo.
PROTOCOL_ORDER = ("tm-lrc", "hlrc", "erc", "swi")

#: Static unit labels in growth order (Dyn is reported but not part of
#: the stops-paying scan, which is about static aggregation).
STATIC_LABELS = ("4K", "8K", "16K")


def cells() -> List[SweepCell]:
    """Every cell the sweep consumes (all apps x labels x protocols)."""
    assert set(PROTOCOL_ORDER) == set(GOLDEN_PROTOCOLS)
    return golden_cells(None, PROTOCOL_ORDER)


def _case(app: str, label: str, protocol: str) -> CaseResult:
    return ResultCache.get(
        app, SMALL_DATASETS[app], label, **_protocol_extra(protocol)
    )


def stops_paying(times: Dict[str, float]) -> str:
    """The largest static unit whose step up still strictly improved the
    execution time (``times`` maps label -> time_us)."""
    best = STATIC_LABELS[0]
    for prev, cur in zip(STATIC_LABELS, STATIC_LABELS[1:], strict=False):
        if times[cur] < times[prev]:
            best = cur
        else:
            break
    return best


def sweep_rows() -> List[Dict[str, Any]]:
    """Flat per-(app, protocol) rows (CSV-friendly)."""
    rows: List[Dict[str, Any]] = []
    for app in sorted(SMALL_DATASETS):
        base_tm = _case(app, "4K", "tm-lrc")
        for protocol in PROTOCOL_ORDER:
            cases = {lb: _case(app, lb, protocol) for lb in GOLDEN_LABELS}
            times = {lb: c.time_us for lb, c in cases.items()}
            row: Dict[str, Any] = {
                "app": app,
                "dataset": SMALL_DATASETS[app],
                "protocol": protocol,
                "stops_paying": stops_paying(times),
                "time_4K_vs_tmlrc": times["4K"] / base_tm.time_us,
            }
            for lb in GOLDEN_LABELS:
                c = cases[lb]
                row[f"time_{lb}_rel"] = times[lb] / times["4K"]
                row[f"messages_{lb}"] = c.total_messages
                row[f"useless_bytes_{lb}"] = c.useless_bytes
            rows.append(row)
    return rows


def render(rows: List[Dict[str, Any]]) -> str:
    """The protocol-zoo table: per app, one row per protocol with times
    normalized to that protocol's own 4K cell, the cross-protocol 4K
    ratio, and the unit size at which static aggregation stopped paying;
    then the stops-paying summary matrix."""
    lines = [
        "Protocol zoo: execution time vs consistency-unit size",
        "(each row normalized to its own 4K; x tm-lrc = absolute 4K time",
        " relative to tm-lrc's; 'stops' = largest static unit that still",
        " strictly improved time)",
    ]
    for app in sorted(SMALL_DATASETS):
        app_rows = [r for r in rows if r["app"] == app]
        lines.append(f"--- {app} {app_rows[0]['dataset']} ---")
        lines.append(
            f"  {'protocol':8} {'4K':>6} {'8K':>6} {'16K':>6} {'Dyn':>6} "
            f"{'x tm-lrc':>9} {'stops':>6}"
        )
        for r in app_rows:
            lines.append(
                f"  {r['protocol']:8} "
                + " ".join(f"{r[f'time_{lb}_rel']:6.2f}" for lb in GOLDEN_LABELS)
                + f" {r['time_4K_vs_tmlrc']:9.2f} {r['stops_paying']:>6}"
            )
    lines.append("")
    lines.append("Where static aggregation stops paying (per protocol):")
    lines.append(
        "  " + f"{'app':10}" + "".join(f"{p:>8}" for p in PROTOCOL_ORDER)
    )
    for app in sorted(SMALL_DATASETS):
        by_proto = {
            r["protocol"]: r["stops_paying"]
            for r in rows
            if r["app"] == app
        }
        lines.append(
            "  " + f"{app:10}"
            + "".join(f"{by_proto[p]:>8}" for p in PROTOCOL_ORDER)
        )
    return "\n".join(lines)

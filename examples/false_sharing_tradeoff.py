"""The paper's central trade-off, reproduced in one script.

Sweeps the consistency unit (4 / 8 / 16 KB and the dynamic page-group
scheme) over the two extreme applications:

* **ILINK** -- fine-grained sharing mixed with true sharing on every
  page: aggregation wins, no useless messages appear;
* **MGS (1Kx1K)** -- read/write granularity exactly one page: any larger
  unit manufactures write-write false sharing, useless messages explode,
  and performance collapses (the paper's Figure 2 log-scale panel).

The dynamic scheme tracks the winner on both.

    python examples/false_sharing_tradeoff.py
"""

from repro.bench.harness import UNIT_LABELS, ResultCache


def sweep(app: str, dataset: str) -> None:
    print(f"\n=== {app} {dataset} ===")
    base = None
    print(f"{'unit':>5} {'time':>8} {'norm':>6} {'messages':>9} "
          f"{'useless':>8} {'useless KB':>11} {'mean CW':>8}")
    for label in UNIT_LABELS:
        c = ResultCache.get(app, dataset, label)
        if base is None:
            base = c.time_us
        mean_cw = sum(k * sum(v) for k, v in c.signature.items())
        print(
            f"{label:>5} {c.time_us / 1e6:7.3f}s {c.time_us / base:6.2f} "
            f"{c.total_messages:9d} {c.useless_messages:8d} "
            f"{c.useless_bytes // 1024:11d} {mean_cw:8.2f}"
        )


def main() -> None:
    sweep("ILINK", "CLP")
    sweep("MGS", "1Kx1K")
    print(
        "\nReading: ILINK's signature (mean CW) is invariant, so larger "
        "units only\naggregate -- time falls monotonically.  MGS's "
        "signature shifts right with the\nunit, useless messages explode, "
        "and time degrades severely; the dynamic\nscheme matches the best "
        "static choice on both."
    )


if __name__ == "__main__":
    main()

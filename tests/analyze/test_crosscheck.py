"""Crosscheck gate mechanics.

One real traced run (Jacobi, the cheapest app) exercises the
static-vs-dynamic join end to end; the ratchet semantics are tested
against a temporary ratchet file so they never touch the committed one.
The full 8-app sweep is the CLI acceptance run, not a unit test.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analyze.crosscheck import (
    RATCHET_PATH,
    CrosscheckResult,
    crosscheck_app,
    load_ratchet,
    write_ratchet,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def jacobi_result():
    return crosscheck_app("Jacobi")


def test_jacobi_sound_and_gap_free(jacobi_result):
    assert jacobi_result.sound
    assert jacobi_result.gaps == []
    assert jacobi_result.observed == []
    assert jacobi_result.key == "Jacobi/1Kx1K/p8"


def test_committed_ratchet_covers_all_apps():
    """The committed ratchet must have a cell for every paper app, and
    only TSP (whose work queue is data-dependent by design) may carry
    analyzer gaps."""
    ratchet = load_ratchet()
    assert RATCHET_PATH == (
        REPO / "benchmarks" / "analyze" / "crosscheck_gaps.json"
    )
    apps = {key.split("/")[0] for key in ratchet}
    assert apps == {
        "3D-FFT", "Barnes", "ILINK", "Jacobi", "MGS", "Shallow", "TSP",
        "Water",
    }
    with_gaps = {k.split("/")[0] for k, v in ratchet.items() if v}
    assert with_gaps == {"TSP"}


def test_ratchet_round_trip(tmp_path):
    path = tmp_path / "r.json"
    write_ratchet({"B/x/p8": ["b:2", "a:1"], "A/y/p8": []}, path)
    data = json.loads(path.read_text())
    assert list(data) == ["A/y/p8", "B/x/p8"]  # sorted keys
    assert data["B/x/p8"] == ["a:1", "b:2"]  # sorted labels
    assert load_ratchet(path) == {"A/y/p8": [], "B/x/p8": ["a:1", "b:2"]}
    assert load_ratchet(tmp_path / "missing.json") == {}


def test_run_crosscheck_ratchet_semantics(tmp_path, monkeypatch, capsys):
    """Drive run_crosscheck with a stubbed crosscheck_app so the
    ratchet logic is tested without simulations."""
    import repro.analyze.crosscheck as cc

    gaps_by_app = {"A": ["x:1", "x:2"], "B": []}

    def fake(app_name, dataset=None, nprocs=8):
        from repro.analyze.predict import Prediction

        pred = Prediction(
            app=app_name, dataset="d", nprocs=nprocs, page_size=4096,
            n_phases=1, n_accesses=1, conflict_pages=[], page_labels={},
            units={},
        )
        return CrosscheckResult(
            app=app_name, dataset="d", nprocs=nprocs, prediction=pred,
            observed=list(gaps_by_app[app_name]), missing=[],
            gaps=list(gaps_by_app[app_name]),
        )

    monkeypatch.setattr(cc, "crosscheck_app", fake)
    monkeypatch.setattr(
        cc, "SMALL_DATASETS", {"A": "d", "B": "d"}, raising=False
    )
    path = tmp_path / "r.json"

    # 1. No ratchet + gaps -> fail.
    assert cc.run_crosscheck(ratchet_path=path) == 1
    # 2. --update-ratchet records the initial gap set and passes.
    assert cc.run_crosscheck(ratchet_path=path, update_ratchet=True) == 0
    assert load_ratchet(path) == {"A/d/p8": ["x:1", "x:2"], "B/d/p8": []}
    # 3. Within the recorded ratchet -> pass.
    assert cc.run_crosscheck(ratchet_path=path) == 0
    # 4. A new gap beyond the ratchet -> fail.
    gaps_by_app["B"] = ["y:9"]
    assert cc.run_crosscheck(ratchet_path=path) == 1
    # 5. Gaps may shrink without touching the file.
    gaps_by_app["A"] = ["x:1"]
    gaps_by_app["B"] = []
    capsys.readouterr()  # drain
    assert cc.run_crosscheck(ratchet_path=path) == 0
    assert "shrank" in capsys.readouterr().out
    # 6. An unsound prediction always fails.
    monkeypatch.setattr(
        cc,
        "crosscheck_app",
        lambda *a, **k: CrosscheckResult(
            app="A", dataset="d", nprocs=8,
            prediction=fake("A").prediction, observed=[],
            missing=["z:0"], gaps=[],
        ),
    )
    assert cc.run_crosscheck(apps=["A"], ratchet_path=path) == 1

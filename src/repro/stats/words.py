"""Per-processor word-usefulness tracking (Section 5.3 methodology).

When a diff is applied to a processor's copy of a unit, every word the
diff installed enters a *pending* state tagged with the id of the message
that carried it.  The first subsequent local access decides the word's
fate:

* a **read** of a pending word makes it *useful* -- the carrying message
  is credited;
* a **write** (overwrite before any read) clears the word without credit;
* a word still pending at the end of the run was never read -- useless.

Useless data per message is then ``words_carried - words_useful``, and a
message with zero useful words is a *useless message*.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class WordTracker:
    """Tracks pending diff-installed words for one processor.

    ``credit`` is called as ``credit(msg_id, nwords)`` whenever pending
    words are usefully read; the run harness points it at the network
    ledger so that message records accumulate their useful-word counts.
    """

    def __init__(self, nwords: int, credit: Callable[[int, int], None]) -> None:
        self._owner = np.full(nwords, -1, dtype=np.int32)
        self._credit = credit

    # ------------------------------------------------------------------
    # Protocol-side events
    # ------------------------------------------------------------------
    def mark(self, word_idx: np.ndarray, msg_id: int) -> None:
        """Words at global offsets ``word_idx`` were installed by message
        ``msg_id`` (a diff application).  A word re-installed by a later
        diff before being read re-tags: the earlier message's copy was
        overwritten unread, hence useless for that word."""
        self._owner[word_idx] = msg_id

    # ------------------------------------------------------------------
    # Application-side events
    # ------------------------------------------------------------------
    def on_read(self, word0: int, nwords: int) -> None:
        """A local read of ``[word0, word0+nwords)``: resolve any pending
        words in the range as useful."""
        ids = self._owner[word0 : word0 + nwords]
        pending = ids >= 0
        if not pending.any():
            return
        hit = ids[pending]
        msgs, counts = np.unique(hit, return_counts=True)
        for m, c in zip(msgs.tolist(), counts.tolist(), strict=True):
            self._credit(m, c)
        ids[pending] = -1  # in-place on the view -> clears the tracker

    def on_write(self, word0: int, nwords: int) -> None:
        """A local write: pending words in the range are overwritten
        before being read -- cleared without credit (useless)."""
        self._owner[word0 : word0 + nwords] = -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Words still pending (will finalize as useless)."""
        return int(np.count_nonzero(self._owner >= 0))

"""Lint findings and their machine- and human-readable renderings.

A :class:`Finding` pins one hazard to a (file, line) pair.  Findings
carry their suppression state rather than being dropped when suppressed,
so the JSON report is a complete audit trail: a reviewer can see every
``# detlint: ok(...)`` that is actually load-bearing (and
:func:`unused_suppressions` reports the ones that are not).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Union


@dataclass(frozen=True)
class Finding:
    """One hazard flagged by one rule at one source location."""

    path: str
    """File the finding is in (as given to the linter)."""

    line: int
    """1-indexed source line."""

    col: int
    """0-indexed column of the flagged expression."""

    rule: str
    """Rule id (kebab-case, e.g. ``set-iter``)."""

    message: str
    """Human-readable statement of the hazard."""

    suppressed: bool = False
    """True when the line carries ``# detlint: ok(<rule>)``."""

    def render(self) -> str:
        tag = "  [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tag}"


@dataclass(frozen=True)
class LintReport:
    """Everything one lint invocation produced."""

    findings: List[Finding]
    """All findings, suppressed ones included, in (path, line) order."""

    files_checked: int

    unused_suppressions: List[Finding]
    """Suppression comments whose rule never fired on their line,
    reported as findings of the ``unused-suppression`` rule (a stale
    ``ok(...)`` hides nothing today but will silently hide a future
    regression, so it must be removed)."""

    @property
    def active(self) -> List[Finding]:
        """The findings that gate CI: unsuppressed hazards plus any
        unused suppressions."""
        live = [f for f in self.findings if not f.suppressed]
        return live + list(self.unused_suppressions)

    @property
    def ok(self) -> bool:
        return not self.active

    def render(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.render())
        for f in self.unused_suppressions:
            lines.append(f.render())
        suppressed = sum(1 for f in self.findings if f.suppressed)
        live = len(self.findings) - suppressed
        lines.append(
            f"detlint: {self.files_checked} files, {live} finding(s), "
            f"{suppressed} suppressed, "
            f"{len(self.unused_suppressions)} stale suppression(s)"
            f"{' / OK' if self.ok else ''}"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "ok": self.ok,
            "findings": [asdict(f) for f in self.findings],
            "unused_suppressions": [asdict(f) for f in self.unused_suppressions],
        }

    def write_json(self, path: Union[str, pathlib.Path]) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")


def merge_reports(reports: Sequence[LintReport]) -> LintReport:
    """Fold per-file reports into one, preserving file order."""
    findings: List[Finding] = []
    unused: List[Finding] = []
    for r in reports:
        findings.extend(r.findings)
        unused.extend(r.unused_suppressions)
    return LintReport(
        findings=findings,
        files_checked=sum(r.files_checked for r in reports),
        unused_suppressions=unused,
    )

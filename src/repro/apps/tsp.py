"""TSP: branch-and-bound traveling salesman (Section 5.5).

The major shared data structures match the paper's description: a pool
of partially evaluated tours, a priority queue of (bound, tour) entries,
and the current shortest tour -- all lock-protected and *migratory*
(they move between processors as work is stolen from the queue).

Paper behaviour being reproduced:

* accesses to the multi-page tour pool are scattered and irregular:
  fetching the page that holds the tour a processor popped also brings
  diffs for tours *allocated by other processors but never read here*
  -- both useless messages and useless data;
* aggregation reduces the number of messages (the pool and queue are
  touched all over), improving execution time monotonically with unit
  size, as in Figure 1.

The optimum cost is unique, so the checksum is identical across all
configurations and matches a Held-Karp dynamic-programming reference.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: int32 words per tour record: [0]=length, [1]=cost, [2:2+n]=path,
#: remainder scratch (the real pool records carry bound bookkeeping).
TOUR_REC = 64

QLOCK = 1
BLOCK = 2

INF = 1 << 20


def _distances(n: int) -> np.ndarray:
    """Deterministic symmetric integer distance matrix."""
    rng = np.random.default_rng(321)
    d = rng.integers(5, 100, size=(n, n)).astype(np.int32)
    d = ((d + d.T) // 2).astype(np.int32)
    np.fill_diagonal(d, 0)
    return d


def _greedy_cost(d: np.ndarray) -> int:
    """Initial upper bound: best nearest-neighbour tour over all start
    cities (rotated so city 0 leads; tours are cyclic)."""
    n = d.shape[0]
    best_total = INF
    for start in range(n):
        seen = {start}
        cur, cost = start, 0
        for _ in range(n - 1):
            nxt, bc = -1, INF
            for c in range(n):
                if c not in seen and d[cur, c] < bc:
                    nxt, bc = c, int(d[cur, c])
            seen.add(nxt)
            cost += bc
            cur = nxt
        best_total = min(best_total, cost + int(d[cur, start]))
    return best_total


def held_karp(d: np.ndarray) -> int:
    """Exact TSP optimum via Held-Karp DP (the sequential reference)."""
    n = d.shape[0]
    full = 1 << n
    dp = np.full((full, n), INF, dtype=np.int64)
    dp[1, 0] = 0
    for mask in range(1, full):
        if not mask & 1:
            continue
        for last in range(n):
            if not mask & (1 << last) or dp[mask, last] >= INF:
                continue
            base = dp[mask, last]
            for nxt in range(1, n):
                if mask & (1 << nxt):
                    continue
                m2 = mask | (1 << nxt)
                v = base + d[last, nxt]
                if v < dp[m2, nxt]:
                    dp[m2, nxt] = v
    best = min(
        int(dp[full - 1, last] + d[last, 0]) for last in range(1, n)
    )
    return best


@AppRegistry.register
class TSP(Application):
    """Branch-and-bound TSP over a shared work queue."""

    name = "TSP"
    checksum_rtol = 0.0  # integer optimum: must match exactly

    datasets = {
        # Tours with fewer than `local_depth` cities left are solved by
        # local depth-first search (the standard parallel B&B split:
        # only the top of the tree goes through the shared queue).
        "19-city": {"n": 11, "max_tours": 4096, "local_depth": 7},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        mt = p["max_tours"]
        return (p["n"] ** 2 + mt * TOUR_REC + 2 * mt + 64 + TOUR_REC) * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        mt = p["max_tours"]
        return {
            "dist": tmk.array("dist", (p["n"], p["n"]), "int32"),
            "pool": tmk.array("pool", (mt, TOUR_REC), "int32"),
            "heap": tmk.array("heap", (mt,), "int32"),
            "free": tmk.array("free", (mt,), "int32"),
            # meta: [0]=heap size, [1]=active expansions,
            # [2]=free-ring head (alloc), [3]=free-ring tail (recycle).
            "meta": tmk.array("meta", (16,), "int32"),
            "best": tmk.array("best", (TOUR_REC,), "int32"),
        }

    # ------------------------------------------------------------------
    # Shared binary heap of (bound, slot) keys, caller holds QLOCK.
    # ------------------------------------------------------------------
    @staticmethod
    def _key(bound: int, slot: int, max_tours: int) -> int:
        return bound * max_tours + slot

    def _heap_push(self, proc, h, meta, key: int) -> None:
        size = int(meta.read(proc, 0, 1)[0])
        i = size
        h.write(proc, i, np.array([key], np.int32))
        while i > 0:
            parent = (i - 1) // 2
            ki = int(h.read(proc, i, 1)[0])
            kp = int(h.read(proc, parent, 1)[0])
            if kp <= ki:
                break
            h.write(proc, i, np.array([kp], np.int32))
            h.write(proc, parent, np.array([ki], np.int32))
            i = parent
        meta.write(proc, 0, np.array([size + 1], np.int32))

    def _heap_pop(self, proc, h, meta) -> int:
        size = int(meta.read(proc, 0, 1)[0])
        top = int(h.read(proc, 0, 1)[0])
        last = int(h.read(proc, size - 1, 1)[0])
        size -= 1
        meta.write(proc, 0, np.array([size], np.int32))
        if size == 0:
            return top
        h.write(proc, 0, np.array([last], np.int32))
        i = 0
        while True:
            l, r = 2 * i + 1, 2 * i + 2
            small = i
            ks = int(h.read(proc, small, 1)[0])
            if l < size:
                kl = int(h.read(proc, l, 1)[0])
                if kl < ks:
                    small, ks = l, kl
            if r < size:
                kr = int(h.read(proc, r, 1)[0])
                if kr < ks:
                    small, ks = r, kr
            if small == i:
                break
            ki = int(h.read(proc, i, 1)[0])
            h.write(proc, i, np.array([ks], np.int32))
            h.write(proc, small, np.array([ki], np.int32))
            i = small
        return top

    # ------------------------------------------------------------------
    @staticmethod
    def _dfs(d, min_edge, path: List[int], cost: int, ub: int):
        """Bounded depth-first completion of a partial tour; returns
        (best cost found or ub, best full path, nodes visited)."""
        n = d.shape[0]
        dl = d.tolist()  # plain ints: ~5x faster inner loop, same values
        me = [int(x) for x in min_edge]
        best_cost = ub
        best_path = list(path) + [0] * (n - len(path))
        visited = 0
        in_path = [False] * n
        for c in path:
            in_path[c] = True
        cur = list(path)

        def rec(last: int, cost: int, rem_bound: int) -> None:
            # ``rem_bound`` is the sum of min_edge over cities not in
            # ``cur`` -- maintained incrementally (integer-exact, so the
            # pruning decisions and visit counts match the recomputed
            # version bit for bit).
            nonlocal best_cost, best_path, visited
            visited += 1
            if len(cur) == n:
                total = cost + dl[last][0]
                if total < best_cost:
                    best_cost = total
                    best_path = list(cur)
                return
            if cost + rem_bound >= best_cost:
                return
            row = dl[last]
            for c in range(1, n):
                if in_path[c]:
                    continue
                nc = cost + row[c]
                if nc >= best_cost:
                    continue
                in_path[c] = True
                cur.append(c)
                rec(c, nc, rem_bound - me[c])
                cur.pop()
                in_path[c] = False

        rem0 = sum(me[r] for r in range(1, n) if not in_path[r])
        rec(path[-1], cost, rem0)
        return best_cost, best_path, visited

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        n, mt = params["n"], params["max_tours"]
        dist, pool = handles["dist"], handles["pool"]
        h, free, meta, best = (
            handles["heap"],
            handles["free"],
            handles["meta"],
            handles["best"],
        )

        d_local = _distances(n)
        if proc.id == 0:
            dist.write_rows(proc, 0, d_local)
            ub = _greedy_cost(d_local)
            best.write(proc, 0, np.array([ub] + [0] * (TOUR_REC - 1), np.int32))
            # Root tour: path [0], cost 0, in slot 0.
            root = np.zeros(TOUR_REC, dtype=np.int32)
            root[0], root[1], root[2] = 1, 0, 0
            pool.write_rows(proc, 0, root.reshape(1, TOUR_REC))
            free.write(proc, 0, np.arange(mt, dtype=np.int32))
            h.write(proc, 0, np.array([self._key(0, 0, mt)], np.int32))
            # Free ring: slots [head, tail) are available; slot 0 holds
            # the root, so head starts at 1.  FIFO recycling walks the
            # whole pool, so live tours spread over many pages (the
            # paper's scattered, irregular pool accesses).
            meta.write(proc, 0, np.array([1, 0, 1, mt] + [0] * 12, np.int32))
        proc.barrier()

        # Read-only distance matrix: fetched once, then cached pages.
        d = dist.read_rows(proc, 0, n).reshape(n, n)
        min_edge = np.where(d > 0, d, INF).min(axis=1).astype(np.int64)

        idle_us = 200.0
        batch = 4  # tours claimed per queue visit
        while True:
            proc.acquire(QLOCK)
            size, active = (int(x) for x in meta.read(proc, 0, 2))
            if size == 0:
                proc.release(QLOCK)
                if active == 0:
                    break
                proc.compute(us=idle_us)  # back off and re-poll
                idle_us = min(idle_us * 2.0, 5000.0)
                continue
            idle_us = 200.0
            keys = [self._heap_pop(proc, h, meta) for _ in range(min(batch, size))]
            meta.write(proc, 1, np.array([active + 1], np.int32))
            proc.release(QLOCK)

            all_children: List[tuple] = []
            claimed: List[int] = []
            for key in keys:
                self._expand(
                    proc, key, params, handles, d, min_edge, all_children, claimed
                )

            # Publish children and retire this visit.
            self._publish(proc, params, handles, all_children, claimed)

        proc.barrier()
        return float(int(best.read(proc, 0, 1)[0]))

    # ------------------------------------------------------------------
    def _expand(
        self, proc, key, params, handles, d, min_edge, all_children, claimed
    ) -> None:
        """Expand one popped queue entry: either one branching level
        (children go back to the queue) or a full local DFS for deep
        subtrees."""
        n, mt = params["n"], params["max_tours"]
        pool, best = handles["pool"], handles["best"]
        bound, slot = divmod(key, mt)
        claimed.append(slot)
        tour = pool.read_row(proc, slot)
        length, cost = int(tour[0]), int(tour[1])
        path = tour[2 : 2 + length]
        last = int(path[-1])
        in_path = set(int(c) for c in path)

        cur_best = int(best.read(proc, 0, 1)[0])
        if bound < cur_best:
            if n - length <= params["local_depth"]:
                # Deep subtree: solve by local DFS (pure compute);
                # publish an improved tour once at the end.
                found, fpath, visited = self._dfs(
                    d, min_edge, list(int(c) for c in path), cost, cur_best
                )
                proc.compute(flops=800 * visited)
                if found < cur_best:
                    proc.acquire(BLOCK)
                    cur = int(best.read(proc, 0, 1)[0])
                    if found < cur:
                        rec = np.zeros(TOUR_REC, dtype=np.int32)
                        rec[0] = found
                        rec[1 : 1 + n] = fpath
                        best.write(proc, 0, rec)
                    proc.release(BLOCK)
            else:
                # sum(min_edge[remaining]) + min_edge[c] over
                # remaining = not-in-path minus {c} equals the in-path
                # complement sum, independent of c (integer-exact).
                rem_all = int(
                    sum(int(min_edge[r]) for r in range(1, n)
                        if r not in in_path)
                )
                path_list = list(int(x) for x in path)
                for c in range(1, n):
                    if c in in_path:
                        continue
                    ncost = cost + int(d[last, c])
                    proc.compute(flops=8)
                    lb = ncost + rem_all
                    if lb < cur_best:
                        all_children.append((lb, ncost, list(path_list), c))

    # ------------------------------------------------------------------
    def _publish(self, proc, params, handles, all_children, claimed) -> None:
        """Write the new child tours into the pool, push their queue
        entries, recycle the claimed slots, and retire the visit."""
        mt = params["max_tours"]
        pool = handles["pool"]
        h, free, meta = handles["heap"], handles["free"], handles["meta"]
        proc.acquire(QLOCK)
        head, tail = (int(x) for x in meta.read(proc, 2, 2))
        if claimed:
            # Recycling the claimed slots is data-independent (the ring
            # indices are known up front), so the whole batch goes
            # through one bulk scatter -- semantically the former
            # in-order loop of one-word writes.  The branch-and-bound
            # queue operations below stay word-granular: each read
            # depends on the previous one (head chases the data).
            starts = (tail + np.arange(len(claimed), dtype=np.int64)) % mt
            free.scatter(
                proc, starts,
                np.asarray(claimed, dtype=np.int32).reshape(-1, 1),
            )
            tail += len(claimed)
        for lb, ncost, path, c in all_children:
            if head == tail:
                raise RuntimeError("tour pool exhausted")
            child_slot = int(free.read(proc, head % mt, 1)[0])
            head += 1
            length = len(path)
            rec = np.zeros(TOUR_REC, dtype=np.int32)
            rec[0] = length + 1
            rec[1] = ncost
            rec[2 : 2 + length] = path
            rec[2 + length] = c
            pool.write_rows(proc, child_slot, rec.reshape(1, TOUR_REC))
            self._heap_push(proc, h, meta, self._key(lb, child_slot, mt))
        meta.write(proc, 2, np.array([head, tail], np.int32))
        active = int(meta.read(proc, 1, 1)[0])
        meta.write(proc, 1, np.array([active - 1], np.int32))
        proc.release(QLOCK)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: the branch-and-bound structures are
        migratory and entirely data-dependent, so everything in the main
        epoch is a ``may`` access and the analyzer predicts no conflict
        pages -- the dynamically observed multi-writer pages (pool,
        heap, free ring, meta, best) all land in the crosscheck's
        analyzer-gap ratchet, by design."""
        from repro.analyze.access import AccessPattern

        n = params["n"]
        dist, pool, best = handles["dist"], handles["pool"], handles["best"]
        h, free, meta = handles["heap"], handles["free"], handles["meta"]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        ph.write_rows(dist, 0, 0, n)
        ph.write(best, 0, 0, TOUR_REC)
        ph.write_rows(pool, 0, 0, 1)
        ph.write(free, 0, 0, params["max_tours"])
        ph.write(h, 0, 0, 1)
        ph.write(meta, 0, 0, 16)
        ph = pat.phase("search")
        for p in range(nprocs):
            ph.read_rows(dist, p, 0, n)
            for arr in (pool, h, free, meta, best):
                ph.read_all(arr, p, must=False)
                ph.write_all(arr, p, must=False)
        ph = pat.phase("result")
        for p in range(nprocs):
            ph.read(best, p, 0, 1)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        return float(held_karp(_distances(p["n"])))

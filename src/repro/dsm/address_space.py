"""The paged shared address space.

The simulated DSM gives every processor a full private copy of one shared
heap (that is what a software DSM *is*: per-node physical copies kept
coherent by the protocol).  The heap is a flat byte range carved into
hardware pages and consistency units; applications allocate from it with
a bump allocator (the analogue of ``Tmk_malloc``).

All bookkeeping is in 4-byte words: diffs, usefulness classification, and
application accesses all operate on word offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsm.diff import WORD


@dataclass(frozen=True)
class Allocation:
    """One named allocation in the shared heap (byte offsets)."""

    name: str
    offset: int
    nbytes: int

    @property
    def word_offset(self) -> int:
        return self.offset // WORD

    @property
    def nwords(self) -> int:
        return self.nbytes // WORD


class SharedHeapLayout:
    """The allocation map of the shared heap, identical on every node.

    ``malloc`` mirrors ``Tmk_malloc``: applications typically page-align
    major arrays (as the paper's applications do) so that sharing
    granularity relative to the page is controlled by the data layout,
    not by allocator accidents.
    """

    def __init__(self, heap_bytes: int, page_size: int, unit_bytes: int) -> None:
        if heap_bytes <= 0:
            raise ValueError(f"heap_bytes must be positive, got {heap_bytes}")
        if unit_bytes % page_size:
            raise ValueError(
                f"unit ({unit_bytes}) must be a multiple of the page "
                f"({page_size})"
            )
        # Round the heap up to a whole number of consistency units.
        self.page_size = page_size
        self.unit_bytes = unit_bytes
        self.heap_bytes = -(-heap_bytes // unit_bytes) * unit_bytes
        self.nwords = self.heap_bytes // WORD
        self.npages = self.heap_bytes // page_size
        self.nunits = self.heap_bytes // unit_bytes
        self.words_per_unit = unit_bytes // WORD
        self.words_per_page = page_size // WORD
        self._brk = 0
        self._allocations: Dict[str, Allocation] = {}

    def malloc(self, name: str, nbytes: int, page_align: bool = True) -> Allocation:
        """Allocate ``nbytes`` (word-aligned; page-aligned by default)."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        align = self.page_size if page_align else WORD
        offset = -(-self._brk // align) * align
        nbytes = -(-nbytes // WORD) * WORD
        if offset + nbytes > self.heap_bytes:
            raise MemoryError(
                f"shared heap exhausted: need {offset + nbytes} of "
                f"{self.heap_bytes} bytes for {name!r}"
            )
        alloc = Allocation(name=name, offset=offset, nbytes=nbytes)
        self._allocations[name] = alloc
        self._brk = offset + nbytes
        return alloc

    def __getitem__(self, name: str) -> Allocation:
        return self._allocations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def allocations(self) -> List[Allocation]:
        """All allocations, in allocation order."""
        return list(self._allocations.values())

    def allocation_containing(self, byte_offset: int) -> Optional[Allocation]:
        """The allocation whose byte range covers ``byte_offset``, or the
        first allocation starting inside the page of ``byte_offset`` (so
        page-level attribution labels alignment-gap pages by the array
        that begins there); None for untouched heap."""
        page0 = (byte_offset // self.page_size) * self.page_size
        fallback = None
        for alloc in self._allocations.values():
            if alloc.offset <= byte_offset < alloc.offset + alloc.nbytes:
                return alloc
            if fallback is None and page0 <= alloc.offset < page0 + self.page_size:
                fallback = alloc
        return fallback

    # ------------------------------------------------------------------
    # Geometry helpers (word offsets -> pages / units)
    # ------------------------------------------------------------------
    def unit_of_word(self, word: int) -> int:
        """Consistency unit containing word offset ``word``."""
        return word // self.words_per_unit

    def units_of_range(self, word0: int, nwords: int) -> range:
        """Units overlapped by the word range [word0, word0+nwords)."""
        if nwords <= 0:
            raise ValueError(f"empty range at word {word0}")
        first = word0 // self.words_per_unit
        last = (word0 + nwords - 1) // self.words_per_unit
        return range(first, last + 1)

    def pages_of_range(self, word0: int, nwords: int) -> range:
        """Hardware pages overlapped by the word range."""
        if nwords <= 0:
            raise ValueError(f"empty range at word {word0}")
        first = word0 // self.words_per_page
        last = (word0 + nwords - 1) // self.words_per_page
        return range(first, last + 1)

    def unit_word_range(self, unit: int) -> Tuple[int, int]:
        """(first word, one-past-last word) of a consistency unit."""
        w0 = unit * self.words_per_unit
        return w0, w0 + self.words_per_unit


class AddressSpace:
    """One processor's private copy of the shared heap."""

    def __init__(self, layout: SharedHeapLayout) -> None:
        self.layout = layout
        self.words = np.zeros(layout.nwords, dtype=np.uint32)

    def unit_view(self, unit: int) -> np.ndarray:
        """Writable uint32 view of one consistency unit."""
        w0, w1 = self.layout.unit_word_range(unit)
        return self.words[w0:w1]

    def read_words(self, word0: int, nwords: int) -> np.ndarray:
        """Copy of a word range (raw uint32 bit patterns)."""
        return self.words[word0 : word0 + nwords].copy()

    def write_words(self, word0: int, values: np.ndarray) -> None:
        """Overwrite a word range with uint32 bit patterns."""
        self.words[word0 : word0 + values.shape[0]] = values

    def gather(self, starts: np.ndarray, nwords: int) -> np.ndarray:
        """Copy of ``len(starts)`` equal-length word ranges as one
        (nranges, nwords) array -- one fancy-indexed read instead of a
        Python loop of range copies."""
        idx = starts[:, None] + np.arange(nwords, dtype=np.int64)[None, :]
        return self.words[idx]

    def scatter(self, starts: np.ndarray, values: np.ndarray) -> None:
        """Overwrite ``len(starts)`` equal-length word ranges from a
        (nranges, nwords) array.  With duplicate or overlapping ranges
        the later row wins, matching a sequential loop of range writes."""
        idx = starts[:, None] + np.arange(values.shape[1], dtype=np.int64)[None, :]
        self.words[idx] = values

"""Lint findings and their machine- and human-readable renderings.

A :class:`Finding` pins one hazard to a (file, line) pair.  Findings
carry their suppression state rather than being dropped when suppressed,
so the JSON report is a complete audit trail: a reviewer can see every
``# detlint: ok(...)`` that is actually load-bearing (and
:func:`unused_suppressions` reports the ones that are not).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Union


@dataclass(frozen=True)
class Finding:
    """One hazard flagged by one rule at one source location."""

    path: str
    """File the finding is in (as given to the linter)."""

    line: int
    """1-indexed source line."""

    col: int
    """0-indexed column of the flagged expression."""

    rule: str
    """Rule id (kebab-case, e.g. ``set-iter``)."""

    message: str
    """Human-readable statement of the hazard."""

    suppressed: bool = False
    """True when the line carries ``# detlint: ok(<rule>)``."""

    def render(self) -> str:
        tag = "  [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tag}"


@dataclass(frozen=True)
class LintReport:
    """Everything one lint invocation produced."""

    findings: List[Finding]
    """All findings, suppressed ones included, in (path, line) order."""

    files_checked: int

    unused_suppressions: List[Finding]
    """Suppression comments whose rule never fired on their line,
    reported as findings of the ``unused-suppression`` rule (a stale
    ``ok(...)`` hides nothing today but will silently hide a future
    regression, so it must be removed)."""

    @property
    def active(self) -> List[Finding]:
        """The findings that gate CI: unsuppressed hazards plus any
        unused suppressions."""
        live = [f for f in self.findings if not f.suppressed]
        return live + list(self.unused_suppressions)

    @property
    def ok(self) -> bool:
        return not self.active

    def render(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.render())
        for f in self.unused_suppressions:
            lines.append(f.render())
        suppressed = sum(1 for f in self.findings if f.suppressed)
        live = len(self.findings) - suppressed
        lines.append(
            f"detlint: {self.files_checked} files, {live} finding(s), "
            f"{suppressed} suppressed, "
            f"{len(self.unused_suppressions)} stale suppression(s)"
            f"{' / OK' if self.ok else ''}"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "ok": self.ok,
            "findings": [asdict(f) for f in self.findings],
            "unused_suppressions": [asdict(f) for f in self.unused_suppressions],
        }

    def write_json(self, path: Union[str, pathlib.Path]) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "LintReport":
        """Inverse of :meth:`to_json_dict` (the derived ``ok`` field is
        recomputed, everything else round-trips field-for-field)."""
        def as_finding(d: Dict[str, object]) -> Finding:
            return Finding(
                path=str(d["path"]),
                line=int(d["line"]),  # type: ignore[arg-type]
                col=int(d["col"]),  # type: ignore[arg-type]
                rule=str(d["rule"]),
                message=str(d["message"]),
                suppressed=bool(d["suppressed"]),
            )

        return cls(
            findings=[as_finding(d) for d in doc["findings"]],  # type: ignore[union-attr]
            files_checked=int(doc["files_checked"]),  # type: ignore[arg-type]
            unused_suppressions=[
                as_finding(d)
                for d in doc["unused_suppressions"]  # type: ignore[union-attr]
            ],
        )


def merge_sections(sections: Dict[str, LintReport]) -> Dict[str, object]:
    """The sectioned JSON document written by ``--lint --json``: one
    :class:`LintReport` dict per section (``src`` for the simulator
    package, ``helpers`` for the test/benchmark trees) plus the overall
    gate verdict."""
    return {
        "ok": all(r.ok for r in sections.values()),
        "sections": {
            name: sections[name].to_json_dict() for name in sorted(sections)
        },
    }


def sections_from_json_dict(
    doc: Dict[str, object],
) -> Dict[str, LintReport]:
    """Inverse of :func:`merge_sections`."""
    sections_doc: Dict[str, Dict[str, object]] = doc["sections"]  # type: ignore[assignment]
    return {
        name: LintReport.from_json_dict(d) for name, d in sections_doc.items()
    }


def merge_reports(reports: Sequence[LintReport]) -> LintReport:
    """Fold per-file reports into one, preserving file order."""
    findings: List[Finding] = []
    unused: List[Finding] = []
    for r in reports:
        findings.extend(r.findings)
        unused.extend(r.unused_suppressions)
    return LintReport(
        findings=findings,
        files_checked=sum(r.files_checked for r in reports),
        unused_suppressions=unused,
    )

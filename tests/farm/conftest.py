"""Shared fixtures for the farm suite.

``jacobi_results`` computes the four Jacobi golden-matrix cells once per
session (the cheapest full label sweep) so the store/service tests can
populate stores without re-running simulations.
"""

from typing import Dict

import pytest

from repro.bench.harness import CaseResult, run_case
from repro.bench.pool import SweepCell

JACOBI_LABELS = ("4K", "8K", "16K", "Dyn")


@pytest.fixture(scope="session")
def jacobi_results() -> Dict[str, CaseResult]:
    return {
        label: run_case("Jacobi", "1Kx1K", label) for label in JACOBI_LABELS
    }


@pytest.fixture(scope="session")
def jacobi_cells() -> Dict[str, SweepCell]:
    return {
        label: SweepCell.make("Jacobi", "1Kx1K", label)
        for label in JACOBI_LABELS
    }

"""Runtime validation of declared access patterns against bulk calls.

:meth:`repro.apps.base.Application.access_pattern` declarations are the
contract the bulk-access ports were written against: an app's gathers
and scatters must stay inside the element ranges it declared to the
static analyzer.  When validation is enabled
(``run_app(..., validate_access=True)``), every bulk call a processor
issues through :meth:`repro.core.proc.Proc.read_gather` /
:meth:`~repro.core.proc.Proc.write_scatter` is checked against the
union of that processor's declared accesses of the same operation
(``must`` and ``may`` alike, across all phases); a range outside the
declaration raises :class:`AccessDeclarationError` naming the offender.

The check deliberately unions over phases rather than aligning phase to
barrier epoch: lock-delimited interval boundaries (TSP's queue, Water's
energy lock) make a per-epoch alignment ill-defined for lock-using
apps, and phase *placement* of ``must`` accesses is already validated
dynamically by the analyzer crosscheck (``repro.analyze.crosscheck``).
What this validator adds is the complementary direction: no bulk access
may exist that the declaration does not cover at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.analyze.access import AccessPattern


class AccessDeclarationError(AssertionError):
    """A bulk access fell outside the application's declared pattern."""


def _merged_intervals(
    spans: List[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce [w0, w1) spans into disjoint sorted (lo, hi) arrays."""
    spans.sort()
    lo: List[int] = []
    hi: List[int] = []
    for w0, w1 in spans:
        if lo and w0 <= hi[-1]:
            hi[-1] = max(hi[-1], w1)
        else:
            lo.append(w0)
            hi.append(w1)
    return np.asarray(lo, dtype=np.int64), np.asarray(hi, dtype=np.int64)


class BulkAccessValidator:
    """Checks bulk gather/scatter ranges against a declared pattern."""

    def __init__(self, pattern: "AccessPattern") -> None:
        self.pattern = pattern
        grouped: Dict[Tuple[int, str], List[Tuple[int, int]]] = {}
        for phase in pattern.phases:
            for a in phase.accesses:
                grouped.setdefault((a.proc, a.op), []).append(
                    (a.word0, a.word1)
                )
        self._cover: Dict[Tuple[int, str], Tuple[np.ndarray, np.ndarray]] = {
            key: _merged_intervals(spans) for key, spans in grouped.items()
        }

    def check(self, proc: int, op: str, starts: np.ndarray, nwords: int) -> None:
        """Raise unless every range ``[s, s+nwords)`` lies inside one of
        the declared ``op`` intervals of processor ``proc``."""
        if starts.size == 0 or nwords <= 0:
            return
        cover = self._cover.get((proc, op))
        if cover is None:
            raise AccessDeclarationError(
                f"{self.pattern.app}: proc {proc} issued a bulk {op} but "
                f"declares no {op} accesses at all"
            )
        lo, hi = cover
        pos = np.searchsorted(lo, starts, side="right") - 1
        ok = (pos >= 0) & (starts + nwords <= hi[np.maximum(pos, 0)])
        if bool(ok.all()):
            return
        bad = int(starts[np.argmin(ok)])
        raise AccessDeclarationError(
            f"{self.pattern.app}: proc {proc} bulk {op} of words "
            f"[{bad}, {bad + nwords}) is outside the declared access "
            f"pattern ({len(lo)} declared {op} interval(s))"
        )

"""The TreadMarks runtime: wiring of substrate, protocol, and stats.

A :class:`TreadMarks` instance owns one simulated cluster and one shared
heap.  It is single-use: construct, allocate shared arrays, :meth:`run`
one application, and read the returned :class:`RunResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.proc import Proc
from repro.core.shared import (
    DTypeLike,
    LayoutPlan,
    ShapeLike,
    SharedArray,
    alloc_array,
)
from repro.dsm.address_space import Allocation, SharedHeapLayout
from repro.dsm.aggregation import make_aggregator
from repro.dsm.intervals import IntervalStore
from repro.dsm.lrc import LrcProc
from repro.dsm.sync import SyncManager
from repro.faults.inject import FaultInjector
from repro.faults.plan import parse_plan
from repro.protocols import get_protocol
from repro.sim.config import SimConfig
from repro.sim.engine import Engine, ProcContext
from repro.sim.network import Network
from repro.stats.counters import ProtocolStats
from repro.stats.report import RunResult, build_result
from repro.trace.recorder import TraceRecorder

if TYPE_CHECKING:
    from repro.core.validate import BulkAccessValidator


class TreadMarks:
    """One simulated DSM system: N processors over one shared heap."""

    def __init__(
        self,
        config: SimConfig,
        heap_bytes: int,
        app_name: str = "",
        dataset: str = "",
        layout_plan: Optional[LayoutPlan] = None,
    ) -> None:
        config.validate()
        if config.dynamic and config.unit_pages != 1:
            raise ValueError("dynamic aggregation requires unit_pages == 1")
        self.config = config
        self.app_name = app_name
        self.dataset = dataset
        self.layout_plan = layout_plan
        """Optional layout-advisor plan: arrays named in it allocate
        padded (see :class:`repro.core.shared.PadSpec`); callers must
        oversize ``heap_bytes`` by
        :func:`repro.core.shared.plan_slack_bytes`."""
        self.layout = SharedHeapLayout(
            heap_bytes, config.page_size, config.unit_bytes
        )
        self.engine = Engine(config)
        self.network = Network(config)
        self.store = IntervalStore(config.nprocs)
        self.stats = ProtocolStats()
        self.trace: Optional[TraceRecorder] = None
        if config.trace:
            self.trace = TraceRecorder(config)
            self.trace.layout = self.layout
            self.trace.network = self.network
            self.trace.app_name = app_name
            self.trace.dataset = dataset
            self.engine.trace = self.trace
            self.network.trace = self.trace
        self.faults: Optional[FaultInjector] = None
        if config.fault_plan:
            # Registered after the trace recorder (the trace property
            # keeps itself first in the observer list), so timelines show
            # each message before the faults injected into it.
            self.faults = FaultInjector(
                parse_plan(config.fault_plan),
                config,
                self.network,
                self.stats,
                trace=self.trace,
            )
            self.network.add_observer(self.faults)
        # The consistency protocol builds the per-processor engines (and
        # owns any cross-processor wiring: peer lists, directories); the
        # runtime attaches observers and aggregation strategies after.
        info = get_protocol(config.protocol)
        self.procs: List[LrcProc] = info.build(
            self.layout,
            config,
            self.store,
            self.network,
            self.stats,
            [self.engine.procs[pid].clock for pid in range(config.nprocs)],
            self._credit,
        )
        for lp in self.procs:
            lp.trace = self.trace
            lp.aggregator = make_aggregator(lp)
        self.sync = SyncManager(config, self.network, self.procs, self.stats)
        self.sync.trace = self.trace
        self.access_validator: Optional["BulkAccessValidator"] = None
        """Optional :class:`repro.core.validate.BulkAccessValidator`
        attached by :func:`repro.apps.base.run_app` when bulk-access
        validation is requested; consulted (observer-only) by the Proc
        bulk entry points."""
        self._ran = False

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, name: str, nbytes: int, page_align: bool = True) -> Allocation:
        """Allocate raw shared bytes (``Tmk_malloc``)."""
        return self.layout.malloc(name, nbytes, page_align=page_align)

    def array(
        self, name: str, shape: ShapeLike, dtype: DTypeLike = "float32",
        page_align: bool = True,
    ) -> SharedArray:
        """Allocate a typed shared array in the heap."""
        return alloc_array(
            self.layout, name, shape, dtype, page_align,
            plan=self.layout_plan,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, fn: Callable[[Proc], object]) -> RunResult:
        """Run ``fn(proc)`` on every simulated processor to completion
        and return the consolidated measurements.

        ``fn``'s return value on processor 0 is stored as the run's
        ``checksum`` (used by the coherence-invariance tests)."""
        if self._ran:
            raise RuntimeError("a TreadMarks instance runs exactly once")
        self._ran = True
        returns: List[object] = [None] * self.config.nprocs

        def make_body(pid: int) -> Callable[[ProcContext], None]:
            def body(ctx: ProcContext) -> None:
                proc = Proc(ctx, self.procs[pid], self)
                returns[pid] = fn(proc)

            return body

        fns = [make_body(pid) for pid in range(self.config.nprocs)]
        self.engine.run(fns, self.sync.service)

        checksum = returns[0]
        proc_times = [ctx.clock.now for ctx in self.engine.procs]
        if self.faults is not None:
            # Fold the shadow fault overhead into the reported clocks.
            # The live simulation clocks never saw these delays, so the
            # schedule (and hence every protocol outcome) is the
            # fault-free one; only reported time grows.
            self.faults.finalize(proc_times)
            proc_times = [
                t + self.faults.overhead_us[pid]
                for pid, t in enumerate(proc_times)
            ]
        result = build_result(
            app_name=self.app_name,
            dataset=self.dataset,
            config=self.config,
            network=self.network,
            stats=self.stats,
            proc_times_us=proc_times,
            checksum=checksum if isinstance(checksum, (int, float)) else None,
            trace=self.trace,
        )
        if self.faults is not None:
            result.extra.update(self.faults.summary())
        return result

    # ------------------------------------------------------------------
    def _credit(self, msg_id: int, nwords: int) -> None:
        self.network.messages[msg_id].words_useful += nwords

"""Per-processor word-usefulness tracking (Section 5.3 methodology).

When a diff is applied to a processor's copy of a unit, every word the
diff installed enters a *pending* state tagged with the id of the message
that carried it.  The first subsequent local access decides the word's
fate:

* a **read** of a pending word makes it *useful* -- the carrying message
  is credited;
* a **write** (overwrite before any read) clears the word without credit;
* a word still pending at the end of the run was never read -- useless.

Useless data per message is then ``words_carried - words_useful``, and a
message with zero useful words is a *useless message*.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class WordTracker:
    """Tracks pending diff-installed words for one processor.

    ``credit`` is called as ``credit(msg_id, nwords)`` whenever pending
    words are usefully read; the run harness points it at the network
    ledger so that message records accumulate their useful-word counts.

    ``unit_words`` sizes an optional per-consistency-unit pending
    counter: the access path is hot (every shared read and write lands
    here), so :meth:`on_read`/:meth:`on_write` first check a plain
    Python list of per-unit counts and exit without touching numpy when
    the range's units carry nothing pending -- the overwhelmingly common
    case between faults.
    """

    def __init__(
        self,
        nwords: int,
        credit: Callable[[int, int], None],
        unit_words: int = 0,
    ) -> None:
        self._owner = np.full(nwords, -1, dtype=np.int32)
        self._credit = credit
        self._npending = 0
        """Exact count of words currently pending, maintained so the
        bulk fast path can skip per-range scans with one compare."""
        self._uw = unit_words if unit_words > 0 else nwords
        self._unit_pending = [0] * (-(-nwords // self._uw))
        """Pending-word count per consistency unit (plain list: indexed
        ~5x faster than a numpy array on the scalar access path)."""

    # ------------------------------------------------------------------
    # Protocol-side events
    # ------------------------------------------------------------------
    def mark(self, word_idx: np.ndarray, msg_id: int) -> None:
        """Words at global offsets ``word_idx`` (distinct offsets) were
        installed by message ``msg_id`` (a diff application).  A word
        re-installed by a later diff before being read re-tags: the
        earlier message's copy was overwritten unread, hence useless for
        that word."""
        fresh = self._owner[word_idx] < 0
        n = int(np.count_nonzero(fresh))
        self._owner[word_idx] = msg_id
        if not n:
            return
        self._npending += n
        u0 = int(word_idx[0]) // self._uw
        u1 = int(word_idx[-1]) // self._uw
        if u0 == u1:
            self._unit_pending[u0] += n
        else:
            units, counts = np.unique(
                word_idx[fresh] // self._uw, return_counts=True
            )
            for u, c in zip(units.tolist(), counts.tolist(), strict=True):
                self._unit_pending[u] += c

    # ------------------------------------------------------------------
    # Application-side events
    # ------------------------------------------------------------------
    def _units_clear(self, word0: int, nwords: int) -> bool:
        """True when no unit overlapping the range has pending words."""
        u0 = word0 // self._uw
        u1 = (word0 + nwords - 1) // self._uw
        if u0 == u1:
            return not self._unit_pending[u0]
        return not any(self._unit_pending[u0 : u1 + 1])

    def _debit_units(
        self, word0: int, nwords: int, pending: np.ndarray, n: int
    ) -> None:
        """Subtract ``n`` cleared words from the per-unit counters
        (``pending`` is the range-local mask of the cleared words)."""
        u0 = word0 // self._uw
        u1 = (word0 + nwords - 1) // self._uw
        if u0 == u1:
            self._unit_pending[u0] -= n
        else:
            idx = word0 + np.flatnonzero(pending)
            units, counts = np.unique(idx // self._uw, return_counts=True)
            for u, c in zip(units.tolist(), counts.tolist(), strict=True):
                self._unit_pending[u] -= c

    def on_read(self, word0: int, nwords: int) -> None:
        """A local read of ``[word0, word0+nwords)``: resolve any pending
        words in the range as useful."""
        if not self._npending or self._units_clear(word0, nwords):
            return
        if nwords == 1:
            # Single-word read (lock-protected counters, heap keys):
            # scalar indexing skips the slice/compare/count machinery.
            m = int(self._owner[word0])
            if m >= 0:
                self._credit(m, 1)
                self._owner[word0] = -1
                self._npending -= 1
                self._unit_pending[word0 // self._uw] -= 1
            return
        ids = self._owner[word0 : word0 + nwords]
        pending = ids >= 0
        n = int(np.count_nonzero(pending))
        if not n:
            return
        hit = ids[pending]
        if n <= 64:
            # Fine-grained reads resolve a handful of words; Python dict
            # counting beats np.unique's sort at this size by ~10x.
            by_msg: dict = {}
            for m in hit.tolist():
                by_msg[m] = by_msg.get(m, 0) + 1
            for m, c in by_msg.items():
                self._credit(m, c)
        else:
            msgs, counts = np.unique(hit, return_counts=True)
            for m, c in zip(msgs.tolist(), counts.tolist(), strict=True):
                self._credit(m, c)
        self._debit_units(word0, nwords, pending, n)
        ids[pending] = -1  # in-place on the view -> clears the tracker
        self._npending -= n

    def on_write(self, word0: int, nwords: int) -> None:
        """A local write: pending words in the range are overwritten
        before being read -- cleared without credit (useless)."""
        if not self._npending or self._units_clear(word0, nwords):
            return
        if nwords == 1:
            if int(self._owner[word0]) >= 0:
                self._owner[word0] = -1
                self._npending -= 1
                self._unit_pending[word0 // self._uw] -= 1
            return
        ids = self._owner[word0 : word0 + nwords]
        pending = ids >= 0
        n = int(np.count_nonzero(pending))
        if not n:
            return
        self._debit_units(word0, nwords, pending, n)
        ids[pending] = -1
        self._npending -= n

    # ------------------------------------------------------------------
    # Batched application-side events (bulk middle tier)
    # ------------------------------------------------------------------
    def resolve_read(self, idx: np.ndarray) -> None:
        """Resolve a batch of read word offsets (flat, pairwise
        distinct) in one vectorized pass.  Equivalent to per-range
        :meth:`on_read` calls over any partition of ``idx``: each word
        is credited at most once and credit totals are additive, so
        batching cannot change any counter."""
        if not self._npending:
            return
        ids = self._owner[idx]
        pending = ids >= 0
        n = int(np.count_nonzero(pending))
        if not n:
            return
        pend_idx = idx[pending]
        msgs, counts = np.unique(ids[pending], return_counts=True)
        for m, c in zip(msgs.tolist(), counts.tolist(), strict=True):
            self._credit(m, c)
        self._owner[pend_idx] = -1
        self._npending -= n
        units, ucounts = np.unique(pend_idx // self._uw, return_counts=True)
        for u, c in zip(units.tolist(), ucounts.tolist(), strict=True):
            self._unit_pending[u] -= c

    def resolve_write(self, idx: np.ndarray) -> None:
        """Batched :meth:`on_write` over flat distinct word offsets:
        pending words overwritten before any read, cleared uncredited."""
        if not self._npending:
            return
        ids = self._owner[idx]
        pending = ids >= 0
        n = int(np.count_nonzero(pending))
        if not n:
            return
        pend_idx = idx[pending]
        self._owner[pend_idx] = -1
        self._npending -= n
        units, ucounts = np.unique(pend_idx // self._uw, return_counts=True)
        for u, c in zip(units.tolist(), ucounts.tolist(), strict=True):
            self._unit_pending[u] -= c

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Words still pending (will finalize as useless)."""
        return self._npending

"""The chaos-sweep invariant gate.

The fault lab's central claim is *transparency*: under any fault plan
with retries enabled, a run's protocol outcome is bit-identical to the
fault-free run -- the checksum and every useful-data counter match the
committed golden baseline exactly; only simulated time (which absorbs
the shadowed stalls) and the fault-cost counters may grow.  This module
enforces that claim: :func:`run_chaos` fans N reseeded copies of a plan
across the golden matrix (every application on its smallest paper
dataset) through the bench pool and diffs each cell against
``benchmarks/golden/``.

Field taxonomy:

* :data:`FAULT_FIELDS` -- fault-cost counters, zero in the baselines,
  expected (not required) to be nonzero under an active plan;
* :data:`INVARIANT_FIELDS` -- everything else in ``GOLDEN_FIELDS``
  except ``time_us``: must equal the baseline bit-for-bit;
* ``time_us`` -- must be >= the baseline (shadow overhead is never
  negative).

A plan that drops messages must additionally produce at least one
retransmission *per application* across the sweep, so the gate cannot
silently pass because injection was wired out.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.golden import (
    GOLDEN_DIR,
    GOLDEN_FIELDS,
    GOLDEN_LABELS,
    SMALL_DATASETS,
    load_app_golden,
)
from repro.bench.harness import ResultCache
from repro.bench.pool import SweepCell, run_cells
from repro.faults.plan import FaultPlan, parse_plan

#: Counters the fault lab is allowed to grow from zero.
FAULT_FIELDS = (
    "fault_messages",
    "fault_bytes",
    "retransmissions",
    "duplicate_deliveries",
    "timeout_stalls",
)

#: Counters that must match the fault-free baseline exactly.
INVARIANT_FIELDS = tuple(
    f for f in GOLDEN_FIELDS if f != "time_us" and f not in FAULT_FIELDS
)


def default_plan(seed: int = 0) -> FaultPlan:
    """The sweep's stock plan: a modestly lossy, jittery network."""
    return FaultPlan.uniform(
        seed=seed,
        drop_rate=0.02,
        dup_rate=0.01,
        reorder_rate=0.02,
        jitter_us=50.0,
    )


@dataclass
class CellVerdict:
    """One chaos cell judged against its golden baseline."""

    cell: str
    seed: int
    error: str = ""
    diffs: List[Tuple[str, object, object]] = field(default_factory=list)
    """``(field, golden, actual)`` for every invariant violation."""

    time_us: float = 0.0
    golden_time_us: float = 0.0
    retransmissions: int = 0
    duplicate_deliveries: int = 0
    timeout_stalls: int = 0
    fault_messages: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.error
            and not self.diffs
            and self.time_us >= self.golden_time_us
        )

    def render(self) -> str:
        if self.error:
            return f"  {self.cell} [seed {self.seed}]: {self.error}"
        lines = []
        for fname, golden, actual in self.diffs:
            lines.append(
                f"  {self.cell} [seed {self.seed}]: {fname}: "
                f"golden {golden!r}, got {actual!r}"
            )
        if self.time_us < self.golden_time_us:
            lines.append(
                f"  {self.cell} [seed {self.seed}]: time_us shrank: "
                f"golden {self.golden_time_us!r}, got {self.time_us!r}"
            )
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """Outcome of one chaos sweep."""

    plan: FaultPlan
    seeds: List[int] = field(default_factory=list)
    verdicts: List[CellVerdict] = field(default_factory=list)
    app_retransmissions: Dict[str, int] = field(default_factory=dict)
    sweep_summary: str = ""

    @property
    def quiet_apps(self) -> List[str]:
        """Applications that saw zero retransmissions under a plan that
        drops messages -- evidence the injector was not in the path."""
        if not self.plan.drops_messages:
            return []
        return sorted(
            app for app, n in self.app_retransmissions.items() if n == 0
        )

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts) and not self.quiet_apps

    @property
    def totals(self) -> Dict[str, int]:
        out = dict.fromkeys(
            ("retransmissions", "duplicate_deliveries", "timeout_stalls",
             "fault_messages"), 0,
        )
        for v in self.verdicts:
            for k in out:
                out[k] += getattr(v, k)
        return out

    def render(self) -> str:
        t = self.totals
        head = (
            f"chaos sweep: {len(self.verdicts)} cells x seeds {self.seeds} "
            f"({self.sweep_summary})"
        )
        cost = (
            f"fault cost: {t['retransmissions']} retransmissions, "
            f"{t['duplicate_deliveries']} duplicate deliveries, "
            f"{t['timeout_stalls']} timeout stalls, "
            f"{t['fault_messages']} injected messages"
        )
        if self.ok:
            return (
                f"{head}\n{cost}\n"
                "chaos gate OK: checksums and useful-data counters are "
                "bit-identical to the fault-free baselines"
            )
        bad = [v for v in self.verdicts if not v.ok]
        lines = [head, cost,
                 f"chaos gate FAILED: {len(bad)} cell(s) violate the "
                 "fault-transparency invariant"]
        lines.extend(v.render() for v in bad)
        for app in self.quiet_apps:
            lines.append(
                f"  {app}: zero retransmissions under a dropping plan "
                "(fault injection not reaching this application?)"
            )
        return "\n".join(lines)


def chaos_cells(
    plans: Sequence[FaultPlan],
    apps: Optional[Sequence[str]] = None,
    labels: Sequence[str] = ("4K",),
) -> List[SweepCell]:
    """The sweep cells: every (app, label, plan) on the golden matrix."""
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    for name in names:
        if name not in SMALL_DATASETS:
            raise KeyError(
                f"unknown application {name!r}; have {sorted(SMALL_DATASETS)}"
            )
    for label in labels:
        if label not in GOLDEN_LABELS:
            raise KeyError(f"unknown label {label!r}; have {GOLDEN_LABELS}")
    return [
        SweepCell.make(app, SMALL_DATASETS[app], label,
                       fault_plan=plan.canonical())
        for app in names
        for label in labels
        for plan in plans
    ]


def run_chaos(
    seeds: int = 5,
    base_seed: int = 0,
    plan: Optional[FaultPlan] = None,
    apps: Optional[Sequence[str]] = None,
    labels: Sequence[str] = ("4K",),
    jobs: int = 1,
    golden_dir: pathlib.Path = GOLDEN_DIR,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the chaos sweep and judge every cell against the baselines.

    ``plan`` is reseeded per sweep index (``base_seed + i``), so one
    invocation exercises ``seeds`` independent fault schedules."""
    base = default_plan() if plan is None else plan
    plans = [base.replace(seed=base_seed + i) for i in range(seeds)]
    report = ChaosReport(plan=base, seeds=[p.seed for p in plans])

    cells = chaos_cells(plans, apps=apps, labels=labels)
    sweep = run_cells(cells, jobs=jobs, progress=progress)
    report.sweep_summary = sweep.summary()
    failed = dict(sweep.failed)

    golden_dir = pathlib.Path(golden_dir)
    goldens: Dict[str, Optional[Dict[str, Any]]] = {}
    names = sorted(SMALL_DATASETS) if apps is None else list(apps)
    for app in names:
        goldens[app] = load_app_golden(golden_dir, app)
        report.app_retransmissions.setdefault(app, 0)

    for cell in cells:
        plan_seed = parse_plan(dict(cell.extra)["fault_plan"]).seed
        verdict = CellVerdict(cell=str(cell), seed=plan_seed)
        report.verdicts.append(verdict)
        if str(cell) in failed:
            verdict.error = f"run failed: {failed[str(cell)]}"
            continue
        golden = (goldens.get(cell.app) or {}).get(cell.dataset, {}).get(
            cell.label
        )
        if golden is None:
            verdict.error = (
                "no committed golden baseline (run `python -m repro.bench "
                "--refresh-golden` and commit the result)"
            )
            continue
        case = ResultCache.get(cell.app, cell.dataset, cell.label,
                               **cell.kwargs)
        verdict.time_us = case.time_us
        verdict.golden_time_us = golden.get("time_us", 0.0)
        verdict.retransmissions = case.retransmissions
        verdict.duplicate_deliveries = case.duplicate_deliveries
        verdict.timeout_stalls = case.timeout_stalls
        verdict.fault_messages = case.fault_messages
        report.app_retransmissions[cell.app] += case.retransmissions
        for fname in INVARIANT_FIELDS:
            expected = golden.get(fname)
            actual = getattr(case, fname)
            if expected != actual:
                verdict.diffs.append((fname, expected, actual))
    return report

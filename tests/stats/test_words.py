"""Word-usefulness tracking (Section 5.3 semantics)."""

import numpy as np
import pytest

from repro.stats.words import WordTracker


class Credits:
    def __init__(self):
        self.by_msg = {}

    def __call__(self, msg_id, n):
        self.by_msg[msg_id] = self.by_msg.get(msg_id, 0) + n


@pytest.fixture
def tracked():
    credits = Credits()
    return WordTracker(1024, credits), credits


def test_read_before_overwrite_is_useful(tracked):
    tr, credits = tracked
    tr.mark(np.array([10, 11, 12]), msg_id=5)
    tr.on_read(10, 2)
    assert credits.by_msg == {5: 2}


def test_overwrite_before_read_is_useless(tracked):
    tr, credits = tracked
    tr.mark(np.array([10, 11]), msg_id=5)
    tr.on_write(10, 2)
    tr.on_read(10, 2)
    assert credits.by_msg == {}


def test_each_word_credited_once(tracked):
    tr, credits = tracked
    tr.mark(np.array([7]), msg_id=1)
    tr.on_read(7, 1)
    tr.on_read(7, 1)
    assert credits.by_msg == {1: 1}


def test_remark_supersedes_earlier_message(tracked):
    """A later diff overwriting a pending word makes the earlier copy
    useless for that word."""
    tr, credits = tracked
    tr.mark(np.array([3, 4]), msg_id=1)
    tr.mark(np.array([4]), msg_id=2)
    tr.on_read(3, 2)
    assert credits.by_msg == {1: 1, 2: 1}


def test_partial_read_credits_only_touched_words(tracked):
    tr, credits = tracked
    tr.mark(np.arange(100, 200), msg_id=9)
    tr.on_read(150, 10)
    assert credits.by_msg == {9: 10}
    assert tr.pending_count() == 90


def test_read_spanning_multiple_messages(tracked):
    tr, credits = tracked
    tr.mark(np.array([0, 1]), msg_id=1)
    tr.mark(np.array([2, 3]), msg_id=2)
    tr.on_read(0, 4)
    assert credits.by_msg == {1: 2, 2: 2}


def test_unmarked_reads_are_free(tracked):
    tr, credits = tracked
    tr.on_read(0, 512)
    assert credits.by_msg == {}


def test_pending_count(tracked):
    tr, _ = tracked
    assert tr.pending_count() == 0
    tr.mark(np.arange(10), msg_id=0)
    assert tr.pending_count() == 10
    tr.on_write(0, 5)
    assert tr.pending_count() == 5

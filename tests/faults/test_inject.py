"""Injection layer: observer wiring, shadow accounting, trace events."""

import pytest

from repro.faults.channel import DroppedMessageError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, StragglerWindow
from repro.sim.config import SimConfig
from repro.sim.network import MessageClass, Network
from repro.stats.counters import ProtocolStats

from tests.conftest import tiny_app
from repro.apps.base import run_app


def make_injector(plan, nprocs=4, trace=None):
    config = SimConfig(nprocs=nprocs, unit_pages=1)
    network = Network(config)
    stats = ProtocolStats()
    inj = FaultInjector(plan, config, network, stats, trace=trace)
    network.add_observer(inj)
    return inj, network, stats


def test_clean_plan_is_a_no_op():
    inj, network, stats = make_injector(FaultPlan(seed=0))
    network.record(0, 1, MessageClass.LOCK, 16, 10.0, waiter=0)
    assert stats.retransmissions == 0
    assert inj.overhead_us == [0.0] * 4
    assert network.fault_message_count == 0


def test_drop_mirrors_retransmit_records_and_charges_waiter():
    plan = FaultPlan.uniform(seed=0, drop_rate=0.4, jitter_us=0.0)
    inj, network, stats = make_injector(plan)
    for msg_id in range(200):
        network.record(0, 1, MessageClass.LOCK, 16, float(msg_id), waiter=2)
    assert stats.retransmissions > 0
    assert stats.timeout_stalls > 0
    # Timeout stalls are charged to the waiter named by the protocol
    # layer, not to the destination.
    assert inj.overhead_us[2] > 0.0
    # Every injected copy is a RETRANSMIT-class ledger record with the
    # original's payload.
    copies = [m for m in network.messages
              if m.klass is MessageClass.RETRANSMIT]
    assert len(copies) == network.fault_message_count > 0
    assert all(m.payload_bytes == 16 for m in copies)


def test_duplicate_charges_receiver_cpu():
    plan = FaultPlan.uniform(seed=1, dup_rate=0.999999999)
    inj, network, stats = make_injector(plan)
    network.record(0, 3, MessageClass.BARRIER, 64, 5.0, waiter=0)
    assert stats.duplicate_deliveries == 1
    config_cpu = SimConfig(nprocs=4).msg_cpu_us
    assert inj.overhead_us[3] == pytest.approx(config_cpu)


def test_jitter_and_reorder_charge_waiter():
    plan = FaultPlan.uniform(seed=2, reorder_rate=0.999999999,
                             jitter_us=40.0)
    inj, network, stats = make_injector(plan)
    network.record(1, 2, MessageClass.DIFF_REQUEST, 32, 0.0, waiter=1)
    assert inj.jittered_deliveries == 1
    assert inj.reordered_deliveries == 1
    assert inj.overhead_us[1] > 0.0
    assert inj.overhead_us[2] == 0.0


def test_injector_ignores_retransmit_class():
    plan = FaultPlan.uniform(seed=3, drop_rate=0.5)
    inj, network, stats = make_injector(plan)
    network.record(0, 1, MessageClass.RETRANSMIT, 16, 0.0)
    assert stats.retransmissions == 0 and network.fault_message_count == 1


def test_finalize_stragglers_once():
    plan = FaultPlan(seed=0, stragglers=(
        StragglerWindow(proc=1, start_us=50.0, duration_us=100.0, factor=0.5),
        StragglerWindow(proc=2, start_us=900.0, duration_us=100.0),
    ))
    inj, _, _ = make_injector(plan)
    # proc 1 was still running at 50us; proc 2 finished before 900us.
    inj.finalize([500.0, 500.0, 500.0, 500.0])
    assert inj.overhead_us[1] == pytest.approx(50.0)
    assert inj.overhead_us[2] == 0.0
    assert inj.stragglers_applied == 1
    with pytest.raises(RuntimeError, match="finalize called twice"):
        inj.finalize([0.0] * 4)


def test_unknown_straggler_proc_rejected_at_construction():
    plan = FaultPlan(seed=0, stragglers=(
        StragglerWindow(proc=9, start_us=0.0, duration_us=1.0),
    ))
    with pytest.raises(ValueError, match="outside"):
        make_injector(plan, nprocs=4)


def test_network_observer_registry():
    config = SimConfig(nprocs=2, unit_pages=1)
    network = Network(config)
    plan = FaultPlan.uniform(seed=0, drop_rate=0.1)
    inj = FaultInjector(plan, config, network, ProtocolStats())
    network.add_observer(inj)
    assert network.observers == (inj,)
    with pytest.raises(ValueError, match="registered twice"):
        network.add_observer(inj)
    network.remove_observer(inj)
    assert network.observers == ()


def test_runtime_wires_injector_and_reports_summary():
    app, ds = tiny_app("Jacobi")
    plan = FaultPlan.uniform(seed=4, drop_rate=0.1, dup_rate=0.05,
                             jitter_us=20.0)
    config = SimConfig(nprocs=4, unit_pages=1, fault_plan=plan.canonical())
    res = run_app(app, ds, config)
    assert res.stats.retransmissions > 0
    assert res.comm.fault_messages > 0
    assert res.extra["fault_overhead_us"] > 0.0
    assert res.extra["fault_links"] >= 1.0
    # The shadow overhead is visible in the reported clocks.
    base = run_app(tiny_app("Jacobi")[0], ds,
                   SimConfig(nprocs=4, unit_pages=1))
    assert res.time_us > base.time_us
    assert res.checksum == base.checksum


def test_trace_records_fault_events():
    app, ds = tiny_app("Jacobi")
    plan = FaultPlan.uniform(seed=5, drop_rate=0.15, jitter_us=30.0)
    config = SimConfig(nprocs=4, unit_pages=1, trace=True,
                       fault_plan=plan.canonical())
    res = run_app(app, ds, config)
    kinds = {ev.kind for ev in res.trace.events}
    assert "retransmit" in kinds
    assert "fault_injected" in kinds
    faults = [ev for ev in res.trace.events if ev.kind == "fault_injected"]
    assert {ev.fault for ev in faults} & {"drop", "jitter"}


def test_dropped_message_error_propagates_from_run():
    app, ds = tiny_app("Jacobi")
    plan = FaultPlan.uniform(seed=6, drop_rate=0.5).replace(
        retries_enabled=False
    )
    config = SimConfig(nprocs=4, unit_pages=1, fault_plan=plan.canonical())
    with pytest.raises(DroppedMessageError):
        run_app(app, ds, config)

"""``repro.farm`` -- distributed sweep farm.

Three layers over the deterministic, identity-hashed sweep cells of
:mod:`repro.bench`:

* **store** (:mod:`repro.farm.store`): a content-addressed result store
  behind a backend interface -- a local directory byte-compatible with
  the bench disk cache, or a single-file SQLite database safe for many
  concurrent writers -- plus a claim/lease work queue;
* **workers** (:mod:`repro.farm.worker`): coordinator-free work-stealing
  processes that claim pending cells from the shared store, compute
  them bit-identically to any other executor, and publish the results;
* **service** (:mod:`repro.farm.service`): a read-only stdlib HTTP
  service rendering figures/tables from stored cells on demand, with
  content-addressed ETags and pending (never compute-in-request)
  semantics.

See DESIGN.md section 13 for why determinism makes the store the only
coordination the fleet needs.
"""

from repro.farm.store import (
    Claim,
    LocalDirBackend,
    ResultStore,
    SqliteBackend,
    StoreBackend,
    open_store,
)
from repro.farm.submit import sweep_cells, sweep_names
from repro.farm.worker import WorkerReport, work

__all__ = [
    "Claim",
    "LocalDirBackend",
    "ResultStore",
    "SqliteBackend",
    "StoreBackend",
    "WorkerReport",
    "open_store",
    "sweep_cells",
    "sweep_names",
    "work",
]

"""TreadMarks runtime wiring."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks


def test_single_use():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=4096)
    tmk.run(lambda proc: None)
    with pytest.raises(RuntimeError):
        tmk.run(lambda proc: None)


def test_checksum_comes_from_proc0():
    tmk = TreadMarks(SimConfig(nprocs=3), heap_bytes=4096)
    res = tmk.run(lambda proc: float(proc.id + 42))
    assert res.checksum == 42.0


def test_non_numeric_return_gives_none_checksum():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=4096)
    res = tmk.run(lambda proc: "not a number")
    assert res.checksum is None


def test_dynamic_with_multi_page_units_rejected():
    with pytest.raises(ValueError):
        TreadMarks(SimConfig(nprocs=2, dynamic=True, unit_pages=2), heap_bytes=4096)


def test_proc_identity():
    tmk = TreadMarks(SimConfig(nprocs=4), heap_bytes=4096)
    seen = []

    def body(proc):
        seen.append((proc.id, proc.nprocs))
        proc.barrier()

    tmk.run(body)
    assert sorted(seen) == [(i, 4) for i in range(4)]


def test_compute_advances_time():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=4096)

    def body(proc):
        proc.compute(us=123.0)
        assert proc.time_us == pytest.approx(123.0)
        proc.compute(flops=1000)

    res = tmk.run(body)
    assert res.time_us == pytest.approx(123.0 + 1000 * tmk.config.flop_us)


def test_deterministic_end_to_end():
    def build():
        tmk = TreadMarks(SimConfig(nprocs=4), heap_bytes=1 << 16)
        arr = tmk.array("a", (4096,), "uint32")

        def body(proc):
            for i in range(3):
                arr.write(proc, proc.id * 32, np.full(8, i, np.uint32))
                proc.barrier(i)
                arr.read(proc, ((proc.id + 1) % 4) * 32, 8)
                proc.barrier(100 + i)
            return float(proc.time_us)

        return tmk, tmk.run(body)

    t1, r1 = build()
    t2, r2 = build()
    assert r1.time_us == r2.time_us
    assert r1.comm.total_messages == r2.comm.total_messages
    assert [m.payload_bytes for m in t1.network.messages] == [
        m.payload_bytes for m in t2.network.messages
    ]


def test_malloc_alias():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=1 << 14)
    alloc = tmk.malloc("raw", 256)
    assert alloc.nwords == 64

"""The `python -m repro protocols` front end."""

import pytest

from repro.protocols import cli, protocol_names


class TestList:
    def test_lists_every_registered_protocol(self):
        text = cli.render_list()
        for name in protocol_names():
            assert name in text

    def test_marks_the_default(self):
        lines = cli.render_list().splitlines()
        starred = [ln for ln in lines if ln.startswith(" * ")]
        assert len(starred) == 1
        assert "tm-lrc" in starred[0]

    def test_main_list_exits_zero(self, capsys):
        assert cli.main(["--list"]) == 0
        assert "tm-lrc" in capsys.readouterr().out


class TestArgs:
    def test_nothing_to_do_is_an_error(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_label_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--smoke", "--label", "32K"])


class TestSmoke:
    @pytest.fixture
    def stub_runs(self, monkeypatch):
        """Replace run_case with a cheap stub; returns the mutable dict
        of per-protocol checksums it serves."""
        sums = {p: 1.25 for p in protocol_names()}
        calls = []

        class FakeCase:
            def __init__(self, checksum):
                self.checksum = checksum

        def fake_run_case(app, dataset, label, **extra):
            protocol = extra.get("protocol", "tm-lrc")
            calls.append((app, dataset, label, protocol))
            return FakeCase(sums[protocol])

        monkeypatch.setattr(cli, "run_case", fake_run_case)
        return sums, calls

    def test_unknown_app_fails(self, tmp_path, stub_runs):
        failures = cli.run_smoke(["NotAnApp"], "4K", tmp_path)
        assert failures and "unknown application" in failures[0]

    def test_invariant_checksums_pass(self, tmp_path, stub_runs, capsys):
        failures = cli.run_smoke(["Jacobi"], "4K", tmp_path)
        assert failures == []
        out = capsys.readouterr().out
        assert out.count("[ok ]") == len(protocol_names())

    def test_every_protocol_runs(self, tmp_path, stub_runs):
        _, calls = stub_runs
        cli.run_smoke(["Jacobi"], "4K", tmp_path)
        # One anchoring tm-lrc run (no committed golden in tmp_path)
        # plus one run per registered protocol.
        assert [c[3] for c in calls].count("tm-lrc") == 2
        assert {c[3] for c in calls} == set(protocol_names())

    def test_checksum_drift_fails(self, tmp_path, stub_runs):
        sums, _ = stub_runs
        sums["swi"] = 99.0
        failures = cli.run_smoke(["Jacobi"], "4K", tmp_path)
        assert len(failures) == 1
        assert "swi" in failures[0]

    def test_main_smoke_exit_codes(self, tmp_path, stub_runs, capsys):
        sums, _ = stub_runs
        args = ["--smoke", "--apps", "Jacobi", "--golden-dir", str(tmp_path)]
        assert cli.main(args) == 0
        assert "protocol smoke OK" in capsys.readouterr().out
        sums["erc"] = -1.0
        assert cli.main(args) == 1
        assert "protocol smoke FAILED" in capsys.readouterr().err

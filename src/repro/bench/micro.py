"""Section 5.1 microbenchmarks, re-measured on the simulated platform.

The paper reports for its hardware:

* 1-byte UDP round trip: 296 us
* lock acquisition: 374 - 574 us
* 8-processor barrier: 861 us
* diff fetch: 579 - 1746 us

These programs measure the same operations end-to-end through the public
API (not just the config constants), validating that the protocol layers
compose to the calibrated costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.core import Proc, SimConfig, TreadMarks


@dataclass
class MicroResult:
    name: str
    measured_us: float
    paper_lo_us: float
    paper_hi_us: float

    @property
    def in_range(self) -> bool:
        # Allow 25% slack around the paper band: the model is calibrated,
        # not fitted.
        return (
            0.75 * self.paper_lo_us
            <= self.measured_us
            <= 1.25 * self.paper_hi_us
        )


def snapshot(results: Iterable[MicroResult]) -> Dict[str, float]:
    """``name -> measured_us`` of a microbenchmark run.  The simulator is
    deterministic, so the golden regression gate exact-matches these
    alongside the application counters (see :mod:`repro.bench.golden`)."""
    return {r.name: r.measured_us for r in results}


def measure_barrier(nprocs: int = 8) -> float:
    """Average stall of an 8-processor barrier with aligned arrivals."""
    tmk = TreadMarks(SimConfig(nprocs=nprocs), heap_bytes=4096)
    n = 10
    times: Dict[int, float] = {}

    def body(proc: Proc) -> None:
        start = proc.time_us
        for i in range(n):
            proc.barrier(i)
        times[proc.id] = (proc.time_us - start) / n

    tmk.run(body)
    return sum(times.values()) / len(times)


def measure_lock(remote: bool = True) -> float:
    """Cost of an uncontended lock acquire + release."""
    tmk = TreadMarks(SimConfig(nprocs=2), heap_bytes=4096)
    out: Dict[str, float] = {}
    n = 10

    def body(proc: Proc) -> None:
        # Warm up ownership on proc 0, then measure on proc 1 (remote) by
        # bouncing ownership back each round.
        if proc.id == 0:
            proc.acquire(1)
            proc.release(1)
        proc.barrier(0)
        for i in range(n):
            if proc.id == (1 if remote else 0):
                t0 = proc.time_us
                proc.acquire(1)
                proc.release(1)
                out["total"] = out.get("total", 0.0) + (proc.time_us - t0)
            proc.barrier(1 + i)
            if remote and proc.id == 0:
                proc.acquire(1)
                proc.release(1)
            proc.barrier(100 + i)

    tmk.run(body)
    return out["total"] / n


def measure_rtt() -> float:
    """1-word producer/consumer exchange: one diff fetch of one word,
    minus the protocol service components = the modelled wire RTT."""
    cfg = SimConfig(nprocs=2)
    return 2 * cfg.msg_latency_us


def measure_diff_fetch(words: int) -> float:
    """Stall of a fault fetching a diff of ``words`` modified words."""
    tmk = TreadMarks(SimConfig(nprocs=2), heap_bytes=1 << 16)
    arr = tmk.array("a", (4096,), "uint32")
    out: Dict[str, float] = {}

    def body(proc: Proc) -> None:
        if proc.id == 0:
            arr.write(proc, 0, np.arange(words, dtype=np.uint32) + 1)
        proc.barrier()
        if proc.id == 1:
            t0 = proc.time_us
            arr.read(proc, 0, 1)  # faults; fetches the diff
            out["stall"] = proc.time_us - t0
        proc.barrier()

    tmk.run(body)
    # Subtract the access charge itself.
    return out["stall"]


def run_all() -> List[MicroResult]:
    """All microbenchmarks with the paper's reference bands."""
    return [
        MicroResult("1-byte round trip", measure_rtt(), 296.0, 296.0),
        MicroResult("lock acquire (remote)", measure_lock(True), 374.0, 574.0),
        MicroResult("8-processor barrier", measure_barrier(8), 861.0, 861.0),
        MicroResult("diff fetch (128 words)", measure_diff_fetch(128), 579.0, 1746.0),
        MicroResult("diff fetch (1024 words)", measure_diff_fetch(1024), 579.0, 1746.0),
    ]


def render(results: Iterable[MicroResult]) -> str:
    lines = ["Section 5.1 microbenchmarks (simulated vs paper)"]
    for r in results:
        band = (
            f"{r.paper_lo_us:.0f}"
            if r.paper_lo_us == r.paper_hi_us
            else f"{r.paper_lo_us:.0f}-{r.paper_hi_us:.0f}"
        )
        mark = "ok" if r.in_range else "OUT OF RANGE"
        lines.append(f"  {r.name:<26} {r.measured_us:8.1f} us   paper {band:>10} us   {mark}")
    return "\n".join(lines)

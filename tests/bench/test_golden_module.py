"""Golden-gate machinery (unit level; the committed baselines are
exercised end-to-end by tests/integration/test_golden.py)."""

import json

import pytest

from repro.bench import golden
from repro.bench.golden import (
    GOLDEN_FIELDS,
    GOLDEN_LABELS,
    SMALL_DATASETS,
    Mismatch,
    case_snapshot,
    compare_case,
    golden_cells,
)
from repro.bench.harness import ResultCache


@pytest.fixture(scope="module")
def case():
    return ResultCache.get("Jacobi", "1Kx1K", "4K")


class TestMatrix:
    def test_covers_all_eight_apps(self):
        assert len(SMALL_DATASETS) == 8
        cells = golden_cells()
        assert len(cells) == 8 * len(GOLDEN_LABELS)

    def test_filter_restricts_apps(self):
        cells = golden_cells(["Jacobi"])
        assert {c.app for c in cells} == {"Jacobi"}
        assert len(cells) == len(GOLDEN_LABELS)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            golden_cells(["NoSuchApp"])


class TestCompare:
    def test_snapshot_has_every_gated_counter(self, case):
        snap = case_snapshot(case)
        assert set(snap) == set(GOLDEN_FIELDS)
        assert snap["useful_messages"] == case.useful_messages

    def test_identical_snapshot_matches(self, case):
        assert compare_case("x", case, case_snapshot(case)) == []

    def test_drift_is_reported_per_field(self, case):
        gold = case_snapshot(case)
        gold["useless_bytes"] += 4
        gold["faults"] -= 1
        bad = compare_case("Jacobi/1Kx1K@4K", case, gold)
        assert {m.field for m in bad} == {"useless_bytes", "faults"}

    def test_mismatch_renders_expected_actual_and_delta(self):
        text = Mismatch("App/ds@4K", "useless_messages", 10, 17).render()
        assert "App/ds@4K" in text
        assert "expected 10" in text and "got 17" in text
        assert "+7" in text and "%" in text


class TestWriteAndCheck:
    def test_refresh_then_check_roundtrip(self, tmp_path):
        written = golden.write_golden(tmp_path, apps=["Jacobi"], jobs=1)
        assert [p.name for p in written] == ["Jacobi.json"]
        report = golden.check(tmp_path, apps=["Jacobi"], jobs=1)
        assert report.ok
        assert report.cells_checked == len(GOLDEN_LABELS)
        assert "OK" in report.render()

    def test_missing_baseline_fails_with_hint(self, tmp_path):
        report = golden.check(tmp_path, apps=["Jacobi"], jobs=1)
        assert not report.ok
        assert len(report.missing) == len(GOLDEN_LABELS)
        assert "--refresh-golden" in report.render()

    def test_perturbed_counter_fails_readably(self, tmp_path):
        golden.write_golden(tmp_path, apps=["Jacobi"], jobs=1)
        path = tmp_path / "Jacobi.json"
        entry = json.loads(path.read_text())
        entry["1Kx1K"]["4K"]["useful_messages"] += 3
        path.write_text(json.dumps(entry))
        report = golden.check(tmp_path, apps=["Jacobi"], jobs=1)
        assert not report.ok
        [m] = report.mismatches
        assert m.field == "useful_messages"
        assert "Jacobi/1Kx1K@4K" in report.render()
        assert "FAILED" in report.render()

"""Shim so that legacy (non-PEP-517) editable installs work in offline
environments without the ``wheel`` package: ``pip install -e . --no-build-isolation``.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()

"""Watching the Section-4 dynamic aggregation algorithm at work.

Builds a producer/consumer workload where one processor repeatedly reads
eight (non-contiguous!) pages written by another.  With static 4 KB
pages every round pays eight faults and eight exchanges; the dynamic
scheme observes the first round's access pattern, groups the pages, and
from round two on fetches all eight diffs with ONE fault and ONE
combined exchange.

    python examples/dynamic_aggregation.py
"""

import numpy as np

from repro.core import SimConfig, TreadMarks

ROUNDS = 6
#: Eight non-contiguous pages (every second page of a 16-page region):
#: static aggregation could never cover them without fetching the holes.
PAGES = [0, 2, 4, 6, 8, 10, 12, 14]


def run(config: SimConfig):
    tmk = TreadMarks(config, heap_bytes=1 << 18)
    arr = tmk.array("a", (16 * 1024,), dtype="uint32")

    def worker(proc) -> float:
        total = 0.0
        for r in range(ROUNDS):
            if proc.id == 0:
                for p in PAGES:
                    arr.write(proc, p * 1024, np.full(256, r + 1, np.uint32))
            proc.barrier(2 * r)
            if proc.id == 1:
                for p in PAGES:
                    total += float(arr.read(proc, p * 1024, 256).sum())
            proc.barrier(2 * r + 1)
        return total

    res = tmk.run(worker)
    reader_faults = [
        f for f in res.stats.fault_records if f.proc == 1 and not f.monitoring
    ]
    return res, reader_faults


def main() -> None:
    for label, cfg in [
        ("static 4K", SimConfig(nprocs=2, unit_pages=1)),
        ("static 16K", SimConfig(nprocs=2, unit_pages=4)),
        ("dynamic", SimConfig(nprocs=2, dynamic=True, max_group_pages=8)),
    ]:
        res, faults = run(cfg)
        per_round = {}
        for f in faults:
            per_round.setdefault(int(f.time_us // 1), None)
        sizes = [len(f.units) for f in faults]
        print(f"{label:>10}: time={res.time_us / 1e3:7.2f} ms  "
              f"messages={res.comm.total_messages:4d}  "
              f"reader data faults={len(faults):3d}  "
              f"fault sizes={sizes[:10]}{'...' if len(sizes) > 10 else ''}  "
              f"monitoring faults={res.stats.monitoring_faults}")
    print(
        "\nReading: static 16K fetches 4-page units, but the written pages "
        "are\nalternating, so half of every unit is useless data.  The "
        "dynamic scheme\ngroups exactly the eight written pages after the "
        "first round -- one fault,\none combined exchange per round, no "
        "useless data, at the price of the\nmonitoring faults."
    )


if __name__ == "__main__":
    main()

"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import Application, get_app, run_app
from repro.sim.config import SimConfig


def tiny_app(name: str) -> tuple:
    """An application instance with a shrunken 'tiny' dataset injected,
    for fast correctness/coherence tests (the granularity/page ratios of
    the paper datasets are not preserved -- trend tests use the real
    datasets)."""
    app = get_app(name)
    tiny = {
        "Jacobi": {"rows": 32, "cols": 1024, "iters": 2},
        "MGS": {"nvec": 16, "dim": 1024},
        "3D-FFT": {"n1": 16, "n2": 32, "n3": 32, "iters": 1},
        "Shallow": {"nrows": 512, "ncols": 16, "iters": 2},
        "Barnes": {"n": 200, "iters": 1, "max_cells": 2048},
        "Water": {"n": 48, "iters": 1},
        "ILINK": {"narrays": 2, "length": 512, "iters": 2, "stride": 4},
        "TSP": {"n": 8, "max_tours": 1024, "local_depth": 5},
    }[name]
    app.datasets = {**app.datasets, "tiny": tiny}
    return app, "tiny"


def checksum_close(app: Application, a: float, b: float) -> bool:
    """Compare checksums under the application's tolerance."""
    return abs(a - b) <= max(app.checksum_rtol * abs(b), 1e-9)


@pytest.fixture
def cfg4():
    """8 processors, 4 KB unit (the paper's baseline)."""
    return SimConfig(nprocs=8, unit_pages=1)


@pytest.fixture
def cfg_small():
    """4 processors, 4 KB unit: cheap protocol-level scenarios."""
    return SimConfig(nprocs=4, unit_pages=1)


ALL_APPS = ["Barnes", "ILINK", "Jacobi", "MGS", "Shallow", "TSP", "Water", "3D-FFT"]

UNIT_CONFIGS = {
    "4K": dict(unit_pages=1),
    "8K": dict(unit_pages=2),
    "16K": dict(unit_pages=4),
    "Dyn": dict(dynamic=True),
}

"""Work-stealing sweep workers.

A worker is a loop over the shared store: claim the next pending cell,
run it with the exact entry point the bench pool uses
(:func:`repro.bench.harness.run_case`, which pins the per-cell identity
seed), publish the result, repeat.  There is no coordinator and no
worker registry -- determinism plus content addressing *is* the
coordination.  Any number of ``python -m repro.farm worker`` processes
on any number of machines pointed at the same store drain the queue
together; a crashed worker's lease expires and its cell is reclaimed by
whoever gets there first, under a new lease generation.

A cell that fails deterministically (a fault plan that exhausts its
retransmission budget raises
:class:`repro.faults.channel.DroppedMessageError`) is marked failed
immediately and never retried: every worker would fail it identically.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bench.harness import CaseResult, run_case
from repro.faults.channel import DroppedMessageError
from repro.farm.store import Claim, ResultStore

#: Progress callback: one human-readable line per event.
Progress = Callable[[str], None]


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique enough to attribute leases."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerReport:
    """What one worker loop did."""

    worker: str = ""
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    cells: List[str] = field(default_factory=list)
    failures: List[Tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        tail = f", {self.failed} failed" if self.failed else ""
        return (
            f"worker {self.worker}: {self.claimed} cells claimed, "
            f"{self.completed} completed{tail}"
        )


def run_claim(claim: Claim) -> CaseResult:
    """Compute one claimed cell (bit-identical to any other executor)."""
    cell = claim.cell
    return run_case(cell.app, cell.dataset, cell.label, **cell.kwargs)


def work(
    store: ResultStore,
    worker_id: Optional[str] = None,
    max_cells: Optional[int] = None,
    follow: bool = False,
    poll_seconds: float = 0.5,
    max_polls: Optional[int] = None,
    progress: Optional[Progress] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerReport:
    """Drain the store's queue.

    Without ``follow`` the loop exits when a claim comes back empty
    (queue drained, or every remaining cell is leased elsewhere -- the
    other workers will finish those).  With ``follow`` it polls every
    ``poll_seconds`` for new work, forever (or until ``max_polls`` empty
    claims, which exists for tests and bounded smoke runs).
    """
    report = WorkerReport(worker=worker_id or default_worker_id())
    empty_polls = 0
    while max_cells is None or report.claimed < max_cells:
        claim = store.claim(report.worker)
        if claim is None:
            if not follow:
                break
            empty_polls += 1
            if max_polls is not None and empty_polls >= max_polls:
                break
            sleep(poll_seconds)
            continue
        empty_polls = 0
        report.claimed += 1
        report.cells.append(str(claim.cell))
        if progress:
            progress(f"run  {claim.cell} (generation {claim.generation})")
        try:
            result = run_claim(claim)
        except DroppedMessageError as exc:
            report.failed += 1
            report.failures.append((str(claim.cell), str(exc)))
            store.fail(claim, str(exc))
            if progress:
                progress(f"FAIL {claim.cell}: {exc}")
            continue
        store.complete(claim, result)
        report.completed += 1
        if progress:
            progress(f"done {claim.cell}")
    return report

"""Eager release consistency (ERC).

The Munin-style update protocol: at every release the writer creates its
interval's diffs immediately and *pushes* them -- together with the
interval's write notices -- to **every other processor** as one-way
:data:`~repro.sim.network.MessageClass.DIFF_PUSH` messages.  Receivers'
copies are always current, so there are no invalidations, no access
faults, and no fault-time exchanges at all.

The trade-offs against tm-lrc this makes measurable:

* release cost scales with ``nprocs`` (one push per peer per release)
  whether or not a peer ever touches the data -- most pushed words
  resolve useless, which is exactly the data-vs-messages trade the
  paper's Section 2 frames;
* because diffs are word-granularity, the consistency-unit size barely
  matters: false sharing costs nothing extra (no faults to ping-pong),
  but aggregation also buys nothing (no fault-time message combining to
  amortize).  The protocol sweep's per-unit-size rows are expected to be
  nearly flat.

Correctness: pushes are applied in global close order (a linear
extension of happens-before), and each push joins the receiver's vector
clock with the releaser's, so a later acquire finds no unseen notices --
the knowledge transfer that LRC performs lazily happens here eagerly,
backed by already-applied data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NoReturn, Sequence

import numpy as np

from repro.dsm.diff import apply_diff
from repro.dsm.lrc import LrcProc
from repro.protocols.base import CreditFn, ProtocolInfo, register
from repro.sim.network import MessageClass

if TYPE_CHECKING:
    from repro.dsm.address_space import SharedHeapLayout
    from repro.dsm.intervals import IntervalStore
    from repro.sim.clock import Clock
    from repro.sim.config import SimConfig
    from repro.sim.network import Network
    from repro.stats.counters import ProtocolStats


class EagerRcProc(LrcProc):
    """One processor under eager (update-at-release) RC."""

    #: All processors of the run (index == pid), wired by the build hook.
    peers: "List[EagerRcProc]"

    # ------------------------------------------------------------------
    # Release path: diff eagerly, push updates to every peer
    # ------------------------------------------------------------------
    def close_interval(self) -> None:
        if not self.twins:
            return
        units = sorted(self.twins)
        super().close_interval()
        interval = self.store.get(self.pid, self.vc[self.pid])
        now = self.clock.now
        cost = 0.0
        diffs = []
        total_wire = 0
        total_words = 0
        for unit in units:
            d = interval.diff_for(unit)
            key = (self.pid, unit, interval.index, interval.index)
            if key not in self.store.diff_scan_cache:
                self.store.diff_scan_cache.add(key)
                cost += self.layout.unit_bytes * self.config.diff_create_byte_us
                self.stats.diffs_created += 1
                self.stats.diff_words_created += d.nwords
                if self.trace is not None:
                    self.trace.on_diff_create(
                        self.pid, self.pid, now, unit, d.nwords
                    )
            diffs.append(d)
            total_wire += d.wire_bytes
            total_words += d.nwords
        # One update message per peer: all diffs of the interval plus its
        # write notices (the notices ride along, as in Munin's update
        # multicast, instead of travelling with later sync grants).
        payload = total_wire + len(units) * self.config.write_notice_bytes
        for peer in self.peers:
            if peer.pid == self.pid:
                continue
            msg = self.network.record(
                self.pid, peer.pid, MessageClass.DIFF_PUSH,
                payload, now, waiter=None,
            )
            msg.words_carried = total_words
            cost += self.config.msg_cpu_us  # send-side CPU; no stall
            for d in diffs:
                apply_diff(d, peer.space.unit_view(d.unit))
                twin = peer.twins.get(d.unit)
                if twin is not None:
                    apply_diff(d, twin)
                if d.nwords:
                    w0, _ = self.layout.unit_word_range(d.unit)
                    peer.tracker.mark(d.idx.astype(np.int64) + w0, msg.msg_id)
                self.stats.diffs_applied += 1
                self.stats.diff_words_applied += d.nwords
            # Eager knowledge transfer: the peer has now seen (and holds
            # the data of) every interval this releaser knows about.
            peer.vc.join(self.vc)
            self.stats.update_pushes += 1
            if self.trace is not None:
                self.trace.on_diff_push(
                    self.pid, peer.pid, now, tuple(units), total_words,
                    msg.msg_id,
                )
        # Notices were delivered with the pushes; nothing rides on the
        # next barrier-arrival message.
        self.unsent_notices = 0
        self.clock.advance(cost)

    # ------------------------------------------------------------------
    # Fault service: structurally unreachable
    # ------------------------------------------------------------------
    def fetch(self, units: Sequence[int]) -> NoReturn:
        # apply_notices_upto never finds unseen intervals (every close
        # joined all peers' clocks), so pending stays empty and the
        # aggregators never see an invalid unit.
        raise AssertionError(
            f"erc never faults: all updates are pushed eagerly "
            f"(fetch on units={list(units)})"
        )


def _build(
    layout: "SharedHeapLayout",
    config: "SimConfig",
    store: "IntervalStore",
    network: "Network",
    stats: "ProtocolStats",
    clocks: "List[Clock]",
    credit: CreditFn,
) -> List[LrcProc]:
    procs = [
        EagerRcProc(
            pid=pid,
            layout=layout,
            config=config,
            store=store,
            network=network,
            stats=stats,
            clock=clocks[pid],
            credit=credit,
        )
        for pid in range(config.nprocs)
    ]
    for p in procs:
        p.peers = procs
    return list(procs)


register(
    ProtocolInfo(
        name="erc",
        description=(
            "eager release consistency: write notices + diffs pushed to "
            "all sharers at every release; no faults, no fetches"
        ),
        build=_build,
    )
)

"""Engine: scheduling order, determinism, failure handling.

These tests drive the engine with a minimal hand-written handler (no DSM
protocol) implementing just enough lock/barrier semantics to exercise
scheduling.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.sim.config import SimConfig
from repro.sim.engine import DeadlockError, Engine, Op, OpKind, Resume


class MiniSync:
    """Tiny lock+barrier handler recording the service order."""

    def __init__(self, nprocs: int, lock_cost: float = 10.0) -> None:
        self.nprocs = nprocs
        self.lock_cost = lock_cost
        self.locks = {}
        self.barriers = {}
        self.order = []

    def __call__(self, op: Op):
        self.order.append((op.kind, op.proc, op.ts))
        if op.kind is OpKind.FINISH:
            return ()
        if op.kind is OpKind.BARRIER:
            arr = self.barriers.setdefault(op.arg, [])
            arr.append((op.proc, op.ts))
            if len(arr) < self.nprocs:
                return []
            del self.barriers[op.arg]
            t = max(ts for _, ts in arr)
            return [Resume(p, t + 1.0) for p, _ in arr]
        if op.kind is OpKind.ACQUIRE:
            lock = self.locks.setdefault(op.arg, {"holder": None, "waiters": deque()})
            if lock["holder"] is None:
                lock["holder"] = op.proc
                return [Resume(op.proc, op.ts + self.lock_cost)]
            lock["waiters"].append((op.proc, op.ts))
            return []
        if op.kind is OpKind.RELEASE:
            lock = self.locks[op.arg]
            lock["holder"] = None
            out = [Resume(op.proc, op.ts + 1.0)]
            if lock["waiters"]:
                p, ts = lock["waiters"].popleft()
                lock["holder"] = p
                out.append(Resume(p, max(ts, op.ts) + self.lock_cost))
            return out
        raise AssertionError(op)


def run_engine(nprocs, fns, handler=None):
    cfg = SimConfig(nprocs=nprocs)
    eng = Engine(cfg)
    handler = handler or MiniSync(nprocs)
    eng.run(fns, handler)
    return eng, handler


def test_single_proc_runs_to_completion():
    hits = []

    def fn(ctx):
        hits.append(ctx.pid)
        ctx.clock.advance(5.0)

    eng, _ = run_engine(1, [fn])
    assert hits == [0]
    assert eng.max_clock_us == pytest.approx(5.0)


def test_all_procs_run():
    hits = []
    fns = [lambda ctx: hits.append(ctx.pid) for _ in range(4)]
    run_engine(4, fns)
    assert sorted(hits) == [0, 1, 2, 3]


def test_barrier_aligns_clocks():
    def make(work):
        def fn(ctx):
            ctx.clock.advance(work)
            ctx.engine.park(ctx, OpKind.BARRIER, 0)

        return fn

    eng, _ = run_engine(3, [make(w) for w in (5.0, 50.0, 20.0)])
    # Everyone leaves at max arrival + 1.
    for ctx in eng.procs:
        assert ctx.clock.now == pytest.approx(51.0)


def test_lock_granted_in_simulated_request_order():
    grants = []

    def make(delay):
        def fn(ctx):
            ctx.clock.advance(delay)
            ctx.engine.park(ctx, OpKind.ACQUIRE, 7)
            grants.append(ctx.pid)
            ctx.clock.advance(100.0)
            ctx.engine.park(ctx, OpKind.RELEASE, 7)

        return fn

    # Request times: proc0 at 30, proc1 at 10, proc2 at 20.
    run_engine(3, [make(30.0), make(10.0), make(20.0)])
    assert grants == [1, 2, 0]


def test_deterministic_schedules():
    def body(ctx):
        for i in range(5):
            ctx.clock.advance(1.0 + ctx.pid)
            ctx.engine.park(ctx, OpKind.BARRIER, i)

    times = []
    for _ in range(2):
        eng, handler = run_engine(4, [body] * 4)
        times.append(([c.clock.now for c in eng.procs], handler.order))
    assert times[0] == times[1]


def test_exception_in_worker_propagates():
    def bad(ctx):
        raise RuntimeError("boom")

    def good(ctx):
        ctx.engine.park(ctx, OpKind.BARRIER, 0)

    cfg = SimConfig(nprocs=2)
    eng = Engine(cfg)
    with pytest.raises(RuntimeError, match="boom"):
        eng.run([bad, good], MiniSync(2))


def test_barrier_mismatch_deadlocks():
    def arrives(ctx):
        ctx.engine.park(ctx, OpKind.BARRIER, 0)

    def skips(ctx):
        pass  # finishes without arriving

    cfg = SimConfig(nprocs=2)
    eng = Engine(cfg)
    with pytest.raises(DeadlockError):
        eng.run([arrives, skips], MiniSync(2))

    # Teardown must have unblocked the parked thread.
    for ctx in eng.procs:
        assert ctx._thread is not None
        ctx._thread.join(timeout=1.0)
        assert not ctx._thread.is_alive()


def test_engine_not_reentrant_after_run():
    eng, _ = run_engine(1, [lambda ctx: None])
    with pytest.raises(Exception):
        eng.run([lambda ctx: None], MiniSync(1))


def test_wrong_fn_count_rejected():
    eng = Engine(SimConfig(nprocs=2))
    with pytest.raises(ValueError):
        eng.run([lambda ctx: None], MiniSync(2))


def test_resume_wakes_at_given_time():
    def fn(ctx):
        ctx.engine.park(ctx, OpKind.BARRIER, 0)
        assert ctx.clock.now == pytest.approx(1.0)  # 0 + barrier cost 1

    run_engine(1, [fn])


def test_interleaving_respects_global_time_order():
    """A processor that races ahead in wall-clock must not be serviced
    before a slower processor's earlier operation."""
    order = []

    class Recorder(MiniSync):
        def __call__(self, op):
            if op.kind is OpKind.BARRIER:
                order.append((op.proc, op.ts))
            return super().__call__(op)

    def make(step):
        def fn(ctx):
            for i in range(3):
                ctx.clock.advance(step)
                ctx.engine.park(ctx, OpKind.BARRIER, i)

        return fn

    run_engine(2, [make(1.0), make(100.0)], Recorder(2))
    # Arrivals at each barrier must be recorded in timestamp order.
    ts = [t for _, t in order]
    grouped = [sorted(ts[i : i + 2]) for i in range(0, len(ts), 2)]
    assert ts == [t for pair in grouped for t in pair]

"""Event record shapes and JSONL flattening."""

import json

from repro.trace.events import (
    AccessEvent,
    BarrierArriveEvent,
    BarrierDepartEvent,
    DiffApplyEvent,
    DiffCreateEvent,
    FaultEvent,
    GroupBuildEvent,
    GroupDissolveEvent,
    GroupFetchEvent,
    LockAcquireEvent,
    LockReleaseEvent,
    MessageEvent,
    ParkEvent,
    ResumeEvent,
    TwinEvent,
    event_to_dict,
)

EXPECTED_KINDS = {
    AccessEvent: "access",
    FaultEvent: "fault",
    TwinEvent: "twin",
    DiffCreateEvent: "diff_create",
    DiffApplyEvent: "diff_apply",
    MessageEvent: "message",
    LockAcquireEvent: "lock_acquire",
    LockReleaseEvent: "lock_release",
    BarrierArriveEvent: "barrier_arrive",
    BarrierDepartEvent: "barrier_depart",
    GroupBuildEvent: "group_build",
    GroupFetchEvent: "group_fetch",
    GroupDissolveEvent: "group_dissolve",
    ParkEvent: "park",
    ResumeEvent: "resume",
}


def test_every_subclass_sets_its_kind():
    for cls, kind in EXPECTED_KINDS.items():
        ev = cls(0, 0.0, 0)
        assert ev.kind == kind


def test_kinds_are_unique():
    assert len(set(EXPECTED_KINDS.values())) == len(EXPECTED_KINDS)


def test_event_to_dict_flattens_tuples_and_serializes():
    ev = FaultEvent(
        3, 12.5, 1, fault_id=7, units=(4, 5), writers=2,
        exchange_ids=(9,), stall_us=100.0, cost_us=120.0,
    )
    d = event_to_dict(ev)
    assert d["eid"] == 3 and d["proc"] == 1 and d["kind"] == "fault"
    assert d["units"] == [4, 5] and d["exchange_ids"] == [9]
    # Must round-trip through JSON without a custom encoder.
    assert json.loads(json.dumps(d)) == d


def test_access_event_payload():
    ev = AccessEvent(0, 1.0, 2, op="write", word0=128, nwords=16)
    d = event_to_dict(ev)
    assert d["op"] == "write" and d["word0"] == 128 and d["nwords"] == 16

"""Application-specific invariants beyond the checksum."""

import numpy as np
import pytest

from repro.apps.barnes import _initial_bodies, build_tree, force_on
from repro.apps.jacobi import _initial_grid, _jacobi_step
from repro.apps.mgs import _initial_vectors, _mgs_reference
from repro.apps.tsp import _distances, _greedy_cost, held_karp
from repro.apps.base import run_app
from repro.sim.config import SimConfig
from tests.conftest import tiny_app


class TestMGS:
    def test_reference_is_orthonormal(self):
        basis = _mgs_reference(_initial_vectors(12, 64))
        gram = basis @ basis.T
        assert np.allclose(gram, np.eye(12), atol=1e-4)

    def test_initial_vectors_deterministic(self):
        assert np.array_equal(_initial_vectors(8, 32), _initial_vectors(8, 32))


class TestJacobi:
    def test_step_preserves_fixed_edges(self):
        g = _initial_grid(16, 32)
        new = _jacobi_step(g)
        assert np.array_equal(new[0], g[0])
        assert np.array_equal(new[-1], g[-1])
        assert np.array_equal(new[:, 0], g[:, 0])
        assert np.array_equal(new[:, -1], g[:, -1])

    def test_step_smooths(self):
        g = _initial_grid(32, 32)
        for _ in range(50):
            g = _jacobi_step(g)
        interior_var = float(np.var(g[1:-1, 1:-1]))
        assert interior_var < float(np.var(_initial_grid(32, 32)[1:-1, 1:-1]))


class TestTSP:
    def test_held_karp_small_exact(self):
        d = np.array(
            [[0, 1, 9, 9], [1, 0, 1, 9], [9, 1, 0, 1], [9, 9, 1, 0]],
            dtype=np.int32,
        )
        assert held_karp(d) == 1 + 1 + 1 + 9  # 0-1-2-3-0

    def test_greedy_upper_bounds_optimum(self):
        for n in (6, 8, 10):
            d = _distances(n)
            assert _greedy_cost(d) >= held_karp(d)

    def test_distances_symmetric_zero_diagonal(self):
        d = _distances(9)
        assert np.array_equal(d, d.T)
        assert not d.diagonal().any()


class TestBarnes:
    def test_tree_mass_conserved(self):
        b = _initial_bodies(128)
        cells = build_tree(b[:, 0:3].copy(), b[:, 9].copy())
        assert cells[0, 3] == pytest.approx(128.0, rel=1e-5)

    def test_tree_contains_all_bodies(self):
        b = _initial_bodies(64)
        cells = build_tree(b[:, 0:3].copy(), b[:, 9].copy())
        found = set()
        for cid in range(cells.shape[0]):
            for s in range(8, 16):
                ref = int(cells[cid, s])
                if ref < 0:
                    found.add(-ref - 1)
        assert found == set(range(64))

    def test_force_approximates_direct_sum(self):
        b = _initial_bodies(96)
        cells = build_tree(b[:, 0:3].copy(), b[:, 9].copy())
        acc, inter = force_on(
            0, b[0, 0:3].copy(), lambda c: cells[c], lambda j: b[j, 0:10]
        )
        # Direct O(n^2) sum with the same kernel.
        direct = np.zeros(3, dtype=np.float64)
        for j in range(1, 96):
            d = (b[j, 0:3] - b[0, 0:3]).astype(np.float64)
            r2 = (d * d).sum() + 0.05
            direct += d * (1.0 / r2**1.5)
        assert np.allclose(acc, direct, rtol=0.25, atol=0.02)
        assert 0 < inter <= 96

    def test_morton_order_is_spatially_local(self):
        b = _initial_bodies(512)
        # Consecutive bodies should be much closer than random pairs.
        consec = np.linalg.norm(np.diff(b[:, 0:3], axis=0), axis=1).mean()
        rng = np.random.default_rng(1)
        i, j = rng.integers(0, 512, 200), rng.integers(0, 512, 200)
        rand = np.linalg.norm(b[i, 0:3] - b[j, 0:3], axis=1).mean()
        assert consec < rand * 0.5


class TestILink:
    def test_signature_has_one_and_max_spikes(self):
        app, _ = tiny_app("ILINK")
        res = run_app(app, "CLP", SimConfig(nprocs=8))
        sig = res.signature.normalized()
        assert 1 in sig and 7 in sig
        mass_at_spikes = sum(sum(sig[k]) for k in (1, 7) if k in sig)
        assert mass_at_spikes > 0.9

    def test_no_useless_messages(self):
        app, _ = tiny_app("ILINK")
        res = run_app(app, "CLP", SimConfig(nprocs=8))
        assert res.comm.useless_messages == 0
        assert res.comm.piggybacked_useless_bytes > 0


class TestWater:
    def test_signature_mostly_one_or_two_writers(self):
        app, _ = tiny_app("Water")
        res = run_app(app, "512", SimConfig(nprocs=8))
        sig = res.signature.normalized()
        low = sum(sum(v) for k, v in sig.items() if k <= 2)
        assert low > 0.7

    def test_private_data_travels_as_piggyback(self):
        app, _ = tiny_app("Water")
        res = run_app(app, "512", SimConfig(nprocs=8))
        assert res.comm.piggybacked_useless_bytes > 0

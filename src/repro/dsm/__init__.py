"""TreadMarks-style software DSM: lazy release consistency with a
multiple-writer (twin/diff) protocol.

Modules
-------

* :mod:`repro.dsm.vc` -- vector timestamps.
* :mod:`repro.dsm.intervals` -- interval records and write notices (the
  LRC consistency bookkeeping).
* :mod:`repro.dsm.diff` -- word-granularity diff creation / application
  and wire-size modelling (run-length encoded, as in TreadMarks).
* :mod:`repro.dsm.address_space` -- the paged shared address space with
  one private numpy-backed copy per processor.
* :mod:`repro.dsm.sync` -- lock and barrier semantics, plugged into the
  scheduling engine.
* :mod:`repro.dsm.lrc` -- the per-processor consistency protocol:
  invalidation at acquire, twin on first write, diff at release, fault
  handling with combined parallel diff fetches.
* :mod:`repro.dsm.dynamic` -- the Section-4 dynamic page-group
  aggregation algorithm.
"""

from repro.dsm.vc import VectorClock
from repro.dsm.intervals import Interval, WriteNotice, IntervalStore
from repro.dsm.diff import Diff, create_diff, apply_diff
from repro.dsm.address_space import AddressSpace, SharedHeapLayout

__all__ = [
    "VectorClock",
    "Interval",
    "WriteNotice",
    "IntervalStore",
    "Diff",
    "create_diff",
    "apply_diff",
    "AddressSpace",
    "SharedHeapLayout",
]

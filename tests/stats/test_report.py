"""Communication breakdown classification and conservation invariants."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.network import MessageClass
from repro.stats.report import summarize_comm


def run_pattern(body, nprocs=4, **cfg):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg), heap_bytes=1 << 16)
    arr = tmk.array("a", (8 * 1024,), "uint32")
    res = tmk.run(lambda proc: body(proc, arr))
    return tmk, res


def test_all_read_data_is_useful():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.arange(1024, dtype=np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 1024)
        proc.barrier()

    tmk, res = run_pattern(body)
    assert res.comm.useless_messages == 0
    assert res.comm.piggybacked_useless_bytes == 0


def test_unread_data_is_piggybacked_useless():
    """Reader consumes half of the diffed words -> the rest is useless
    data riding on a useful message."""

    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.arange(1024, dtype=np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 512)
        proc.barrier()

    tmk, res = run_pattern(body)
    assert res.comm.useless_messages == 0
    assert res.comm.piggybacked_useless_bytes == 512 * 4


def test_write_write_false_sharing_yields_useless_message():
    """p2's write-fault pulls p1's colocated-but-unread data: a useless
    exchange (both its messages count useless)."""

    def body(proc, arr):
        if proc.id == 1:
            arr.write(proc, 0, np.full(4, 1, np.uint32))
        proc.barrier()
        if proc.id == 2:
            arr.write(proc, 512, np.full(4, 2, np.uint32))  # same page
        proc.barrier()

    tmk, res = run_pattern(body)
    assert res.comm.useless_messages == 2  # one exchange


def test_conservation_messages():
    def body(proc, arr):
        arr.write(proc, proc.id * 16, np.full(8, proc.id + 1, np.uint32))
        proc.barrier()
        arr.read(proc, 0, 4 * 16)
        proc.barrier()

    tmk, res = run_pattern(body)
    c = res.comm
    assert c.total_messages == len(tmk.network.messages)
    assert c.useful_messages + c.useless_messages == c.data_messages
    assert c.sync_messages == tmk.network.sync_message_count


def test_conservation_bytes():
    def body(proc, arr):
        arr.write(proc, proc.id * 1024, np.arange(512, dtype=np.uint32))
        proc.barrier()
        if proc.id == 0:
            arr.read(proc, 1024, 128)  # partial read of proc 1's page
        proc.barrier()

    tmk, res = run_pattern(body)
    c = res.comm
    total_payload = sum(m.payload_bytes for m in tmk.network.messages)
    assert c.total_bytes == total_payload
    assert c.piggybacked_useless_bytes <= c.useless_bytes


def test_useless_data_equals_unread_diff_words():
    def body(proc, arr):
        if proc.id == 0:
            arr.write(proc, 0, np.arange(1000, dtype=np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 300)
        proc.barrier()

    tmk, res = run_pattern(body)
    replies = [
        m for m in tmk.network.messages if m.klass is MessageClass.DIFF_REPLY
    ]
    unread = sum(m.words_useless for m in replies) * 4
    # Piggybacked useless plus useless-message payload data words.
    assert res.comm.piggybacked_useless_bytes == unread  # all on useful msgs here


def test_unit_label():
    def body(proc, arr):
        proc.barrier()

    _, r4 = run_pattern(body, nprocs=2)
    assert r4.unit_label == "4K"
    _, r8 = run_pattern(body, nprocs=2, unit_pages=2)
    assert r8.unit_label == "8K"
    _, rd = run_pattern(body, nprocs=2, dynamic=True)
    assert rd.unit_label == "Dyn"


def test_time_is_max_proc_clock():
    def body(proc, arr):
        proc.compute(us=100.0 * (proc.id + 1))

    _, res = run_pattern(body)
    assert res.time_us == pytest.approx(max(res.proc_times_us))
    assert res.time_us >= 400.0

"""Heap layout, allocator, and geometry helpers."""

import numpy as np
import pytest

from repro.dsm.address_space import AddressSpace, SharedHeapLayout


def layout(heap=65536, page=4096, unit=4096):
    return SharedHeapLayout(heap, page, unit)


class TestLayout:
    def test_rounds_heap_to_unit_multiple(self):
        lay = layout(heap=5000, unit=8192)
        assert lay.heap_bytes == 8192
        assert lay.nunits == 1
        assert lay.npages == 2

    def test_unit_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            layout(unit=6000)

    def test_heap_must_be_positive(self):
        with pytest.raises(ValueError):
            layout(heap=0)

    def test_geometry_counts(self):
        lay = layout(heap=16384, unit=8192)
        assert lay.nwords == 4096
        assert lay.npages == 4
        assert lay.nunits == 2
        assert lay.words_per_unit == 2048


class TestMalloc:
    def test_page_aligned_by_default(self):
        lay = layout()
        a = lay.malloc("a", 100)
        b = lay.malloc("b", 100)
        assert a.offset == 0
        assert b.offset == 4096

    def test_word_aligned_packing(self):
        lay = layout()
        a = lay.malloc("a", 6, page_align=False)  # rounds to 8 bytes
        b = lay.malloc("b", 4, page_align=False)
        assert a.nbytes == 8
        assert b.offset == 8

    def test_duplicate_name_rejected(self):
        lay = layout()
        lay.malloc("x", 8)
        with pytest.raises(ValueError):
            lay.malloc("x", 8)

    def test_exhaustion(self):
        lay = layout(heap=8192)
        lay.malloc("a", 8192)
        with pytest.raises(MemoryError):
            lay.malloc("b", 4)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            layout().malloc("z", 0)

    def test_lookup(self):
        lay = layout()
        lay.malloc("grid", 128)
        assert "grid" in lay
        assert lay["grid"].nwords == 32


class TestGeometry:
    def test_unit_of_word(self):
        lay = layout(heap=16384, unit=8192)
        assert lay.unit_of_word(0) == 0
        assert lay.unit_of_word(2047) == 0
        assert lay.unit_of_word(2048) == 1

    def test_units_of_range_single(self):
        lay = layout(heap=16384)
        assert list(lay.units_of_range(0, 1024)) == [0]

    def test_units_of_range_spanning(self):
        lay = layout(heap=16384)
        assert list(lay.units_of_range(1000, 100)) == [0, 1]

    def test_units_of_range_exact_boundary(self):
        lay = layout(heap=16384)
        assert list(lay.units_of_range(1024, 1024)) == [1]

    def test_empty_range_rejected(self):
        lay = layout()
        with pytest.raises(ValueError):
            lay.units_of_range(0, 0)

    def test_pages_vs_units(self):
        lay = layout(heap=32768, unit=16384)
        assert list(lay.pages_of_range(0, 5000)) == [0, 1, 2, 3, 4]
        assert list(lay.units_of_range(0, 5000)) == [0, 1]

    def test_unit_word_range(self):
        lay = layout(heap=16384, unit=8192)
        assert lay.unit_word_range(1) == (2048, 4096)


class TestAddressSpace:
    def test_starts_zeroed(self):
        sp = AddressSpace(layout())
        assert not sp.words.any()

    def test_read_returns_copy(self):
        sp = AddressSpace(layout())
        got = sp.read_words(0, 4)
        got[:] = 7
        assert not sp.words[:4].any()

    def test_write_read_roundtrip(self):
        sp = AddressSpace(layout())
        sp.write_words(10, np.array([1, 2, 3], np.uint32))
        assert list(sp.read_words(10, 3)) == [1, 2, 3]

    def test_unit_view_is_view(self):
        sp = AddressSpace(layout(heap=16384))
        sp.unit_view(1)[0] = 42
        assert sp.words[1024] == 42

"""Vector timestamps for lazy release consistency.

Each processor ``p`` maintains a vector clock whose ``q``-th entry is the
index of the most recent interval of processor ``q`` whose write notices
``p`` has received.  Interval indices start at 1; entry 0 means "no
interval of q is known".
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class VectorClock:
    """A small mutable integer vector with the usual partial-order ops.

    Kept as a plain Python list: vectors have ``nprocs`` (<= 8 here)
    entries and are manipulated far less often than memory words, so
    clarity beats numpy here.
    """

    __slots__ = ("entries",)

    def __init__(self, nprocs_or_entries) -> None:
        if isinstance(nprocs_or_entries, int):
            self.entries: List[int] = [0] * nprocs_or_entries
        else:
            self.entries = list(int(e) for e in nprocs_or_entries)
        if any(e < 0 for e in self.entries):
            raise ValueError(f"negative vector-clock entry: {self.entries}")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, pid: int) -> int:
        return self.entries[pid]

    def __setitem__(self, pid: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative vector-clock entry: {value}")
        self.entries[pid] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self.entries)

    def copy(self) -> "VectorClock":
        """An independent copy."""
        return VectorClock(self.entries)

    # ------------------------------------------------------------------
    # Partial order
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.entries == other.entries

    def __le__(self, other: "VectorClock") -> bool:
        """Pointwise <= : "happened before or equal"."""
        self._check_peer(other)
        return all(a <= b for a, b in zip(self.entries, other.entries, strict=True))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strictly happened-before: <= and not equal."""
        return self <= other and self.entries != other.entries

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither happened-before the other."""
        return not (self <= other) and not (other <= self)

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def tick(self, pid: int) -> int:
        """Advance ``pid``'s own component (a new interval); returns the
        new interval index."""
        self.entries[pid] += 1
        return self.entries[pid]

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise max, in place (the least upper bound); returns self."""
        self._check_peer(other)
        for i, v in enumerate(other.entries):
            if v > self.entries[i]:
                self.entries[i] = v
        return self

    def joined(self, other: "VectorClock") -> "VectorClock":
        """Pointwise max as a new vector (self unchanged)."""
        return self.copy().join(other)

    # ------------------------------------------------------------------
    def _check_peer(self, other: "VectorClock") -> None:
        if len(other.entries) != len(self.entries):
            raise ValueError(
                f"vector length mismatch: {len(self.entries)} vs "
                f"{len(other.entries)}"
            )

    def __repr__(self) -> str:
        return f"VectorClock({self.entries})"

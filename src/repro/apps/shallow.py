"""Shallow: finite-difference shallow-water equations on a 2-D grid
(Section 5.5; Sadourny's scheme, the NCAR benchmark).

The arrays are column-major (as in the original Fortran) and each
processor owns a chunk of columns.  We store each array as an
``(ncols, nrows)`` C-order matrix so that one *column* of the physical
grid is one contiguous row -- one shared access of ``nrows`` words.

The paper identifies three access patterns, all reproduced here:

* **state arrays** (p, u, v): processors write only their own columns
  and read the first column of the right neighbour's chunk -- like
  Jacobi, piggybacked useless data appears once a unit holds more than
  one column;
* **flux arrays** (cu, cv, z): processors write a chunk *shifted by one*
  (their own columns plus the first column of the right neighbour's
  chunk) and later read back only the columns they wrote themselves.
  They never read columns written by the neighbour, so once a unit holds
  two columns the write-write false sharing produces **useless
  messages**;
* **wraparound copy**: the master copies the last column of the state
  arrays to the first -- piggybacked useless data only.

With the smallest dataset a column is exactly one 4 KB page: going to
8/16 KB triggers both extra useless messages and piggybacked useless
data (a slight net loss, as in Figure 2); the larger datasets (8 KB and
16 KB columns) leave room for aggregation to win.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.shared import SharedArray
from repro.core.treadmarks import TreadMarks

DT = np.float32(0.001)

STATE = ("p", "u", "v")
FLUX = ("cu", "cv", "z")


def _initial_state(ncols: int, nrows: int) -> Dict[str, np.ndarray]:
    j = np.arange(ncols, dtype=np.float32)[:, None]
    i = np.arange(nrows, dtype=np.float32)[None, :]
    return {
        "p": (np.float32(50.0) + np.float32(10.0) * np.sin(j * 0.2) * np.cos(i * 0.05)).astype(np.float32),
        "u": (np.sin(i * 0.11) * np.cos(j * 0.3)).astype(np.float32),
        "v": (np.cos(i * 0.07) * np.sin(j * 0.23)).astype(np.float32),
    }


def _flux_cols(p0: np.ndarray, p1: np.ndarray, u1: np.ndarray, v1: np.ndarray):
    """Flux formulas for target column j+1 from state columns j and j+1.
    All arithmetic in float32 so DSM and reference match bitwise."""
    cu = np.float32(0.5) * (p0 + p1) * u1
    cv = np.float32(0.5) * (p0 + p1) * v1
    z = (v1 - u1) / (p0 + p1 + np.float32(1.0))
    return cu.astype(np.float32), cv.astype(np.float32), z.astype(np.float32)


def _h_col(p0: np.ndarray, u0: np.ndarray, v0: np.ndarray) -> np.ndarray:
    return (p0 + np.float32(0.25) * (u0 * u0 + v0 * v0)).astype(np.float32)


def _update_cols(p0, u0, v0, cu1, cv1, z1, h0):
    """New state for column j from its own flux writes (j+1 slots)."""
    pn = p0 - DT * (cu1 + z1) + DT * h0
    un = u0 + DT * (cv1 - z1)
    vn = v0 + DT * (np.float32(0.1) * cu1 + np.float32(0.01) * h0)
    return pn.astype(np.float32), un.astype(np.float32), vn.astype(np.float32)


@AppRegistry.register
class Shallow(Application):
    """Shallow-water solver with column-chunk partitioning."""

    name = "Shallow"
    checksum_rtol = 1e-4

    datasets = {
        # Column = nrows float32; paper labels map to column-bytes.
        "1Kx0.5K": {"nrows": 1024, "ncols": 32, "iters": 5},  # 4 KB columns
        "2Kx0.5K": {"nrows": 2048, "ncols": 32, "iters": 5},  # 8 KB columns
        "4Kx0.5K": {"nrows": 4096, "ncols": 32, "iters": 5},  # 16 KB columns
        # Paper full size: the unscaled 512x512 grid (2 KB columns, all
        # 512 of them).  Part of the full-size golden tier; every worker
        # access is already a block operation, so it runs at bulk speed.
        "512x512": {"nrows": 512, "ncols": 512, "iters": 5},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return 10 * p["ncols"] * p["nrows"] * 4 + 10 * 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        shape = (p["ncols"], p["nrows"])
        names = list(STATE) + list(FLUX) + ["h", "pnew", "unew", "vnew"]
        return {n: tmk.array(n, shape, "float32") for n in names}

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        ncols, nrows, iters = params["ncols"], params["nrows"], params["iters"]
        lo, hi = self.block_range(ncols, proc.nprocs, proc.id)
        P = proc.nprocs

        # Distributed initialization: owners write their own columns.
        init = _initial_state(ncols, nrows)
        for n in STATE:
            handles[n].write_rows(proc, lo, init[n][lo:hi])
        proc.barrier()

        a = handles
        for _ in range(iters):
            # ---- Phase 1: fluxes.  Write the shifted chunk [lo+1, hi],
            # reading own columns plus the right neighbour's first.
            p_own = a["p"].read_rows(proc, lo, hi)
            u_own = a["u"].read_rows(proc, lo, hi)
            v_own = a["v"].read_rows(proc, lo, hi)
            nxt = hi % ncols
            p_next = a["p"].read_row(proc, nxt)
            u_next = a["u"].read_row(proc, nxt)
            v_next = a["v"].read_row(proc, nxt)

            p_sh = np.vstack([p_own[1:], p_next])
            u_sh = np.vstack([u_own[1:], u_next])
            v_sh = np.vstack([v_own[1:], v_next])
            cu, cv, z = _flux_cols(p_own, p_sh, u_sh, v_sh)
            h = _h_col(p_own, u_own, v_own)
            proc.compute(flops=12 * (hi - lo) * nrows)

            # Shifted write: columns lo+1 .. hi (hi may be the right
            # neighbour's first column; the last processor wraps to 0).
            for name, block in (("cu", cu), ("cv", cv), ("z", z)):
                if hi < ncols:
                    a[name].write_rows(proc, lo + 1, block)
                else:
                    if block.shape[0] > 1:
                        a[name].write_rows(proc, lo + 1, block[:-1])
                    a[name].write_row(proc, 0, block[-1])
            a["h"].write_rows(proc, lo, h)
            proc.barrier()

            # ---- Phase 2: update own columns from own flux writes only
            # (the j+1 slots we wrote: no reads of neighbour-written
            # flux columns -- the paper's pattern).
            cu1 = cu  # our own writes, re-read locally
            pn, un, vn = _update_cols(p_own, u_own, v_own, cu, cv, z, h)
            proc.compute(flops=10 * (hi - lo) * nrows)
            a["pnew"].write_rows(proc, lo, pn)
            a["unew"].write_rows(proc, lo, un)
            a["vnew"].write_rows(proc, lo, vn)
            proc.barrier()

            # ---- Phase 3: copy back; master performs the wraparound
            # copy of the last column onto the first.
            for src, dst in (("pnew", "p"), ("unew", "u"), ("vnew", "v")):
                block = a[src].read_rows(proc, lo, hi)
                a[dst].write_rows(proc, lo, block)
            proc.barrier()
            if proc.id == 0:
                for n in STATE:
                    last = a[n].read_row(proc, ncols - 1)
                    a[n].write_row(proc, 0, last)
            proc.barrier()

        local = 0.0
        for n in STATE:
            local += float(
                np.abs(a[n].read_rows(proc, lo, hi)).astype(np.float64).sum()
            )
        return self.collect_checksum(proc, handles, local)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: column-chunk ownership; the flux arrays are
        written *shifted by one column* but each column still has exactly
        one writer, so at 4 KB (one column per page) no conflict pages
        are predicted -- conflicts appear at 8/16 KB units."""
        from repro.analyze.access import AccessPattern

        ncols = params["ncols"]
        ranges = [self.block_range(ncols, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            for name in STATE:
                ph.write_rows(handles[name], p, lo, hi)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:flux")
            for p, (lo, hi) in enumerate(ranges):
                for name in STATE:
                    ph.read_rows(handles[name], p, lo, hi)
                    ph.read_rows(handles[name], p, hi % ncols,
                                 hi % ncols + 1)
                for name in FLUX:
                    if hi < ncols:
                        ph.write_rows(handles[name], p, lo + 1, hi + 1)
                    else:
                        if hi - lo > 1:
                            ph.write_rows(handles[name], p, lo + 1, ncols)
                        ph.write_rows(handles[name], p, 0, 1)
                ph.write_rows(handles["h"], p, lo, hi)
            ph = pat.phase(f"iter{it}:update")
            for p, (lo, hi) in enumerate(ranges):
                for name in ("pnew", "unew", "vnew"):
                    ph.write_rows(handles[name], p, lo, hi)
            ph = pat.phase(f"iter{it}:copyback")
            for p, (lo, hi) in enumerate(ranges):
                for src, dst in (("pnew", "p"), ("unew", "u"), ("vnew", "v")):
                    ph.read_rows(handles[src], p, lo, hi)
                    ph.write_rows(handles[dst], p, lo, hi)
            ph = pat.phase(f"iter{it}:wraparound")
            for name in STATE:
                ph.read_rows(handles[name], 0, ncols - 1, ncols)
                ph.write_rows(handles[name], 0, 0, 1)
        ph = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            for name in STATE:
                ph.read_rows(handles[name], p, lo, hi)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        prm = self.params(dataset)
        ncols, nrows, iters = prm["ncols"], prm["nrows"], prm["iters"]
        s = _initial_state(ncols, nrows)
        p, u, v = s["p"], s["u"], s["v"]
        for _ in range(iters):
            p_sh = np.roll(p, -1, axis=0)
            u_sh = np.roll(u, -1, axis=0)
            v_sh = np.roll(v, -1, axis=0)
            cu, cv, z = _flux_cols(p, p_sh, u_sh, v_sh)
            h = _h_col(p, u, v)
            pn, un, vn = _update_cols(p, u, v, cu, cv, z, h)
            p, u, v = pn, un, vn
            # Wraparound copy: last column onto the first.
            p[0], u[0], v[0] = p[-1], u[-1], v[-1]
        total = 0.0
        for arr in (p, u, v):
            total += float(np.abs(arr).astype(np.float64).sum())
        return total

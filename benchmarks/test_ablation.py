"""Ablations of the design choices DESIGN.md calls out."""

from benchmarks.conftest import save_text
from repro.bench.ablation import (
    ablate_parallel_fetch,
    ablate_request_combining,
    render,
    sweep_group_size,
)


def test_group_size_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: sweep_group_size("ILINK", "CLP") + sweep_group_size("MGS", "1Kx1K"),
        rounds=1,
        iterations=1,
    )
    save_text(results_dir, "ablation_group_size.txt", render(rows))
    ilink = [r for r in rows if "ILINK" in r.name]
    mgs = [r for r in rows if "MGS" in r.name]
    # Grouping must help Ilink (fewer messages with bigger groups)...
    assert ilink[-1].total_messages < ilink[0].total_messages
    # ...and must never hurt MGS by more than a few percent relative to
    # no grouping (the paper's "at worst a few percent below").
    base = mgs[0].time_us
    assert all(r.time_us <= base * 1.05 for r in mgs)


def test_request_combining(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: ablate_request_combining("ILINK", "CLP"), rounds=1, iterations=1
    )
    save_text(results_dir, "ablation_combining.txt", render(rows))
    combined, uncombined = rows
    assert combined.total_messages <= uncombined.total_messages
    assert combined.time_us <= uncombined.time_us * 1.01


def test_parallel_fetch(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: ablate_parallel_fetch("ILINK", "CLP"), rounds=1, iterations=1
    )
    save_text(results_dir, "ablation_parallel_fetch.txt", render(rows))
    parallel, serial = rows
    # Same message count, strictly more stall when serialized.
    assert parallel.total_messages == serial.total_messages
    assert parallel.time_us < serial.time_us

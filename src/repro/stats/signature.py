"""The false-sharing signature (Figure 3).

The paper characterizes applications by "a histogram denoting the
distribution of the number of concurrent writers (and therefore the
number of message exchanges) observed at a page fault", with each bar
split into the useful and useless messages falling in that bucket.  A
rightward shift of the signature when the consistency unit grows predicts
a performance loss; an invariant signature predicts a win from
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.network import Network
from repro.stats.counters import ProtocolStats


@dataclass
class SignatureBucket:
    """Exchanges observed at faults that contacted ``writers`` writers."""

    writers: int
    faults: int = 0
    useful_exchanges: int = 0
    useless_exchanges: int = 0

    @property
    def exchanges(self) -> int:
        return self.useful_exchanges + self.useless_exchanges


@dataclass
class FalseSharingSignature:
    """Histogram over card(CW) at faults, split useful/useless."""

    buckets: Dict[int, SignatureBucket] = field(default_factory=dict)

    def bucket(self, writers: int) -> SignatureBucket:
        if writers not in self.buckets:
            self.buckets[writers] = SignatureBucket(writers=writers)
        return self.buckets[writers]

    @property
    def total_exchanges(self) -> int:
        return sum(b.exchanges for b in self.buckets.values())

    @property
    def max_writers(self) -> int:
        return max(self.buckets) if self.buckets else 0

    def normalized(self) -> Dict[int, tuple]:
        """``writers -> (useful_frac, useless_frac)`` of all exchanges,
        matching Figure 3's normalized bars."""
        total = self.total_exchanges
        if total == 0:
            return {}
        return {
            w: (b.useful_exchanges / total, b.useless_exchanges / total)
            for w, b in sorted(self.buckets.items())
        }

    def mean_writers(self) -> float:
        """Exchange-weighted mean of card(CW): a scalar measure of the
        signature's rightward shift."""
        total = self.total_exchanges
        if total == 0:
            return 0.0
        return sum(w * b.exchanges for w, b in self.buckets.items()) / total


def normalized_to_json(sig: Dict[int, tuple]) -> Dict[str, List[float]]:
    """JSON-safe form of :meth:`FalseSharingSignature.normalized` output
    (JSON object keys must be strings; tuples become 2-lists).  Used by
    the on-disk result cache and the golden baselines."""
    return {str(w): [float(u), float(ul)] for w, (u, ul) in sorted(sig.items())}


def normalized_from_json(data: Dict[str, List[float]]) -> Dict[int, tuple]:
    """Inverse of :func:`normalized_to_json` (exact: floats round-trip
    through JSON losslessly)."""
    return {int(w): (pair[0], pair[1]) for w, pair in data.items()}


def build_signature(stats: ProtocolStats, network: Network) -> FalseSharingSignature:
    """Build the signature from fault records once word usefulness has
    resolved (i.e. after the run completed)."""
    sig = FalseSharingSignature()
    for rec in stats.fault_records:
        if rec.monitoring or rec.writers == 0:
            continue
        b = sig.bucket(rec.writers)
        b.faults += 1
        for ex_id in rec.exchange_ids:
            reply = network.exchange_reply(ex_id)
            if reply.words_useful > 0:
                b.useful_exchanges += 1
            else:
                b.useless_exchanges += 1
    return sig

"""Determinism-lint rules.

Every rule is a pure function from a parsed module to hazard hits.  The
rules are deliberately *syntactic*: they flag the textual patterns that
have historically broken bit-reproducibility in this codebase (unordered
iteration, wall clocks, process-global RNGs, identity-ordered
comparisons, float drift into integer counters), and rely on the
per-line ``# detlint: ok(<rule>)`` suppression for the occasions where
the pattern is deliberate.  A suppression is part of the diff and hence
of review; an unflagged hazard is not -- so the rules prefer the
occasional suppressible false positive over silence.

Rule ids (kebab-case, used in suppression comments):

``set-iter``
    Iteration over an expression statically known to be a ``set`` /
    ``frozenset`` (literal, comprehension, constructor call, set
    operator, set-method call, or a local name assigned one), or over a
    ``dict`` key view, in an ordering-sensitive context (``for``,
    comprehension, ``list``/``tuple``/``iter``/``enumerate``/
    ``reversed``/``join``) without a ``sorted(...)`` wrapper.

``wall-clock``
    A call that reads host wall-clock or CPU time (``time.time``,
    ``time.monotonic``, ``time.perf_counter``, ``datetime.now``, ...).
    Simulated time comes from :mod:`repro.sim.clock`; host time leaking
    into results breaks run-to-run identity.

``global-random``
    Draws from process-global or OS entropy: module-level ``random.*``
    (seeded instances via ``random.Random(seed)`` are fine),
    ``np.random.*`` legacy functions, ``np.random.default_rng()``
    *without* a seed argument, ``os.urandom``, ``uuid.uuid1``/``uuid4``,
    and anything from ``secrets``.

``id-order``
    Ordering decisions keyed on object identity or hash: ``key=id``,
    ``key=hash`` (directly or via a trivial lambda) and relational
    comparisons between ``id(...)`` calls.  CPython ids are allocation
    addresses; hash of str/bytes is salted per process.

``golden-float``
    Float creep into the integral communication counters compared
    exactly by the golden gate: ``+=``/``=`` on an attribute named like
    one of the integer :data:`repro.bench.golden.GOLDEN_FIELDS` whose
    right-hand side contains a float literal, a true division, or a
    ``float(...)`` call.

``unordered-draw``
    Single-element draws whose choice depends on container internals:
    ``dict.popitem()`` (insertion history), ``pop()`` on a statically
    known set (hash-table order), and ``next(iter(x))`` where ``x`` is
    statically a set or a dict key view.  Prefer ``min(...)`` or an
    explicit sort; in simulation-ordered code an arbitrary-but-stable
    draw today becomes a replay divergence after any refactor that
    changes insertion order.

``parse-error``
    The file does not parse; emitted by the engine, never suppressed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Set, Tuple

#: One hazard hit: (line, col, message).
Hit = Tuple[int, int, str]


@dataclass(frozen=True)
class Rule:
    """One named determinism-lint rule."""

    name: str
    description: str
    check: Callable[[ast.Module], Iterable[Hit]]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def dotted_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty when the base is not a
    plain name (calls, subscripts, ...)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """(scope node, its immediate body) for the module and every
    function/method, outermost first."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes
    (each function is scanned as its own scope by the caller)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


#: set-returning methods of set objects.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: set-typed binary operators (when either operand is a known set).
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """True when ``node`` is statically known to produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _collect_set_names(body: List[ast.stmt]) -> Set[str]:
    """Names assigned a known-set expression anywhere in this scope's
    immediate statements (nested blocks included, nested functions not).
    A later non-set reassignment removes the name; the approximation is
    per-scope, not flow-sensitive."""
    names: Set[str] = set()

    class Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass  # inner scope

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, names):
                        names.add(target.id)
                    else:
                        names.discard(target.id)
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if isinstance(node.target, ast.Name) and node.value is not None:
                if _is_set_expr(node.value, names):
                    names.add(node.target.id)
                else:
                    names.discard(node.target.id)
            self.generic_visit(node)

    collector = Collector()
    for stmt in body:
        collector.visit(stmt)
    return names


# ----------------------------------------------------------------------
# set-iter
# ----------------------------------------------------------------------
#: Builtins whose output order follows their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed"}
)


def check_set_iter(tree: ast.Module) -> Iterator[Hit]:
    for scope, body in _iter_scopes(tree):
        set_names = _collect_set_names(body)

        def flag(node: ast.expr, what: str) -> Iterator[Hit]:
            yield (
                node.lineno,
                node.col_offset,
                f"iteration over {what} has no deterministic order; "
                f"wrap it in sorted(...)",
            )

        def hazards(iter_expr: ast.expr) -> Iterator[Hit]:
            if _is_set_expr(iter_expr, set_names):
                yield from flag(iter_expr, "a set")
            elif _is_keys_call(iter_expr):
                yield from flag(
                    iter_expr,
                    "a dict key view (ordering is a property of "
                    "insertion history, not of the keys)",
                )

        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # its body is scanned as its own scope
            for sub in _scope_walk(node):
                if isinstance(sub, ast.For):
                    yield from hazards(sub.iter)
                elif isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in sub.generators:
                        yield from hazards(gen.iter)
                elif isinstance(sub, ast.Call):
                    callee = sub.func
                    is_join = (
                        isinstance(callee, ast.Attribute) and callee.attr == "join"
                    )
                    is_seq = (
                        isinstance(callee, ast.Name)
                        and callee.id in _ORDER_SENSITIVE_CALLS
                    )
                    if (is_join or is_seq) and sub.args:
                        arg = sub.args[0]
                        if _is_set_expr(arg, set_names):
                            yield from flag(arg, "a set")


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
#: (penultimate, last) dotted-name tails of wall-clock reads.
_CLOCK_TAILS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)


def check_wall_clock(tree: ast.Module) -> Iterator[Hit]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if len(chain) >= 2 and chain[-2:] in _CLOCK_TAILS:
            yield (
                node.lineno,
                node.col_offset,
                f"wall-clock read {'.'.join(chain)}() in simulation-ordered "
                f"code; use the simulated clock (repro.sim.clock)",
            )


# ----------------------------------------------------------------------
# global-random
# ----------------------------------------------------------------------
def check_global_random(tree: ast.Module) -> Iterator[Hit]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if not chain:
            continue
        dotted = ".".join(chain)
        # module-level `random.*` (a seeded random.Random(...) is fine).
        if (
            len(chain) == 2
            and chain[0] == "random"
            and chain[1] not in ("Random",)
        ):
            yield (
                node.lineno,
                node.col_offset,
                f"{dotted}() draws from the process-global RNG; use a "
                f"seeded generator (random.Random(seed), cf. "
                f"repro.faults.plan.message_rng)",
            )
        # numpy legacy global RNG, and unseeded default_rng().
        elif chain[0] in ("np", "numpy") and len(chain) >= 2 and chain[1] == "random":
            tail = chain[-1]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
            elif tail != "Generator":
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{dotted}() uses numpy's process-global RNG; use "
                    f"np.random.default_rng(seed)",
                )
        elif dotted in ("os.urandom",) or chain[0] == "secrets":
            yield (
                node.lineno,
                node.col_offset,
                f"{dotted}() reads OS entropy; simulation-ordered code "
                f"must be seeded",
            )
        elif len(chain) == 2 and chain[0] == "uuid" and chain[1] in (
            "uuid1",
            "uuid4",
        ):
            yield (
                node.lineno,
                node.col_offset,
                f"{dotted}() is host/entropy dependent; derive ids from "
                f"run identity instead (cf. repro.bench.cache.cell_key)",
            )


# ----------------------------------------------------------------------
# id-order
# ----------------------------------------------------------------------
def _is_identity_key(node: ast.expr) -> bool:
    """``id`` / ``hash``, bare or behind a trivial lambda."""
    if isinstance(node, ast.Name) and node.id in ("id", "hash"):
        return True
    if isinstance(node, ast.Lambda):
        body = node.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id in ("id", "hash")
        )
    return False


_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("id", "hash")
    )


def check_id_order(tree: ast.Module) -> Iterator[Hit]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "key" and _is_identity_key(kw.value):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "ordering keyed on object identity/hash varies "
                        "across processes; key on a stable field instead",
                    )
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if (
                any(isinstance(op, _ORDER_OPS) for op in node.ops)
                and sum(_is_id_call(o) for o in operands) >= 2
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "relational comparison of id()/hash() values is "
                    "address/salt dependent",
                )


# ----------------------------------------------------------------------
# golden-float
# ----------------------------------------------------------------------
#: The integer members of :data:`repro.bench.golden.GOLDEN_FIELDS`.
#: Kept as a literal so this module stays import-light; the tie to the
#: real tuple is asserted by ``tests/analyze/test_rules.py``.
GOLDEN_INT_FIELDS = frozenset(
    {
        "useful_messages",
        "useless_messages",
        "sync_messages",
        "useful_bytes",
        "useless_bytes",
        "piggybacked_useless_bytes",
        "sync_bytes",
        "faults",
        "monitoring_faults",
        "fault_messages",
        "fault_bytes",
        "retransmissions",
        "duplicate_deliveries",
        "timeout_stalls",
    }
)


def _has_float_syntax(node: ast.expr) -> bool:
    """RHS contains a float literal, a true division, or ``float(...)``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


def check_golden_float(tree: ast.Module) -> Iterator[Hit]:
    for node in ast.walk(tree):
        target: ast.expr
        value: ast.expr
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Attribute)
            and target.attr in GOLDEN_INT_FIELDS
            and _has_float_syntax(value)
        ):
            yield (
                node.lineno,
                node.col_offset,
                f"float arithmetic accumulating into {target.attr!r}, an "
                f"exactly-compared golden counter; keep it integral",
            )


# ----------------------------------------------------------------------
# unordered-draw
# ----------------------------------------------------------------------
def check_unordered_draw(tree: ast.Module) -> Iterator[Hit]:
    """Single-element draws whose choice depends on container internals:
    ``d.popitem()`` (insertion history), ``s.pop()`` on a set (hash
    table order), and ``next(iter(x))`` on a set or dict view."""
    for scope, body in _iter_scopes(tree):
        set_names = _collect_set_names(body)
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in _scope_walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                callee = sub.func
                if isinstance(callee, ast.Attribute):
                    if (
                        callee.attr == "popitem"
                        and not sub.args
                        and not sub.keywords
                    ):
                        yield (
                            sub.lineno,
                            sub.col_offset,
                            "popitem() draws by insertion history; pop a "
                            "deterministically chosen key instead "
                            "(e.g. min(d))",
                        )
                    elif (
                        callee.attr == "pop"
                        and not sub.args
                        and not sub.keywords
                        and _is_set_expr(callee.value, set_names)
                    ):
                        yield (
                            sub.lineno,
                            sub.col_offset,
                            "set.pop() draws by hash-table order; pop "
                            "min(s) (or sort first) instead",
                        )
                elif (
                    isinstance(callee, ast.Name)
                    and callee.id == "next"
                    and sub.args
                ):
                    inner = sub.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "iter"
                        and inner.args
                        and (
                            _is_set_expr(inner.args[0], set_names)
                            or _is_keys_call(inner.args[0])
                        )
                    ):
                        yield (
                            sub.lineno,
                            sub.col_offset,
                            "next(iter(...)) over an unordered container "
                            "draws an arbitrary element; use min(...) or "
                            "sorted(...)[0]",
                        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
RULES: Tuple[Rule, ...] = (
    Rule(
        "set-iter",
        "unordered set / dict-key-view iteration without sorted()",
        check_set_iter,
    ),
    Rule("wall-clock", "host wall-clock or CPU-time read", check_wall_clock),
    Rule(
        "global-random",
        "process-global or OS-entropy randomness",
        check_global_random,
    ),
    Rule(
        "id-order",
        "ordering keyed on object identity or hash",
        check_id_order,
    ),
    Rule(
        "golden-float",
        "float accumulation into an integral golden counter",
        check_golden_float,
    ),
    Rule(
        "unordered-draw",
        "arbitrary single-element draw from an unordered container",
        check_unordered_draw,
    ),
)

RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in RULES}

#: Rule ids that may appear in a suppression comment (parse-error and
#: unused-suppression are engine-emitted and not suppressible).
SUPPRESSIBLE = frozenset(RULES_BY_NAME)

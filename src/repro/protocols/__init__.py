"""repro.protocols -- the pluggable consistency-protocol zoo.

The paper's results are all measured under TreadMarks' multi-writer lazy
release consistency.  This package makes the protocol a pluggable axis
(``SimConfig.protocol``) so the false-sharing-vs-aggregation trade-off
can be swept *across protocol designs*, not just across unit sizes:

===========  ===========================================================
``tm-lrc``   TreadMarks LRC (the paper's protocol; the default).
             Lazy diffs, multi-writer, fault-time gathers from every
             concurrent writer.
``hlrc``     Home-based LRC.  Diffs eagerly flushed to a per-unit home
             at release; a fault is one whole-unit round trip per home.
``erc``      Eager release consistency.  Diffs + write notices pushed
             to all sharers at every release; no faults at all.
``swi``      Single-writer invalidate.  One owner per unit,
             invalidations on ownership transfer; false sharing
             ping-pongs ownership.
===========  ===========================================================

All four implement release consistency for data-race-free programs, so
every application's final data (its checksum) is protocol-invariant --
the cross-protocol oracle asserted by
``tests/integration/test_protocol_zoo.py``.  What differs is *cost*:
where each protocol pays (release vs fault), in what currency (messages
vs data vs mprotects), and how the bill scales with the consistency-unit
size -- which is exactly what ``python -m repro.bench protocols`` tabulates.

Protocol implementations subclass :class:`repro.dsm.lrc.LrcProc` and
register a :class:`ProtocolInfo`; the runtime resolves
``SimConfig.protocol`` through :func:`get_protocol`.
"""

from repro.dsm.lrc import LrcProc
from repro.protocols.base import (
    ConsistencyProtocol,
    ProtocolInfo,
    all_protocols,
    build_uniform,
    get_protocol,
    protocol_names,
    register,
)

register(
    ProtocolInfo(
        name="tm-lrc",
        description=(
            "TreadMarks lazy release consistency (the paper's protocol): "
            "lazy diffs, multi-writer, fault-time gathers per writer"
        ),
        build=build_uniform(LrcProc),
    )
)

# Self-registering implementations (import order fixes nothing: the
# registry is sorted by name wherever it is enumerated).
from repro.protocols import erc as _erc  # noqa: E402
from repro.protocols import hlrc as _hlrc  # noqa: E402
from repro.protocols import swi as _swi  # noqa: E402

__all__ = [
    "ConsistencyProtocol",
    "ProtocolInfo",
    "all_protocols",
    "build_uniform",
    "get_protocol",
    "protocol_names",
    "register",
]

del _erc, _hlrc, _swi

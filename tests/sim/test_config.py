"""SimConfig: calibration arithmetic and validation."""

import pytest

from repro.sim.config import PAPER_PLATFORM, SimConfig


class TestDefaults:
    def test_paper_page_size(self):
        assert PAPER_PLATFORM.page_size == 4096

    def test_paper_nprocs(self):
        assert PAPER_PLATFORM.nprocs == 8

    def test_one_byte_round_trip_matches_paper(self):
        # 296 us RTT for a 1-byte UDP message (Section 5.1); header bytes
        # model the fixed stack cost, so compare bare latency.
        assert 2 * PAPER_PLATFORM.msg_latency_us == pytest.approx(296.0)

    def test_barrier_overhead_in_measured_range(self):
        # 861 us for the 8-processor barrier (Section 5.1).
        got = PAPER_PLATFORM.barrier_overhead_us(8)
        assert got == pytest.approx(861.0, rel=0.05)

    def test_lock_acquire_in_measured_range(self):
        # 374 - 574 us (Section 5.1).
        lo = PAPER_PLATFORM.lock_acquire_overhead_us(remote=False)
        hi = PAPER_PLATFORM.lock_acquire_overhead_us(remote=True)
        assert 330.0 <= lo <= hi <= 620.0

    def test_diff_round_trip_in_measured_range(self):
        # 579 - 1746 us to obtain a diff (Section 5.1): one request plus
        # service plus a reply carrying between ~0.5 and ~4 KB.
        c = PAPER_PLATFORM
        small = c.msg_cost_us(16) + c.diff_service_us + c.msg_cost_us(512) \
            + 4096 * c.diff_create_byte_us
        large = c.msg_cost_us(64) + c.diff_service_us + c.msg_cost_us(4096) \
            + 16384 * c.diff_create_byte_us
        assert small >= 450.0
        assert large <= 1800.0

    def test_bandwidth_is_100mbps(self):
        # 0.08 us/byte == 12.5 MB/s == 100 Mbps.
        assert PAPER_PLATFORM.byte_time_us == pytest.approx(0.08)


class TestDerived:
    def test_unit_bytes(self):
        assert SimConfig(unit_pages=4).unit_bytes == 16384

    def test_words_per_page(self):
        assert PAPER_PLATFORM.words_per_page == 1024

    def test_words_per_unit(self):
        assert SimConfig(unit_pages=2).words_per_unit == 2048

    def test_msg_cost_includes_header(self):
        c = PAPER_PLATFORM
        assert c.msg_cost_us(0) == pytest.approx(
            c.msg_latency_us + c.msg_header_bytes * c.byte_time_us
        )

    def test_msg_cost_scales_with_payload(self):
        c = PAPER_PLATFORM
        assert c.msg_cost_us(1000) - c.msg_cost_us(0) == pytest.approx(
            1000 * c.byte_time_us
        )


class TestValidation:
    def test_replace_returns_validated_copy(self):
        c = PAPER_PLATFORM.replace(unit_pages=2)
        assert c.unit_pages == 2
        assert PAPER_PLATFORM.unit_pages == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("nprocs", 0),
            ("nprocs", -1),
            ("page_size", 0),
            ("page_size", 4095),
            ("unit_pages", 0),
            ("max_group_pages", 0),
            ("word_size", 8),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            PAPER_PLATFORM.replace(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_PLATFORM.nprocs = 4  # type: ignore[misc]


class TestSerialization:
    """Stable serialization/hashing backing the result cache and golden
    baselines (repro.bench.cache keys on canonical_json)."""

    def test_to_from_dict_roundtrip(self):
        cfg = SimConfig(nprocs=4, unit_pages=2, parallel_fetch=False)
        assert SimConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_fields(self):
        data = PAPER_PLATFORM.to_dict()
        data["frobnication_level"] = 9
        with pytest.raises(ValueError):
            SimConfig.from_dict(data)

    def test_from_dict_validates(self):
        data = PAPER_PLATFORM.to_dict()
        data["nprocs"] = 0
        with pytest.raises(ValueError):
            SimConfig.from_dict(data)

    def test_canonical_json_is_deterministic_and_complete(self):
        import dataclasses
        import json

        a, b = SimConfig(), SimConfig()
        assert a.canonical_json() == b.canonical_json()
        # Every field participates, so no two distinct configs can alias.
        # Exception: `protocol` and `access_mode` are omitted at their
        # defaults so cache keys, cell seeds, and golden hashes from
        # before each field existed stay byte-identical (see
        # SimConfig.to_dict) -- a non-default value always serializes,
        # so aliasing is still impossible.
        parsed = json.loads(a.canonical_json())
        fields = {f.name for f in dataclasses.fields(SimConfig)}
        assert set(parsed) == fields - {"protocol", "access_mode"}
        non_default = json.loads(
            SimConfig(protocol="hlrc", access_mode="scalar").canonical_json()
        )
        assert set(non_default) == fields

    def test_config_hash_distinguishes_every_field_change(self):
        base = SimConfig()
        assert base.config_hash() == SimConfig().config_hash()
        for change in (
            dict(nprocs=4),
            dict(unit_pages=2),
            dict(dynamic=True),
            dict(max_group_pages=4),
            dict(msg_latency_us=150.0),
            dict(parallel_fetch=False),
            dict(combine_requests=False),
        ):
            assert base.replace(**change).config_hash() != base.config_hash()

    def test_float_fields_roundtrip_exactly(self):
        cfg = SimConfig(byte_time_us=0.1 + 0.2)  # not exactly representable
        import json

        back = SimConfig.from_dict(json.loads(cfg.canonical_json()))
        assert back.byte_time_us == cfg.byte_time_us
        assert back.config_hash() == cfg.config_hash()

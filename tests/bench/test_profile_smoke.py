"""Smoke tests for ``python -m repro.bench profile``.

The profiler must be purely observational: attaching cProfile to every
engine thread and reading the trace may not perturb a single simulated
counter.  That is the property that keeps the command deterministic-safe
(detlint allows its wall-clock reads because nothing simulation-ordered
consumes them).
"""

import dataclasses
import json

from repro.bench import profile
from repro.bench.harness import run_case

CASE = "Jacobi,1Kx1K,4K"  # cheapest full run with several epochs


def test_run_and_write_outputs(tmp_path):
    text = profile.run_and_write(CASE, tmp_path)
    txt = tmp_path / "jacobi-1Kx1K-4K.profile.txt"
    js = tmp_path / "jacobi-1Kx1K-4K.profile.json"
    assert txt.is_file() and js.is_file()
    assert "top " in text and "phase" in text.lower()
    data = json.loads(js.read_text())
    assert data["app"] == "Jacobi"
    assert data["top"], "top-N function table is empty"
    assert data["phases"], "per-phase table is empty"


def test_profiling_is_observational():
    """The profiled run's counters equal an unprofiled run's exactly."""
    report = profile.run_profile(CASE)
    baseline = run_case("Jacobi", "1Kx1K", "4K")
    assert dataclasses.asdict(report.case) == dataclasses.asdict(baseline)

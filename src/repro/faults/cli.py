"""Command-line front end of the fault lab.

    python -m repro.faults --chaos-sweep --seeds 5
    python -m repro.faults --chaos-sweep --seeds 3 --apps Jacobi,TSP --jobs 4
    python -m repro.faults Jacobi 1Kx1K 4K --drop 0.05 --jitter 100

Two modes:

* ``--chaos-sweep`` runs the invariant gate (:mod:`repro.faults.gate`):
  N reseeded fault plans across every application's smallest paper
  dataset, each cell exact-matched against the committed fault-free
  golden baselines.  Exit 1 if any checksum or useful-data counter
  moved, or a dropping plan produced zero retransmissions anywhere.

* ``APP DATASET LABEL`` runs one faulty cell and prints it side by side
  with the fault-free run of the same cell, so the cost of a plan is
  visible counter by counter.

Fault knobs (``--drop/--dup/--reorder/--jitter`` etc.) configure a
uniform all-classes plan; ``--no-retries`` turns recovery off, in which
case the first lost message aborts the run with its identity.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.bench import cache
from repro.bench.golden import GOLDEN_DIR, GOLDEN_LABELS, SMALL_DATASETS
from repro.bench.harness import CaseResult, ResultCache, run_case
from repro.faults.channel import DroppedMessageError
from repro.faults.gate import FAULT_FIELDS, INVARIANT_FIELDS, run_chaos
from repro.faults.plan import FaultPlan


def build_plan(args: argparse.Namespace) -> FaultPlan:
    """The uniform plan described by the CLI fault knobs."""
    return FaultPlan.uniform(
        seed=args.seed,
        drop_rate=args.drop,
        dup_rate=args.dup,
        reorder_rate=args.reorder,
        jitter_us=args.jitter,
    ).replace(
        max_retries=args.max_retries,
        timeout_us=args.timeout_us,
        retries_enabled=not args.no_retries,
    )


def render_single(base: CaseResult, faulty: CaseResult) -> str:
    """Side-by-side fault-free vs faulty report of one cell."""
    lines = [
        f"--- {faulty.app}/{faulty.dataset}@{faulty.label} ---",
        f"{'counter':28} {'fault-free':>14} {'faulty':>14}",
    ]
    fields = ("time_us",) + INVARIANT_FIELDS + FAULT_FIELDS
    for f in fields:
        b, x = getattr(base, f), getattr(faulty, f)
        if b == x:
            mark = ""
        elif f == "time_us":
            mark = "  +shadow"
        elif f in FAULT_FIELDS:
            mark = "  +fault"
        else:
            mark = "  **"
        bs = f"{b:.1f}" if isinstance(b, float) else str(b)
        xs = f"{x:.1f}" if isinstance(x, float) else str(x)
        lines.append(f"{f:28} {bs:>14} {xs:>14}{mark}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fault-injection lab: faulty runs and the chaos gate.",
    )
    parser.add_argument(
        "cell",
        nargs="*",
        metavar="APP DATASET LABEL",
        help="run one faulty cell and compare against its fault-free run",
    )
    parser.add_argument(
        "--chaos-sweep",
        action="store_true",
        help="run the invariant gate over every application's smallest "
        "dataset; exit 1 on any divergence from benchmarks/golden/",
    )
    parser.add_argument("--seeds", type=int, default=5, metavar="N",
                        help="number of reseeded plans to sweep (default 5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base plan seed (default 0)")
    parser.add_argument(
        "--apps", type=str, default=None, metavar="APP[,APP]",
        help="restrict the sweep to these applications",
    )
    parser.add_argument(
        "--labels", type=str, default="4K", metavar="L[,L]",
        help=f"consistency labels to sweep, from {GOLDEN_LABELS} "
        "(default 4K)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan cells out over N worker processes")
    parser.add_argument("--drop", type=float, default=0.02,
                        help="message drop rate (default 0.02)")
    parser.add_argument("--dup", type=float, default=0.01,
                        help="duplicate-delivery rate (default 0.01)")
    parser.add_argument("--reorder", type=float, default=0.02,
                        help="bounded-reorder rate (default 0.02)")
    parser.add_argument("--jitter", type=float, default=50.0, metavar="US",
                        help="max latency jitter per message in "
                        "microseconds (default 50)")
    parser.add_argument("--max-retries", type=int, default=8,
                        help="retransmission cap per message (default 8)")
    parser.add_argument("--timeout-us", type=float, default=1000.0,
                        help="initial retransmission timeout (default 1000)")
    parser.add_argument(
        "--no-retries", action="store_true",
        help="disable the timeout/retransmit machinery: the first lost "
        "message raises DroppedMessageError",
    )
    parser.add_argument(
        "--golden-dir", type=pathlib.Path, default=GOLDEN_DIR,
        help="golden baseline directory (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=cache.DEFAULT_CACHE_DIR,
        help="on-disk result cache directory (default: %(default)s)",
    )
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    args = parser.parse_args(argv)

    if args.chaos_sweep == bool(args.cell):
        parser.error("give either --chaos-sweep or APP DATASET LABEL")
    if args.cell and len(args.cell) != 3:
        parser.error(
            f"single-run mode takes exactly APP DATASET LABEL, "
            f"got {args.cell!r}"
        )
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    previous_disk = ResultCache.disk()
    ResultCache.configure(
        None if args.no_cache else cache.DiskCache(args.cache_dir)
    )
    try:
        plan = build_plan(args)
        if args.chaos_sweep:
            report = run_chaos(
                seeds=args.seeds,
                base_seed=args.seed,
                plan=plan,
                apps=args.apps.split(",") if args.apps else None,
                labels=tuple(args.labels.split(",")),
                jobs=args.jobs,
                golden_dir=args.golden_dir,
                progress=lambda msg: print(f"# {msg}", file=sys.stderr),
            )
            print(report.render())
            return 0 if report.ok else 1

        app, dataset, label = args.cell
        if app in SMALL_DATASETS and dataset == "small":
            dataset = SMALL_DATASETS[app]
        if label not in GOLDEN_LABELS:
            print(f"error: unknown unit label {label!r}; "
                  f"have {GOLDEN_LABELS}", file=sys.stderr)
            return 1
        try:
            base = ResultCache.get(app, dataset, label)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        try:
            faulty = run_case(app, dataset, label, fault_plan=plan.canonical())
        except DroppedMessageError as exc:
            print(f"run failed: {exc}")
            return 1
        print(render_single(base, faulty))
        invariant_ok = all(
            getattr(base, f) == getattr(faulty, f) for f in INVARIANT_FIELDS
        )
        print(
            "invariant: "
            + ("OK (only time and fault counters moved)" if invariant_ok
               else "VIOLATED (** rows above)")
        )
        return 0 if invariant_ok else 1
    finally:
        ResultCache.configure(previous_disk)


if __name__ == "__main__":
    sys.exit(main())

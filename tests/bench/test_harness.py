"""Harness machinery: configs, caching, rendering, CSV."""

import pytest

from repro.bench.harness import (
    UNIT_LABELS,
    CaseResult,
    ResultCache,
    config_for,
    render_breakdown_table,
    render_signature,
    run_case,
    write_csv,
)


class TestConfigFor:
    def test_labels(self):
        assert config_for("4K").unit_pages == 1
        assert config_for("8K").unit_pages == 2
        assert config_for("16K").unit_pages == 4
        assert config_for("Dyn").dynamic
        assert config_for("seq").nprocs == 1

    def test_extra_kwargs_flow_through(self):
        cfg = config_for("Dyn", max_group_pages=2)
        assert cfg.max_group_pages == 2

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyError):
            config_for("32K")


class TestRunCase:
    def test_produces_case_result(self):
        c = run_case("Jacobi", "1Kx1K", "4K")
        assert isinstance(c, CaseResult)
        assert c.label == "4K"
        assert c.time_us > 0
        assert c.total_messages == (
            c.useful_messages + c.useless_messages + c.sync_messages
        )

    def test_seq_label(self):
        c = run_case("Jacobi", "1Kx1K", "seq")
        assert c.label == "seq"
        assert c.total_messages == 0


class TestCache:
    def test_cache_hits_are_identical_objects(self):
        ResultCache.clear()
        a = ResultCache.get("Jacobi", "1Kx1K", "4K")
        b = ResultCache.get("Jacobi", "1Kx1K", "4K")
        assert a is b

    def test_extra_kwargs_key_cache_separately(self):
        """Regression: cells differing only in ``**extra`` overrides must
        never alias one cache entry -- keys hash the fully resolved
        SimConfig, so every config field participates."""
        ResultCache.clear()
        a = ResultCache.get("Jacobi", "1Kx1K", "Dyn", max_group_pages=2)
        b = ResultCache.get("Jacobi", "1Kx1K", "Dyn", max_group_pages=8)
        assert a is not b
        # And the non-default cell really behaved differently from the
        # default-keyed one (an alias would have returned equal counters).
        assert ResultCache.get("Jacobi", "1Kx1K", "Dyn") is not a

    def test_boolean_extras_key_cache_separately(self):
        from repro.bench.cache import cell_key

        ResultCache.clear()
        on = ResultCache.get("Jacobi", "1Kx1K", "16K", parallel_fetch=True)
        off = ResultCache.get("Jacobi", "1Kx1K", "16K", parallel_fetch=False)
        assert on is not off
        assert cell_key(
            "Jacobi", "1Kx1K", config_for("16K", parallel_fetch=True)
        ) != cell_key(
            "Jacobi", "1Kx1K", config_for("16K", parallel_fetch=False)
        )

    def test_equivalent_spellings_share_one_entry(self):
        """The dual property: two spellings resolving to the same config
        must hit one entry (no duplicate simulation work)."""
        ResultCache.clear()
        a = ResultCache.get("Jacobi", "1Kx1K", "4K")
        b = ResultCache.get("Jacobi", "1Kx1K", "4K", unit_pages=1)
        c = ResultCache.get("Jacobi", "1Kx1K", "16K", parallel_fetch=True)
        d = ResultCache.get("Jacobi", "1Kx1K", "16K")
        assert a is b
        assert c is d


class TestRendering:
    @pytest.fixture(scope="class")
    def cells(self):
        return {
            label: ResultCache.get("Jacobi", "1Kx1K", label)
            for label in UNIT_LABELS
        }

    def test_breakdown_table_contains_all_units(self, cells):
        text = render_breakdown_table("Jacobi", "1Kx1K", cells)
        for label in UNIT_LABELS:
            assert label in text
        assert "normalized to 4K" in text

    def test_signature_render(self, cells):
        text = render_signature(cells)
        assert "[4K]" in text and "[16K]" in text
        assert "mean writers" in text

    def test_write_csv(self, cells, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert len(lines) == 3

    def test_write_csv_empty_is_noop(self, tmp_path):
        path = tmp_path / "none.csv"
        write_csv(path, [])
        assert not path.exists()

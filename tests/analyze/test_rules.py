"""Per-rule unit tests: one seeded positive, one hazard-free negative,
and one suppressed spelling for every determinism-lint rule."""

from __future__ import annotations

import pytest

from repro.analyze.detlint import lint_source
from repro.analyze.rules import (
    GOLDEN_INT_FIELDS,
    RULES,
    RULES_BY_NAME,
    SUPPRESSIBLE,
)
from repro.bench.golden import GOLDEN_FIELDS


def rules_fired(source: str) -> list:
    """(line, rule) of active findings for an inline snippet."""
    report = lint_source(source, "<snippet>")
    return [(f.line, f.rule) for f in report.findings if not f.suppressed]


CASES = {
    "set-iter": {
        "positive": "for x in {1, 2}:\n    print(x)\n",
        "negative": "for x in sorted({1, 2}):\n    print(x)\n",
    },
    "wall-clock": {
        "positive": "import time\nt = time.monotonic()\n",
        "negative": "clock = object()\nt = clock\n",
    },
    "global-random": {
        "positive": "import random\nx = random.random()\n",
        "negative": "import random\nx = random.Random(7).random()\n",
    },
    "id-order": {
        "positive": "out = sorted(items, key=id)\n",
        "negative": "out = sorted(items, key=lambda r: r.key)\n",
    },
    "golden-float": {
        "positive": "r.faults += n / 2\n",
        "negative": "r.faults += n // 2\n",
    },
    "unordered-draw": {
        "positive": "d = {1: 2}\nk, v = d.popitem()\n",
        "negative": "d = {1: 2}\nv = d.pop(1)\n",
    },
}


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_fires_on_positive(rule):
    fired = rules_fired(CASES[rule]["positive"])
    assert [r for _, r in fired] == [rule]


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_silent_on_negative(rule):
    assert rules_fired(CASES[rule]["negative"]) == []


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_suppressible(rule):
    src = CASES[rule]["positive"]
    line = lint_source(src, "<snippet>").findings[0].line
    lines = src.splitlines()
    lines[line - 1] += f"  # detlint: ok({rule})"
    report = lint_source("\n".join(lines) + "\n", "<snippet>")
    assert not report.active
    assert any(f.suppressed and f.rule == rule for f in report.findings)


def test_every_rule_has_a_case():
    assert set(CASES) == {r.name for r in RULES}
    assert set(CASES) == set(SUPPRESSIBLE)
    assert set(RULES_BY_NAME) == {r.name for r in RULES}


def test_golden_int_fields_tracks_golden_tuple():
    """The rule module hardcodes the integral golden counters to stay
    import-light; this pins it to the real GOLDEN_FIELDS tuple."""
    assert GOLDEN_INT_FIELDS == set(GOLDEN_FIELDS) - {"time_us", "checksum"}


# ---------------------------------------------------------------- edge cases
def test_set_reassigned_to_list_is_cleared():
    src = "s = {1, 2}\ns = [1, 2]\nfor x in s:\n    print(x)\n"
    assert rules_fired(src) == []


def test_nested_function_is_its_own_scope():
    # The set is only visible as a set inside g(), and the loop there
    # must still be caught exactly once.
    src = (
        "def g():\n"
        "    s = {1, 2}\n"
        "    for x in s:\n"
        "        print(x)\n"
    )
    assert rules_fired(src) == [(3, "set-iter")]


def test_seeded_default_rng_ok():
    assert rules_fired("import numpy as np\nr = np.random.default_rng(42)\n") == []


def test_equality_of_ids_is_not_ordering():
    assert rules_fired("same = id(a) == id(b)\n") == []


def test_float_into_non_golden_attr_ok():
    assert rules_fired("r.latency += n / 2\n") == []


def test_set_pop_is_an_unordered_draw():
    src = "s = {1, 2}\nx = s.pop()\n"
    assert rules_fired(src) == [(2, "unordered-draw")]


def test_list_pop_is_not_flagged():
    assert rules_fired("items = [1, 2]\nx = items.pop()\n") == []


def test_next_iter_over_set_is_an_unordered_draw():
    # Both hazards are real: the draw is arbitrary (unordered-draw) and
    # iter() over a set is unordered iteration (set-iter).
    src = "s = {1, 2}\nx = next(iter(s))\n"
    assert rules_fired(src) == [(2, "unordered-draw"), (2, "set-iter")]


def test_next_iter_over_dict_keys_is_an_unordered_draw():
    src = "x = next(iter(d.keys()))\n"
    assert rules_fired(src) == [(1, "unordered-draw")]


def test_next_iter_over_sorted_set_ok():
    assert rules_fired("s = {1, 2}\nx = next(iter(sorted(s)))\n") == []


def test_popitem_with_argument_is_not_flagged():
    # OrderedDict.popitem(last=False) is an explicit, documented choice.
    assert rules_fired("k, v = od.popitem(last=False)\n") == []

"""Command-line front end for the sweep farm.

    python -m repro.farm submit figure1 protocols --store farm.sqlite
    python -m repro.farm worker --store farm.sqlite
    python -m repro.farm worker --store farm.sqlite --follow
    python -m repro.farm serve  --store farm.sqlite --port 8008
    python -m repro.farm status --store farm.sqlite

``--store`` accepts a directory (the local JSON layout, byte-compatible
with ``repro_results/cache`` -- the default, so an existing bench cache
is already a warm farm store) or a ``*.sqlite`` / ``*.db`` /
``sqlite:...`` path (single-file store safe for many concurrent
writers).  Workers on any number of machines pointed at one shared
store drain the queue together without further coordination.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.cache import DEFAULT_CACHE_DIR
from repro.farm import service, submit, worker
from repro.farm.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_GENERATIONS,
    ResultStore,
    open_store,
)


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=str(DEFAULT_CACHE_DIR),
        help="store to use: a directory (local JSON layout) or a "
        ".sqlite/.db path (default: %(default)s)",
    )


def _open(args: argparse.Namespace) -> ResultStore:
    return open_store(
        args.store,
        lease_ttl=getattr(args, "lease_ttl", DEFAULT_LEASE_TTL),
        max_generations=getattr(
            args, "max_generations", DEFAULT_MAX_GENERATIONS
        ),
    )


def _csv(text: Optional[str]) -> Optional[List[str]]:
    return text.split(",") if text else None


def _cmd_submit(args: argparse.Namespace) -> int:
    cells = submit.sweep_cells(
        args.sweeps, apps=_csv(args.apps), protocols=_csv(args.protocols)
    )
    store = _open(args)
    try:
        report = store.submit(cells)
    finally:
        store.close()
    print(f"submit: {report.summary()}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    store = _open(args)
    try:
        report = worker.work(
            store,
            worker_id=args.id,
            max_cells=args.max_cells,
            follow=args.follow,
            poll_seconds=args.poll,
            progress=lambda line: print(line, file=sys.stderr),
        )
    finally:
        store.close()
    print(report.summary())
    return 1 if report.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    store = _open(args)
    try:
        service.serve_forever(
            store, args.host, args.port,
            announce=lambda line: print(line, file=sys.stderr),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        store.close()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = _open(args)
    try:
        status = store.status()
    finally:
        store.close()
    print(status.summary())
    for cell, error in status.failures:
        print(f"  failed: {cell}: {error}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="Distributed sweep farm: content-addressed result "
        "store, work-stealing workers, read-only results service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser(
        "submit", help="enqueue sweep cells that are not yet computed"
    )
    p_submit.add_argument(
        "sweeps", nargs="+", metavar="SWEEP",
        choices=submit.sweep_names(),
        help=f"sweeps to enqueue: {', '.join(submit.sweep_names())}",
    )
    p_submit.add_argument(
        "--apps", default=None, metavar="APP[,APP]",
        help="restrict to these applications",
    )
    p_submit.add_argument(
        "--protocols", default=None, metavar="P[,P]",
        help="restrict to these consistency protocols",
    )
    _add_store_arg(p_submit)
    p_submit.set_defaults(run=_cmd_submit)

    p_worker = sub.add_parser(
        "worker", help="claim and compute pending cells until drained"
    )
    p_worker.add_argument(
        "--id", default=None, help="worker id (default: <hostname>-<pid>)"
    )
    p_worker.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after computing N cells",
    )
    p_worker.add_argument(
        "--follow", action="store_true",
        help="keep polling for new work instead of exiting when drained",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle poll interval with --follow (default: %(default)s)",
    )
    p_worker.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="lease duration before a crashed worker's cell is "
        "reclaimable (default: %(default)s)",
    )
    p_worker.add_argument(
        "--max-generations", type=int, default=DEFAULT_MAX_GENERATIONS,
        metavar="N",
        help="abandon a cell after N expired leases (default: %(default)s)",
    )
    _add_store_arg(p_worker)
    p_worker.set_defaults(run=_cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="read-only HTTP results service over the store"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8008)
    _add_store_arg(p_serve)
    p_serve.set_defaults(run=_cmd_serve)

    p_status = sub.add_parser("status", help="store and queue counters")
    _add_store_arg(p_status)
    p_status.set_defaults(run=_cmd_status)

    args = parser.parse_args(argv)
    result: int = args.run(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

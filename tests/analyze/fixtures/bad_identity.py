"""detlint fixture: id-order and golden-float positives (3 + 2
findings; exact lines pinned by tests/analyze/test_detlint.py)."""


def rank(objs, a, b):
    ordered = sorted(objs, key=id)  # finding: identity-keyed ordering
    objs.sort(key=lambda o: hash(o))  # finding: hash-keyed ordering
    flip = id(a) < id(b)  # finding: id() comparison
    return ordered, flip


def account(report, nwords, nmsgs):
    report.useless_bytes += nwords * 4.0  # finding: float literal
    report.useless_messages = nwords / nmsgs  # finding: true division
    report.useful_bytes += nwords * 4  # clean: integral arithmetic
    return report

"""Instrumentation: the paper's Section-5.3 measurement methodology.

The paper instruments all loads, stores, and diff applications:

    "After applying a diff to a region of a page, if a word from that
    region is read before being overwritten, that word is counted as
    useful data.  If a word is never read or overwritten before being
    read, it is counted as useless data.  A useless message is a message
    that carries no useful data."

* :mod:`repro.stats.words` -- per-processor word-usefulness tracker.
* :mod:`repro.stats.counters` -- protocol event counters and fault records.
* :mod:`repro.stats.signature` -- the false-sharing signature histogram
  (Figure 3).
* :mod:`repro.stats.report` -- the consolidated :class:`RunResult`.
"""

from repro.stats.words import WordTracker
from repro.stats.counters import ProtocolStats, FaultRecord
from repro.stats.signature import FalseSharingSignature, build_signature
from repro.stats.report import RunResult, CommBreakdown

__all__ = [
    "WordTracker",
    "ProtocolStats",
    "FaultRecord",
    "FalseSharingSignature",
    "build_signature",
    "RunResult",
    "CommBreakdown",
]

"""Prediction-level tests: interval algebra and the hand-derivable
application results the paper's analysis leans on."""

from __future__ import annotations

import pytest

from repro.analyze.predict import (
    UNIT_SIZES,
    merge,
    predict,
    subtract,
    total,
)


# ---------------------------------------------------------------- intervals
def test_merge_coalesces_and_sorts():
    assert merge([(5, 7), (1, 3), (2, 4)]) == [(1, 4), (5, 7)]
    assert merge([]) == []
    assert merge([(1, 1)]) == []


def test_subtract_cases():
    assert subtract([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]
    assert subtract([(0, 10)], []) == [(0, 10)]
    assert subtract([(1, 2), (3, 4)], [(0, 100)]) == []
    assert subtract([(0, 4), (6, 9)], [(2, 7)]) == [(0, 2), (7, 9)]


def test_total():
    assert total([(0, 3), (5, 10)]) == 8
    assert total([]) == 0


# ---------------------------------------------------------------- apps
def test_jacobi_predicts_no_false_sharing_at_4k():
    """Row-block partitioning with page-aligned 1Kx1K rows: a page has
    exactly one writer, the paper's 'no false sharing at 4K' case."""
    p = predict("Jacobi", "1Kx1K")
    assert p.conflict_pages == ()
    assert p.page_size == 4096


def test_ilink_predicts_every_pool_page():
    """Round-robin block ownership: all 16 pool pages multi-written."""
    p = predict("ILINK", "CLP")
    labels = p.labeled_pages()
    assert len(labels) == 16
    assert all(lbl.startswith("pool:") for lbl in labels)


def test_mgs_conflicts_appear_only_above_4k():
    """Cyclic row distribution with 4 KB rows: clean at one page per
    unit, falsely shared as soon as a unit spans two rows."""
    p = predict("MGS", "1Kx1K")
    assert set(p.units) == set(UNIT_SIZES)
    assert p.units[4096].conflict_units == ()
    assert len(p.units[8192].conflict_units) > 0
    assert len(p.units[16384].conflict_units) > 0


def test_useless_lower_bound_monotone_in_unit_size():
    """Fetching in larger units can only drag in more unread words."""
    for app, dataset in (("ILINK", "CLP"), ("Shallow", "1Kx0.5K")):
        p = predict(app, dataset)
        bounds = [
            p.units[ub].useless_words_lower for ub in sorted(p.units)
        ]
        assert bounds == sorted(bounds), (app, bounds)


def test_predict_rejects_unknown_app():
    with pytest.raises(KeyError):
        predict("NoSuchApp", "tiny")


def test_prediction_json_round_trip_fields():
    p = predict("Water", "512")
    d = p.to_json_dict()
    assert d["app"] == "Water"
    assert d["labeled_pages"] == p.labeled_pages()
    assert d["conflict_pages"] == list(p.conflict_pages)
    assert len(d["units"]) == len(UNIT_SIZES)

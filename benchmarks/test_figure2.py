"""Regenerates Figure 2 (Jacobi, 3D-FFT, MGS, Shallow across problem
sizes)."""

from benchmarks.conftest import save_text
from repro.bench.figures import expected_shape_figure2, figure2
from repro.bench.harness import write_csv


def test_figure2(benchmark, results_dir):
    matrix, text = benchmark.pedantic(figure2, rounds=1, iterations=1)
    save_text(results_dir, "figure2.txt", text)
    write_csv(
        results_dir / "figure2.csv",
        (
            dict(
                app=app,
                dataset=ds,
                unit=label,
                time_us=f"{c.time_us:.1f}",
                messages=c.total_messages,
                useless_messages=c.useless_messages,
                bytes=c.total_bytes,
                useless_bytes=c.useless_bytes,
                piggybacked_useless_bytes=c.piggybacked_useless_bytes,
            )
            for (app, ds), cells in matrix.items()
            for label, c in cells.items()
        ),
    )
    violations = expected_shape_figure2(matrix)
    assert not violations, violations

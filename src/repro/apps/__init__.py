"""The paper's application suite, ported to the simulated DSM.

Eight applications (Section 5.2): Barnes and Water (SPLASH), 3D-FFT
(NAS), Ilink (genetic linkage analysis; reproduced synthetically -- see
DESIGN.md), Shallow (NCAR), and the MGS, Jacobi, and TSP kernels.

Each application module defines a subclass of
:class:`repro.apps.base.Application` exposing the paper's datasets
(scaled to simulator size while preserving the access-granularity /
page-size ratios the paper's analysis depends on), a DSM worker, and a
pure-numpy sequential reference used by the correctness tests.
"""

from repro.apps.base import Application, AppRegistry, get_app, run_app
from repro.apps.jacobi import Jacobi
from repro.apps.mgs import MGS
from repro.apps.fft3d import FFT3D
from repro.apps.shallow import Shallow
from repro.apps.barnes import Barnes
from repro.apps.water import Water
from repro.apps.ilink import Ilink
from repro.apps.tsp import TSP

__all__ = [
    "Application",
    "AppRegistry",
    "get_app",
    "run_app",
    "Jacobi",
    "MGS",
    "FFT3D",
    "Shallow",
    "Barnes",
    "Water",
    "Ilink",
    "TSP",
]

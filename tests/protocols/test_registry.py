"""Protocol registry and interface contract."""

import pytest

from repro.core import SimConfig, TreadMarks
from repro.protocols import (
    ConsistencyProtocol,
    ProtocolInfo,
    all_protocols,
    base,
    get_protocol,
    protocol_names,
    register,
)
from repro.sim.config import DEFAULT_PROTOCOL

ZOO = ("erc", "hlrc", "swi", "tm-lrc")


class TestRegistry:
    def test_all_zoo_protocols_registered(self):
        assert protocol_names() == ZOO

    def test_default_is_registered(self):
        assert DEFAULT_PROTOCOL in protocol_names()

    def test_get_protocol_returns_info(self):
        info = get_protocol("tm-lrc")
        assert info.name == "tm-lrc"
        assert callable(info.build)
        assert info.description

    def test_get_protocol_unknown_lists_registered(self):
        with pytest.raises(ValueError, match="tm-lrc"):
            get_protocol("dash")

    def test_all_protocols_sorted_by_name(self):
        assert [i.name for i in all_protocols()] == sorted(protocol_names())

    def test_duplicate_registration_rejected(self):
        info = ProtocolInfo(
            name="__test_dup__", description="", build=lambda *a: []
        )
        register(info)
        try:
            with pytest.raises(ValueError, match="registered twice"):
                register(info)
        finally:
            del base._REGISTRY["__test_dup__"]


class TestBuild:
    @pytest.mark.parametrize("name", ZOO)
    def test_build_yields_one_engine_per_pid(self, name):
        tmk = TreadMarks(
            SimConfig(nprocs=3, protocol=name), heap_bytes=1 << 14
        )
        assert [p.pid for p in tmk.procs] == [0, 1, 2]

    @pytest.mark.parametrize("name", ZOO)
    def test_engines_satisfy_the_structural_contract(self, name):
        tmk = TreadMarks(
            SimConfig(nprocs=2, protocol=name), heap_bytes=1 << 14
        )
        for p in tmk.procs:
            assert isinstance(p, ConsistencyProtocol)

    @pytest.mark.parametrize("name", ZOO)
    def test_engines_share_clocks_with_the_engine(self, name):
        tmk = TreadMarks(
            SimConfig(nprocs=2, protocol=name), heap_bytes=1 << 14
        )
        for pid, lp in enumerate(tmk.procs):
            assert lp.clock is tmk.engine.procs[pid].clock


class TestConfigIntegration:
    def test_unknown_protocol_rejected_at_validation(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            SimConfig(protocol="msi").validate()

    def test_replace_validates_protocol(self):
        with pytest.raises(ValueError):
            SimConfig().replace(protocol="nope")

    @pytest.mark.parametrize("name", ZOO)
    def test_every_registered_protocol_validates(self, name):
        SimConfig(protocol=name).validate()

    def test_default_protocol_omitted_from_canonical_json(self):
        assert '"protocol"' not in SimConfig().canonical_json()
        assert '"protocol":"hlrc"' in SimConfig(protocol="hlrc").canonical_json()

    def test_default_config_hash_pinned(self):
        # The pre-zoo digest of the default configuration.  The protocol
        # field must not shift it: cache entries, cell seeds, and golden
        # baselines are keyed on this value, and spelling the default
        # out must alias the omitted form.
        assert SimConfig().config_hash() == "2359c599160e1bc0"
        assert (
            SimConfig(protocol=DEFAULT_PROTOCOL).config_hash()
            == SimConfig().config_hash()
        )

    def test_config_hash_distinguishes_protocols(self):
        hashes = {SimConfig(protocol=p).config_hash() for p in ZOO}
        assert len(hashes) == len(ZOO)

    @pytest.mark.parametrize("name", ZOO)
    def test_from_dict_round_trips_protocol(self, name):
        cfg = SimConfig(protocol=name)
        back = SimConfig.from_dict(cfg.to_dict())
        assert back.protocol == name
        assert back == cfg

"""Barnes: Barnes-Hut hierarchical N-body simulation (Section 5.5;
SPLASH).

Structure, as described in the paper:

* the **tree is built sequentially by the master processor**, which
  reads essentially the entire body array (fine-grained, one record per
  body) and writes the cell array;
* the **force computation is parallel**: bodies live in Morton (tree)
  order and each processor owns a contiguous chunk, standing in for
  SPLASH's cost-zone partition.  Fine-grained per-body writes cause
  write-write false sharing on the pages where partitions meet, but the
  extensive true sharing (traversals read bodies and cells all over the
  space) keeps useless messages few: false sharing shows up mostly as
  useless *data*;
* reads and writes are fine-grained (individual particle records), but
  each processor touches a large region of the shared body/cell space,
  which is why static aggregation pays off (Figure 1).

The octree build and the force traversal are pure functions shared with
the sequential reference, so the DSM run is bitwise comparable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps.base import Application, AppRegistry
from repro.core.proc import Proc
from repro.core.treadmarks import TreadMarks

#: float32 words per body record: pos[0:3] vel[3:6] acc[6:9] mass[9] pad.
BODY_REC = 16
#: float32 words per cell record: com[0:3] mass[3] size[4] pad[5:8]
#: children[8:16] (0 empty, +i cell i-1, -j body j-1).
CELL_REC = 16

THETA2 = np.float32(0.49)  # theta = 0.7
EPS2 = np.float32(0.05)
DT = np.float32(0.002)


def _morton_keys(pos: np.ndarray) -> np.ndarray:
    """Morton (Z-order) keys of 3-D positions, 10 bits per axis."""
    q = np.clip((pos / pos.max() * 1023.0).astype(np.int64), 0, 1023)
    keys = np.zeros(pos.shape[0], dtype=np.int64)
    for bit in range(10):
        for axis in range(3):
            keys |= ((q[:, axis] >> bit) & 1) << (3 * bit + axis)
    return keys


def _initial_bodies(n: int) -> np.ndarray:
    """Deterministic bodies, stored in Morton order: SPLASH Barnes keeps
    the body array in tree order, so contiguous index ranges are spatial
    clusters and the costzone partition owns whole pages (write-write
    false sharing concentrates at partition boundaries)."""
    rng = np.random.default_rng(99)
    b = np.zeros((n, BODY_REC), dtype=np.float32)
    b[:, 0:3] = rng.uniform(0.0, 100.0, size=(n, 3)).astype(np.float32)
    b[:, 3:6] = rng.standard_normal((n, 3)).astype(np.float32) * 0.1
    b[:, 9] = np.float32(1.0)
    order = np.argsort(_morton_keys(b[:, 0:3]), kind="stable")
    return b[order]


# ----------------------------------------------------------------------
# Octree build (pure; used by the master worker and by the reference)
# ----------------------------------------------------------------------
#: Leaf bucket capacity (SPLASH-style multi-body leaves; also bounded by
#: the 8 child slots of the serialized cell record).
BUCKET = 8


class _Node:
    __slots__ = ("cx", "cy", "cz", "size", "bodies")

    def __init__(self, cx: float, cy: float, cz: float, size: float) -> None:
        self.cx, self.cy, self.cz, self.size = cx, cy, cz, size
        self.bodies: List[int] = []  # leaf contents until split


def build_tree(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Build the Barnes-Hut octree over positions; returns the serialized
    cell array ((ncells, CELL_REC) float32)."""
    n = pos.shape[0]
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    size = float((hi - lo).max()) * 1.001 + 1e-6

    nodes: List[_Node] = [_Node(center[0], center[1], center[2], size)]
    slots: List[Dict[int, int]] = [{}]  # node -> octant -> child node id

    def octant(node: _Node, p) -> int:
        return (
            (1 if p[0] >= node.cx else 0)
            | (2 if p[1] >= node.cy else 0)
            | (4 if p[2] >= node.cz else 0)
        )

    def child_center(node: _Node, o: int) -> Tuple[float, float, float, float]:
        q = node.size / 4.0
        return (
            node.cx + (q if o & 1 else -q),
            node.cy + (q if o & 2 else -q),
            node.cz + (q if o & 4 else -q),
            node.size / 2.0,
        )

    def insert(nid: int, j: int) -> None:
        while True:
            node = nodes[nid]
            if not slots[nid]:  # leaf
                if len(node.bodies) < BUCKET:
                    node.bodies.append(j)
                    return
                spill = node.bodies
                node.bodies = []
                for b in spill:
                    _descend_new(nid, b)
                # fall through: continue inserting j below
            o = octant(node, pos[j])
            if o not in slots[nid]:
                cx, cy, cz, s = child_center(node, o)
                nodes.append(_Node(cx, cy, cz, s))
                slots.append({})
                slots[nid][o] = len(nodes) - 1
            nid = slots[nid][o]

    def _descend_new(nid: int, j: int) -> None:
        o = octant(nodes[nid], pos[j])
        if o not in slots[nid]:
            cx, cy, cz, s = child_center(nodes[nid], o)
            nodes.append(_Node(cx, cy, cz, s))
            slots.append({})
            slots[nid][o] = len(nodes) - 1
        insert(slots[nid][o], j)

    for j in range(n):
        insert(0, j)

    # Serialize pre-order; compute centers of mass bottom-up via the
    # serialization recursion.
    cells = np.zeros((len(nodes), CELL_REC), dtype=np.float32)
    order: Dict[int, int] = {}

    def assign(nid: int) -> int:
        cid = len(order)
        order[nid] = cid
        for o in sorted(slots[nid]):
            assign(slots[nid][o])
        return cid

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        assign(0)

        def fill(nid: int) -> Tuple[np.ndarray, np.float32]:
            cid = order[nid]
            node = nodes[nid]
            com = np.zeros(3, dtype=np.float32)
            m = np.float32(0.0)
            ci = 0
            for b in node.bodies:
                cells[cid, 8 + ci] = np.float32(-(b + 1))
                ci += 1
                com = com + pos[b].astype(np.float32) * mass[b]
                m = m + np.float32(mass[b])
            for o in sorted(slots[nid]):
                child = slots[nid][o]
                ccom, cm = fill(child)
                cells[cid, 8 + ci] = np.float32(order[child] + 1)
                ci += 1
                com = com + ccom * cm
                m = m + cm
            if m > 0:
                com = (com / m).astype(np.float32)
            cells[cid, 0:3] = com
            cells[cid, 4] = np.float32(node.size)
            cells[cid, 3] = m
            return com, m

        fill(0)
    finally:
        sys.setrecursionlimit(old_limit)
    return cells


# ----------------------------------------------------------------------
# Force traversal (pure)
# ----------------------------------------------------------------------
def force_on(
    i: int,
    pos_i: np.ndarray,
    read_cell: Callable[[int], np.ndarray],
    read_body: Callable[[int], np.ndarray],
) -> Tuple[np.ndarray, int]:
    """Barnes-Hut acceleration on body ``i``; returns (acc, ninteractions).

    ``read_cell(cid)`` and ``read_body(j)`` fetch records (from shared
    memory in the DSM run, from plain arrays in the reference)."""
    acc = np.zeros(3, dtype=np.float32)
    inter = 0
    stack = [0]
    while stack:
        cid = stack.pop()
        cell = read_cell(cid)
        d = cell[0:3] - pos_i
        r2 = np.float32((d * d).sum()) + EPS2
        if cell[4] * cell[4] < THETA2 * r2:
            inv = np.float32(1.0) / np.float32(np.sqrt(float(r2)))
            acc = acc + d * (cell[3] * inv * inv * inv)
            inter += 1
            continue
        for s in range(8, 16):
            ref = int(cell[s])
            if ref == 0:
                continue
            if ref > 0:
                stack.append(ref - 1)
            else:
                j = -ref - 1
                if j == i:
                    continue
                body = read_body(j)
                db = body[0:3] - pos_i
                rb2 = np.float32((db * db).sum()) + EPS2
                inv = np.float32(1.0) / np.float32(np.sqrt(float(rb2)))
                acc = acc + db * (body[9] * inv * inv * inv)
                inter += 1
    return acc.astype(np.float32), inter


#: Flops charged per gravitational interaction.
FLOPS_PER_INTERACTION = 60


def _owned(n: int, nprocs: int, pid: int) -> List[int]:
    """Costzone-style partition: a contiguous range of the Morton-ordered
    body array (a contiguous chunk of the tree walk)."""
    lo, hi = Application.block_range(n, nprocs, pid)
    return list(range(lo, hi))


@AppRegistry.register
class Barnes(Application):
    """Barnes-Hut with master tree build and cyclic body partition."""

    name = "Barnes"
    checksum_rtol = 1e-4

    datasets = {
        # Paper: 16K bodies; scaled for simulator runtime.  1080 bodies
        # (not a multiple of 64 bodies/page) keeps the partition
        # boundaries inside pages, preserving the boundary write-write
        # false sharing of the original.
        "16K": {"n": 1080, "iters": 2, "max_cells": 4096},
    }

    def heap_bytes(self, dataset: str) -> int:
        p = self.params(dataset)
        return (p["n"] * BODY_REC + p["max_cells"] * CELL_REC) * 4 + 65536

    def setup(self, tmk: TreadMarks, dataset: str) -> dict:
        p = self.params(dataset)
        return {
            "bodies": tmk.array("bodies", (p["n"], BODY_REC), "float32"),
            "cells": tmk.array("cells", (p["max_cells"], CELL_REC), "float32"),
            "meta": tmk.array("meta", (16,), "int32"),
        }

    # ------------------------------------------------------------------
    def worker(self, proc: Proc, handles: dict, params: dict) -> float:
        bodies, cells, meta = handles["bodies"], handles["cells"], handles["meta"]
        n, iters = params["n"], params["iters"]
        mine = _owned(n, proc.nprocs, proc.id)

        # Distributed initialization: owners write their body ranges.
        init = _initial_bodies(n)
        if mine:
            bodies.write_rows(proc, mine[0], init[mine[0] : mine[-1] + 1])
        proc.barrier()

        for _ in range(iters):
            # ---- Master builds the tree, reading every body record
            # fine-grained, then writes the serialized cells.
            if proc.id == 0:
                pos = np.empty((n, 3), dtype=np.float32)
                mass = np.empty(n, dtype=np.float32)
                for j in range(n):
                    rec = bodies.read(proc, (j, 0), 10)
                    pos[j] = rec[0:3]
                    mass[j] = rec[9]
                tree = build_tree(pos, mass)
                if tree.shape[0] > params["max_cells"]:
                    raise RuntimeError(
                        f"tree needs {tree.shape[0]} cells, "
                        f"max_cells={params['max_cells']}"
                    )
                proc.compute(us=15.0 * n)  # sequential build work
                for cid in range(tree.shape[0]):
                    cells.write_row(proc, cid, tree[cid])
                meta.write(proc, 0, np.array([tree.shape[0]], np.int32))
            proc.barrier()

            # ---- Parallel force computation over the cyclic partition.
            cell_cache: Dict[int, np.ndarray] = {}
            body_cache: Dict[int, np.ndarray] = {}

            def read_cell(cid: int) -> np.ndarray:
                if cid not in cell_cache:
                    cell_cache[cid] = cells.read_row(proc, cid)
                return cell_cache[cid]

            def read_body(j: int) -> np.ndarray:
                if j not in body_cache:
                    body_cache[j] = bodies.read(proc, (j, 0), 10)
                return body_cache[j]

            accs: Dict[int, np.ndarray] = {}
            for i in mine:
                rec = read_body(i).copy()
                acc, inter = force_on(i, rec[0:3], read_cell, read_body)
                proc.compute(flops=inter * FLOPS_PER_INTERACTION)
                accs[i] = acc
            proc.barrier()

            # ---- Update phase: owners integrate their bodies, publishing
            # the new accelerations with the position/velocity write.
            # Keeping accelerations private until here means the force
            # phase is read-only, so traversal reads of remote records
            # are never concurrent with owner writes (the phases are
            # race-free under the repro.trace happens-before check).
            for i in mine:
                rec = bodies.read_row(proc, i)
                rec[6:9] = accs[i]
                rec[3:6] = rec[3:6] + rec[6:9] * DT
                rec[0:3] = rec[0:3] + rec[3:6] * DT
                proc.compute(flops=12)
                bodies.write(proc, (i, 0), rec[0:9])  # fine-grained write
            proc.barrier()

        local = 0.0
        for i in mine:
            rec = bodies.read(proc, (i, 0), 9)
            local += float(np.abs(rec).astype(np.float64).sum())
        return self.collect_checksum(proc, handles, local)

    # ------------------------------------------------------------------
    def access_pattern(self, handles, params, nprocs):
        """Declared pattern: master tree build, read-only force phase,
        fine-grained owner updates.  The cell writes are ``may`` (the
        tree size is data-dependent); the per-body 9-word updates are
        ``must`` and produce the predicted boundary-page conflicts."""
        from repro.analyze.access import AccessPattern

        bodies, cells, meta = (
            handles["bodies"], handles["cells"], handles["meta"],
        )
        n = params["n"]
        ranges = [self.block_range(n, nprocs, p) for p in range(nprocs)]
        pat = AccessPattern(app=self.name)

        ph = pat.phase("init")
        for p, (lo, hi) in enumerate(ranges):
            if hi > lo:
                ph.write_rows(bodies, p, lo, hi)
        for it in range(params["iters"]):
            ph = pat.phase(f"iter{it}:build")
            for j in range(n):
                ph.read(bodies, 0, (j, 0), 10)
            ph.write_all(cells, 0, must=False)
            ph.write(meta, 0, 0, 1)
            ph = pat.phase(f"iter{it}:force")
            for p, (lo, hi) in enumerate(ranges):
                ph.read_all(cells, p, must=False)
                ph.read_all(bodies, p, must=False)
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), 10)
            ph = pat.phase(f"iter{it}:update")
            for p, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    ph.read(bodies, p, (i, 0), BODY_REC)
                    ph.write(bodies, p, (i, 0), 9)
        ph = pat.phase("checksum")
        for p, (lo, hi) in enumerate(ranges):
            for i in range(lo, hi):
                ph.read(bodies, p, (i, 0), 9)
        return pat

    # ------------------------------------------------------------------
    def reference(self, dataset: str) -> float:
        p = self.params(dataset)
        n, iters = p["n"], p["iters"]
        b = _initial_bodies(n)
        for _ in range(iters):
            tree = build_tree(b[:, 0:3].copy(), b[:, 9].copy())

            def read_cell(cid: int) -> np.ndarray:
                return tree[cid]

            def read_body(j: int) -> np.ndarray:
                return b[j, 0:10]

            acc = np.zeros((n, 3), dtype=np.float32)
            for i in range(n):
                acc[i], _ = force_on(i, b[i, 0:3].copy(), read_cell, read_body)
            b[:, 6:9] = acc
            b[:, 3:6] = b[:, 3:6] + b[:, 6:9] * DT
            b[:, 0:3] = b[:, 0:3] + b[:, 3:6] * DT
        return float(np.abs(b[:, 0:9]).astype(np.float64).sum())

"""Typed views over shared heap allocations.

A :class:`SharedArray` is a *global* handle (shape, dtype, heap offset)
created once at setup time via :meth:`repro.core.treadmarks.TreadMarks.array`;
processors access it through their :class:`repro.core.proc.Proc`.  All
accesses decompose into contiguous word-range reads/writes on the shared
heap, which is where faulting and instrumentation happen.

Supported dtypes are the 4-byte-multiple numeric types (float32, int32,
uint32, float64, int64, complex64, complex128), matching the paper's
4-byte instrumentation word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike

from repro.core.proc import Proc
from repro.dsm.address_space import Allocation, SharedHeapLayout
from repro.dsm.diff import WORD

#: An element index: flat int for 1-D arrays, or an (i, j, ...) tuple.
Index = Union[int, Tuple[int, ...]]

#: A shape spec: an int (1-D) or a sequence of ints.
ShapeLike = Union[int, Sequence[int]]

#: Anything ``np.dtype()`` accepts (name string, dtype, scalar type).
DTypeLike = Union[str, np.dtype, type]


def _as_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, int):
        return (int(shape),)
    return tuple(int(s) for s in shape)


@dataclass(frozen=True)
class PadSpec:
    """A padded re-layout of one shared array (a layout-advisor remedy).

    ``segments`` partitions the flat element range ``[0, size)`` into
    ascending, non-overlapping ``(elem_start, elem_count)`` pieces that
    tile it exactly; each segment is placed starting at the next
    ``align_bytes`` boundary of the heap.  Element addressing, data, and
    per-processor access order are unchanged -- only the element -> heap
    word mapping moves, which is exactly the degree of freedom the
    paper's false-sharing discussion allows an application author.
    """

    array: str
    align_bytes: int
    segments: Tuple[Tuple[int, int], ...]

    def validate(self, size: int) -> None:
        if self.align_bytes <= 0 or self.align_bytes % WORD:
            raise ValueError(
                f"align_bytes must be a positive multiple of {WORD}, "
                f"got {self.align_bytes}"
            )
        cursor = 0
        for start, count in self.segments:
            if start != cursor or count <= 0:
                raise ValueError(
                    f"segments of {self.array!r} must tile [0, {size}) "
                    f"in order; got segment ({start}, {count}) at "
                    f"element {cursor}"
                )
            cursor += count
        if cursor != size:
            raise ValueError(
                f"segments of {self.array!r} cover {cursor} elements, "
                f"array has {size}"
            )


#: A layout plan: array name -> its padded re-layout.
LayoutPlan = Dict[str, PadSpec]


def plan_slack_bytes(plan: LayoutPlan | None) -> int:
    """Upper bound on the extra heap bytes a plan needs (per spec: one
    alignment gap per segment plus base alignment plus tail rounding)."""
    if not plan:
        return 0
    return sum(
        (len(spec.segments) + 2) * spec.align_bytes
        for spec in plan.values()
    )


def alloc_array(
    layout: SharedHeapLayout, name: str, shape: ShapeLike,
    dtype: DTypeLike = "float32", page_align: bool = True,
    plan: LayoutPlan | None = None,
) -> "SharedArray":
    """Allocate a typed shared array in ``layout`` (the single shared
    implementation behind :meth:`repro.core.treadmarks.TreadMarks.array`
    and the static analyzer's layout probe, so both resolve identical
    heap addresses for the same ``setup()`` call sequence).

    When ``plan`` holds a :class:`PadSpec` for ``name``, the array is
    laid out padded (see :class:`PaddedSharedArray`); all other arrays
    allocate exactly as before."""
    if plan and name in plan:
        return alloc_padded_array(layout, name, shape, plan[name], dtype)
    shp = _as_shape(shape)
    dt = np.dtype(dtype)
    nbytes = int(np.prod(shp)) * dt.itemsize
    alloc = layout.malloc(name, nbytes, page_align=page_align)
    return SharedArray(alloc, shp, dt)


def alloc_padded_array(
    layout: SharedHeapLayout, name: str, shape: ShapeLike,
    spec: PadSpec, dtype: DTypeLike = "float32",
) -> "PaddedSharedArray":
    """Allocate ``name`` with the segment padding described by ``spec``.

    The allocation is oversized by one alignment quantum so the first
    segment can start on an ``align_bytes`` boundary of the *heap*
    regardless of where ``malloc`` placed the block."""
    shp = _as_shape(shape)
    dt = np.dtype(dtype)
    size = int(np.prod(shp))
    spec.validate(size)
    wpe = dt.itemsize // WORD
    align_words = spec.align_bytes // WORD
    # Word offset of each segment relative to an aligned base.
    rel: List[int] = []
    cursor = 0
    for _, count in spec.segments:
        rel.append(cursor)
        cursor += count * wpe
        cursor = -(-cursor // align_words) * align_words
    alloc = layout.malloc(
        name, (cursor + align_words) * WORD, page_align=True
    )
    base_word = -(-alloc.word_offset // align_words) * align_words
    return PaddedSharedArray(alloc, shp, dt, spec, base_word, rel)


class SharedArray:
    """A C-ordered shared array living in the DSM heap."""

    def __init__(
        self, alloc: Allocation, shape: Tuple[int, ...], dtype: DTypeLike
    ) -> None:
        self.alloc = alloc
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize % WORD:
            raise ValueError(
                f"dtype {self.dtype} has itemsize {self.dtype.itemsize}, "
                f"not a multiple of the {WORD}-byte word"
            )
        self.words_per_elem = self.dtype.itemsize // WORD
        self.size = int(np.prod(self.shape))
        if self.size * self.dtype.itemsize > alloc.nbytes:
            raise ValueError(
                f"array {alloc.name!r} needs {self.size * self.dtype.itemsize} "
                f"bytes, allocation holds {alloc.nbytes}"
            )

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def word_offset(self, flat_index: int) -> int:
        """Heap word offset of flat element ``flat_index``."""
        if flat_index < 0 or flat_index > self.size:
            raise IndexError(f"flat index {flat_index} out of {self.size}")
        return self.alloc.word_offset + flat_index * self.words_per_elem

    def word_runs(self, flat_index: int, nelems: int) -> List[Tuple[int, int]]:
        """The contiguous heap word ranges covering elements
        ``[flat_index, flat_index + nelems)``, as ``(word0, nwords)``
        pairs in element order.  A plain array is one run; a padded
        array may split at segment boundaries."""
        if flat_index < 0 or flat_index + nelems > self.size:
            raise IndexError(
                f"run of {nelems} elements at flat {flat_index} exceeds "
                f"size {self.size}"
            )
        return [(self.word_offset(flat_index), nelems * self.words_per_elem)]

    def _flatten(self, index: Index) -> int:
        """Flat element index of an (i, j, ...) tuple or int."""
        if isinstance(index, int):
            if len(self.shape) != 1:
                raise IndexError(f"array {self.alloc.name!r} needs a tuple index")
            return index
        return int(np.ravel_multi_index(index, self.shape))

    # ------------------------------------------------------------------
    # Element / block access
    # ------------------------------------------------------------------
    def read(self, proc: Proc, start: Index, count: int = 1) -> np.ndarray:
        """Read ``count`` contiguous elements starting at ``start`` (an
        int for 1-D arrays or an index tuple); returns a 1-D ndarray of
        the array's dtype."""
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        if flat < 0 or flat + count > self.size:
            raise IndexError(
                f"read of {count} elements at flat {flat} exceeds size {self.size}"
            )
        wpe = self.words_per_elem
        raw = proc.read(self.alloc.word_offset + flat * wpe, count * wpe)
        return raw.view(self.dtype)

    def write(self, proc: Proc, start: Index, values: ArrayLike) -> None:
        """Write contiguous elements starting at ``start``."""
        vals = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        if flat < 0 or flat + vals.size > self.size:
            raise IndexError(
                f"write of {vals.size} elements at flat {flat} exceeds "
                f"size {self.size}"
            )
        wpe = self.words_per_elem
        proc.write(self.alloc.word_offset + flat * wpe, vals.view(np.uint32))

    # ------------------------------------------------------------------
    # Bulk gather / scatter (many equal-length element ranges per call,
    # routed through the Proc bulk-access API)
    # ------------------------------------------------------------------
    def gather(
        self, proc: Proc, starts: ArrayLike, count: int = 1
    ) -> np.ndarray:
        """Read ``count`` contiguous elements at each flat element index
        in ``starts``; returns an (nranges, count) ndarray of the
        array's dtype.  Semantically a loop of :meth:`read` calls, in
        order."""
        s = np.ascontiguousarray(starts, dtype=np.int64)
        if s.size and (
            int(s.min()) < 0 or int(s.max()) + count > self.size
        ):
            raise IndexError(
                f"gather of {count}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        wpe = self.words_per_elem
        raw = proc.read_gather(
            self.alloc.word_offset + s * wpe, count * wpe
        )
        return raw.view(self.dtype).reshape(s.shape[0], count)

    def scatter(
        self, proc: Proc, starts: ArrayLike, values: ArrayLike
    ) -> None:
        """Write an (nranges, count) block of elements at each flat
        element index in ``starts``.  Semantically a loop of
        :meth:`write` calls, in order."""
        s = np.ascontiguousarray(starts, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.ndim != 2 or vals.shape[0] != s.shape[0]:
            raise ValueError(
                f"scatter needs (nranges, count) values matching "
                f"{s.shape[0]} starts, got shape {vals.shape}"
            )
        if s.size and (
            int(s.min()) < 0
            or int(s.max()) + vals.shape[1] > self.size
        ):
            raise IndexError(
                f"scatter of {vals.shape[1]}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        proc.write_scatter(
            self.alloc.word_offset + s * self.words_per_elem,
            vals.view(np.uint32),
        )

    def gather_rows(
        self, proc: Proc, rows: ArrayLike, col0: int = 0,
        ncols: int | None = None,
    ) -> np.ndarray:
        """Read the column window ``[col0, col0+ncols)`` of each row in
        ``rows`` of a 2-D array (one gather range per row)."""
        self._check_2d()
        ncols = self.shape[1] - col0 if ncols is None else ncols
        r = np.ascontiguousarray(rows, dtype=np.int64)
        self._check_row_window(r, col0, ncols)
        return self.gather(proc, r * self.shape[1] + col0, ncols)

    def scatter_rows(
        self, proc: Proc, rows: ArrayLike, values: ArrayLike, col0: int = 0
    ) -> None:
        """Write an (nrows, ncols) block into the column window starting
        at ``col0`` of each row in ``rows`` of a 2-D array."""
        self._check_2d()
        r = np.ascontiguousarray(rows, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.ndim != 2:
            raise ValueError(f"scatter_rows needs 2-D values, got {vals.shape}")
        self._check_row_window(r, col0, vals.shape[1])
        self.scatter(proc, r * self.shape[1] + col0, vals)

    def _check_row_window(self, rows: np.ndarray, col0: int, ncols: int) -> None:
        if rows.size and (
            int(rows.min()) < 0 or int(rows.max()) >= self.shape[0]
        ):
            raise IndexError(
                f"row index out of range for {self.alloc.name!r} with "
                f"{self.shape[0]} rows"
            )
        if col0 < 0 or ncols <= 0 or col0 + ncols > self.shape[1]:
            raise IndexError(
                f"column window [{col0}, {col0 + ncols}) outside "
                f"{self.shape[1]} columns of {self.alloc.name!r}"
            )

    # ------------------------------------------------------------------
    # Row helpers for 2-D arrays (C order: a row is contiguous)
    # ------------------------------------------------------------------
    def read_row(self, proc: Proc, i: int) -> np.ndarray:
        """Read row ``i`` of a 2-D array."""
        self._check_2d()
        return self.read(proc, (i, 0), self.shape[1])

    def write_row(self, proc: Proc, i: int, values: ArrayLike) -> None:
        """Write row ``i`` of a 2-D array."""
        self._check_2d()
        self.write(proc, (i, 0), values)

    def read_rows(self, proc: Proc, i0: int, i1: int) -> np.ndarray:
        """Read rows ``[i0, i1)`` of a 2-D array as an (i1-i0, ncols)
        ndarray (one contiguous shared access)."""
        self._check_2d()
        n = (i1 - i0) * self.shape[1]
        return self.read(proc, (i0, 0), n).reshape(i1 - i0, self.shape[1])

    def write_rows(self, proc: Proc, i0: int, values: ArrayLike) -> None:
        """Write consecutive rows starting at ``i0`` (one contiguous
        shared access)."""
        self._check_2d()
        self.write(proc, (i0, 0), np.asarray(values))

    def _check_2d(self) -> None:
        if len(self.shape) != 2:
            raise IndexError(
                f"row access needs a 2-D array, {self.alloc.name!r} has "
                f"shape {self.shape}"
            )

    def __repr__(self) -> str:
        return (
            f"SharedArray({self.alloc.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, word_offset={self.alloc.word_offset})"
        )


class PaddedSharedArray(SharedArray):
    """A shared array whose elements are remapped into aligned segments.

    Same element API and data as :class:`SharedArray`; only the element
    -> heap word mapping is piecewise.  Accesses that stay inside one
    segment keep their single-range fast path (Barnes rows, Jacobi row
    bands); accesses that straddle a boundary decompose into one shared
    access per segment run, preserving element order so checksums are
    bit-identical to the unpadded layout.
    """

    def __init__(
        self, alloc: Allocation, shape: Tuple[int, ...], dtype: DTypeLike,
        spec: PadSpec, base_word: int, rel_word0: Sequence[int],
    ) -> None:
        super().__init__(alloc, shape, dtype)
        self.spec = spec
        self._seg_elem0 = np.array(
            [s for s, _ in spec.segments], dtype=np.int64
        )
        self._seg_count = np.array(
            [c for _, c in spec.segments], dtype=np.int64
        )
        self._seg_word0 = base_word + np.asarray(rel_word0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Piecewise address arithmetic
    # ------------------------------------------------------------------
    def _seg_of(self, flat_index: int) -> int:
        return int(
            np.searchsorted(self._seg_elem0, flat_index, side="right") - 1
        )

    def word_offset(self, flat_index: int) -> int:
        if flat_index < 0 or flat_index > self.size:
            raise IndexError(f"flat index {flat_index} out of {self.size}")
        if flat_index == self.size:
            i = len(self.spec.segments) - 1
        else:
            i = self._seg_of(flat_index)
        off = flat_index - int(self._seg_elem0[i])
        return int(self._seg_word0[i]) + off * self.words_per_elem

    def word_runs(self, flat_index: int, nelems: int) -> List[Tuple[int, int]]:
        if flat_index < 0 or flat_index + nelems > self.size:
            raise IndexError(
                f"run of {nelems} elements at flat {flat_index} exceeds "
                f"size {self.size}"
            )
        if nelems == 0:
            return [(self.word_offset(flat_index), 0)]
        runs: List[Tuple[int, int]] = []
        wpe = self.words_per_elem
        flat, left = flat_index, nelems
        i = self._seg_of(flat)
        while left > 0:
            seg_end = int(self._seg_elem0[i]) + int(self._seg_count[i])
            take = min(left, seg_end - flat)
            w0 = (
                int(self._seg_word0[i])
                + (flat - int(self._seg_elem0[i])) * wpe
            )
            runs.append((w0, take * wpe))
            flat += take
            left -= take
            i += 1
        return runs

    # ------------------------------------------------------------------
    # Element / block access (the four primitives every other helper
    # routes through)
    # ------------------------------------------------------------------
    def _read_flat(self, proc: Proc, flat: int, count: int) -> np.ndarray:
        runs = self.word_runs(flat, count)
        if len(runs) == 1:
            return proc.read(runs[0][0], runs[0][1]).view(self.dtype)
        raw = np.concatenate([proc.read(w0, nw) for w0, nw in runs])
        return raw.view(self.dtype)

    def _write_flat(
        self, proc: Proc, flat: int, vals: np.ndarray
    ) -> None:
        words = vals.view(np.uint32)
        pos = 0
        for w0, nw in self.word_runs(flat, vals.size):
            proc.write(w0, words[pos:pos + nw])
            pos += nw

    def read(self, proc: Proc, start: Index, count: int = 1) -> np.ndarray:
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        return self._read_flat(proc, flat, count)

    def write(self, proc: Proc, start: Index, values: ArrayLike) -> None:
        vals = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        flat = start if isinstance(start, int) and len(self.shape) == 1 \
            else self._flatten(start)
        self._write_flat(proc, flat, vals)

    def _range_segments(
        self, starts: np.ndarray, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Segment index of each range's first and last element."""
        i0 = np.searchsorted(self._seg_elem0, starts, side="right") - 1
        i1 = (
            np.searchsorted(
                self._seg_elem0, starts + count - 1, side="right"
            )
            - 1
        )
        return i0, i1

    def gather(
        self, proc: Proc, starts: ArrayLike, count: int = 1
    ) -> np.ndarray:
        s = np.ascontiguousarray(starts, dtype=np.int64)
        if s.size and (
            int(s.min()) < 0 or int(s.max()) + count > self.size
        ):
            raise IndexError(
                f"gather of {count}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        wpe = self.words_per_elem
        i0, i1 = self._range_segments(s, count)
        if s.size and bool(np.all(i0 == i1)):
            word_starts = (
                self._seg_word0[i0] + (s - self._seg_elem0[i0]) * wpe
            )
            raw = proc.read_gather(word_starts, count * wpe)
            return raw.view(self.dtype).reshape(s.shape[0], count)
        out = np.empty((s.shape[0], count), dtype=self.dtype)
        for k, flat in enumerate(s):
            out[k] = self._read_flat(proc, int(flat), count)
        return out

    def scatter(
        self, proc: Proc, starts: ArrayLike, values: ArrayLike
    ) -> None:
        s = np.ascontiguousarray(starts, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.ndim != 2 or vals.shape[0] != s.shape[0]:
            raise ValueError(
                f"scatter needs (nranges, count) values matching "
                f"{s.shape[0]} starts, got shape {vals.shape}"
            )
        count = vals.shape[1]
        if s.size and (
            int(s.min()) < 0 or int(s.max()) + count > self.size
        ):
            raise IndexError(
                f"scatter of {count}-element ranges exceeds "
                f"{self.alloc.name!r} size {self.size}"
            )
        wpe = self.words_per_elem
        i0, i1 = self._range_segments(s, count)
        if s.size and bool(np.all(i0 == i1)):
            word_starts = (
                self._seg_word0[i0] + (s - self._seg_elem0[i0]) * wpe
            )
            proc.write_scatter(word_starts, vals.view(np.uint32))
            return
        for k, flat in enumerate(s):
            self._write_flat(
                proc, int(flat), np.ascontiguousarray(vals[k]).ravel()
            )

    def __repr__(self) -> str:
        return (
            f"PaddedSharedArray({self.alloc.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, align={self.spec.align_bytes}, "
            f"segments={len(self.spec.segments)})"
        )

"""Protocol-sweep helpers (pure logic; the full sweep is exercised by
`python -m repro.bench protocols` and the golden gate)."""

from repro.bench import golden, protocol_sweep


def test_cells_cover_the_full_matrix():
    cells = protocol_sweep.cells()
    # 4 protocols x 8 apps x 4 unit labels.
    assert len(cells) == (
        len(protocol_sweep.PROTOCOL_ORDER)
        * len(golden.SMALL_DATASETS)
        * len(golden.GOLDEN_LABELS)
    )


def test_protocol_order_matches_golden_protocols():
    assert set(protocol_sweep.PROTOCOL_ORDER) == set(golden.GOLDEN_PROTOCOLS)
    assert protocol_sweep.PROTOCOL_ORDER[0] == "tm-lrc"


class TestStopsPaying:
    def test_monotone_improvement_reaches_the_largest_unit(self):
        times = {"4K": 3.0, "8K": 2.0, "16K": 1.0, "Dyn": 9.0}
        assert protocol_sweep.stops_paying(times) == "16K"

    def test_immediate_regression_stays_at_4k(self):
        times = {"4K": 1.0, "8K": 2.0, "16K": 0.5, "Dyn": 9.0}
        # 16K is cheapest overall but the scan is about *growing* the
        # unit: the first step already regressed.
        assert protocol_sweep.stops_paying(times) == "4K"

    def test_partial_improvement_stops_mid_scan(self):
        times = {"4K": 2.0, "8K": 1.5, "16K": 1.5, "Dyn": 9.0}
        assert protocol_sweep.stops_paying(times) == "8K"

    def test_ties_do_not_count_as_improvement(self):
        times = {"4K": 1.0, "8K": 1.0, "16K": 0.9, "Dyn": 9.0}
        assert protocol_sweep.stops_paying(times) == "4K"

"""Network ledger: recording, counting, classification plumbing."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.network import MessageClass, Network


@pytest.fixture
def net():
    return Network(SimConfig(nprocs=4))


def test_record_returns_ledger_entry(net):
    rec = net.record(0, 1, MessageClass.LOCK, 16, 0.0)
    assert rec.msg_id == 0
    assert net.messages[0] is rec


def test_self_message_rejected(net):
    with pytest.raises(ValueError):
        net.record(2, 2, MessageClass.LOCK, 16, 0.0)


def test_negative_payload_rejected(net):
    with pytest.raises(ValueError):
        net.record(0, 1, MessageClass.LOCK, -1, 0.0)


def test_counts_by_class(net):
    net.record(0, 1, MessageClass.LOCK, 16, 0.0)
    net.record(1, 0, MessageClass.BARRIER, 8, 0.0)
    net.record(0, 2, MessageClass.DIFF_REQUEST, 20, 0.0)
    net.record(2, 0, MessageClass.DIFF_REPLY, 100, 0.0)
    assert net.count() == 4
    assert net.count(MessageClass.LOCK) == 1
    assert net.sync_message_count == 2
    assert net.data_message_count == 2


def test_bytes_by_class(net):
    net.record(0, 1, MessageClass.DIFF_REPLY, 100, 0.0)
    net.record(0, 1, MessageClass.DIFF_REPLY, 50, 0.0)
    assert net.bytes(MessageClass.DIFF_REPLY) == 150
    assert net.bytes() == 150


def test_exchange_lifecycle(net):
    ex = net.new_exchange(requester=0, writer=3, fault_id=7)
    req = net.record(0, 3, MessageClass.DIFF_REQUEST, 20, 0.0, ex)
    reply = net.record(3, 0, MessageClass.DIFF_REPLY, 200, 0.0, ex)
    net.close_exchange(ex, req.msg_id, reply.msg_id)
    assert net.exchange_reply(ex) is reply


def test_unclosed_exchange_rejected(net):
    ex = net.new_exchange(0, 1, 0)
    with pytest.raises(ValueError):
        net.exchange_reply(ex)


def test_uselessness_of_data_message(net):
    reply = net.record(1, 0, MessageClass.DIFF_REPLY, 64, 0.0)
    reply.words_carried = 16
    assert reply.is_useless  # nothing read yet
    reply.words_useful = 3
    assert not reply.is_useless
    assert reply.words_useless == 13


def test_sync_messages_never_useless(net):
    msg = net.record(0, 1, MessageClass.LOCK, 16, 0.0)
    assert not msg.is_useless

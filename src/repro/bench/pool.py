"""Parallel execution of independent sweep cells.

Every paper experiment reduces to a set of independent (application,
dataset, configuration) cells, so the sweep is embarrassingly parallel:
``run_cells`` deduplicates the requested cells, satisfies what it can
from the in-memory/on-disk caches, fans the misses out over a
``multiprocessing`` pool, and feeds the results back through
:meth:`ResultCache.put` so the experiment renderers afterwards hit the
cache for every cell.

Determinism: each cell seeds the process-global RNGs from a hash of its
own identity (see :func:`repro.bench.cache.cell_seed`, applied inside
``run_case``), and the applications use fixed-seed local generators, so
a cell's result is bit-identical whether it runs in the parent process,
a pool worker, or any order relative to other cells.  Workers ship
results back as JSON dicts (the same lossless encoding the disk cache
uses), so ``--jobs N`` output is counter-for-counter identical to a
serial run -- asserted by ``tests/bench/test_pool.py`` and the CI
bench-smoke job.

Workers are spawned (not forked): the simulator parks processor
contexts on threads, and spawn keeps workers free of any inherited
thread state.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import cell_key
from repro.bench.harness import CaseResult, ResultCache, config_for, run_case
from repro.faults.channel import DroppedMessageError


@dataclass(frozen=True)
class SweepCell:
    """One (application, dataset, configuration) cell of a sweep.

    ``extra`` holds the keyword overrides beyond the unit label, as a
    sorted item tuple so cells are hashable and picklable.
    """

    app: str
    dataset: str
    label: str
    extra: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, app: str, dataset: str, label: str, **extra: Any) -> "SweepCell":
        return cls(app, dataset, label, tuple(sorted(extra.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.extra)

    @property
    def key(self) -> str:
        return cell_key(self.app, self.dataset, config_for(self.label, **self.kwargs))

    def __str__(self) -> str:
        extras = "".join(f" {k}={v}" for k, v in self.extra)
        return f"{self.app}/{self.dataset}@{self.label}{extras}"


def _run_cell_json(cell: SweepCell) -> Dict[str, Any]:
    """Pool worker: run one cell, return its lossless JSON encoding.

    A cell whose fault plan exhausts the retransmission budget (retries
    disabled, or a drop rate the retry cap cannot beat) fails alone: the
    worker ships an error marker instead of poisoning the whole sweep.
    """
    try:
        result = run_case(cell.app, cell.dataset, cell.label, **cell.kwargs)
    except DroppedMessageError as exc:
        return {"__failed__": str(exc)}
    return result.to_json_dict()


def dedupe_cells(cells: Sequence[SweepCell]) -> List[SweepCell]:
    """Drop cells whose resolved configuration duplicates an earlier one
    (first spelling wins), preserving order."""
    seen: Dict[str, SweepCell] = {}
    out: List[SweepCell] = []
    for cell in cells:
        if cell.key not in seen:
            seen[cell.key] = cell
            out.append(cell)
    return out


@dataclass
class SweepReport:
    """What ``run_cells`` did: cache economics and wall-clock attribution."""

    requested: int = 0
    deduped: int = 0
    cached: int = 0
    ran: int = 0
    jobs: int = 1
    cells_run: List[str] = field(default_factory=list)
    failed: List[Tuple[str, str]] = field(default_factory=list)
    """``(cell, error)`` for cells that raised
    :class:`repro.faults.channel.DroppedMessageError`; their results are
    absent from the cache, everything else completed normally."""

    def summary(self) -> str:
        tail = f", {len(self.failed)} failed" if self.failed else ""
        return (
            f"{self.requested} cells requested, {self.deduped} unique: "
            f"{self.cached} from cache, {self.ran} run "
            f"({'serial' if self.jobs <= 1 else f'{self.jobs} jobs'}){tail}"
        )


def run_cells(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Ensure every cell is in :class:`ResultCache`, running misses with
    up to ``jobs`` worker processes.  Returns a :class:`SweepReport`.
    """
    report = SweepReport(requested=len(cells), jobs=max(1, jobs))
    unique = dedupe_cells(cells)
    report.deduped = len(unique)

    missing = [
        c for c in unique
        if not ResultCache.cached(c.app, c.dataset, c.label, **c.kwargs)
    ]
    report.cached = len(unique) - len(missing)
    report.ran = len(missing)
    report.cells_run = [str(c) for c in missing]

    if not missing:
        return report

    if report.jobs <= 1 or len(missing) == 1:
        for cell in missing:
            if progress:
                progress(f"run  {cell}")
            try:
                ResultCache.get(cell.app, cell.dataset, cell.label, **cell.kwargs)
            except DroppedMessageError as exc:
                report.failed.append((str(cell), str(exc)))
                if progress:
                    progress(f"FAIL {cell}: {exc}")
        return report

    ctx = multiprocessing.get_context("spawn")
    nworkers = min(report.jobs, len(missing))
    if progress:
        progress(f"fan-out: {len(missing)} cells over {nworkers} workers")
    with ctx.Pool(processes=nworkers) as pool:
        for cell, data in zip(
            missing, pool.map(_run_cell_json, missing), strict=True
        ):
            if "__failed__" in data:
                report.failed.append((str(cell), data["__failed__"]))
                if progress:
                    progress(f"FAIL {cell}: {data['__failed__']}")
                continue
            result = CaseResult.from_json_dict(data)
            ResultCache.put(cell.app, cell.dataset, cell.label, result,
                            **cell.kwargs)
            if progress:
                progress(f"done {cell}")
    return report

"""Fault-schedule determinism and the transparency invariant.

Two layers:

* hypothesis properties over the plan/channel machinery: same-seed
  plans produce identical fault schedules, and a message's fate is
  independent of every other message's;
* whole-simulation checks: a faulty run is bit-reproducible, and for
  every application on its smallest paper dataset (at 4K and Dyn) the
  checksum and every useful-data counter equal the committed fault-free
  golden baseline -- the chaos-gate invariant, pinned in-process.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.golden import (
    GOLDEN_DIR,
    SMALL_DATASETS,
    load_app_golden,
)
from repro.bench.harness import run_case
from repro.faults.channel import DroppedMessageError, ReliableChannel
from repro.faults.gate import FAULT_FIELDS, INVARIANT_FIELDS
from repro.faults.plan import FaultPlan, message_rng

#: One stock lossy plan reused by the whole-simulation checks.
PLAN = FaultPlan.uniform(
    seed=1701, drop_rate=0.02, dup_rate=0.01, reorder_rate=0.02,
    jitter_us=50.0,
)

rates = st.floats(min_value=0.0, max_value=0.6)
seeds = st.integers(min_value=0, max_value=2**31)


def resolve(plan, spec, klass, msg_id, ch=None):
    """One message's fate -- its Delivery, or its failure identity (a
    budget-exhausted message fails deterministically too)."""
    ch = ch or ReliableChannel(src=0, dst=1, plan=plan)
    try:
        return ch.transmit(msg_id, klass, spec, message_rng(plan.seed, msg_id))
    except DroppedMessageError as exc:
        return ("failed", exc.msg_id, exc.attempts)


def schedule(plan, n_msgs=64, klass="lock"):
    """The fault schedule of ``n_msgs`` messages on one link: every
    message's resolved fate, in order."""
    spec = plan.spec_for(klass)
    ch = ReliableChannel(src=0, dst=1, plan=plan)
    return [resolve(plan, spec, klass, i, ch) for i in range(n_msgs)]


@settings(max_examples=40, deadline=None)
@given(seed=seeds, drop=rates, dup=rates)
def test_same_seed_same_schedule(seed, drop, dup):
    plan = FaultPlan.uniform(seed=seed, drop_rate=drop, dup_rate=dup,
                             reorder_rate=0.1, jitter_us=20.0)
    assert schedule(plan) == schedule(plan)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, drop=rates)
def test_message_fates_are_independent(seed, drop):
    # Resolving only a subset of the messages does not change the fate
    # of the rest: each message's draws come from its own keyed RNG.
    plan = FaultPlan.uniform(seed=seed, drop_rate=drop, dup_rate=0.2,
                             jitter_us=10.0)
    spec = plan.spec_for("lock")
    full = schedule(plan, n_msgs=32)
    sparse = [resolve(plan, spec, "lock", i) for i in range(0, 32, 5)]
    assert sparse == full[::5]


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_distinct_seeds_usually_disagree(seed):
    plan_a = FaultPlan.uniform(seed=seed, drop_rate=0.3, jitter_us=50.0)
    plan_b = plan_a.replace(seed=seed + 1)
    # Not a tautology -- 64 messages x several draws each make a
    # collision over every field astronomically unlikely.
    assert schedule(plan_a) != schedule(plan_b)


# ----------------------------------------------------------------------
# Whole-simulation determinism
# ----------------------------------------------------------------------
def test_faulty_run_is_bit_reproducible():
    a = run_case("Jacobi", SMALL_DATASETS["Jacobi"], "4K",
                 fault_plan=PLAN.canonical())
    b = run_case("Jacobi", SMALL_DATASETS["Jacobi"], "4K",
                 fault_plan=PLAN.canonical())
    assert a.to_json_dict() == b.to_json_dict()
    assert a.retransmissions > 0


@pytest.mark.parametrize("app", sorted(SMALL_DATASETS))
@pytest.mark.parametrize("label", ("4K", "Dyn"))
def test_invariant_against_golden(app, label):
    """The chaos-gate invariant for every application: under a lossy
    plan with retries, only time and the fault counters move."""
    golden = load_app_golden(GOLDEN_DIR, app)
    assert golden is not None, f"no golden baseline for {app}"
    entry = golden[SMALL_DATASETS[app]][label]
    case = run_case(app, SMALL_DATASETS[app], label,
                    fault_plan=PLAN.canonical())
    for fname in INVARIANT_FIELDS:
        assert getattr(case, fname) == entry[fname], (
            f"{app}@{label}: {fname} diverged under faults"
        )
    assert case.time_us >= entry["time_us"]
    assert sum(getattr(case, f) for f in FAULT_FIELDS) > 0

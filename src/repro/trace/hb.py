"""Vector-clock happens-before race detection over the access trace.

The detector replays a recorded event stream and checks the classic
data-race condition for release-consistent programs: two accesses to the
same shared word from different processors, at least one a write, that
are not ordered by the synchronization operations of the run.  A racy
program has no well-defined semantics under lazy release consistency
(its outcome depends on protocol timing), so the stock applications must
all verify race-free -- this is the correctness oracle the paper's
methodology silently assumes.

Replay model (segment / epoch detection, as in FastTrack-style
detectors, but over the trace instead of live execution):

* Each processor's access stream is cut into *segments* at its
  synchronization events; all accesses in a segment share one vector
  timestamp.
* Lock semantics: a release stores the releaser's clock in the lock's
  clock; a grant joins the lock's clock into the acquirer's.  Acquire
  events appear in the trace in grant order (the recorder emits them on
  the scheduler thread), so the replayed lock clock sees releases and
  grants in their true protocol order.
* Barrier semantics: every arrival joins into the instance's
  accumulator; every departure joins the accumulator back.  Arrive
  events of an instance all precede its depart events in the trace.
* Two segments from different processors are concurrent iff neither
  vector timestamp is pointwise <= the other; a race is a word-range
  overlap between a write set and a read-or-write set of two concurrent
  segments.

Complexity: O(accesses) to build segments plus O(S^2) concurrent-pair
interval intersection over the S non-empty segments -- small, because
segments are per (processor, synchronization interval), not per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import TraceEvent

if False:  # TYPE_CHECKING without the import cost at runtime
    from repro.dsm.address_space import SharedHeapLayout


# ----------------------------------------------------------------------
# Interval sets (half-open word ranges)
# ----------------------------------------------------------------------
def coalesce(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge overlapping/adjacent [w0, w1) ranges."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for w0, w1 in ranges[1:]:
        p0, p1 = out[-1]
        if w0 <= p1:
            if w1 > p1:
                out[-1] = (p0, w1)
        else:
            out.append((w0, w1))
    return out


def first_overlap(
    a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
) -> Optional[Tuple[int, int]]:
    """First overlapping [w0, w1) of two coalesced range lists, or None."""
    i = j = 0
    while i < len(a) and j < len(b):
        a0, a1 = a[i]
        b0, b1 = b[j]
        lo, hi = max(a0, b0), min(a1, b1)
        if lo < hi:
            return lo, hi
        if a1 <= b1:
            i += 1
        else:
            j += 1
    return None


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
@dataclass
class Segment:
    """All accesses of one processor between two of its sync events."""

    proc: int
    index: int
    """Per-processor segment number (program order)."""

    clock: Tuple[int, ...]
    """Vector timestamp shared by every access in the segment."""

    start_ts_us: float
    reads: List[Tuple[int, int]] = field(default_factory=list)
    writes: List[Tuple[int, int]] = field(default_factory=list)
    accesses: List[Tuple[int, str, int, int]] = field(default_factory=list)
    """Raw (eid, op, word0, nwords) list, for race attribution."""

    @property
    def empty(self) -> bool:
        return not self.reads and not self.writes

    def seal(self) -> None:
        """Coalesce the read/write interval sets (call once, at close)."""
        self.reads = coalesce(self.reads)
        self.writes = coalesce(self.writes)


def _leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    return all(x <= y for x, y in zip(a, b, strict=True))


def _concurrent(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    return not _leq(a, b) and not _leq(b, a)


def build_segments(
    events: Sequence[TraceEvent], nprocs: int
) -> List[Segment]:
    """Replay the sync events and cut each processor's accesses into
    vector-timestamped segments."""
    clocks: List[List[int]] = [[0] * nprocs for _ in range(nprocs)]
    for p in range(nprocs):
        clocks[p][p] = 1
    lock_clocks: Dict[int, List[int]] = {}
    barrier_acc: Dict[int, List[int]] = {}
    barrier_departs: Dict[int, int] = {}

    segments: List[Segment] = []
    current: List[Segment] = [
        Segment(proc=p, index=0, clock=tuple(clocks[p]), start_ts_us=0.0)
        for p in range(nprocs)
    ]
    counts = [1] * nprocs

    def close_and_restart(p: int, ts: float) -> None:
        seg = current[p]
        if not seg.empty:
            seg.seal()
            segments.append(seg)
        current[p] = Segment(
            proc=p, index=counts[p], clock=tuple(clocks[p]), start_ts_us=ts
        )
        counts[p] += 1

    def join_into(dst: List[int], src: Sequence[int]) -> None:
        for i, v in enumerate(src):
            if v > dst[i]:
                dst[i] = v

    for ev in events:
        kind = ev.kind
        if kind == "access":
            seg = current[ev.proc]
            span = (ev.word0, ev.word0 + ev.nwords)
            if ev.op == "read":
                seg.reads.append(span)
            else:
                seg.writes.append(span)
            seg.accesses.append((ev.eid, ev.op, ev.word0, ev.nwords))
        elif kind == "lock_acquire":
            p = ev.proc
            lc = lock_clocks.get(ev.lock_id)
            if lc is not None:
                join_into(clocks[p], lc)
            clocks[p][p] += 1
            close_and_restart(p, ev.ts_us)
        elif kind == "lock_release":
            p = ev.proc
            lock_clocks[ev.lock_id] = list(clocks[p])
            clocks[p][p] += 1
            close_and_restart(p, ev.ts_us)
        elif kind == "barrier_arrive":
            p = ev.proc
            acc = barrier_acc.setdefault(ev.barrier_id, [0] * nprocs)
            join_into(acc, clocks[p])
        elif kind == "barrier_depart":
            p = ev.proc
            acc = barrier_acc.get(ev.barrier_id)
            if acc is not None:
                join_into(clocks[p], acc)
            clocks[p][p] += 1
            close_and_restart(p, ev.wake_ts_us)
            n = barrier_departs.get(ev.barrier_id, 0) + 1
            if n >= nprocs:
                # Instance complete: reset for the next occurrence.
                barrier_acc.pop(ev.barrier_id, None)
                barrier_departs.pop(ev.barrier_id, None)
            else:
                barrier_departs[ev.barrier_id] = n

    for p in range(nprocs):
        seg = current[p]
        if not seg.empty:
            seg.seal()
            segments.append(seg)
    return segments


# ----------------------------------------------------------------------
# Race detection
# ----------------------------------------------------------------------
@dataclass
class Race:
    """One detected pair of conflicting, unordered shared accesses."""

    word0: int
    """First racing word (global heap word offset)."""

    nwords: int
    """Size of the contiguous racing overlap."""

    page: int
    """Hardware page of ``word0`` (-1 when no layout was given)."""

    byte_offset: int
    """Heap byte offset of ``word0``."""

    allocation: str
    """Allocation label covering the racing word ('' without a layout)."""

    proc_a: int
    op_a: str
    eid_a: int
    proc_b: int
    op_b: str
    eid_b: int

    def describe(self) -> str:
        where = f"word {self.word0}"
        if self.page >= 0:
            where += f" (page {self.page}"
            if self.allocation:
                where += f", {self.allocation!r}"
            where += ")"
        return (
            f"{where}: P{self.proc_a} {self.op_a} (event {self.eid_a}) is "
            f"concurrent with P{self.proc_b} {self.op_b} (event {self.eid_b})"
            f" over {self.nwords} word(s)"
        )


@dataclass
class RaceReport:
    """Outcome of one happens-before check."""

    nprocs: int
    segments_checked: int
    pairs_checked: int
    races: List[Race] = field(default_factory=list)
    truncated: bool = False
    """True when detection stopped at ``max_races``."""

    @property
    def race_free(self) -> bool:
        return not self.races

    def render(self) -> str:
        head = (
            f"happens-before check: {len(self.races)} race(s) over "
            f"{self.segments_checked} segments "
            f"({self.pairs_checked} concurrent pairs examined)"
        )
        if self.race_free:
            return head + " -- race-free"
        lines = [head + (" [truncated]" if self.truncated else "")]
        lines += ["  " + r.describe() for r in self.races]
        return "\n".join(lines)


def _attribute(
    seg: Segment, op_set: str, w0: int, w1: int
) -> Tuple[str, int]:
    """(op, eid) of a raw access in ``seg`` covering [w0, w1) from the
    given set ('write' or 'any')."""
    for eid, op, a0, n in seg.accesses:
        if op_set == "write" and op != "write":
            continue
        if a0 < w1 and a0 + n > w0:
            return op, eid
    return ("write" if op_set == "write" else "read"), -1


def detect_races(
    events: Sequence[TraceEvent],
    nprocs: int,
    layout: Optional["SharedHeapLayout"] = None,
    max_races: int = 100,
) -> RaceReport:
    """Replay ``events`` and report all pairs of conflicting shared
    accesses unordered by synchronization (up to ``max_races``)."""
    segments = build_segments(events, nprocs)
    report = RaceReport(nprocs=nprocs, segments_checked=len(segments), pairs_checked=0)

    def describe_word(w: int) -> Tuple[int, int, str]:
        byte = w * 4
        if layout is None:
            return -1, byte, ""
        page = byte // layout.page_size
        label = ""
        alloc = layout.allocation_containing(byte)
        if alloc is not None:
            label = alloc.name
        return page, byte, label

    for i, a in enumerate(segments):
        for b in segments[i + 1 :]:
            if a.proc == b.proc:
                continue
            if not a.writes and not b.writes:
                continue
            if not _concurrent(a.clock, b.clock):
                continue
            report.pairs_checked += 1
            # write/write, write/read, read/write
            for a_set, b_set, a_kind, b_kind in (
                (a.writes, b.writes, "write", "write"),
                (a.writes, b.reads, "write", "any"),
                (a.reads, b.writes, "any", "write"),
            ):
                hit = first_overlap(a_set, b_set)
                if hit is None:
                    continue
                w0, w1 = hit
                page, byte, label = describe_word(w0)
                op_a, eid_a = _attribute(a, a_kind, w0, w1)
                op_b, eid_b = _attribute(b, b_kind, w0, w1)
                report.races.append(
                    Race(
                        word0=w0,
                        nwords=w1 - w0,
                        page=page,
                        byte_offset=byte,
                        allocation=label,
                        proc_a=a.proc,
                        op_a=op_a,
                        eid_a=eid_a,
                        proc_b=b.proc,
                        op_b=op_b,
                        eid_b=eid_b,
                    )
                )
                if len(report.races) >= max_races:
                    report.truncated = True
                    return report
    return report

"""Twin/diff machinery: creation, application, merging, wire sizes."""

import numpy as np
import pytest

from repro.dsm.diff import (
    DIFF_HEADER_BYTES,
    RUN_HEADER_BYTES,
    WORD,
    Diff,
    apply_diff,
    create_diff,
    merge_diffs,
)


def unit_words(values):
    return np.array(values, dtype=np.uint32)


def test_empty_diff():
    twin = unit_words([1, 2, 3, 4])
    d = create_diff(0, twin, twin.copy())
    assert d.nwords == 0
    assert d.wire_bytes == DIFF_HEADER_BYTES


def test_detects_changed_words():
    twin = unit_words([1, 2, 3, 4])
    cur = unit_words([1, 9, 3, 7])
    d = create_diff(5, twin, cur)
    assert d.unit == 5
    assert list(d.idx) == [1, 3]
    assert list(d.values) == [9, 7]


def test_wire_bytes_run_length():
    twin = unit_words([0] * 10)
    cur = twin.copy()
    cur[2:5] = 1  # one run of 3
    cur[8] = 1    # second run of 1
    d = create_diff(0, twin, cur)
    assert d.wire_bytes == DIFF_HEADER_BYTES + 2 * RUN_HEADER_BYTES + 4 * WORD


def test_single_run_cheaper_than_scattered():
    twin = unit_words([0] * 16)
    contiguous = twin.copy()
    contiguous[0:4] = 1
    scattered = twin.copy()
    scattered[::4] = 1
    dc = create_diff(0, twin, contiguous)
    ds = create_diff(0, twin, scattered)
    assert dc.nwords == ds.nwords == 4
    assert dc.wire_bytes < ds.wire_bytes


def test_apply_roundtrip():
    rng = np.random.default_rng(0)
    twin = rng.integers(0, 2**32, 1024, dtype=np.uint32)
    cur = twin.copy()
    cur[rng.choice(1024, 100, replace=False)] += 1
    d = create_diff(0, twin, cur)
    target = twin.copy()
    apply_diff(d, target)
    assert np.array_equal(target, cur)


def test_apply_out_of_range_rejected():
    d = Diff(unit=0, idx=np.array([10], np.int32), values=np.array([1], np.uint32), wire_bytes=0, nwords=1)
    with pytest.raises(IndexError):
        apply_diff(d, np.zeros(4, np.uint32))


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        create_diff(0, np.zeros(4, np.uint32), np.zeros(5, np.uint32))


class TestMerge:
    def test_single_diff_passthrough(self):
        twin = unit_words([0, 0])
        d = create_diff(0, twin, unit_words([1, 0]))
        assert merge_diffs([d]) is d

    def test_latest_value_wins(self):
        base = unit_words([0, 0, 0, 0])
        d1 = create_diff(0, base, unit_words([1, 1, 0, 0]))
        d2 = create_diff(0, unit_words([1, 1, 0, 0]), unit_words([2, 1, 5, 0]))
        m = merge_diffs([d1, d2])
        target = base.copy()
        apply_diff(m, target)
        assert list(target) == [2, 1, 5, 0]

    def test_merge_equals_sequential_application(self):
        rng = np.random.default_rng(7)
        base = rng.integers(0, 100, 256, dtype=np.uint32)
        cur = base.copy()
        diffs = []
        for _ in range(5):
            prev = cur.copy()
            cur[rng.choice(256, 30, replace=False)] = rng.integers(100, 200)
            diffs.append(create_diff(0, prev, cur))
        merged = merge_diffs(diffs)
        via_merge = base.copy()
        apply_diff(merged, via_merge)
        via_seq = base.copy()
        for d in diffs:
            apply_diff(d, via_seq)
        assert np.array_equal(via_merge, via_seq)

    def test_merged_never_larger_than_sum(self):
        base = unit_words([0] * 64)
        a = create_diff(0, base, np.arange(64, dtype=np.uint32))
        b = create_diff(0, np.arange(64, dtype=np.uint32), np.arange(1, 65, dtype=np.uint32))
        m = merge_diffs([a, b])
        assert m.nwords <= a.nwords + b.nwords
        assert m.wire_bytes <= a.wire_bytes + b.wire_bytes

    def test_unit_mismatch_rejected(self):
        base = unit_words([0])
        a = create_diff(0, base, unit_words([1]))
        b = create_diff(1, base, unit_words([1]))
        with pytest.raises(ValueError):
            merge_diffs([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_diffs([])

    def test_merged_idx_sorted_unique(self):
        base = unit_words([0] * 8)
        d1 = create_diff(0, base, unit_words([1, 0, 1, 0, 0, 0, 0, 0]))
        d2 = create_diff(0, unit_words([1, 0, 1, 0, 0, 0, 0, 0]),
                         unit_words([2, 0, 1, 0, 0, 3, 0, 0]))
        m = merge_diffs([d1, d2])
        idx = list(m.idx)
        assert idx == sorted(set(idx))

"""Timeline export: Chrome-trace/Perfetto JSON and raw JSONL.

``chrome_trace`` converts a recorded run into the Trace Event Format
understood by ``chrome://tracing`` and https://ui.perfetto.dev: one
process ("repro-sim"), one thread track per simulated processor, with

* "X" (complete) slices for compute segments (scheduler resume to the
  next park), lock waits, barrier waits, and fault stalls,
* flow arrows ("s"/"f" pairs keyed by message id) for every protocol
  message, drawn from the sender's track at send time to the receiver's
  track at the modelled receive time,
* instant events for twins, diff create/apply, and dynamic page-group
  build/fetch/dissolve.

All timestamps are the simulated microsecond clocks already recorded by
the protocol; nothing here re-derives timing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.trace.events import TraceEvent, event_to_dict
from repro.trace.recorder import TraceRecorder

#: Chrome trace pid used for all simulated-processor tracks.
SIM_PID = 0


def _metadata(nprocs: int, label: str) -> List[dict]:
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "args": {"name": label or "repro-sim"},
        }
    ]
    for p in range(nprocs):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": p,
                "args": {"name": f"P{p}"},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": SIM_PID,
                "tid": p,
                "args": {"sort_index": p},
            }
        )
    return out


def _slice(name: str, cat: str, tid: int, ts: float, dur: float, args=None) -> dict:
    ev = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "pid": SIM_PID,
        "tid": tid,
        "ts": ts,
        "dur": max(dur, 0.0),
    }
    if args:
        ev["args"] = args
    return ev


def _instant(name: str, cat: str, tid: int, ts: float, args=None) -> dict:
    ev = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",
        "pid": SIM_PID,
        "tid": tid,
        "ts": ts,
    }
    if args:
        ev["args"] = args
    return ev


def chrome_trace(
    trace: TraceRecorder,
    label: str = "",
    flows: bool = True,
    instants: bool = True,
) -> dict:
    """Build the Chrome-trace JSON document for a recorded run."""
    nprocs = trace.config.nprocs
    out: List[dict] = _metadata(nprocs, label or f"{trace.app_name} {trace.dataset}".strip())
    last_resume: Dict[int, float] = {p: 0.0 for p in range(nprocs)}
    last_arrive: Dict[tuple, float] = {}

    for ev in trace.events:
        kind = ev.kind
        if kind == "resume":
            last_resume[ev.proc] = ev.ts_us
        elif kind == "park":
            start = last_resume.get(ev.proc, 0.0)
            out.append(
                _slice(
                    "run",
                    "cpu",
                    ev.proc,
                    start,
                    ev.ts_us - start,
                    {"ends_at": ev.op_kind, "arg": ev.arg},
                )
            )
        elif kind == "fault":
            name = "monitor-fault" if ev.monitoring else "fault"
            out.append(
                _slice(
                    name,
                    "dsm",
                    ev.proc,
                    ev.ts_us,
                    ev.cost_us,
                    {
                        "units": list(ev.units),
                        "writers": ev.writers,
                        "stall_us": ev.stall_us,
                        "fault_id": ev.fault_id,
                    },
                )
            )
        elif kind == "lock_acquire":
            out.append(
                _slice(
                    f"lock {ev.lock_id}",
                    "sync",
                    ev.proc,
                    ev.req_ts_us,
                    ev.wake_ts_us - ev.req_ts_us,
                    {"cached": ev.cached},
                )
            )
        elif kind == "barrier_arrive":
            last_arrive[(ev.proc, ev.barrier_id)] = ev.ts_us
        elif kind == "barrier_depart":
            start = last_arrive.pop((ev.proc, ev.barrier_id), ev.ts_us)
            out.append(
                _slice(
                    f"barrier {ev.barrier_id}",
                    "sync",
                    ev.proc,
                    start,
                    ev.wake_ts_us - start,
                    {"instance": ev.instance},
                )
            )
        elif kind == "message" and flows:
            name = ev.klass
            args = {"bytes": ev.payload_bytes, "msg_id": ev.msg_id}
            out.append(
                {
                    "name": name,
                    "cat": "msg",
                    "ph": "s",
                    "id": ev.msg_id,
                    "pid": SIM_PID,
                    "tid": ev.src,
                    "ts": ev.ts_us,
                    "args": args,
                }
            )
            out.append(
                {
                    "name": name,
                    "cat": "msg",
                    "ph": "f",
                    "bp": "e",
                    "id": ev.msg_id,
                    "pid": SIM_PID,
                    "tid": ev.dst,
                    "ts": ev.recv_ts_us,
                    "args": args,
                }
            )
        elif instants and kind == "twin":
            out.append(_instant("twin", "dsm", ev.proc, ev.ts_us, {"unit": ev.unit}))
        elif instants and kind == "diff_create":
            out.append(
                _instant(
                    "diff create",
                    "dsm",
                    ev.proc,
                    ev.ts_us,
                    {"unit": ev.unit, "nwords": ev.nwords, "for": ev.requester},
                )
            )
        elif instants and kind == "diff_apply":
            out.append(
                _instant(
                    "diff apply",
                    "dsm",
                    ev.proc,
                    ev.ts_us,
                    {"unit": ev.unit, "nwords": ev.nwords, "from": ev.writer},
                )
            )
        elif instants and kind == "group_build":
            out.append(
                _instant("group build", "agg", ev.proc, ev.ts_us, {"pages": list(ev.pages)})
            )
        elif instants and kind == "group_fetch":
            out.append(
                _instant(
                    "group fetch",
                    "agg",
                    ev.proc,
                    ev.ts_us,
                    {"page": ev.page, "group": list(ev.group), "fetched": list(ev.fetched)},
                )
            )
        elif instants and kind == "group_dissolve":
            out.append(
                _instant("group dissolve", "agg", ev.proc, ev.ts_us, {"page": ev.page})
            )
        elif instants and kind == "fault_injected":
            out.append(
                _instant(
                    f"fault:{ev.fault}",
                    "fault",
                    ev.proc,
                    ev.ts_us,
                    {
                        "msg_id": ev.msg_id,
                        "klass": ev.klass,
                        "delay_us": ev.delay_us,
                    },
                )
            )
        elif kind == "retransmit":
            out.append(
                _slice(
                    "retransmit",
                    "fault",
                    ev.proc,
                    ev.ts_us - ev.stall_us,
                    ev.stall_us,
                    {
                        "msg_id": ev.msg_id,
                        "klass": ev.klass,
                        "attempt": ev.attempt,
                    },
                )
            )

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "app": trace.app_name,
            "dataset": trace.dataset,
            "nprocs": nprocs,
            "events": len(trace.events),
        },
    }


def write_chrome_trace(path, trace: TraceRecorder, label: str = "") -> dict:
    """Write the Chrome-trace JSON for ``trace`` to ``path``; returns
    the document."""
    doc = chrome_trace(trace, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def witness_chrome_trace(
    nprocs: int,
    steps: Sequence[dict],
    violation: dict,
    label: str = "",
) -> dict:
    """Chrome-trace document for a model-checker violation witness.

    ``steps`` are the checker's step records (``{"i", "proc", "instr"}``
    dicts, one per executed litmus instruction in schedule order);
    ``violation`` is its violation record.  Each step becomes an "X"
    slice on the executing processor's track at ``ts = 10 * i`` (the
    witness is an interleaving, not a timing claim -- equal-width slices
    keep the schedule readable), and the violating step gets an instant
    marker.  The raw schedule rides along in ``otherData`` so the
    witness file stays replayable by ``repro analyze modelcheck
    --replay``.
    """
    out: List[dict] = _metadata(nprocs, label or "modelcheck witness")
    bad_step = violation.get("step")
    for step in steps:
        i = step["i"]
        instr = step["instr"]
        name = " ".join(str(x) for x in instr)
        args = {"i": i, "instr": list(instr)}
        out.append(
            _slice(name, "litmus", step["proc"], 10.0 * i, 8.0, args)
        )
        if bad_step == i:
            out.append(
                _instant(
                    f"VIOLATION: {violation['kind']}",
                    "violation",
                    step["proc"],
                    10.0 * i,
                    dict(violation),
                )
            )
    if bad_step is not None and bad_step >= len(steps):
        # Terminal-state violation: anchor the marker after the last step
        # on the reading processor's track.
        out.append(
            _instant(
                f"VIOLATION: {violation['kind']}",
                "violation",
                violation.get("proc", 0),
                10.0 * len(steps),
                dict(violation),
            )
        )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "nprocs": nprocs,
            "schedule": [step["proc"] for step in steps],
            "violation": dict(violation),
        },
    }


def write_jsonl(path, events: Sequence[TraceEvent]) -> int:
    """Write one JSON object per event; returns the event count."""
    n = 0
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(event_to_dict(ev)))
            fh.write("\n")
            n += 1
    return n

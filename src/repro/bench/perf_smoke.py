"""Performance-regression smoke gate for the bulk-access fast path.

    python -m repro.bench.perf_smoke
    python -m repro.bench.perf_smoke --repeats 5 --bench BENCH_vec.json

``BENCH_bulk.json`` (repo root) records the measured figure-1 speedup
of the bulk region-access port over the pre-port per-element baseline;
``BENCH_vec.json`` records the vectorized protocol kernels' full-size
sweep timings.  Each carries one designated smoke cell with its
measured bulk-mode wall time.  This gate re-times that cell under the
bulk fast path
(best of ``--repeats``) and fails when it runs more than
``max_regression`` slower than recorded -- the failure mode this smoke
exists to catch is a change that silently knocks the fast path down a
tier (e.g. every access suddenly taking the reference loop).

Wall time is machine-dependent; the recorded budget includes the
``max_regression`` headroom (25%) on top of a best-of-N measurement,
and the gate scores a best-of-N too, so scheduler noise cancels.  A
persistently slower CI host can widen the budget by refreshing the
recorded seconds -- the gate's value is catching order-of-magnitude
tier losses, not 5% drifts.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Optional, Sequence

from repro.bench.harness import run_case

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
#: Benchmark records live at the repository root (BENCH_bulk.json is the
#: PR-7 bulk-port record; BENCH_vec.json the vectorized-kernel record --
#: gate against it with ``--bench BENCH_vec.json``).
DEFAULT_BENCH = REPO_ROOT / "BENCH_bulk.json"


def time_cell(app: str, dataset: str, label: str, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds of one bulk-mode cell (one
    untimed warmup run amortizes imports and allocator warmup)."""
    run_case(app, dataset, label)
    return min(
        _timed(lambda: run_case(app, dataset, label))
        for _ in range(repeats)
    )


def _timed(fn: Callable[[], object]) -> float:
    # This module *measures* host wall time (that is its job); nothing
    # simulation-ordered happens here.
    t0 = time.perf_counter()  # detlint: ok(wall-clock)
    fn()
    return time.perf_counter() - t0  # detlint: ok(wall-clock)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf_smoke",
        description="Fail when the bulk fast path's designated smoke "
        "cell regresses vs a repo-root BENCH_*.json record.",
    )
    parser.add_argument(
        "--bench",
        type=pathlib.Path,
        default=DEFAULT_BENCH,
        help="BENCH_bulk.json to gate against (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions; the best is scored (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    spec = json.loads(args.bench.read_text())["perf_smoke"]
    app, dataset, label = spec["app"], spec["dataset"], spec["label"]
    recorded = float(spec["seconds"])
    max_regression = float(spec["max_regression"])
    budget = recorded * (1.0 + max_regression)

    best = time_cell(app, dataset, label, args.repeats)
    print(
        f"perf smoke {app}/{dataset} {label} (bulk): best of "
        f"{args.repeats} = {best:.3f}s (recorded {recorded:.3f}s, "
        f"budget {budget:.3f}s)"
    )
    if best > budget:
        print(
            f"FAIL: bulk smoke cell regressed more than "
            f"{max_regression:.0%} vs BENCH_bulk.json",
            file=sys.stderr,
        )
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

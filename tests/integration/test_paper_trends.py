"""The paper's headline qualitative results, asserted as tests.

These run the REAL datasets (scaled per DESIGN.md) at 8 processors, so
they are the slowest tests in the suite; each assertion corresponds to a
sentence in the paper's Section 5.4/5.5 discussion.
"""

import pytest

from repro.apps.base import get_app, run_app
from repro.sim.config import SimConfig


def sweep(name, ds):
    app = get_app(name)
    out = {}
    for label, kw in [
        ("4K", dict(unit_pages=1)),
        ("8K", dict(unit_pages=2)),
        ("16K", dict(unit_pages=4)),
        ("Dyn", dict(dynamic=True)),
    ]:
        out[label] = run_app(app, ds, SimConfig(nprocs=8, **kw))
    return out


@pytest.fixture(scope="module")
def mgs_small():
    return sweep("MGS", "1Kx1K")


@pytest.fixture(scope="module")
def ilink():
    return sweep("ILINK", "CLP")


class TestMGSDegradation:
    """MGS: 'The only dramatic performance deterioration ... because of a
    very large increase in the number of useless messages.'"""

    def test_time_explodes_at_larger_units(self, mgs_small):
        assert mgs_small["8K"].time_us > 2.0 * mgs_small["4K"].time_us
        assert mgs_small["16K"].time_us > 2.0 * mgs_small["4K"].time_us

    def test_useless_messages_explode(self, mgs_small):
        assert mgs_small["4K"].comm.useless_messages == 0
        assert mgs_small["8K"].comm.useless_messages > 1000

    def test_signature_shifts_right(self, mgs_small):
        assert mgs_small["4K"].signature.mean_writers() == pytest.approx(1.0)
        assert mgs_small["16K"].signature.mean_writers() > 2.0

    def test_no_piggyback_at_4k(self, mgs_small):
        """'demonstrated by the absence of piggybacked useless data at
        the 4 Kbyte page size'."""
        assert mgs_small["4K"].comm.piggybacked_useless_bytes == 0

    def test_dynamic_matches_4k_static(self, mgs_small):
        """'The dynamic scheme performs the same as the static 4 Kbyte
        page.'"""
        ratio = mgs_small["Dyn"].time_us / mgs_small["4K"].time_us
        assert ratio == pytest.approx(1.0, abs=0.05)


class TestIlinkAggregation:
    """Ilink: monotone improvement, invariant signature, no useless
    messages."""

    def test_messages_fall_monotonically(self, ilink):
        m = {k: v.comm.total_messages for k, v in ilink.items()}
        assert m["4K"] > m["8K"] > m["16K"]

    def test_time_improves(self, ilink):
        assert ilink["16K"].time_us < ilink["8K"].time_us < ilink["4K"].time_us

    def test_no_useless_messages_at_any_unit(self, ilink):
        for res in ilink.values():
            assert res.comm.useless_messages == 0

    def test_signature_invariant(self, ilink):
        m4 = ilink["4K"].signature.mean_writers()
        m16 = ilink["16K"].signature.mean_writers()
        assert abs(m16 - m4) < 1.0

    def test_dynamic_close_to_best_static(self, ilink):
        best = min(r.time_us for k, r in ilink.items() if k != "Dyn")
        assert ilink["Dyn"].time_us <= best * 1.10


class TestJacobiUselessData:
    def test_no_useless_data_at_4k_small(self):
        res = run_app(get_app("Jacobi"), "1Kx1K", SimConfig(nprocs=8))
        assert res.comm.useless_messages == 0
        assert res.comm.piggybacked_useless_bytes == 0

    def test_useless_data_appears_at_8k_small(self):
        res = run_app(
            get_app("Jacobi"), "1Kx1K", SimConfig(nprocs=8, unit_pages=2)
        )
        assert res.comm.piggybacked_useless_bytes > 0
        assert res.comm.useless_messages == 0  # never useless messages


class TestShallowMixedEffects:
    def test_small_input_gains_useless_messages_at_8k(self):
        r4 = run_app(get_app("Shallow"), "1Kx0.5K", SimConfig(nprocs=8))
        r8 = run_app(
            get_app("Shallow"), "1Kx0.5K", SimConfig(nprocs=8, unit_pages=2)
        )
        assert r4.comm.useless_messages == 0
        assert r8.comm.useless_messages > 0
        assert r8.time_us > r4.time_us

    def test_large_input_improves(self):
        r4 = run_app(get_app("Shallow"), "4Kx0.5K", SimConfig(nprocs=8))
        r16 = run_app(
            get_app("Shallow"), "4Kx0.5K", SimConfig(nprocs=8, unit_pages=4)
        )
        assert r16.time_us < r4.time_us


class TestFFTRegimes:
    def test_medium_peaks_at_8k(self):
        r = {
            up: run_app(
                get_app("3D-FFT"), "64x64x64", SimConfig(nprocs=8, unit_pages=up)
            )
            for up in (1, 2, 4)
        }
        assert r[2].time_us < r[1].time_us
        assert r[4].time_us > r[2].time_us

    def test_small_degrades(self):
        r1 = run_app(get_app("3D-FFT"), "64x64x32", SimConfig(nprocs=8))
        r4 = run_app(
            get_app("3D-FFT"), "64x64x32", SimConfig(nprocs=8, unit_pages=4)
        )
        assert r4.time_us > r1.time_us


class TestSpeedups:
    @pytest.mark.parametrize(
        "name,ds,lo,hi",
        [
            ("Barnes", "16K", 2.5, 6.0),
            ("ILINK", "CLP", 4.0, 7.5),
            ("Water", "512", 4.0, 7.5),
        ],
    )
    def test_speedup_band(self, name, ds, lo, hi):
        app = get_app(name)
        seq = run_app(app, ds, SimConfig(nprocs=1))
        par = run_app(get_app(name), ds, SimConfig(nprocs=8))
        sp = seq.time_us / par.time_us
        assert lo <= sp <= hi, sp

"""Small-scope exhaustive model checker for the consistency protocols.

The protocol zoo (:mod:`repro.protocols`) is validated dynamically by
checksum invariance over the eight applications -- strong evidence, but
each run exercises exactly one interleaving per configuration.  This
module closes the gap in the herd-litmus style: tiny litmus programs
(2-3 processors, 2-4 shared words, acquire/release/barrier annotations)
are driven through the *real* protocol engines via the thread-free
:class:`repro.dsm.stepper.SteppedSystem`, and **every** interleaving is
enumerated by breadth-first search over schedule prefixes with
state-hash deduplication.

Oracle
------
All litmus programs are data-race-free by construction (a built-in
vector-clock race detector rejects racy litmus definitions as *litmus*
errors, not protocol violations).  For a DRF program, release
consistency admits exactly one value per read: the last write in
happens-before order -- which, because every executed schedule is a
linear extension of happens-before, equals the last write *executed* at
the time of the read.  The oracle therefore maintains a plain reference
array updated at each write in schedule order and checks every read
(and, at each terminal state, every processor's view of every litmus
word) against it.  This is the same apply-all-writes-in-hb-order
reference the hypothesis invariance property uses, specialized to word
granularity.

Witnesses and the mutation gate
-------------------------------
Because exploration is breadth-first with children expanded in
ascending processor order, the first violation found is a *minimal*
interleaving witness (shortest schedule, lexicographically first among
the shortest).  Witnesses serialize to JSON with an embedded schedule
(replayable via ``repro analyze modelcheck --replay``) and export as a
Chrome trace for ``repro.trace`` viewing.  A deliberately broken hlrc
variant that skips its first DIFF_FLUSH (:class:`BrokenHomeLrcProc`)
must be rejected by the checker -- the *mutation gate* proving the
whole apparatus can actually catch protocol bugs.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsm.stepper import Instruction, Program, SteppedSystem
from repro.dsm.vc import VectorClock
from repro.protocols import get_protocol
from repro.protocols.base import ProtocolInfo
from repro.protocols.hlrc import HomeLrcProc
from repro.sim.config import SimConfig

#: Protocols every litmus test is checked against.
CHECKED_PROTOCOLS: Tuple[str, ...] = ("tm-lrc", "hlrc", "erc", "swi")

#: Default cap on distinct explored states per (litmus, protocol).
MAX_STATES = 250_000


class LitmusError(Exception):
    """A litmus program is ill-formed (racy or produced an invalid
    schedule) -- a bug in the litmus definition, not the protocol."""


# ----------------------------------------------------------------------
# Litmus programs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Litmus:
    """One litmus test: per-processor programs over a few shared words."""

    name: str
    description: str
    programs: Tuple[Program, ...]
    words: Tuple[int, ...]
    heap_bytes: int = 8192

    @property
    def nprocs(self) -> int:
        return len(self.programs)

    @property
    def reg_slots(self) -> Tuple[Tuple[int, str], ...]:
        """(proc, register) pairs in program order -- the outcome shape."""
        slots: List[Tuple[int, str]] = []
        for p, prog in enumerate(self.programs):
            for instr in prog:
                if instr[0] in ("read", "rmw"):
                    slots.append((p, str(instr[-1])))
        return tuple(slots)


def _w(word: int, value: int) -> Instruction:
    return ("write", word, value)


def _r(word: int, reg: str) -> Instruction:
    return ("read", word, reg)


#: Word in unit 0 / word in unit 1 (4 KB units over the 8 KB litmus heap).
_X, _Y = 0, 1024

LITMUS_TESTS: Dict[str, Litmus] = {
    lit.name: lit
    for lit in (
        Litmus(
            name="mp",
            description=(
                "message passing: data + flag written before a barrier "
                "must both be visible after it"
            ),
            programs=(
                (_w(_X, 1), _w(_Y, 1), ("barrier", 0), ("barrier", 1)),
                (
                    ("barrier", 0),
                    _r(_Y, "r0"),
                    _r(_X, "r1"),
                    ("barrier", 1),
                ),
            ),
            words=(_X, _Y),
        ),
        Litmus(
            name="sb",
            description=(
                "store buffering under locks: each processor publishes "
                "one word then reads the other's; program order forbids "
                "the both-zero outcome"
            ),
            programs=(
                (
                    ("acquire", 0),
                    _w(_X, 1),
                    ("release", 0),
                    ("acquire", 1),
                    _r(_Y, "r0"),
                    ("release", 1),
                    ("barrier", 9),
                ),
                (
                    ("acquire", 1),
                    _w(_Y, 1),
                    ("release", 1),
                    ("acquire", 0),
                    _r(_X, "r1"),
                    ("release", 0),
                    ("barrier", 9),
                ),
            ),
            words=(_X, _Y),
        ),
        Litmus(
            name="corr",
            description=(
                "coherent read-read: two reads of the same word in one "
                "critical section must agree (no stale second read)"
            ),
            programs=(
                (
                    ("acquire", 0),
                    _w(_X, 1),
                    _w(_X, 2),
                    ("release", 0),
                    ("barrier", 9),
                ),
                (
                    ("acquire", 0),
                    _r(_X, "r0"),
                    _r(_X, "r1"),
                    ("release", 0),
                    ("barrier", 9),
                ),
            ),
            words=(_X,),
        ),
        Litmus(
            name="fs-diff-merge",
            description=(
                "false sharing: three processors write adjacent words of "
                "one unit in concurrent intervals; after the barrier every "
                "processor must see all three writes (diff merge)"
            ),
            programs=(
                (
                    _w(0, 5),
                    ("barrier", 0),
                    _r(1, "r0"),
                    _r(2, "r1"),
                    ("barrier", 1),
                ),
                (
                    _w(1, 6),
                    ("barrier", 0),
                    _r(2, "r0"),
                    _r(0, "r1"),
                    ("barrier", 1),
                ),
                (
                    _w(2, 7),
                    ("barrier", 0),
                    _r(0, "r0"),
                    _r(1, "r1"),
                    ("barrier", 1),
                ),
            ),
            words=(0, 1, 2),
        ),
        Litmus(
            name="migratory",
            description=(
                "migratory ownership: a lock-protected counter visits "
                "three processors twice each; every increment must build "
                "on the previous one"
            ),
            programs=tuple(
                (
                    ("acquire", 0),
                    ("rmw", _X, 1, "r0"),
                    ("release", 0),
                    ("acquire", 0),
                    ("rmw", _X, 1, "r1"),
                    ("release", 0),
                    ("barrier", 9),
                )
                for _ in range(3)
            ),
            words=(_X,),
        ),
    )
}


# ----------------------------------------------------------------------
# Checker-side happens-before tracking (DRF self-validation)
# ----------------------------------------------------------------------
class _DrfTracker:
    """Vector-clock race detector over the litmus instruction stream.

    Independent of the protocol under test: it sees only which
    instruction executed, so a race report always means the *litmus* is
    ill-formed (the RC oracle is exact only for DRF programs)."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.cvc = [VectorClock(nprocs) for _ in range(nprocs)]
        for p in range(nprocs):
            self.cvc[p][p] = 1
        self.lock_vc: Dict[int, VectorClock] = {}
        self.write_vc: Dict[int, Tuple[int, VectorClock]] = {}
        self.read_vc: Dict[int, Dict[int, VectorClock]] = {}

    def tick(self, p: int) -> None:
        self.cvc[p][p] = self.cvc[p][p] + 1

    def on_write(self, p: int, word: int, name: str) -> None:
        prior = self.write_vc.get(word)
        if prior is not None and prior[0] != p and not prior[1] <= self.cvc[p]:
            raise LitmusError(
                f"litmus {name!r} is racy: write/write race on word "
                f"{word} between P{prior[0]} and P{p}"
            )
        for q, rvc in self.read_vc.get(word, {}).items():
            if q != p and not rvc <= self.cvc[p]:
                raise LitmusError(
                    f"litmus {name!r} is racy: read/write race on word "
                    f"{word} between P{q} and P{p}"
                )
        self.write_vc[word] = (p, self.cvc[p].copy())

    def on_read(self, p: int, word: int, name: str) -> None:
        prior = self.write_vc.get(word)
        if prior is not None and prior[0] != p and not prior[1] <= self.cvc[p]:
            raise LitmusError(
                f"litmus {name!r} is racy: write/read race on word "
                f"{word} between P{prior[0]} and P{p}"
            )
        self.read_vc.setdefault(word, {})[p] = self.cvc[p].copy()

    def on_release(self, p: int, lock_id: int) -> None:
        vc = self.lock_vc.setdefault(lock_id, VectorClock(self.nprocs))
        vc.join(self.cvc[p])

    def on_acquire_granted(self, p: int, lock_id: int) -> None:
        vc = self.lock_vc.get(lock_id)
        if vc is not None:
            self.cvc[p].join(vc)

    def on_barrier_complete(self) -> None:
        merged = VectorClock(self.nprocs)
        for p in range(self.nprocs):
            merged.join(self.cvc[p])
        for p in range(self.nprocs):
            self.cvc[p].join(merged)


# ----------------------------------------------------------------------
# Schedule replay with the RC oracle
# ----------------------------------------------------------------------
@dataclass
class ReplayResult:
    """One schedule executed against one protocol."""

    system: SteppedSystem
    steps: List[dict]
    key: str
    """State digest after the schedule (before any terminal-state
    reads, which fault data in and would perturb the state)."""
    violation: Optional[dict]
    outcome: Optional[Tuple[int, ...]]
    """Register values in :attr:`Litmus.reg_slots` order; set when the
    schedule is terminal and violation-free."""


def replay(
    litmus: Litmus,
    info: ProtocolInfo,
    schedule: Sequence[int],
    check_final: bool = True,
) -> ReplayResult:
    """Execute ``schedule`` (a processor index per step) and check every
    read -- and, at a terminal state, every processor's final view --
    against the RC oracle."""
    system = SteppedSystem(
        info,
        litmus.programs,
        heap_bytes=litmus.heap_bytes,
        config=SimConfig(nprocs=litmus.nprocs),
    )
    drf = _DrfTracker(litmus.nprocs)
    ref: Dict[int, int] = {}
    steps: List[dict] = []
    violation: Optional[dict] = None

    for i, p in enumerate(schedule):
        if system.finished(p) or system.cursors[p].blocked:
            raise LitmusError(
                f"invalid schedule for {litmus.name!r}: step {i} picks "
                f"P{p}, which is not enabled"
            )
        was_blocked = [system.cursors[q].blocked for q in range(litmus.nprocs)]
        instr = system.step(p)
        steps.append({"i": i, "proc": p, "instr": list(instr)})
        drf.tick(p)
        kind = instr[0]
        if kind == "write":
            _, word, value = instr
            drf.on_write(p, int(word), litmus.name)
            ref[int(word)] = int(value)
        elif kind == "read":
            _, word, reg = instr
            drf.on_read(p, int(word), litmus.name)
            expected = ref.get(int(word), 0)
            actual = system.cursors[p].regs[str(reg)]
            if actual != expected:
                violation = {
                    "kind": "read",
                    "step": i,
                    "proc": p,
                    "word": int(word),
                    "expected": expected,
                    "actual": actual,
                }
                break
        elif kind == "rmw":
            _, word, k, reg = instr
            drf.on_write(p, int(word), litmus.name)
            expected = ref.get(int(word), 0)
            actual = system.cursors[p].regs[str(reg)]
            ref[int(word)] = expected + int(k)
            if actual != expected:
                violation = {
                    "kind": "read",
                    "step": i,
                    "proc": p,
                    "word": int(word),
                    "expected": expected,
                    "actual": actual,
                }
                break
        elif kind == "release":
            drf.on_release(p, int(instr[1]))
        elif kind == "acquire":
            if not system.cursors[p].blocked:
                drf.on_acquire_granted(p, int(instr[1]))
        elif kind == "barrier":
            if not system.cursors[p].blocked:
                drf.on_barrier_complete()
        for q in range(litmus.nprocs):
            if q != p and was_blocked[q] and not system.cursors[q].blocked:
                prev = system.programs[q][system.cursors[q].pc - 1]
                if prev[0] == "acquire":
                    drf.on_acquire_granted(q, int(prev[1]))

    key = system.state_key()
    outcome: Optional[Tuple[int, ...]] = None
    if violation is None and system.terminal() and check_final:
        for p in range(litmus.nprocs):
            for word in litmus.words:
                expected = ref.get(word, 0)
                actual = system.read_word(p, word)
                if actual != expected:
                    violation = {
                        "kind": "final",
                        "step": len(steps),
                        "proc": p,
                        "word": word,
                        "expected": expected,
                        "actual": actual,
                    }
                    break
            if violation is not None:
                break
        if violation is None:
            outcome = tuple(
                system.cursors[p].regs[reg] for p, reg in litmus.reg_slots
            )
    return ReplayResult(
        system=system,
        steps=steps,
        key=key,
        violation=violation,
        outcome=outcome,
    )


# ----------------------------------------------------------------------
# Breadth-first exhaustive exploration
# ----------------------------------------------------------------------
@dataclass
class ExploreResult:
    """Exhaustive exploration of one (litmus, protocol) pair."""

    litmus: str
    protocol: str
    states: int
    terminals: int
    outcomes: Tuple[Tuple[int, ...], ...]
    violation: Optional[dict] = None
    schedule: Optional[Tuple[int, ...]] = None
    witness_steps: Optional[List[dict]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def baseline_entry(self) -> dict:
        return {
            "states": self.states,
            "terminals": self.terminals,
            "outcomes": [list(o) for o in self.outcomes],
        }


def explore(
    litmus: Litmus, info: ProtocolInfo, max_states: int = MAX_STATES
) -> ExploreResult:
    """Enumerate every interleaving of ``litmus`` under ``info``.

    BFS over schedule prefixes with stateless replay: each frontier
    schedule is re-executed from scratch (systems are not copyable),
    children are deduplicated by canonical state digest.  BFS plus
    ascending-processor expansion makes the first violation found a
    minimal witness."""
    root = replay(litmus, info, ())
    seen = {root.key}
    states = 1
    terminals = 0
    outcomes: set = set()

    def _result(res: ReplayResult, sched: Tuple[int, ...]) -> ExploreResult:
        assert res.violation is not None
        return ExploreResult(
            litmus=litmus.name,
            protocol=info.name,
            states=states,
            terminals=terminals,
            outcomes=tuple(sorted(outcomes)),
            violation=res.violation,
            schedule=sched,
            witness_steps=res.steps,
        )

    if root.violation is not None:  # empty-program final check
        return _result(root, ())
    frontier: deque = deque([()])
    while frontier:
        sched = frontier.popleft()
        base = replay(litmus, info, sched, check_final=False)
        enabled = base.system.enabled()
        if not enabled and not base.system.terminal():
            deadlock = ReplayResult(
                system=base.system,
                steps=base.steps,
                key=base.key,
                violation={
                    "kind": "deadlock",
                    "step": len(sched),
                    "proc": -1,
                    "word": -1,
                    "expected": 0,
                    "actual": 0,
                },
                outcome=None,
            )
            return _result(deadlock, tuple(sched))
        for p in enabled:
            child_sched = tuple(sched) + (p,)
            child = replay(litmus, info, child_sched)
            if child.violation is not None:
                return _result(child, child_sched)
            if child.key in seen:
                continue
            seen.add(child.key)
            states += 1
            if states > max_states:
                raise LitmusError(
                    f"{litmus.name} x {info.name}: state space exceeds "
                    f"{max_states} states"
                )
            if child.system.terminal():
                terminals += 1
                assert child.outcome is not None
                outcomes.add(child.outcome)
            else:
                frontier.append(child_sched)
    return ExploreResult(
        litmus=litmus.name,
        protocol=info.name,
        states=states,
        terminals=terminals,
        outcomes=tuple(sorted(outcomes)),
    )


# ----------------------------------------------------------------------
# Witness files
# ----------------------------------------------------------------------
def witness_doc(result: ExploreResult) -> dict:
    """JSON document for a violation witness (replayable + viewable)."""
    assert result.violation is not None and result.schedule is not None
    litmus = LITMUS_TESTS[result.litmus]
    from repro.trace.export import witness_chrome_trace

    trace = witness_chrome_trace(
        litmus.nprocs,
        result.witness_steps or [],
        result.violation,
        label=f"modelcheck {result.litmus} x {result.protocol}",
    )
    return {
        "litmus": result.litmus,
        "protocol": result.protocol,
        "schedule": list(result.schedule),
        "violation": result.violation,
        "steps": result.witness_steps,
        "chrome_trace": trace,
    }


def replay_witness(
    doc: dict, info: Optional[ProtocolInfo] = None
) -> ReplayResult:
    """Re-execute a witness file's schedule; returns the replay (whose
    ``violation`` the caller compares against the recorded one)."""
    litmus = LITMUS_TESTS[doc["litmus"]]
    if info is None:
        info = get_protocol(doc["protocol"])
    return replay(litmus, info, tuple(doc["schedule"]))


# ----------------------------------------------------------------------
# Mutation gate: a seeded protocol bug the checker must catch
# ----------------------------------------------------------------------
class BrokenHomeLrcProc(HomeLrcProc):
    """hlrc mutant: the first diff-producing release "forgets" to flush
    its diffs to the homes (it closes the interval the tm-lrc way
    instead), leaving every home copy of the written units stale."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._flush_skipped = False

    def close_interval(self) -> None:
        if not self._flush_skipped and any(
            self.home(u) != self.pid for u in self.twins
        ):
            self._flush_skipped = True
            # Grandparent close: diffs recorded in the store, no flush.
            super(HomeLrcProc, self).close_interval()
            return
        super().close_interval()


def broken_protocol() -> ProtocolInfo:
    """An *unregistered* ProtocolInfo for the seeded-bug hlrc variant."""

    def _build(
        layout: object,
        config: object,
        store: object,
        network: object,
        stats: object,
        clocks: object,
        credit: object,
    ) -> List[BrokenHomeLrcProc]:
        assert isinstance(clocks, list)
        procs = [
            BrokenHomeLrcProc(
                pid=pid,
                layout=layout,
                config=config,
                store=store,
                network=network,
                stats=stats,
                clock=clocks[pid],
                credit=credit,
            )
            for pid in range(len(clocks))
        ]
        for bp in procs:
            bp.peers = procs
        return procs

    return ProtocolInfo(
        name="hlrc-broken-flush",
        description="hlrc with its first DIFF_FLUSH deliberately skipped",
        build=_build,  # type: ignore[arg-type]
    )


def mutation_gate(litmus_name: str = "fs-diff-merge") -> dict:
    """Prove the checker catches a seeded bug: the broken-flush hlrc
    variant must be rejected with a witness that replays to the same
    violation.  Returns the witness document."""
    litmus = LITMUS_TESTS[litmus_name]
    info = broken_protocol()
    result = explore(litmus, info)
    if result.violation is None:
        raise AssertionError(
            f"mutation gate FAILED: {info.name} passed {litmus_name} "
            f"({result.states} states explored) -- the checker cannot "
            f"catch a skipped DIFF_FLUSH"
        )
    doc = witness_doc(result)
    rep = replay_witness(doc, info=info)
    if rep.violation != result.violation:
        raise AssertionError(
            f"mutation gate FAILED: witness did not replay -- explored "
            f"violation {result.violation}, replay got {rep.violation}"
        )
    return doc


# ----------------------------------------------------------------------
# Baseline (committed state counts) and the CLI gate
# ----------------------------------------------------------------------
def baseline_path() -> pathlib.Path:
    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "modelcheck"
        / "state_counts.json"
    )


def load_baseline(path: Optional[pathlib.Path] = None) -> Dict[str, dict]:
    p = path if path is not None else baseline_path()
    if not p.exists():
        return {}
    with open(p) as fh:
        data = json.load(fh)
    return dict(data)


def write_baseline(
    entries: Dict[str, dict], path: Optional[pathlib.Path] = None
) -> pathlib.Path:
    p = path if path is not None else baseline_path()
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w") as fh:
        json.dump(entries, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return p


def check_all(
    litmus_names: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
) -> List[ExploreResult]:
    """Explore every requested litmus x protocol cell exhaustively."""
    names = (
        list(litmus_names) if litmus_names else sorted(LITMUS_TESTS)
    )
    protos = list(protocols) if protocols else list(CHECKED_PROTOCOLS)
    results: List[ExploreResult] = []
    for lname in names:
        litmus = LITMUS_TESTS[lname]
        for pname in protos:
            results.append(explore(litmus, get_protocol(pname)))
    return results


def run_modelcheck(
    litmus_names: Optional[Sequence[str]] = None,
    protocols: Optional[Sequence[str]] = None,
    update_baseline: bool = False,
    with_mutation_gate: bool = True,
    witness_path: Optional[str] = None,
    baseline: Optional[pathlib.Path] = None,
) -> int:
    """The ``repro analyze modelcheck`` gate; returns an exit code.

    Explores the requested cells, compares state counts / terminal
    counts / outcome sets against the committed baseline (exact match
    required; ``--update-baseline`` rewrites it), and runs the mutation
    gate.  A violation writes its witness to ``witness_path`` (default
    ``modelcheck_witness.json``) and fails the gate."""
    results = check_all(litmus_names, protocols)
    failed = False
    for res in results:
        cell = f"{res.litmus} x {res.protocol}"
        if res.violation is not None:
            failed = True
            path = witness_path or "modelcheck_witness.json"
            with open(path, "w") as fh:
                json.dump(witness_doc(res), fh, indent=2)
            print(
                f"FAIL {cell}: RC violation {res.violation} "
                f"(witness -> {path})"
            )
            continue
        print(
            f"ok   {cell}: {res.states} states, {res.terminals} "
            f"terminal, {len(res.outcomes)} outcome(s)"
        )
    if failed:
        return 1

    entries = {
        f"{res.litmus}/{res.protocol}": res.baseline_entry()
        for res in results
    }
    if update_baseline:
        known = load_baseline(baseline)
        known.update(entries)
        path = write_baseline(known, baseline)
        print(f"baseline updated: {path}")
    else:
        known = load_baseline(baseline)
        for cell, entry in entries.items():
            expected = known.get(cell)
            if expected is None:
                print(f"FAIL {cell}: no committed baseline entry")
                failed = True
            elif expected != entry:
                print(
                    f"FAIL {cell}: baseline drift -- committed "
                    f"{expected}, explored {entry}"
                )
                failed = True
        if failed:
            print("run with --update-baseline to accept new state counts")
            return 1

    if with_mutation_gate:
        doc = mutation_gate()
        v = doc["violation"]
        print(
            f"mutation gate: {doc['protocol']} rejected on "
            f"{doc['litmus']} at step {v['step']} "
            f"(word {v['word']}: expected {v['expected']}, "
            f"got {v['actual']}); witness replays"
        )
    return 0

"""Aggregation strategies: static units and dynamic page groups."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.dsm.aggregation import DynamicAggregator, StaticAggregator, make_aggregator


def run(nprocs, body, **cfg):
    tmk = TreadMarks(SimConfig(nprocs=nprocs, **cfg), heap_bytes=1 << 17)
    arr = tmk.array("a", (16 * 1024,), "uint32")  # 16 pages
    res = tmk.run(lambda proc: body(proc, arr))
    return tmk, res


def test_factory_picks_strategy():
    tmk = TreadMarks(SimConfig(nprocs=1), heap_bytes=4096)
    assert isinstance(tmk.procs[0].aggregator, StaticAggregator)
    tmk = TreadMarks(SimConfig(nprocs=1, dynamic=True), heap_bytes=4096)
    assert isinstance(tmk.procs[0].aggregator, DynamicAggregator)


def test_dynamic_requires_single_page_units():
    with pytest.raises(ValueError):
        TreadMarks(SimConfig(nprocs=1, dynamic=True, unit_pages=2), heap_bytes=4096)


def test_dynamic_monitoring_faults_on_first_access():
    """Every first touch of a page faults even with no data pending."""

    def body(proc, arr):
        arr.read(proc, 0, 4)
        arr.read(proc, 1024, 4)
        arr.read(proc, 8, 4)  # same page as the first read: no new fault

    tmk, res = run(1, body, dynamic=True)
    assert res.stats.monitoring_faults == 2
    assert res.stats.faults == 0


def test_static_mode_has_no_monitoring_faults():
    def body(proc, arr):
        arr.read(proc, 0, 4)
        arr.read(proc, 1024, 4)

    tmk, res = run(1, body)
    assert res.stats.monitoring_faults == 0


def test_dynamic_groups_pages_fetched_together():
    """Pages repeatedly accessed in the same interval get grouped: the
    second round fetches both in ONE fault with a combined request."""

    def body(proc, arr):
        for it in range(3):
            if proc.id == 0:
                arr.write(proc, 0, np.full(4, it + 1, np.uint32))
                arr.write(proc, 1024, np.full(4, it + 1, np.uint32))
            proc.barrier()
            if proc.id == 1:
                arr.read(proc, 0, 4)
                arr.read(proc, 1024, 4)
            proc.barrier()

    tmk, res = run(2, body, dynamic=True)
    data_faults = [
        r for r in res.stats.fault_records if r.proc == 1 and not r.monitoring
    ]
    # Round 1: two separate faults (no groups yet).  Rounds 2 and 3: the
    # two pages form a group -> one data fault each (plus a monitoring
    # fault for the second page).
    multi = [r for r in data_faults if len(r.units) == 2]
    assert len(multi) == 2
    assert len(data_faults) == 2 + 2


def test_dynamic_group_fetch_combines_per_writer():
    """Both grouped pages come from the same writer -> one exchange."""

    def body(proc, arr):
        for it in range(2):
            if proc.id == 0:
                arr.write(proc, 0, np.full(4, it + 1, np.uint32))
                arr.write(proc, 1024, np.full(4, it + 1, np.uint32))
            proc.barrier()
            if proc.id == 1:
                arr.read(proc, 0, 4)
                arr.read(proc, 1024, 4)
            proc.barrier()

    tmk, res = run(2, body, dynamic=True)
    grouped = [
        r
        for r in res.stats.fault_records
        if r.proc == 1 and len(r.units) == 2
    ]
    assert grouped and all(len(r.exchange_ids) == 1 for r in grouped)


def test_dynamic_hysteresis_drops_stale_members():
    """A page fetched with its group but never accessed again leaves the
    group (after one useless fetch -- the hysteresis cost)."""

    def body(proc, arr):
        # Round 1: proc 1 accesses pages 0 and 1 together.
        if proc.id == 0:
            arr.write(proc, 0, np.full(4, 1, np.uint32))
            arr.write(proc, 1024, np.full(4, 1, np.uint32))
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 0, 4)
            arr.read(proc, 1024, 4)
        proc.barrier()
        # Rounds 2..4: proc 1 only ever touches page 0 again.
        for it in range(3):
            if proc.id == 0:
                arr.write(proc, 0, np.full(4, it + 2, np.uint32))
                arr.write(proc, 1024, np.full(4, it + 2, np.uint32))
            proc.barrier()
            if proc.id == 1:
                arr.read(proc, 0, 4)
            proc.barrier()

    tmk, res = run(2, body, dynamic=True)
    agg = tmk.procs[1].aggregator
    assert isinstance(agg, DynamicAggregator)
    # Page 1 (word 1024) must have been dropped back to singleton.
    page1 = tmk.layout.unit_of_word(1024)
    assert page1 not in agg.group_of


def test_dynamic_max_group_size_respected():
    npages = 12

    def body(proc, arr):
        for it in range(2):
            if proc.id == 0:
                for p in range(npages):
                    arr.write(proc, p * 1024, np.full(4, it + 1, np.uint32))
            proc.barrier()
            if proc.id == 1:
                for p in range(npages):
                    arr.read(proc, p * 1024, 4)
            proc.barrier()

    tmk, res = run(2, body, dynamic=True, max_group_pages=4)
    for r in res.stats.fault_records:
        assert len(r.units) <= 4


def test_static_unit_invalidation_granularity():
    """A write anywhere in an 8 KB unit invalidates the whole unit at
    the reader: reading the untouched page of the unit still faults."""

    def body(proc, arr):
        if proc.id == 1:
            arr.read(proc, 1024, 4)  # page 1 valid (unit 0)
        proc.barrier()
        if proc.id == 0:
            arr.write(proc, 0, np.full(4, 1, np.uint32))  # page 0 of unit 0
        proc.barrier()
        if proc.id == 1:
            arr.read(proc, 1024, 4)  # page 1: unit invalid -> fault
        proc.barrier()

    tmk, res = run(2, body, unit_pages=2)
    p1_faults = [r for r in res.stats.fault_records if r.proc == 1]
    assert len(p1_faults) == 1

"""Chrome-trace and JSONL export structure."""

import json

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.trace.export import SIM_PID, chrome_trace, write_chrome_trace, write_jsonl

NPROCS = 4


@pytest.fixture(scope="module")
def traced_run():
    tmk = TreadMarks(
        SimConfig(nprocs=NPROCS, trace=True),
        heap_bytes=1 << 16,
        app_name="toy",
        dataset="unit",
    )
    grid = tmk.array("grid", (NPROCS * 2, 512), dtype="float32")

    def worker(proc):
        lo = proc.id * 2
        grid.write_rows(proc, lo, np.full((2, 512), proc.id + 1, np.float32))
        proc.barrier()
        halo = grid.read_row(proc, (lo + 2) % (NPROCS * 2))
        proc.acquire(1)
        proc.release(1)
        proc.barrier()
        return float(halo.sum())

    return tmk.run(worker)


def test_document_shape(traced_run):
    doc = chrome_trace(traced_run.trace)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["nprocs"] == NPROCS
    assert doc["otherData"]["app"] == "toy"
    # Round-trips through JSON.
    assert json.loads(json.dumps(doc))["otherData"]["dataset"] == "unit"


def test_per_processor_thread_metadata(traced_run):
    doc = chrome_trace(traced_run.trace)
    names = {
        e["tid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert names == {p: f"P{p}" for p in range(NPROCS)}


def test_slices_cover_every_processor_with_valid_durations(traced_run):
    doc = chrome_trace(traced_run.trace)
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert {e["tid"] for e in slices} == set(range(NPROCS))
    for e in slices:
        assert e["pid"] == SIM_PID
        assert e["dur"] >= 0.0
        assert e["ts"] >= 0.0
    names = sorted({e["name"] for e in slices})
    assert "run" in names
    assert any(n.startswith("barrier") for n in names)
    assert any(n.startswith("lock") for n in names)
    assert "fault" in names


def test_flow_arrows_pair_up_by_message(traced_run):
    doc = chrome_trace(traced_run.trace)
    starts = {e["id"]: e for e in doc["traceEvents"] if e.get("ph") == "s"}
    finishes = {e["id"]: e for e in doc["traceEvents"] if e.get("ph") == "f"}
    assert starts and set(starts) == set(finishes)
    nmsgs = len(traced_run.trace.by_kind("message"))
    assert len(starts) == nmsgs
    for mid, s in starts.items():
        f = finishes[mid]
        assert f["ts"] >= s["ts"]  # receive not before send
        assert s["cat"] == f["cat"] == "msg"


def test_flows_and_instants_can_be_disabled(traced_run):
    doc = chrome_trace(traced_run.trace, flows=False, instants=False)
    assert not [e for e in doc["traceEvents"] if e.get("ph") in ("s", "f", "i")]


def test_write_chrome_trace_round_trip(tmp_path, traced_run):
    path = tmp_path / "run.trace.json"
    doc = write_chrome_trace(path, traced_run.trace, label="toy/unit")
    loaded = json.load(open(path))
    assert loaded == json.loads(json.dumps(doc))
    assert loaded["traceEvents"]


def test_write_jsonl_one_object_per_event(tmp_path, traced_run):
    path = tmp_path / "events.jsonl"
    n = write_jsonl(path, traced_run.trace.events)
    lines = path.read_text().splitlines()
    assert n == len(lines) == len(traced_run.trace.events)
    first = json.loads(lines[0])
    assert {"eid", "ts_us", "proc", "kind"} <= set(first)

"""The per-processor application handle.

A :class:`Proc` is passed to the application function on each simulated
processor.  It exposes:

* shared memory access (:meth:`read` / :meth:`write`, in heap word
  offsets; applications usually go through
  :class:`repro.core.shared.SharedArray` instead),
* synchronization (:meth:`acquire` / :meth:`release` / :meth:`barrier`),
* local work accounting (:meth:`compute`).

Every shared access is instrumented: it may fault (invalid unit), it
resolves diff-word usefulness, and it advances the processor's simulated
clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.dsm.lrc import LrcProc
from repro.sim.engine import OpKind, ProcContext

if TYPE_CHECKING:
    from repro.core.treadmarks import TreadMarks


class Proc:
    """Application-facing processor handle."""

    def __init__(self, ctx: ProcContext, lrc: LrcProc, runtime: "TreadMarks") -> None:
        self._ctx = ctx
        self._lrc = lrc
        self._runtime = runtime

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def id(self) -> int:
        """This processor's id in ``[0, nprocs)``."""
        return self._ctx.pid

    @property
    def nprocs(self) -> int:
        """Number of processors in the run."""
        return self._runtime.config.nprocs

    @property
    def time_us(self) -> float:
        """This processor's current simulated clock (microseconds)."""
        return self._ctx.clock.now

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    def read(self, word0: int, nwords: int) -> np.ndarray:
        """Read ``nwords`` shared words starting at heap word ``word0``;
        returns the raw uint32 bit patterns (view with ``.view(dtype)``)."""
        return self._lrc.read_words(word0, nwords)

    def write(self, word0: int, values: np.ndarray) -> None:
        """Write uint32 bit patterns to shared words starting at
        ``word0``."""
        self._lrc.write_words(word0, np.ascontiguousarray(values, dtype=np.uint32))

    # The bulk region-access API.  A contiguous region operation is
    # already resolved analytically per call (one fault check per
    # touched unit, one clock charge per region), so ``read_range`` /
    # ``write_range`` are the same operations under their bulk-API
    # names; ``read_gather`` / ``write_scatter`` extend them to many
    # equal-length ranges with vectorized data movement (see the bulk
    # fast path in :class:`repro.dsm.lrc.LrcProc`).
    read_range = read
    write_range = write

    def read_gather(self, starts: np.ndarray, nwords: int) -> np.ndarray:
        """Read ``len(starts)`` shared ranges of ``nwords`` words each as
        an (nranges, nwords) uint32 array; semantically identical to
        ``read_range`` per start, in order."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        v = self._runtime.access_validator
        if v is not None:
            v.check(self.id, "read", starts, nwords)
        return self._lrc.read_gather(starts, nwords)

    def write_scatter(self, starts: np.ndarray, values: np.ndarray) -> None:
        """Write an (nranges, nwords) uint32 array to ``len(starts)``
        shared ranges; semantically identical to ``write_range`` per
        start, in order."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.uint32)
        v = self._runtime.access_validator
        if v is not None:
            v.check(self.id, "write", starts, int(values.shape[-1]))
        self._lrc.write_scatter(starts, values)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def acquire(self, lock_id: int) -> None:
        """Acquire a global lock (``Tmk_lock_acquire``)."""
        self._lrc.at_sync_point()
        self._ctx.engine.park(self._ctx, OpKind.ACQUIRE, lock_id)

    def release(self, lock_id: int) -> None:
        """Release a global lock (``Tmk_lock_release``)."""
        self._lrc.at_sync_point()
        self._ctx.engine.park(self._ctx, OpKind.RELEASE, lock_id)

    def barrier(self, barrier_id: int = 0) -> None:
        """Arrive at a global barrier (``Tmk_barrier``)."""
        self._lrc.at_sync_point()
        self._ctx.engine.park(self._ctx, OpKind.BARRIER, barrier_id)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def compute(self, flops: float = 0.0, us: float = 0.0) -> None:
        """Charge local computation to this processor's clock: ``flops``
        floating-point operations and/or ``us`` raw microseconds."""
        self._ctx.clock.advance(flops * self._runtime.config.flop_us + us)

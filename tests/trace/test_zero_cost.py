"""The zero-cost guarantee: tracing never perturbs a run.

A traced run must produce a RunResult bit-identical to the untraced run
-- same simulated times, same message ledger, same protocol counters,
same signature, same checksum.  The one deliberate exception is
``FaultRecord.trace_eid`` (None untraced, the fault's trace event id
traced), which exists exactly so the signature can cross-reference the
timeline.
"""

import dataclasses

import pytest

from repro.apps.base import run_app
from repro.sim.config import SimConfig

from tests.conftest import tiny_app

CASES = [
    ("Jacobi", dict(unit_pages=1)),
    ("MGS", dict(unit_pages=2)),
    ("ILINK", dict(unit_pages=1)),
    ("Water", dict(dynamic=True)),
]


def _pair(name, kw):
    app, ds = tiny_app(name)
    plain = run_app(app, ds, SimConfig(nprocs=8, **kw))
    app2, _ = tiny_app(name)
    traced = run_app(app2, ds, SimConfig(nprocs=8, trace=True, **kw))
    return plain, traced


@pytest.mark.parametrize("name,kw", CASES, ids=[c[0] for c in CASES])
def test_traced_run_is_bit_identical(name, kw):
    plain, traced = _pair(name, kw)

    assert traced.trace is not None and plain.trace is None
    assert traced.time_us == plain.time_us
    assert traced.proc_times_us == plain.proc_times_us
    assert traced.checksum == plain.checksum
    assert traced.comm == plain.comm  # dataclass field equality
    assert traced.signature.normalized() == plain.signature.normalized()

    # Every counter matches; fault records match except trace_eid.
    for f in dataclasses.fields(plain.stats):
        if f.name == "fault_records":
            continue
        assert getattr(traced.stats, f.name) == getattr(plain.stats, f.name), f.name
    assert len(traced.stats.fault_records) == len(plain.stats.fault_records)
    for a, b in zip(plain.stats.fault_records, traced.stats.fault_records):
        for f in dataclasses.fields(a):
            if f.name == "trace_eid":
                continue
            assert getattr(a, f.name) == getattr(b, f.name), f.name


@pytest.mark.parametrize("name,kw", CASES[:1], ids=[CASES[0][0]])
def test_trace_eid_is_the_single_exception(name, kw):
    plain, traced = _pair(name, kw)
    assert plain.stats.fault_records
    assert all(r.trace_eid is None for r in plain.stats.fault_records)
    assert all(r.trace_eid is not None for r in traced.stats.fault_records)
    # And the eids really index fault events in the trace.
    for rec in traced.stats.fault_records:
        ev = traced.trace.events[rec.trace_eid]
        assert ev.kind == "fault" and ev.fault_id == rec.fault_id

"""Clock semantics."""

import pytest

from repro.sim.clock import Clock


def test_starts_at_zero():
    assert Clock().now == 0.0


def test_advance_accumulates():
    c = Clock()
    c.advance(10.0)
    c.advance(2.5)
    assert c.now == pytest.approx(12.5)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        Clock().advance(-1.0)


def test_advance_to_moves_forward():
    c = Clock(5.0)
    assert c.advance_to(9.0) == 9.0
    assert c.now == 9.0


def test_advance_to_never_moves_backwards():
    c = Clock(5.0)
    c.advance_to(3.0)
    assert c.now == 5.0


def test_reset():
    c = Clock(42.0)
    c.reset()
    assert c.now == 0.0


def test_zero_advance_allowed():
    c = Clock(1.0)
    c.advance(0.0)
    assert c.now == 1.0

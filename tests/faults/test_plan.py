"""Fault-plan value objects: validation, canonical form, RNG keying."""

import pytest

from repro.faults.plan import (
    ANY_CLASS,
    FaultPlan,
    FaultSpec,
    StragglerWindow,
    message_rng,
    parse_plan,
)


# ----------------------------------------------------------------------
# FaultSpec
# ----------------------------------------------------------------------
def test_spec_defaults_inactive():
    spec = FaultSpec()
    spec.validate()
    assert not spec.active


@pytest.mark.parametrize("field,value", [
    ("drop_rate", -0.1), ("drop_rate", 1.0),
    ("dup_rate", 1.5), ("reorder_rate", -1e-9),
    ("reorder_window", 0), ("jitter_us", -1.0),
])
def test_spec_rejects_bad_values(field, value):
    with pytest.raises(ValueError):
        FaultSpec(**{field: value}).validate()


def test_spec_rejects_unknown_class():
    with pytest.raises(ValueError, match="unknown message class"):
        FaultSpec(klass="carrier_pigeon").validate()


def test_spec_active_flags():
    assert FaultSpec(drop_rate=0.1).active
    assert FaultSpec(jitter_us=1.0).active
    assert not FaultSpec(reorder_window=8).active


# ----------------------------------------------------------------------
# StragglerWindow
# ----------------------------------------------------------------------
def test_straggler_validation():
    StragglerWindow(proc=2, start_us=0.0, duration_us=10.0).validate(4)
    with pytest.raises(ValueError, match="outside"):
        StragglerWindow(proc=4, start_us=0.0, duration_us=10.0).validate(4)
    with pytest.raises(ValueError, match="factor"):
        StragglerWindow(proc=0, start_us=0.0, duration_us=1.0,
                        factor=1.5).validate()
    with pytest.raises(ValueError, match="duration_us"):
        StragglerWindow(proc=0, start_us=0.0, duration_us=0.0).validate()


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_uniform_plan_spec_for_falls_back_to_wildcard():
    plan = FaultPlan.uniform(seed=3, drop_rate=0.1)
    spec = plan.spec_for("lock")
    assert spec is not None and spec.klass == ANY_CLASS
    assert plan.drops_messages and plan.active


def test_class_specific_spec_wins_over_wildcard():
    plan = FaultPlan(seed=0, specs=(
        FaultSpec(klass=ANY_CLASS, drop_rate=0.1),
        FaultSpec(klass="lock", drop_rate=0.5),
    ))
    plan.validate()
    assert plan.spec_for("lock").drop_rate == 0.5
    assert plan.spec_for("barrier").drop_rate == 0.1


def test_unlisted_class_gets_none_without_wildcard():
    plan = FaultPlan(seed=0, specs=(FaultSpec(klass="lock", drop_rate=0.5),))
    assert plan.spec_for("barrier") is None


def test_duplicate_class_specs_rejected():
    plan = FaultPlan(specs=(FaultSpec(klass="lock"), FaultSpec(klass="lock")))
    with pytest.raises(ValueError, match="duplicate spec"):
        plan.validate()


def test_plan_parameter_validation():
    with pytest.raises(ValueError, match="max_retries"):
        FaultPlan(max_retries=-1).validate()
    with pytest.raises(ValueError, match="timeout_us"):
        FaultPlan(timeout_us=0.0).validate()
    with pytest.raises(ValueError, match="backoff"):
        FaultPlan(backoff=0.5).validate()


def test_replace_revalidates():
    plan = FaultPlan.uniform(seed=1, drop_rate=0.1)
    assert plan.replace(seed=9).seed == 9
    with pytest.raises(ValueError):
        plan.replace(timeout_us=-1.0)


def test_canonical_round_trip():
    plan = FaultPlan.uniform(
        seed=11, drop_rate=0.05, dup_rate=0.01, reorder_rate=0.02,
        jitter_us=25.0,
    ).replace(stragglers=(
        StragglerWindow(proc=1, start_us=100.0, duration_us=50.0, factor=0.5),
    ))
    text = plan.canonical()
    assert FaultPlan.from_json(text) == plan
    # Canonical form is stable: round-tripping reproduces the string.
    assert FaultPlan.from_json(text).canonical() == text


def test_from_json_rejects_garbage():
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(ValueError, match="must be an object"):
        FaultPlan.from_json("[1,2]")
    with pytest.raises(ValueError, match="malformed fault plan"):
        FaultPlan.from_json('{"seed":0,"warp_speed":9}')


def test_parse_plan_memoizes():
    text = FaultPlan.uniform(seed=42, drop_rate=0.1).canonical()
    assert parse_plan(text) is parse_plan(text)
    with pytest.raises(ValueError, match="empty"):
        parse_plan("")


# ----------------------------------------------------------------------
# message_rng keying
# ----------------------------------------------------------------------
def test_message_rng_deterministic_per_key():
    a = [message_rng(5, 17).random() for _ in range(4)]
    b = [message_rng(5, 17).random() for _ in range(4)]
    assert a == b


def test_message_rng_distinct_across_keys():
    assert message_rng(5, 17).random() != message_rng(5, 18).random()
    assert message_rng(5, 17).random() != message_rng(6, 17).random()


def test_message_rng_independent_of_draw_counts():
    # Message i's fate does not depend on how many draws message i-1
    # consumed: each id has a private generator.
    first = message_rng(0, 1).random()
    rng0 = message_rng(0, 0)
    for _ in range(1000):
        rng0.random()
    assert message_rng(0, 1).random() == first

"""Recorder semantics: eid assignment, hook coverage over a real run."""

import numpy as np
import pytest

from repro.core import SimConfig, TreadMarks
from repro.sim.config import SimConfig as _SimConfig
from repro.trace.recorder import TraceRecorder


def _run_tiny(trace=True, dynamic=False, nprocs=4):
    kw = dict(nprocs=nprocs, trace=trace)
    if dynamic:
        kw["dynamic"] = True
    tmk = TreadMarks(SimConfig(**kw), heap_bytes=1 << 17)
    # 8 rows of 1 KB per processor: each write interval spans two pages,
    # so dynamic aggregation has multi-page access patterns to group.
    grid = tmk.array("grid", (nprocs * 8, 256), dtype="float32")

    def worker(proc):
        rows = 8
        lo = proc.id * rows
        grid.write_rows(proc, lo, np.full((rows, 256), proc.id + 1, np.float32))
        proc.barrier()
        nxt = ((proc.id + 1) % proc.nprocs) * rows
        halo = grid.read_row(proc, nxt) + grid.read_row(proc, nxt + 4)
        proc.acquire(5)
        proc.release(5)
        proc.barrier()
        return float(halo.sum())

    result = tmk.run(worker)
    return result


def test_untraced_run_has_no_recorder():
    res = _run_tiny(trace=False)
    assert res.trace is None


def test_eids_are_list_indices():
    res = _run_tiny()
    for i, ev in enumerate(res.trace.events):
        assert ev.eid == i


def test_expected_kinds_present():
    res = _run_tiny()
    kinds = {ev.kind for ev in res.trace.events}
    for expected in (
        "access", "fault", "twin", "diff_create", "diff_apply",
        "message", "lock_acquire", "lock_release",
        "barrier_arrive", "barrier_depart", "park", "resume",
    ):
        assert expected in kinds, expected


def test_by_kind_filters_in_order():
    res = _run_tiny()
    faults = res.trace.by_kind("fault")
    assert faults and all(ev.kind == "fault" for ev in faults)
    assert [ev.eid for ev in faults] == sorted(ev.eid for ev in faults)


def test_per_proc_event_order_is_program_order():
    res = _run_tiny()
    for p in range(4):
        ts = [ev.ts_us for ev in res.trace.events
              if ev.proc == p and ev.kind in ("access", "park", "resume")]
        assert ts == sorted(ts)


def test_barrier_instances_count_occurrences():
    res = _run_tiny()
    arrivals = res.trace.by_kind("barrier_arrive")
    instances = sorted({ev.instance for ev in arrivals})
    assert instances == [0, 1]  # two barrier-0 episodes
    for inst in instances:
        assert sum(1 for ev in arrivals if ev.instance == inst) == 4


def test_lock_acquires_emitted_in_grant_order():
    res = _run_tiny()
    grants = [ev for ev in res.trace.events if ev.kind == "lock_acquire"]
    assert len(grants) == 4
    # Grant timestamps must be non-decreasing in emission order.
    ts = [ev.ts_us for ev in grants]
    assert ts == sorted(ts)


def test_fault_records_cross_reference_trace():
    res = _run_tiny()
    fault_events = {ev.fault_id: ev for ev in res.trace.by_kind("fault")}
    assert res.stats.fault_records
    for rec in res.stats.fault_records:
        assert rec.trace_eid is not None
        ev = fault_events[rec.fault_id]
        assert ev.eid == rec.trace_eid
        assert ev.units == tuple(rec.units)
        assert ev.writers == rec.writers


def test_group_events_only_in_dynamic_mode():
    static = _run_tiny(dynamic=False)
    dyn = _run_tiny(dynamic=True)
    assert not static.trace.by_kind("group_build")
    assert dyn.trace.by_kind("group_build")


def test_recorder_carries_run_context():
    rec = TraceRecorder(_SimConfig(nprocs=2, trace=True))
    assert len(rec) == 0
    res = _run_tiny()
    assert res.trace.layout is not None
    assert res.trace.network is not None


def test_message_events_match_network_ledger():
    res = _run_tiny()
    msgs = res.trace.by_kind("message")
    assert len(msgs) == len(res.trace.network.messages)
    for ev, rec in zip(msgs, res.trace.network.messages):
        assert ev.msg_id == rec.msg_id
        assert ev.src == rec.src and ev.dst == rec.dst
        assert ev.payload_bytes == rec.payload_bytes
        assert ev.recv_ts_us >= ev.ts_us

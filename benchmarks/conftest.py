"""Benchmark-suite plumbing: output directory and result persistence."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "repro_results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_text(results_dir, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print("\n" + text)

"""Application base-class machinery."""

import pytest

from repro.apps.base import Application, AppRegistry, get_app, run_app
from repro.sim.config import SimConfig


class TestRegistry:
    def test_all_eight_registered(self):
        assert set(AppRegistry.names()) >= {
            "Barnes", "ILINK", "Jacobi", "MGS", "Shallow", "TSP",
            "Water", "3D-FFT",
        }

    def test_get_returns_fresh_instances(self):
        a = get_app("Jacobi")
        b = get_app("Jacobi")
        assert a is not b

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            get_app("NotAnApp")

    def test_unnamed_app_rejected(self):
        with pytest.raises(ValueError):
            @AppRegistry.register
            class Nameless(Application):
                pass


class TestBlockRange:
    def test_even_split(self):
        assert Application.block_range(16, 4, 0) == (0, 4)
        assert Application.block_range(16, 4, 3) == (12, 16)

    def test_uneven_split_covers_everything(self):
        total, nprocs = 17, 4
        ranges = [Application.block_range(total, nprocs, p) for p in range(nprocs)]
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(total))

    def test_uneven_split_balanced(self):
        sizes = [
            hi - lo
            for lo, hi in (
                Application.block_range(10, 4, p) for p in range(4)
            )
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_more_procs_than_items(self):
        ranges = [Application.block_range(2, 4, p) for p in range(4)]
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 2
        assert all(s >= 0 for s in sizes)


class TestParams:
    def test_params_returns_copy(self):
        app = get_app("Jacobi")
        p = app.params("1Kx1K")
        p["rows"] = -1
        assert app.params("1Kx1K")["rows"] != -1

    def test_run_app_rejects_unknown_dataset(self):
        with pytest.raises(KeyError):
            run_app(get_app("Jacobi"), "nope", SimConfig(nprocs=1))


class TestChecksumCollection:
    def test_collect_checksum_sums_partials(self):
        from repro.core import TreadMarks

        tmk = TreadMarks(SimConfig(nprocs=4), heap_bytes=4096)
        handles = {}

        def body(proc):
            return Application.collect_checksum(proc, handles, proc.id + 1.0)

        res = tmk.run(body)
        assert res.checksum == 1 + 2 + 3 + 4

"""The structured event recorder.

One :class:`TraceRecorder` per traced run, created by
:class:`repro.core.treadmarks.TreadMarks` when ``SimConfig.trace`` is
true and handed to the substrate and protocol layers, which call the
``on_*`` hooks below from their existing code paths.

The recorder is a pure observer: hooks only read values the protocol
already computed and append an event to a Python list.  They never
advance a clock, record a message, or touch protocol state, which is
what makes the zero-cost guarantee (traced and untraced runs produce
bit-identical simulated results) hold by construction.

Hook call sites pay one ``if trace is not None`` branch when tracing is
off; that is the entire disabled-mode overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.trace.events import (
    AccessEvent,
    BarrierArriveEvent,
    BarrierDepartEvent,
    DiffApplyEvent,
    DiffCreateEvent,
    DiffFlushEvent,
    DiffPushEvent,
    FaultEvent,
    FaultInjectedEvent,
    GroupBuildEvent,
    GroupDissolveEvent,
    GroupFetchEvent,
    LockAcquireEvent,
    LockReleaseEvent,
    MessageEvent,
    OwnershipEvent,
    ParkEvent,
    ResumeEvent,
    RetransmitEvent,
    TraceEvent,
    TwinEvent,
)

if TYPE_CHECKING:
    from repro.dsm.address_space import SharedHeapLayout
    from repro.sim.config import SimConfig
    from repro.sim.network import MessageRecord, Network


class TraceRecorder:
    """Append-only event log for one simulated run."""

    def __init__(self, config: "SimConfig") -> None:
        self.config = config
        self.events: List[TraceEvent] = []
        self._barrier_instance: Dict[int, int] = {}
        # Post-run analysis context, attached by the runtime so exports
        # and reports can resolve geometry and message usefulness.
        self.layout: Optional["SharedHeapLayout"] = None
        self.network: Optional["Network"] = None
        self.app_name: str = ""
        self.dataset: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def _emit(self, ev: TraceEvent) -> int:
        ev.eid = len(self.events)
        self.events.append(ev)
        return ev.eid

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in emission order."""
        return [ev for ev in self.events if ev.kind == kind]

    # ------------------------------------------------------------------
    # Application access path (repro.dsm.lrc)
    # ------------------------------------------------------------------
    def on_access(
        self, proc: int, ts: float, op: str, word0: int, nwords: int
    ) -> int:
        return self._emit(
            AccessEvent(-1, ts, proc, op=op, word0=word0, nwords=nwords)
        )

    def on_fault(
        self,
        proc: int,
        ts: float,
        fault_id: int,
        units: Tuple[int, ...],
        writers: int,
        exchange_ids: Tuple[int, ...],
        stall_us: float,
        cost_us: float,
        monitoring: bool = False,
    ) -> int:
        return self._emit(
            FaultEvent(
                -1,
                ts,
                proc,
                fault_id=fault_id,
                units=units,
                writers=writers,
                exchange_ids=exchange_ids,
                stall_us=stall_us,
                cost_us=cost_us,
                monitoring=monitoring,
            )
        )

    def on_twin(self, proc: int, ts: float, unit: int) -> int:
        return self._emit(TwinEvent(-1, ts, proc, unit=unit))

    def on_diff_create(
        self, writer: int, requester: int, ts: float, unit: int, nwords: int
    ) -> int:
        return self._emit(
            DiffCreateEvent(
                -1, ts, writer, requester=requester, unit=unit, nwords=nwords
            )
        )

    def on_diff_apply(
        self,
        proc: int,
        ts: float,
        unit: int,
        writer: int,
        nwords: int,
        msg_id: int,
        pages: Tuple[int, ...],
        page_words: Tuple[int, ...],
    ) -> int:
        return self._emit(
            DiffApplyEvent(
                -1,
                ts,
                proc,
                unit=unit,
                writer=writer,
                nwords=nwords,
                msg_id=msg_id,
                pages=pages,
                page_words=page_words,
            )
        )

    # ------------------------------------------------------------------
    # Protocol zoo (repro.protocols)
    # ------------------------------------------------------------------
    def on_diff_flush(
        self, proc: int, home: int, ts: float, unit: int, nwords: int,
        msg_id: int,
    ) -> int:
        return self._emit(
            DiffFlushEvent(
                -1, ts, proc, home=home, unit=unit, nwords=nwords,
                msg_id=msg_id,
            )
        )

    def on_diff_push(
        self, proc: int, dst: int, ts: float, units: Tuple[int, ...],
        nwords: int, msg_id: int,
    ) -> int:
        return self._emit(
            DiffPushEvent(
                -1, ts, proc, dst=dst, units=units, nwords=nwords,
                msg_id=msg_id,
            )
        )

    def on_ownership(
        self, proc: int, ts: float, unit: int, prev_owner: int,
        invalidated: int,
    ) -> int:
        return self._emit(
            OwnershipEvent(
                -1, ts, proc, unit=unit, prev_owner=prev_owner,
                invalidated=invalidated,
            )
        )

    # ------------------------------------------------------------------
    # Network (repro.sim.network)
    # ------------------------------------------------------------------
    def on_message(
        self,
        rec: "MessageRecord",
        wire_time_us: float,
        waiter: Optional[int] = None,
    ) -> int:
        return self._emit(
            MessageEvent(
                -1,
                rec.send_time_us,
                rec.src,
                msg_id=rec.msg_id,
                src=rec.src,
                dst=rec.dst,
                klass=rec.klass.value,
                payload_bytes=rec.payload_bytes,
                recv_ts_us=rec.send_time_us + wire_time_us,
                exchange_id=rec.exchange_id,
            )
        )

    # ------------------------------------------------------------------
    # Fault lab (repro.faults.inject)
    # ------------------------------------------------------------------
    def on_fault_injected(
        self,
        proc: int,
        ts: float,
        msg_id: int,
        klass: str,
        fault: str,
        delay_us: float,
    ) -> int:
        return self._emit(
            FaultInjectedEvent(
                -1,
                ts,
                proc,
                msg_id=msg_id,
                klass=klass,
                fault=fault,
                delay_us=delay_us,
            )
        )

    def on_retransmit(
        self,
        proc: int,
        ts: float,
        msg_id: int,
        klass: str,
        attempt: int,
        stall_us: float,
    ) -> int:
        return self._emit(
            RetransmitEvent(
                -1,
                ts,
                proc,
                msg_id=msg_id,
                klass=klass,
                attempt=attempt,
                stall_us=stall_us,
            )
        )

    # ------------------------------------------------------------------
    # Synchronization (repro.dsm.sync)
    # ------------------------------------------------------------------
    def on_lock_acquire(
        self,
        proc: int,
        lock_id: int,
        req_ts: float,
        grant_ts: float,
        wake_ts: float,
        cached: bool,
    ) -> int:
        return self._emit(
            LockAcquireEvent(
                -1,
                grant_ts,
                proc,
                lock_id=lock_id,
                req_ts_us=req_ts,
                wake_ts_us=wake_ts,
                cached=cached,
            )
        )

    def on_lock_release(self, proc: int, ts: float, lock_id: int) -> int:
        return self._emit(LockReleaseEvent(-1, ts, proc, lock_id=lock_id))

    def on_barrier_arrive(self, proc: int, ts: float, barrier_id: int) -> int:
        inst = self._barrier_instance.get(barrier_id, 0)
        return self._emit(
            BarrierArriveEvent(
                -1, ts, proc, barrier_id=barrier_id, instance=inst
            )
        )

    def on_barrier_depart(
        self, proc: int, ts: float, barrier_id: int, wake_ts: float
    ) -> int:
        inst = self._barrier_instance.get(barrier_id, 0)
        return self._emit(
            BarrierDepartEvent(
                -1,
                ts,
                proc,
                barrier_id=barrier_id,
                instance=inst,
                wake_ts_us=wake_ts,
            )
        )

    def on_barrier_complete(self, barrier_id: int) -> None:
        """Close the current occurrence of ``barrier_id`` (called once
        after all depart events of the instance were emitted)."""
        self._barrier_instance[barrier_id] = (
            self._barrier_instance.get(barrier_id, 0) + 1
        )

    # ------------------------------------------------------------------
    # Dynamic aggregation (repro.dsm.aggregation)
    # ------------------------------------------------------------------
    def on_group_build(
        self, proc: int, ts: float, pages: Tuple[int, ...]
    ) -> int:
        return self._emit(GroupBuildEvent(-1, ts, proc, pages=pages))

    def on_group_fetch(
        self,
        proc: int,
        ts: float,
        page: int,
        group: Tuple[int, ...],
        fetched: Tuple[int, ...],
    ) -> int:
        return self._emit(
            GroupFetchEvent(-1, ts, proc, page=page, group=group, fetched=fetched)
        )

    def on_group_dissolve(self, proc: int, ts: float, page: int) -> int:
        return self._emit(GroupDissolveEvent(-1, ts, proc, page=page))

    # ------------------------------------------------------------------
    # Engine (repro.sim.engine)
    # ------------------------------------------------------------------
    def on_park(self, proc: int, ts: float, op_kind: str, arg: int) -> int:
        return self._emit(ParkEvent(-1, ts, proc, op_kind=op_kind, arg=arg))

    def on_resume(self, proc: int, ts: float) -> int:
        return self._emit(ResumeEvent(-1, ts, proc))

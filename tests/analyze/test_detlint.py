"""Engine-level tests: suppression bookkeeping, parse errors, the
committed fixture tree, and the CLI exit-code contract."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

from repro.analyze.detlint import (
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppressions,
    repo_roots,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]


def test_parse_error_is_a_finding():
    report = lint_source("def broken(:\n", "bad.py")
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert not report.ok


def test_suppression_only_in_comments_not_docstrings():
    src = '"""docs say detlint: ok(set-iter) but mean nothing."""\n'
    assert parse_suppressions(src) == {}
    # ... while a trailing comment on the same construct does count.
    src = "x = 1  # detlint: ok(set-iter, id-order)\n"
    assert parse_suppressions(src) == {1: {"set-iter", "id-order"}}


def test_stale_suppression_fails_the_gate():
    report = lint_source("x = 1  # detlint: ok(set-iter)\n", "f.py")
    assert [f.rule for f in report.active] == ["unused-suppression"]
    assert not report.ok


def test_unknown_rule_in_suppression_fails_the_gate():
    report = lint_source("x = 1  # detlint: ok(no-such-rule)\n", "f.py")
    assert [f.rule for f in report.active] == ["unused-suppression"]
    assert "unknown rule" in report.active[0].message


def test_suppression_is_per_line():
    src = "import time\nt = time.time()  # detlint: ok(wall-clock)\nu = time.time()\n"
    report = lint_source(src, "f.py")
    assert [(f.line, f.suppressed) for f in report.findings] == [
        (2, True),
        (3, False),
    ]


# ---------------------------------------------------------------- fixtures
def test_fixture_tree_findings_are_pinned():
    report = lint_paths([FIXTURES])
    assert not report.ok
    by_file = {}
    for f in report.active:
        by_file.setdefault(pathlib.Path(f.path).name, []).append(
            (f.line, f.rule)
        )
    assert by_file == {
        "bad_set_iter.py": [
            (9, "set-iter"),
            (13, "set-iter"),
            (16, "set-iter"),
            (19, "set-iter"),
        ],
        "bad_entropy.py": [
            (12, "wall-clock"),
            (13, "wall-clock"),
            (14, "global-random"),
            (15, "global-random"),
            (16, "global-random"),
            (17, "global-random"),
        ],
        "bad_identity.py": [
            (6, "id-order"),
            (7, "id-order"),
            (8, "id-order"),
            (13, "golden-float"),
            (14, "golden-float"),
        ],
    }
    # clean.py: nothing active, exactly one justified suppression.
    suppressed = [f for f in report.findings if f.suppressed]
    assert [pathlib.Path(f.path).name for f in suppressed] == ["clean.py"]


def test_iter_python_files_sorted_and_no_pycache():
    files = iter_python_files(FIXTURES)
    names = [f.name for f in files]
    assert names == sorted(names)
    assert all("__pycache__" not in f.parts for f in files)


def test_repo_roots_resolve_without_cwd():
    roots = repo_roots()
    assert roots == [REPO / "src" / "repro"]


# ---------------------------------------------------------------- CLI
def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analyze", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_lint_repo_is_clean():
    proc = _cli("--lint")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_cli_lint_fixture_tree_fails_and_reports_json(tmp_path):
    out = tmp_path / "report.json"
    proc = _cli("--lint", "--paths", "tests/analyze/fixtures",
                "--json", str(out))
    assert proc.returncode == 1
    data = json.loads(out.read_text())
    assert data["ok"] is False
    section = data["sections"]["src"]
    assert section["files_checked"] == 4
    rules = {f["rule"] for f in section["findings"]}
    assert {"set-iter", "wall-clock", "global-random", "id-order",
            "golden-float"} <= rules


def test_cli_lint_default_run_reports_both_sections():
    proc = _cli("--lint")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "== src ==" in proc.stdout
    assert "== helpers ==" in proc.stdout

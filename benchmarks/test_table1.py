"""Regenerates Table 1 (sequential times and 8-processor speedups)."""

from benchmarks.conftest import save_text
from repro.bench.harness import write_csv
from repro.bench.table1 import build_table1, render_table1


def test_table1(benchmark, results_dir):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    save_text(results_dir, "table1.txt", render_table1(rows))
    write_csv(
        results_dir / "table1.csv",
        (
            dict(
                app=r.app,
                dataset=r.dataset,
                seq_seconds=f"{r.seq_seconds:.4f}",
                par_seconds=f"{r.par_seconds:.4f}",
                speedup=f"{r.speedup:.2f}",
                paper_speedup=r.paper_speedup or "",
            )
            for r in rows
        ),
    )
    # Shape assertions: all speedups positive; the paper-reported rows
    # land in a sane band (the paper's range is 4.07-6.51).
    assert all(r.speedup > 1.0 for r in rows if r.app not in ("TSP",))
    reported = [r for r in rows if r.paper_speedup]
    assert reported
    for r in reported:
        assert 2.5 <= r.speedup <= 8.0, (r.app, r.dataset, r.speedup)

"""Typed views over shared heap allocations.

A :class:`SharedArray` is a *global* handle (shape, dtype, heap offset)
created once at setup time via :meth:`repro.core.treadmarks.TreadMarks.array`;
processors access it through their :class:`repro.core.proc.Proc`.  All
accesses decompose into contiguous word-range reads/writes on the shared
heap, which is where faulting and instrumentation happen.

Supported dtypes are the 4-byte-multiple numeric types (float32, int32,
uint32, float64, int64, complex64, complex128), matching the paper's
4-byte instrumentation word.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.proc import Proc
from repro.dsm.address_space import Allocation, SharedHeapLayout
from repro.dsm.diff import WORD


def alloc_array(
    layout: SharedHeapLayout, name: str, shape, dtype="float32",
    page_align: bool = True,
) -> "SharedArray":
    """Allocate a typed shared array in ``layout`` (the single shared
    implementation behind :meth:`repro.core.treadmarks.TreadMarks.array`
    and the static analyzer's layout probe, so both resolve identical
    heap addresses for the same ``setup()`` call sequence)."""
    shape = tuple(int(s) for s in np.atleast_1d(shape)) if not isinstance(
        shape, tuple
    ) else shape
    dt = np.dtype(dtype)
    nbytes = int(np.prod(shape)) * dt.itemsize
    alloc = layout.malloc(name, nbytes, page_align=page_align)
    return SharedArray(alloc, shape, dt)


class SharedArray:
    """A C-ordered shared array living in the DSM heap."""

    def __init__(self, alloc: Allocation, shape: Tuple[int, ...], dtype) -> None:
        self.alloc = alloc
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize % WORD:
            raise ValueError(
                f"dtype {self.dtype} has itemsize {self.dtype.itemsize}, "
                f"not a multiple of the {WORD}-byte word"
            )
        self.words_per_elem = self.dtype.itemsize // WORD
        self.size = int(np.prod(self.shape))
        if self.size * self.dtype.itemsize > alloc.nbytes:
            raise ValueError(
                f"array {alloc.name!r} needs {self.size * self.dtype.itemsize} "
                f"bytes, allocation holds {alloc.nbytes}"
            )

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def word_offset(self, flat_index: int) -> int:
        """Heap word offset of flat element ``flat_index``."""
        if flat_index < 0 or flat_index > self.size:
            raise IndexError(f"flat index {flat_index} out of {self.size}")
        return self.alloc.word_offset + flat_index * self.words_per_elem

    def _flatten(self, index) -> int:
        """Flat element index of an (i, j, ...) tuple or int."""
        if isinstance(index, int):
            if len(self.shape) != 1:
                raise IndexError(f"array {self.alloc.name!r} needs a tuple index")
            return index
        return int(np.ravel_multi_index(index, self.shape))

    # ------------------------------------------------------------------
    # Element / block access
    # ------------------------------------------------------------------
    def read(self, proc: Proc, start, count: int = 1) -> np.ndarray:
        """Read ``count`` contiguous elements starting at ``start`` (an
        int for 1-D arrays or an index tuple); returns a 1-D ndarray of
        the array's dtype."""
        flat = self._flatten(start)
        if flat + count > self.size:
            raise IndexError(
                f"read of {count} elements at flat {flat} exceeds size {self.size}"
            )
        raw = proc.read(self.word_offset(flat), count * self.words_per_elem)
        return raw.view(self.dtype)

    def write(self, proc: Proc, start, values) -> None:
        """Write contiguous elements starting at ``start``."""
        vals = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        flat = self._flatten(start)
        if flat + vals.size > self.size:
            raise IndexError(
                f"write of {vals.size} elements at flat {flat} exceeds "
                f"size {self.size}"
            )
        proc.write(self.word_offset(flat), vals.view(np.uint32))

    # ------------------------------------------------------------------
    # Row helpers for 2-D arrays (C order: a row is contiguous)
    # ------------------------------------------------------------------
    def read_row(self, proc: Proc, i: int) -> np.ndarray:
        """Read row ``i`` of a 2-D array."""
        self._check_2d()
        return self.read(proc, (i, 0), self.shape[1])

    def write_row(self, proc: Proc, i: int, values) -> None:
        """Write row ``i`` of a 2-D array."""
        self._check_2d()
        self.write(proc, (i, 0), values)

    def read_rows(self, proc: Proc, i0: int, i1: int) -> np.ndarray:
        """Read rows ``[i0, i1)`` of a 2-D array as an (i1-i0, ncols)
        ndarray (one contiguous shared access)."""
        self._check_2d()
        n = (i1 - i0) * self.shape[1]
        return self.read(proc, (i0, 0), n).reshape(i1 - i0, self.shape[1])

    def write_rows(self, proc: Proc, i0: int, values) -> None:
        """Write consecutive rows starting at ``i0`` (one contiguous
        shared access)."""
        self._check_2d()
        self.write(proc, (i0, 0), np.asarray(values))

    def _check_2d(self) -> None:
        if len(self.shape) != 2:
            raise IndexError(
                f"row access needs a 2-D array, {self.alloc.name!r} has "
                f"shape {self.shape}"
            )

    def __repr__(self) -> str:
        return (
            f"SharedArray({self.alloc.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, word_offset={self.alloc.word_offset})"
        )

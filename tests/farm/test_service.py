"""Read-only results service: routing, pending semantics, ETags.

Figure 1 is narrowed to the four precomputed Jacobi cells
(``FIGURE1_CASES`` monkeypatched) so the suite renders real bench
output from a store without running the paper's full coarse-grained
sweep.  One test binds a real socket to exercise the HTTP layer
(``If-None-Match`` revalidation); everything else drives
:class:`FarmService` directly.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench import figures
from repro.bench.golden import GOLDEN_FIELDS
from repro.bench.harness import ResultCache
from repro.farm.service import FarmService, make_server
from repro.farm.store import open_store

JACOBI_ONLY = [("Jacobi", "1Kx1K")]


@pytest.fixture()
def jacobi_figure1(monkeypatch):
    monkeypatch.setattr(figures, "FIGURE1_CASES", JACOBI_ONLY)


@pytest.fixture()
def empty_store(tmp_path):
    store = open_store(str(tmp_path / "store"))
    yield store
    store.close()


@pytest.fixture()
def full_store(empty_store, jacobi_cells, jacobi_results):
    for label, cell in jacobi_cells.items():
        empty_store.put_result(cell, jacobi_results[label])
    return empty_store


def _json_body(response):
    return json.loads(response.body.decode())


class TestRouting:
    def test_index_lists_endpoints(self, empty_store):
        response = FarmService(empty_store).handle("/")
        assert response.status == 200
        body = _json_body(response)
        assert "/v1/status.json" in body["endpoints"]

    def test_healthz(self, empty_store):
        response = FarmService(empty_store).handle("/healthz")
        assert response.status == 200
        assert response.body == b"ok\n"

    def test_status_counts_results(self, full_store, jacobi_cells):
        response = FarmService(full_store).handle("/v1/status.json")
        assert response.status == 200
        assert _json_body(response)["results"] == len(jacobi_cells)

    @pytest.mark.parametrize("path", [
        "/nope",
        "/v1/experiments/figure9.json",
        "/v1/experiments/figure1.pdf",
        "/v1/experiments/figure1",
    ])
    def test_unknown_resources_404(self, empty_store, path):
        assert FarmService(empty_store).handle(path).status == 404

    def test_query_string_is_ignored(self, empty_store):
        assert FarmService(empty_store).handle("/healthz?x=1").status == 200


class TestExperiments:
    def test_incomplete_experiment_is_pending_not_computed(
        self, empty_store, jacobi_figure1, jacobi_cells
    ):
        response = FarmService(empty_store).handle(
            "/v1/experiments/figure1.json"
        )
        assert response.status == 202
        body = _json_body(response)
        assert body["status"] == "pending"
        assert body["need"] == len(jacobi_cells)
        assert body["have"] == 0
        assert len(body["missing"]) == len(jacobi_cells)
        # Pending never triggers a simulation: the store stays empty.
        assert empty_store.backend.result_count() == 0

    def test_complete_experiment_json(
        self, full_store, jacobi_figure1, jacobi_cells, jacobi_results
    ):
        response = FarmService(full_store).handle(
            "/v1/experiments/figure1.json"
        )
        assert response.status == 200
        assert response.etag is not None
        body = _json_body(response)
        assert body["experiment"] == "figure1"
        assert len(body["cells"]) == len(jacobi_cells)
        by_label = {c["label"]: c for c in body["cells"]}
        for label, cell in jacobi_cells.items():
            served = by_label[label]
            assert served["key"] == cell.key
            want = jacobi_results[label].to_json_dict()
            assert served["result"] == want

    def test_etag_is_stable_across_requests(
        self, full_store, jacobi_figure1
    ):
        svc = FarmService(full_store)
        first = svc.handle("/v1/experiments/figure1.json")
        second = svc.handle("/v1/experiments/figure1.csv")
        assert first.etag == second.etag  # same cells, any format
        assert first.etag.startswith('"') and first.etag.endswith('"')

    def test_complete_experiment_csv(
        self, full_store, jacobi_figure1, jacobi_cells
    ):
        response = FarmService(full_store).handle(
            "/v1/experiments/figure1.csv"
        )
        assert response.status == 200
        assert response.content_type == "text/csv"
        lines = response.body.decode().strip().splitlines()
        header = lines[0].split(",")
        assert header[:5] == ["app", "dataset", "label", "protocol", "key"]
        assert set(header[5:]) == set(GOLDEN_FIELDS)
        assert len(lines) == 1 + len(jacobi_cells)
        assert all(line.startswith("Jacobi,1Kx1K,") for line in lines[1:])

    def test_complete_experiment_txt_renders_bench_output(
        self, full_store, jacobi_figure1
    ):
        previous_compute = ResultCache._compute
        response = FarmService(full_store).handle(
            "/v1/experiments/figure1.txt"
        )
        assert response.status == 200
        text = response.body.decode()
        assert "Figure 1" in text
        assert "Jacobi" in text
        # Rendering restored the process-wide cache knobs.
        assert ResultCache._compute == previous_compute
        assert ResultCache.disk() is None


class TestCells:
    def test_stored_cell_served_with_key_etag(
        self, full_store, jacobi_cells
    ):
        cell = jacobi_cells["4K"]
        response = FarmService(full_store).handle(
            f"/v1/cells/{cell.key}.json"
        )
        assert response.status == 200
        assert response.etag == f'"{cell.key}"'
        body = _json_body(response)
        assert body["key"] == cell.key
        assert body["app"] == "Jacobi"

    def test_queued_cell_is_pending(self, empty_store, jacobi_cells):
        cell = jacobi_cells["4K"]
        empty_store.submit([cell])
        response = FarmService(empty_store).handle(
            f"/v1/cells/{cell.key}.json"
        )
        assert response.status == 202
        assert _json_body(response)["state"] == "queued"

    def test_unknown_cell_404(self, empty_store):
        response = FarmService(empty_store).handle(
            "/v1/cells/ffffffffffffffffffffffff.json"
        )
        assert response.status == 404


class TestHTTP:
    @pytest.fixture()
    def server(self, full_store):
        srv = make_server(full_store, "127.0.0.1", 0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=10)

    def _get(self, server, path, headers=None):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}{path}", headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def test_etag_revalidation_304(self, server, jacobi_figure1):
        path = "/v1/experiments/figure1.json"
        status, headers, body = self._get(server, path)
        assert status == 200
        etag = headers["ETag"]
        assert json.loads(body)["experiment"] == "figure1"
        status, headers, body = self._get(
            server, path, {"If-None-Match": etag}
        )
        assert status == 304
        assert headers["ETag"] == etag
        assert body == b""

    def test_head_has_no_body(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/healthz", method="HEAD"
        )
        with urllib.request.urlopen(request) as resp:
            assert resp.status == 200
            assert resp.read() == b""
